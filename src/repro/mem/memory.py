"""Sparse physical-memory backing store.

The simulator's DRAM contents live here as a dict of 64-byte cachelines
keyed by line address; untouched lines read as zeros (cheap for a 4 GB
space of which a workload touches megabytes). All structured accesses —
PTE reads by the walker, OS page-table writes, attacker stores — funnel
through this object, so Rowhammer flips applied here are visible to every
consumer, exactly as in real DRAM.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List

from repro.common.config import CACHELINE_BYTES
from repro.common.errors import ConfigurationError

_ZERO_LINE = bytes(CACHELINE_BYTES)


class PhysicalMemory:
    """Byte-addressable sparse memory of ``size_bytes`` capacity."""

    def __init__(self, size_bytes: int):
        if size_bytes <= 0 or size_bytes % CACHELINE_BYTES:
            raise ConfigurationError("memory size must be a positive multiple of 64")
        self.size_bytes = size_bytes
        self._lines: Dict[int, bytes] = {}
        self._fault_listeners: List[Callable[[int, int], None]] = []

    # -- line-granularity access (the DRAM interface) ----------------------

    def line_address(self, address: int) -> int:
        return address & ~(CACHELINE_BYTES - 1)

    def _check(self, address: int, length: int = 1) -> None:
        if not 0 <= address <= self.size_bytes - length:
            raise ValueError(
                f"access [{address:#x}, +{length}) outside memory of "
                f"{self.size_bytes:#x} bytes"
            )

    def read_line(self, line_address: int) -> bytes:
        """Read the 64-byte line at ``line_address`` (must be aligned)."""
        self._check(line_address, CACHELINE_BYTES)
        if line_address % CACHELINE_BYTES:
            raise ValueError(f"unaligned line address {line_address:#x}")
        return self._lines.get(line_address, _ZERO_LINE)

    def write_line(self, line_address: int, data: bytes) -> None:
        """Write a full 64-byte line."""
        self._check(line_address, CACHELINE_BYTES)
        if line_address % CACHELINE_BYTES:
            raise ValueError(f"unaligned line address {line_address:#x}")
        if len(data) != CACHELINE_BYTES:
            raise ValueError(f"line data must be {CACHELINE_BYTES} bytes")
        if data == _ZERO_LINE:
            self._lines.pop(line_address, None)
        else:
            self._lines[line_address] = bytes(data)

    # -- byte/word access (the OS-substrate interface) ----------------------

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at any address."""
        self._check(address, length)
        out = bytearray()
        cursor = address
        remaining = length
        while remaining:
            line_addr = self.line_address(cursor)
            offset = cursor - line_addr
            take = min(CACHELINE_BYTES - offset, remaining)
            out += self.read_line(line_addr)[offset : offset + take]
            cursor += take
            remaining -= take
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        """Write ``data`` starting at any address."""
        self._check(address, len(data))
        cursor = address
        view = memoryview(data)
        while view:
            line_addr = self.line_address(cursor)
            offset = cursor - line_addr
            take = min(CACHELINE_BYTES - offset, len(view))
            line = bytearray(self.read_line(line_addr))
            line[offset : offset + take] = view[:take]
            self.write_line(line_addr, bytes(line))
            cursor += take
            view = view[take:]

    def read_u64(self, address: int) -> int:
        """Read one little-endian 64-bit word (e.g. a PTE)."""
        return int.from_bytes(self.read(address, 8), "little")

    def write_u64(self, address: int, value: int) -> None:
        """Write one little-endian 64-bit word."""
        self.write(address, (value & (1 << 64) - 1).to_bytes(8, "little"))

    # -- bit access (the Rowhammer interface) -------------------------------

    def read_bit(self, line_address: int, bit_offset: int) -> int:
        """Read a single bit of a line (bit 0 = LSB of byte 0)."""
        byte = self.read_line(line_address)[bit_offset // 8]
        return (byte >> (bit_offset % 8)) & 1

    def flip_bit(self, line_address: int, bit_offset: int) -> None:
        """Invert a single bit of a line (fault injection)."""
        line = bytearray(self.read_line(line_address))
        line[bit_offset // 8] ^= 1 << (bit_offset % 8)
        self.write_line(line_address, bytes(line))
        for listener in self._fault_listeners:
            listener(line_address, bit_offset)

    def flip_bits(self, line_address: int, bit_offsets: Iterable[int]) -> None:
        """Invert several bits of one line (multi-bit fault injection)."""
        for bit_offset in bit_offsets:
            self.flip_bit(line_address, bit_offset)

    def attach_fault_listener(
        self, listener: Callable[[int, int], None]
    ) -> None:
        """Observe every flipped bit as ``(line_address, bit_offset)``.

        Used by validators and campaign bookkeeping; listeners must not
        write memory (they run mid-flip).
        """
        self._fault_listeners.append(listener)

    # -- introspection -------------------------------------------------------

    def touched_lines(self) -> Iterator[int]:
        """Iterate over addresses of lines with non-zero content."""
        return iter(self._lines)

    def zero_fill(self, address: int, length: int) -> None:
        """Zero a byte range (used by the OS when clearing pages)."""
        self.write(address, bytes(length))

    def __len__(self) -> int:
        return len(self._lines)
