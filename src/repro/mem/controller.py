"""Memory controller: the seam where PT-Guard lives (paper Sec IV-F, Fig 5).

The controller serves cacheline requests from the cache hierarchy and the
page-table walker. Requests carry the ``isPTE`` bit the paper adds to the
request bus; responses carry the ``PTECheckFailed`` bit. On every write
the guard's bit-pattern match runs before data reaches DRAM; on every
read the guard inspects the line coming out of DRAM before it is
forwarded, adding MAC-unit latency on the critical path where required.

Without a guard (``ptguard=None``) the controller is the unprotected
baseline of the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional

from typing import TYPE_CHECKING

from repro.common.config import CACHELINE_BYTES
from repro.common.errors import CollisionBufferOverflow
from repro.common.stats import StatGroup
from repro.core.guard import PTGuard, ReadOutcome

if TYPE_CHECKING:  # avoid a circular package import at runtime
    from repro.dram.device import DRAMDevice


@dataclass(frozen=True)
class MemoryRequest:
    """One cacheline transaction presented to the controller."""

    address: int  # line-aligned physical address
    is_write: bool
    is_pte: bool = False  # the isPTE request-bus bit (set on TLB-miss walks)
    data: Optional[bytes] = None  # required for writes
    cycle: int = 0
    # Coherence origin: the cache issuing a write-back, excluded from the
    # invalidation broadcast so its own (possibly newer) upper-level
    # copies survive.
    origin: Optional[object] = None

    def __post_init__(self) -> None:
        if self.address % CACHELINE_BYTES:
            raise ValueError(f"request address {self.address:#x} not line-aligned")
        if self.is_write and (self.data is None or len(self.data) != CACHELINE_BYTES):
            raise ValueError("write requests need a full 64-byte data payload")


class MemoryResponse(NamedTuple):
    """The controller's reply (a NamedTuple: built once per access, hot path)."""

    data: Optional[bytes]  # line forwarded to caches (None for writes)
    latency_cycles: int  # DRAM + MAC-unit latency on the critical path
    pte_check_failed: bool = False  # the PTECheckFailed response-bus bit
    corrected: bool = False  # PT-Guard transparently corrected the PTE line
    rekey_required: bool = False  # CTB overflowed; OS should trigger re-keying
    overflow_address: Optional[int] = None  # the colliding line (Sec VII-B:
    # reported to the OS so it can sanitise the address / kill the writer)
    guard_outcome: Optional[ReadOutcome] = None


class MemoryController:
    """FR-FCFS-less single-queue controller with an optional PT-Guard stage."""

    def __init__(self, dram: "DRAMDevice", ptguard: Optional[PTGuard] = None):
        self.dram = dram
        self.ptguard = ptguard
        self.stats = StatGroup("mem_controller")
        # Coherence listeners: caches that must drop their copy of a line
        # whenever some other agent writes it through this controller.
        self._coherence_listeners: list = []
        # Optional fault hook fired just before DRAM serves a read —
        # the window where a disturbance lands after the last scrub but
        # before the guard inspects the line (repro.faults campaigns).
        self._read_fault_hook = None

    def install_read_fault_hook(self, hook) -> None:
        """Install ``hook(address, is_pte)`` called at the top of every
        read, before DRAM is consulted. Pass ``None`` to remove."""
        self._read_fault_hook = hook

    def attach_coherent_cache(self, cache) -> None:
        """Register an object with a ``discard(address)`` method to be
        notified on every DRAM write (models hardware invalidation)."""
        self._coherence_listeners.append(cache)

    def access(self, request: MemoryRequest) -> MemoryResponse:
        """Serve one request; returns data (reads) and total latency."""
        if request.is_write:
            return self.write_access(
                request.address, request.data, request.cycle, request.origin
            )
        return self.read_access(request.address, request.is_pte, request.cycle)

    # -- write path -----------------------------------------------------------

    def write_access(
        self,
        address: int,
        data: Optional[bytes],
        cycle: int = 0,
        origin: Optional[object] = None,
    ) -> MemoryResponse:
        """Request-free write path (same semantics as a write ``access``)."""
        if address % CACHELINE_BYTES:
            raise ValueError(f"request address {address:#x} not line-aligned")
        if data is None or len(data) != CACHELINE_BYTES:
            raise ValueError("write requests need a full 64-byte data payload")
        self.stats.increment("writes")
        latency = self.dram.access(address, is_write=True, cycle=cycle)
        rekey_required = False
        overflow_address = None
        if self.ptguard is not None:
            try:
                outcome = self.ptguard.process_write(address, data)
                data = outcome.stored_line
            except CollisionBufferOverflow:
                # Sec VII-B: store the raw line and raise the condition to
                # the OS with the colliding address, so it can sanitise the
                # line (write a benign value), kill the offending process,
                # and trigger the re-key sweep.
                self.stats.increment("ctb_overflows")
                rekey_required = True
                overflow_address = address
        self.dram.write_line(address, data)
        # Only foreign stores (kernel port, DMA-style agents) invalidate
        # cached copies; a cache write-back (origin set) must not discard
        # other caches' possibly-newer copies of the line.
        if origin is None:
            for cache in self._coherence_listeners:
                cache.discard(address)
        return MemoryResponse(
            data=None,
            latency_cycles=latency,
            rekey_required=rekey_required,
            overflow_address=overflow_address,
        )

    # -- read path ---------------------------------------------------------------

    def read_access(
        self, address: int, is_pte: bool = False, cycle: int = 0
    ) -> MemoryResponse:
        """Request-free read path (same semantics as a read ``access``)."""
        if address % CACHELINE_BYTES:
            raise ValueError(f"request address {address:#x} not line-aligned")
        self.stats.increment("pte_reads" if is_pte else "reads")
        hook = self._read_fault_hook
        if hook is not None:
            hook(address, is_pte)
        latency = self.dram.access(address, is_write=False, cycle=cycle)
        stored = self.dram.read_line(address)
        if self.ptguard is None:
            return MemoryResponse(data=stored, latency_cycles=latency)

        outcome = self.ptguard.process_read(address, stored, is_pte)
        latency += outcome.latency_cycles
        if outcome.corrected_stored_line is not None:
            # Transparent repair: scrub the corrected line back into DRAM.
            self.dram.write_line(address, outcome.corrected_stored_line)
            self.stats.increment("correction_writebacks")
        if outcome.pte_check_failed:
            self.stats.increment("pte_check_failures")
        return MemoryResponse(
            data=outcome.line,
            latency_cycles=latency,
            pte_check_failed=outcome.pte_check_failed,
            corrected=outcome.corrected,
            guard_outcome=outcome,
        )

    # -- row retirement (repro.recovery) ---------------------------------------

    def retire_row_of(self, address: int):
        """Retire the DRAM row containing ``address`` to a spare row.

        The controller is the seam the OS talks to (a real deployment
        would drive post-package repair through controller MMIO): it
        resolves the victim row, delegates the migration + remap to the
        device, and broadcasts invalidations for the row's lines so no
        cache serves a stale copy across the switch. Returns the spare
        row key, or None when the spare budget is exhausted.
        """
        row_key = self.dram.mapper.row_key_of(address)
        spare = self.dram.retire_row(row_key)
        if spare is None:
            self.stats.increment("row_retirements_exhausted")
            return None
        for line_address in self.dram.mapper.row_addresses(row_key):
            for cache in self._coherence_listeners:
                cache.discard(line_address)
        self.stats.increment("row_retirements")
        return spare

    # -- convenience functional helpers (used by the OS substrate) -----------------

    def read_line(self, address: int, is_pte: bool = False) -> MemoryResponse:
        return self.read_access(address, is_pte)

    def write_line(self, address: int, data: bytes) -> MemoryResponse:
        return self.write_access(address, data)
