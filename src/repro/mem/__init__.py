"""Memory subsystem: physical backing store and the memory controller."""

from repro.mem.controller import MemoryController, MemoryRequest, MemoryResponse
from repro.mem.memory import PhysicalMemory

__all__ = [
    "MemoryController",
    "MemoryRequest",
    "MemoryResponse",
    "PhysicalMemory",
]
