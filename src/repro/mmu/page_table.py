"""Four-level x86_64 radix page tables living in simulated physical memory.

The OS substrate builds real page tables — PML4, PDPT, PD, PT — inside
:class:`~repro.mem.memory.PhysicalMemory`, writing entries through a
*physical access port* so every PTE store crosses the memory controller
and gets PT-Guard's write-time treatment. The hardware walker
(:mod:`repro.mmu.walker`) then reads the same bytes back with the isPTE
bit set. Nothing about the mechanism is mocked: an attack that flips a
stored PTE bit corrupts exactly the bytes this module wrote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Protocol, Tuple

from repro.common.bitops import bits
from repro.common.config import PAGE_BYTES
from repro.common.errors import TranslationError
from repro.mmu.pte import X86PageTableEntry, make_x86_pte

LEVELS = 4  # PML4, PDPT, PD, PT
INDEX_BITS = 9
ENTRIES_PER_TABLE = 1 << INDEX_BITS  # 512
PTE_SIZE = 8

LEVEL_NAMES = ("PML4", "PDPT", "PD", "PT")


class PhysicalPort(Protocol):
    """How the OS reads/writes physical memory (through the controller)."""

    def read_u64(self, address: int) -> int:
        ...

    def write_u64(self, address: int, value: int) -> None:
        ...


def level_index(virtual_address: int, level: int) -> int:
    """The 9-bit table index for ``level`` (0 = PML4 ... 3 = PT)."""
    shift = 12 + INDEX_BITS * (LEVELS - 1 - level)
    return bits(virtual_address, shift + INDEX_BITS - 1, shift)


def vpn_of(virtual_address: int) -> int:
    return virtual_address >> 12


def page_offset(virtual_address: int) -> int:
    return virtual_address & (PAGE_BYTES - 1)


@dataclass(frozen=True)
class WalkStep:
    """One level of a software walk: where we read and what we found."""

    level: int
    entry_address: int  # physical address of the PTE consulted
    entry: int  # raw value


class PageTable:
    """One process's 4-level page table, rooted at ``root_pfn``.

    ``allocate_table_page`` is called when a mapping needs a new
    intermediate table; it must return the PFN of a zeroed page (the OS
    zeroes table pages on allocation, which is what makes PT-Guard's
    bit-pattern match succeed for every PTE line).
    """

    def __init__(
        self,
        port: PhysicalPort,
        root_pfn: int,
        allocate_table_page: Callable[[], int],
        on_entry_written: Optional[Callable[[int, int, int, int], None]] = None,
    ):
        self.port = port
        self.root_pfn = root_pfn
        self._allocate_table_page = allocate_table_page
        self.table_pfns: List[int] = [root_pfn]  # every table page we own
        # Software cache of intermediate-table PFNs keyed by index prefix.
        # Valid because this object is the only mutator of its tables and
        # intermediate tables are never torn down before the process dies.
        self._table_cache: Dict[tuple, int] = {}
        # Shadow hook: called as (entry_address, value, level, va) on
        # every PTE store, so the kernel's reverse map sees intermediate
        # levels too, not just the leaves (repro.recovery.shadow).
        self._on_entry_written = on_entry_written

    def _store_entry(
        self, entry_address: int, value: int, level: int, virtual_address: int
    ) -> None:
        self.port.write_u64(entry_address, value)
        if self._on_entry_written is not None:
            self._on_entry_written(entry_address, value, level, virtual_address)

    # -- mapping --------------------------------------------------------------

    def map(
        self,
        virtual_address: int,
        pfn: int,
        writable: bool = True,
        user: bool = True,
        no_execute: bool = False,
        protection_key: int = 0,
    ) -> None:
        """Install a 4 KB translation VA -> PFN."""
        table_pfn = self.root_pfn
        prefix: tuple = ()
        for level in range(LEVELS - 1):
            index = level_index(virtual_address, level)
            prefix = prefix + (index,)
            cached = self._table_cache.get(prefix)
            if cached is not None:
                table_pfn = cached
                continue
            entry_address = table_pfn * PAGE_BYTES + index * PTE_SIZE
            entry = self.port.read_u64(entry_address)
            decoded = X86PageTableEntry(entry)
            if not decoded.present:
                new_pfn = self._allocate_table_page()
                self.table_pfns.append(new_pfn)
                # Intermediate entries are kernel-writable, user-visible.
                self._store_entry(
                    entry_address,
                    make_x86_pte(new_pfn, writable=True, user=True),
                    level,
                    virtual_address,
                )
                table_pfn = new_pfn
            else:
                table_pfn = decoded.pfn
            self._table_cache[prefix] = table_pfn
        leaf_address = table_pfn * PAGE_BYTES + level_index(virtual_address, LEVELS - 1) * PTE_SIZE
        self._store_entry(
            leaf_address,
            make_x86_pte(
                pfn,
                writable=writable,
                user=user,
                no_execute=no_execute,
                protection_key=protection_key,
            ),
            LEVELS - 1,
            virtual_address,
        )

    def unmap(self, virtual_address: int) -> bool:
        """Clear the leaf PTE for ``virtual_address``; True if it existed."""
        steps = self.walk_software(virtual_address)
        if steps is None:
            return False
        leaf = steps[-1]
        self._store_entry(leaf.entry_address, 0, LEVELS - 1, virtual_address)
        return True

    # -- software walks (the OS's own view, not the hardware walker) -----------

    def walk_software(self, virtual_address: int) -> Optional[List[WalkStep]]:
        """Walk all four levels; None when any level is non-present."""
        steps: List[WalkStep] = []
        table_pfn = self.root_pfn
        for level in range(LEVELS):
            entry_address = table_pfn * PAGE_BYTES + level_index(virtual_address, level) * PTE_SIZE
            entry = self.port.read_u64(entry_address)
            steps.append(WalkStep(level=level, entry_address=entry_address, entry=entry))
            decoded = X86PageTableEntry(entry)
            if not decoded.present:
                return None
            table_pfn = decoded.pfn
        return steps

    def translate(self, virtual_address: int) -> int:
        """VA -> PA, raising :class:`TranslationError` on a hole."""
        steps = self.walk_software(virtual_address)
        if steps is None:
            raise TranslationError(f"no mapping for VA {virtual_address:#x}")
        leaf = X86PageTableEntry(steps[-1].entry)
        return leaf.pfn * PAGE_BYTES + page_offset(virtual_address)

    def leaf_entry_address(self, virtual_address: int) -> Optional[int]:
        """Physical address of the leaf PTE (attack targeting helper)."""
        steps = self.walk_software(virtual_address)
        if steps is None:
            return None
        return steps[-1].entry_address

    # -- enumeration (profiling, Fig 8) -------------------------------------------

    def iter_leaf_tables(self) -> Iterator[Tuple[int, List[int]]]:
        """Yield (table_pfn, entries) for every leaf (PT-level) table page."""
        for pml4_index in range(ENTRIES_PER_TABLE):
            pml4e = self._entry(self.root_pfn, pml4_index)
            if not X86PageTableEntry(pml4e).present:
                continue
            pdpt_pfn = X86PageTableEntry(pml4e).pfn
            for pdpt_index in range(ENTRIES_PER_TABLE):
                pdpte = self._entry(pdpt_pfn, pdpt_index)
                if not X86PageTableEntry(pdpte).present:
                    continue
                pd_pfn = X86PageTableEntry(pdpte).pfn
                for pd_index in range(ENTRIES_PER_TABLE):
                    pde = self._entry(pd_pfn, pd_index)
                    if not X86PageTableEntry(pde).present:
                        continue
                    pt_pfn = X86PageTableEntry(pde).pfn
                    entries = [
                        self._entry(pt_pfn, i) for i in range(ENTRIES_PER_TABLE)
                    ]
                    yield pt_pfn, entries

    def iter_mappings(self) -> Iterator[Tuple[int, int]]:
        """Yield (vpn, pfn) for every present leaf translation."""
        for pml4_index in range(ENTRIES_PER_TABLE):
            pml4e = X86PageTableEntry(self._entry(self.root_pfn, pml4_index))
            if not pml4e.present:
                continue
            for pdpt_index in range(ENTRIES_PER_TABLE):
                pdpte = X86PageTableEntry(self._entry(pml4e.pfn, pdpt_index))
                if not pdpte.present:
                    continue
                for pd_index in range(ENTRIES_PER_TABLE):
                    pde = X86PageTableEntry(self._entry(pdpte.pfn, pd_index))
                    if not pde.present:
                        continue
                    for pt_index in range(ENTRIES_PER_TABLE):
                        leaf = X86PageTableEntry(self._entry(pde.pfn, pt_index))
                        if leaf.present:
                            vpn = (
                                (pml4_index << 27)
                                | (pdpt_index << 18)
                                | (pd_index << 9)
                                | pt_index
                            )
                            yield vpn, leaf.pfn

    def _entry(self, table_pfn: int, index: int) -> int:
        return self.port.read_u64(table_pfn * PAGE_BYTES + index * PTE_SIZE)
