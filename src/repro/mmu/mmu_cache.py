"""MMU (page-walk) cache: 8 KB, 4-way (Table III).

Caches intermediate page-table entries (PML4E/PDPTE/PDE) by the physical
address of the entry, so a TLB miss usually needs only the leaf PTE read
from the memory system — the behaviour that makes PT-Guard's MAC latency
visible mainly on leaf-level DRAM reads.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.common.stats import StatGroup

ENTRY_BYTES = 8  # one cached PTE per entry


class MMUCache:
    """Set-associative cache of upper-level page-table entries."""

    def __init__(self, size_bytes: int = 8 * 1024, associativity: int = 4):
        if size_bytes % (associativity * ENTRY_BYTES):
            raise ValueError("MMU cache size must divide by assoc * entry size")
        self.num_sets = size_bytes // (associativity * ENTRY_BYTES)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("MMU cache set count must be a power of two")
        self.associativity = associativity
        self._sets: Dict[int, OrderedDict[int, int]] = {}
        self.stats = StatGroup("mmu_cache")

    def _index(self, entry_address: int) -> tuple[int, int]:
        entry = entry_address // ENTRY_BYTES
        return entry & (self.num_sets - 1), entry // self.num_sets

    def lookup(self, entry_address: int) -> Optional[int]:
        """Return the cached PTE value at ``entry_address`` or None."""
        set_index, tag = self._index(entry_address)
        entries = self._sets.get(set_index)
        if entries is None or tag not in entries:
            self.stats.increment("misses")
            return None
        self.stats.increment("hits")
        entries.move_to_end(tag)
        return entries[tag]

    def insert(self, entry_address: int, value: int) -> None:
        set_index, tag = self._index(entry_address)
        entries = self._sets.setdefault(set_index, OrderedDict())
        if tag in entries:
            entries.move_to_end(tag)
        elif len(entries) >= self.associativity:
            entries.popitem(last=False)
            self.stats.increment("evictions")
        entries[tag] = value

    def invalidate(self, entry_address: int) -> None:
        set_index, tag = self._index(entry_address)
        entries = self._sets.get(set_index)
        if entries is not None:
            entries.pop(tag, None)

    def flush(self) -> None:
        self._sets.clear()

    def entries(self):
        """Snapshot of ``(entry_address, value)`` pairs (for validators)."""
        out = []
        for set_index, entries in self._sets.items():
            for tag, value in entries.items():
                entry = tag * self.num_sets + set_index
                out.append((entry * ENTRY_BYTES, value))
        return out
