"""Page-table-entry formats: x86_64 (Table I) and ARMv8 (Table II).

These mirror the architectural layouts the paper reproduces in its
background section. The x86_64 format is the default throughout the
simulator ("without loss of generality", Sec IV-F); the ARMv8 format is
provided to demonstrate ISA-independence of the mechanism and is
exercised by dedicated tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.bitops import bit, bits, insert_bits, mask

# --- x86_64 (Intel SDM Vol 3A, paper Table I) -------------------------------

X86_FLAG_PRESENT = 0
X86_FLAG_WRITABLE = 1
X86_FLAG_USER = 2
X86_FLAG_WRITE_THROUGH = 3
X86_FLAG_CACHE_DISABLE = 4
X86_FLAG_ACCESSED = 5
X86_FLAG_DIRTY = 6
X86_FLAG_HUGE_PAGE = 7  # 2 MB page (PS bit)
X86_FLAG_GLOBAL = 8
X86_OS_BITS = (11, 9)  # usable by OS
X86_PFN_BITS = (51, 12)
X86_IGNORED_BITS = (58, 52)
X86_MPK_BITS = (62, 59)  # memory protection keys
X86_FLAG_NX = 63


@dataclass(frozen=True)
class X86PageTableEntry:
    """A decoded x86_64 PTE. ``raw`` is authoritative; fields are views."""

    raw: int

    @property
    def present(self) -> bool:
        return bool(bit(self.raw, X86_FLAG_PRESENT))

    @property
    def writable(self) -> bool:
        return bool(bit(self.raw, X86_FLAG_WRITABLE))

    @property
    def user_accessible(self) -> bool:
        return bool(bit(self.raw, X86_FLAG_USER))

    @property
    def write_through(self) -> bool:
        return bool(bit(self.raw, X86_FLAG_WRITE_THROUGH))

    @property
    def cache_disabled(self) -> bool:
        return bool(bit(self.raw, X86_FLAG_CACHE_DISABLE))

    @property
    def accessed(self) -> bool:
        return bool(bit(self.raw, X86_FLAG_ACCESSED))

    @property
    def dirty(self) -> bool:
        return bool(bit(self.raw, X86_FLAG_DIRTY))

    @property
    def huge_page(self) -> bool:
        return bool(bit(self.raw, X86_FLAG_HUGE_PAGE))

    @property
    def global_page(self) -> bool:
        return bool(bit(self.raw, X86_FLAG_GLOBAL))

    @property
    def os_bits(self) -> int:
        return bits(self.raw, *X86_OS_BITS)

    @property
    def pfn(self) -> int:
        return bits(self.raw, *X86_PFN_BITS)

    @property
    def protection_key(self) -> int:
        return bits(self.raw, *X86_MPK_BITS)

    @property
    def no_execute(self) -> bool:
        return bool(bit(self.raw, X86_FLAG_NX))


def make_x86_pte(
    pfn: int,
    present: bool = True,
    writable: bool = True,
    user: bool = False,
    accessed: bool = False,
    dirty: bool = False,
    global_page: bool = False,
    no_execute: bool = False,
    protection_key: int = 0,
    os_bits: int = 0,
) -> int:
    """Compose a raw x86_64 PTE value from its fields."""
    value = 0
    if present:
        value |= 1 << X86_FLAG_PRESENT
    if writable:
        value |= 1 << X86_FLAG_WRITABLE
    if user:
        value |= 1 << X86_FLAG_USER
    if accessed:
        value |= 1 << X86_FLAG_ACCESSED
    if dirty:
        value |= 1 << X86_FLAG_DIRTY
    if global_page:
        value |= 1 << X86_FLAG_GLOBAL
    value = insert_bits(value, *X86_OS_BITS, os_bits)
    value = insert_bits(value, *X86_PFN_BITS, pfn & mask(40))
    value = insert_bits(value, *X86_MPK_BITS, protection_key)
    if no_execute:
        value |= 1 << X86_FLAG_NX
    return value


# --- ARMv8 (ARM ARM, paper Table II) ------------------------------------------

ARM_FLAG_VALID = 0
ARM_FLAG_BLOCK = 1  # block (huge page) descriptor at non-leaf levels
ARM_ATTR_BITS = (5, 2)  # memory attributes (MAIR index etc.)
ARM_AP_BITS = (7, 6)  # access permissions
ARM_PFN_HIGH_BITS = (9, 8)  # PFN[39:38]
ARM_FLAG_ACCESSED = 10
ARM_FLAG_CACHING = 11
ARM_PFN_LOW_BITS = (49, 12)  # PFN[37:0]
ARM_FLAG_DIRTY = 51
ARM_FLAG_CONTIGUOUS = 52
ARM_XN_BITS = (54, 53)  # execute-never (privileged/unprivileged)
ARM_IGNORED_BITS = (58, 55)
ARM_HW_ATTR_BITS = (62, 59)

ARM_AP_RW_EL1 = 0b00  # kernel read/write, no EL0 access
ARM_AP_RW_ALL = 0b01  # read/write at any level
ARM_AP_RO_EL1 = 0b10
ARM_AP_RO_ALL = 0b11


@dataclass(frozen=True)
class ArmPageTableEntry:
    """A decoded ARMv8 stage-1 descriptor (4 KB granule)."""

    raw: int

    @property
    def valid(self) -> bool:
        return bool(bit(self.raw, ARM_FLAG_VALID))

    @property
    def block(self) -> bool:
        return bool(bit(self.raw, ARM_FLAG_BLOCK))

    @property
    def memory_attributes(self) -> int:
        return bits(self.raw, *ARM_ATTR_BITS)

    @property
    def access_permissions(self) -> int:
        return bits(self.raw, *ARM_AP_BITS)

    @property
    def accessed(self) -> bool:
        return bool(bit(self.raw, ARM_FLAG_ACCESSED))

    @property
    def pfn(self) -> int:
        low = bits(self.raw, *ARM_PFN_LOW_BITS)
        high = bits(self.raw, *ARM_PFN_HIGH_BITS)
        return (high << 38) | low

    @property
    def dirty(self) -> bool:
        return bool(bit(self.raw, ARM_FLAG_DIRTY))

    @property
    def contiguous(self) -> bool:
        return bool(bit(self.raw, ARM_FLAG_CONTIGUOUS))

    @property
    def execute_never(self) -> int:
        return bits(self.raw, *ARM_XN_BITS)

    @property
    def user_accessible(self) -> bool:
        return self.access_permissions in (ARM_AP_RW_ALL, ARM_AP_RO_ALL)


def make_arm_pte(
    pfn: int,
    valid: bool = True,
    access_permissions: int = ARM_AP_RW_EL1,
    accessed: bool = False,
    dirty: bool = False,
    contiguous: bool = False,
    execute_never: int = 0,
    memory_attributes: int = 0,
) -> int:
    """Compose a raw ARMv8 page descriptor from its fields."""
    value = 0
    if valid:
        value |= 1 << ARM_FLAG_VALID
        value |= 1 << ARM_FLAG_BLOCK  # table/page descriptor bit for leaves
    value = insert_bits(value, *ARM_ATTR_BITS, memory_attributes)
    value = insert_bits(value, *ARM_AP_BITS, access_permissions)
    value = insert_bits(value, *ARM_PFN_LOW_BITS, pfn & mask(38))
    value = insert_bits(value, *ARM_PFN_HIGH_BITS, (pfn >> 38) & 0b11)
    if accessed:
        value |= 1 << ARM_FLAG_ACCESSED
    if dirty:
        value |= 1 << ARM_FLAG_DIRTY
    if contiguous:
        value |= 1 << ARM_FLAG_CONTIGUOUS
    value = insert_bits(value, *ARM_XN_BITS, execute_never)
    return value


# --- format descriptors used by documentation/benches ---------------------------

X86_64_LAYOUT: Dict[str, Tuple[int, int]] = {
    "present": (0, 0),
    "writable": (1, 1),
    "user_accessible": (2, 2),
    "write_through": (3, 3),
    "cache_disable": (4, 4),
    "accessed": (5, 5),
    "dirty": (6, 6),
    "huge_page": (7, 7),
    "global": (8, 8),
    "os_usable": (11, 9),
    "pfn": (51, 12),
    "ignored": (58, 52),
    "protection_keys": (62, 59),
    "no_execute": (63, 63),
}

ARMV8_LAYOUT: Dict[str, Tuple[int, int]] = {
    "valid": (0, 0),
    "block": (1, 1),
    "memory_attributes": (5, 2),
    "access_permissions": (7, 6),
    "pfn_high": (9, 8),
    "accessed": (10, 10),
    "caching": (11, 11),
    "pfn_low": (49, 12),
    "reserved_50": (50, 50),
    "dirty": (51, 51),
    "contiguous": (52, 52),
    "execute_never": (54, 53),
    "ignored": (58, 55),
    "hardware_attributes": (62, 59),
    "reserved_63": (63, 63),
}
