"""Translation Lookaside Buffer: 64-entry, fully associative, LRU (Table III).

Entries are tagged by (address-space id, virtual page number). PT-Guard
never changes the TLB — the MAC is stripped before a PTE line reaches the
MMU — which is exactly the transparency property the paper claims; the
tests assert that entries never contain MAC bits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.stats import StatGroup


@dataclass(frozen=True)
class TLBEntry:
    """A cached translation."""

    pfn: int
    writable: bool
    user_accessible: bool
    no_execute: bool
    global_page: bool = False


class TLB:
    """Fully-associative LRU TLB."""

    def __init__(self, entries: int = 64):
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.capacity = entries
        self._entries: OrderedDict[Tuple[int, int], TLBEntry] = OrderedDict()
        self.stats = StatGroup("tlb")
        self._counters = self.stats.raw()  # inlined hot-path updates

    def lookup(self, asid: int, vpn: int) -> Optional[TLBEntry]:
        key = (asid, vpn)
        entry = self._entries.get(key)
        counters = self._counters
        if entry is None:
            try:
                counters["misses"] += 1
            except KeyError:
                counters["misses"] = 1
            return None
        try:
            counters["hits"] += 1
        except KeyError:
            counters["hits"] = 1
        self._entries.move_to_end(key)
        return entry

    def insert(self, asid: int, vpn: int, entry: TLBEntry) -> None:
        key = (asid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.increment("evictions")
        self._entries[key] = entry

    def invalidate_page(self, asid: int, vpn: int) -> None:
        """invlpg: drop one translation."""
        self._entries.pop((asid, vpn), None)

    def invalidate_asid(self, asid: int) -> None:
        """Address-space switch without global pages."""
        for key in [k for k in self._entries if k[0] == asid]:
            del self._entries[key]

    def flush(self) -> None:
        """Full TLB shootdown."""
        self._entries.clear()

    def entries(self):
        """Snapshot of ``((asid, vpn), entry)`` pairs (for validators)."""
        return list(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        hits = self.stats.get("hits")
        total = hits + self.stats.get("misses")
        return hits / total if total else 0.0


def register_invariants(checker, tlb: TLB, shadow_fn, tampered_fn=None) -> None:
    """Register the TLB-vs-page-table shadow-walk check.

    ``shadow_fn(asid, vpn)`` must re-derive the translation from live
    memory without side effects, returning ``(entry_or_None,
    touched_line_addresses)``. Entries whose shadow walk touches a line in
    ``tampered_fn()`` (e.g. under an un-scrubbed Rowhammer flip) are
    skipped — hardware TLBs legitimately shield stale translations until
    invalidated, and flagging those would punish the very property the
    attack experiments measure.
    """

    def check():
        tampered = tampered_fn() if tampered_fn is not None else frozenset()
        violations = []
        for (asid, vpn), entry in tlb.entries():
            shadow, touched = shadow_fn(asid, vpn)
            if tampered and not tampered.isdisjoint(touched):
                continue
            if shadow is None:
                violations.append(
                    f"TLB caches (asid={asid}, vpn={vpn:#x}) -> pfn "
                    f"{entry.pfn:#x} but the live page tables hold no "
                    f"present translation"
                )
            elif shadow != entry:
                violations.append(
                    f"TLB entry (asid={asid}, vpn={vpn:#x}) is {entry} "
                    f"but a shadow walk of the page tables yields {shadow}"
                )
        return violations

    checker.register("tlb_shadow_walk", check)
