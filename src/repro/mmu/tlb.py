"""Translation Lookaside Buffer: 64-entry, fully associative, LRU (Table III).

Entries are tagged by (address-space id, virtual page number). PT-Guard
never changes the TLB — the MAC is stripped before a PTE line reaches the
MMU — which is exactly the transparency property the paper claims; the
tests assert that entries never contain MAC bits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.stats import StatGroup


@dataclass(frozen=True)
class TLBEntry:
    """A cached translation."""

    pfn: int
    writable: bool
    user_accessible: bool
    no_execute: bool
    global_page: bool = False


class TLB:
    """Fully-associative LRU TLB."""

    def __init__(self, entries: int = 64):
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.capacity = entries
        self._entries: OrderedDict[Tuple[int, int], TLBEntry] = OrderedDict()
        self.stats = StatGroup("tlb")
        self._counters = self.stats.raw()  # inlined hot-path updates

    def lookup(self, asid: int, vpn: int) -> Optional[TLBEntry]:
        key = (asid, vpn)
        entry = self._entries.get(key)
        counters = self._counters
        if entry is None:
            try:
                counters["misses"] += 1
            except KeyError:
                counters["misses"] = 1
            return None
        try:
            counters["hits"] += 1
        except KeyError:
            counters["hits"] = 1
        self._entries.move_to_end(key)
        return entry

    def insert(self, asid: int, vpn: int, entry: TLBEntry) -> None:
        key = (asid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.increment("evictions")
        self._entries[key] = entry

    def invalidate_page(self, asid: int, vpn: int) -> None:
        """invlpg: drop one translation."""
        self._entries.pop((asid, vpn), None)

    def invalidate_asid(self, asid: int) -> None:
        """Address-space switch without global pages."""
        for key in [k for k in self._entries if k[0] == asid]:
            del self._entries[key]

    def flush(self) -> None:
        """Full TLB shootdown."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        hits = self.stats.get("hits")
        total = hits + self.stats.get("misses")
        return hits / total if total else 0.0
