"""Hardware page-table walker with TLB and MMU-cache front-ends.

On a TLB miss the walker performs the 4-level walk. Upper-level entries
are usually served by the MMU cache; entries that miss everything are
read from the memory system with the ``isPTE`` request bit set — these
are the accesses PT-Guard MAC-checks. A ``PTECheckFailed`` response
aborts the walk and surfaces as :class:`PTEIntegrityException`, the
exception the OS receives (Sec IV-F); the faulty line is never installed
in the TLB.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Protocol

from repro.common.config import CACHELINE_BYTES, PAGE_BYTES
from repro.common.errors import IntegrityError, PageFaultError
from repro.common.stats import StatGroup
from repro.mmu.page_table import LEVELS, PTE_SIZE, level_index, vpn_of
from repro.mmu.pte import X86PageTableEntry
from repro.mmu.mmu_cache import MMUCache
from repro.mmu.tlb import TLB, TLBEntry


class WalkPort(Protocol):
    """Memory-system interface the walker reads PTE lines through."""

    def read(self, address: int, is_pte: bool = False) -> "PortResult":
        ...


class PortResult(NamedTuple):
    data: bytes
    latency_cycles: int
    pte_check_failed: bool = False
    hit_level: str = "DRAM"


class ControllerPort:
    """Uncached adapter: every walker read goes straight to the controller.

    Used by the functional/attack path, where cache shielding is managed
    explicitly by the experiment (flush before hammering, etc.).
    """

    def __init__(self, controller):
        self.controller = controller

    def read(self, address: int, is_pte: bool = False) -> PortResult:
        response = self.controller.read_line(
            address & ~(CACHELINE_BYTES - 1), is_pte=is_pte
        )
        return PortResult(
            data=response.data,
            latency_cycles=response.latency_cycles,
            pte_check_failed=response.pte_check_failed,
        )


class PTEIntegrityException(IntegrityError):
    """Raised when a page-table walk hits a MAC-check failure."""

    def __init__(self, virtual_address: int, level: int, entry_address: int):
        self.virtual_address = virtual_address
        self.level = level
        super().__init__(
            entry_address,
            f"PTECheckFailed at level {level} walking VA {virtual_address:#x} "
            f"(PTE line {entry_address & ~0x3F:#x})",
        )


class WalkResult(NamedTuple):
    """A completed translation."""

    pfn: int
    entry: TLBEntry
    latency_cycles: int
    tlb_hit: bool
    levels_walked: int  # memory reads the walk needed (0 on TLB hit)


class PageWalker:
    """TLB + MMU-cache + 4-level walker for one hardware thread."""

    def __init__(
        self,
        port: WalkPort,
        tlb: Optional[TLB] = None,
        mmu_cache: Optional[MMUCache] = None,
        tlb_hit_latency: int = 1,
    ):
        self.port = port
        self.tlb = tlb if tlb is not None else TLB()
        self.mmu_cache = mmu_cache if mmu_cache is not None else MMUCache()
        self.tlb_hit_latency = tlb_hit_latency
        self.stats = StatGroup("walker")

    def translate(
        self, asid: int, root_pfn: int, virtual_address: int, tlb_checked: bool = False
    ) -> WalkResult:
        """Translate ``virtual_address``; may raise PageFaultError or
        PTEIntegrityException.

        ``tlb_checked=True`` skips the TLB probe — for callers (the core's
        hot path) that already probed it themselves and missed, so the
        TLB's hit/miss counters see exactly one probe per attempt.
        """
        vpn = vpn_of(virtual_address)
        if not tlb_checked:
            cached = self.tlb.lookup(asid, vpn)
            if cached is not None:
                return WalkResult(
                    pfn=cached.pfn,
                    entry=cached,
                    latency_cycles=self.tlb_hit_latency,
                    tlb_hit=True,
                    levels_walked=0,
                )
        self.stats.increment("walks")
        latency = self.tlb_hit_latency
        table_pfn = root_pfn
        levels_walked = 0
        for level in range(LEVELS):
            entry_address = (
                table_pfn * PAGE_BYTES + level_index(virtual_address, level) * PTE_SIZE
            )
            entry_value: Optional[int] = None
            if level < LEVELS - 1:
                entry_value = self.mmu_cache.lookup(entry_address)
            if entry_value is None:
                levels_walked += 1
                result = self.port.read(entry_address & ~(CACHELINE_BYTES - 1), is_pte=True)
                latency += result.latency_cycles
                if result.pte_check_failed:
                    self.stats.increment("integrity_failures")
                    raise PTEIntegrityException(virtual_address, level, entry_address)
                offset = entry_address & (CACHELINE_BYTES - 1)
                entry_value = int.from_bytes(
                    result.data[offset : offset + PTE_SIZE], "little"
                )
            decoded = X86PageTableEntry(entry_value)
            if not decoded.present:
                # Not-present entries are never cached (as in real
                # page-walk caches) — the OS will install a mapping and
                # the retry must observe it.
                self.stats.increment("page_faults")
                raise PageFaultError(virtual_address, level)
            if level < LEVELS - 1:
                self.mmu_cache.insert(entry_address, entry_value)
            table_pfn = decoded.pfn

        leaf = X86PageTableEntry(entry_value)
        tlb_entry = TLBEntry(
            pfn=leaf.pfn,
            writable=leaf.writable,
            user_accessible=leaf.user_accessible,
            no_execute=leaf.no_execute,
            global_page=leaf.global_page,
        )
        self.tlb.insert(asid, vpn, tlb_entry)
        return WalkResult(
            pfn=leaf.pfn,
            entry=tlb_entry,
            latency_cycles=latency,
            tlb_hit=False,
            levels_walked=levels_walked,
        )

    def invalidate(self, asid: int, virtual_address: int) -> None:
        """invlpg + page-walk-cache shootdown for one page."""
        self.tlb.invalidate_page(asid, vpn_of(virtual_address))
        self.mmu_cache.flush()

    def flush_all(self) -> None:
        self.tlb.flush()
        self.mmu_cache.flush()


# -- runtime validation (repro.faults.invariants) ------------------------------
#
# Shadow walks re-derive translations straight from backing memory —
# never through the controller/port, whose reads would perturb DRAM
# open-row state, guard statistics and cache contents mid-measurement.

def _pte_metadata_mask() -> int:
    from repro.core import pattern

    mac = ((1 << pattern.MAC_BITS_PER_PTE) - 1) << pattern.MAC_FIELD_LOW
    ident = ((1 << pattern.ID_BITS_PER_PTE) - 1) << pattern.ID_FIELD_LOW
    return ~(mac | ident) & ((1 << 64) - 1)


_STRIP_MASK = None


def _stripped_pte(raw: int) -> int:
    global _STRIP_MASK
    if _STRIP_MASK is None:
        _STRIP_MASK = _pte_metadata_mask()
    return raw & _STRIP_MASK


def shadow_tlb_entry(kernel, asid: int, vpn: int):
    """Side-effect-free re-walk of the live page tables for one VPN.

    Returns ``(TLBEntry_or_None, touched_line_addresses)`` — the lines
    read let the caller skip translations shadowed by known DRAM tampering
    (cache/TLB shielding is legitimate, not a simulator bug).
    """
    touched = set()
    process = kernel.processes.get(asid)
    if process is None:
        return None, touched
    memory = kernel.controller.dram.memory
    virtual_address = vpn * PAGE_BYTES
    table_pfn = process.page_table.root_pfn
    decoded = None
    for level in range(LEVELS):
        entry_address = (
            table_pfn * PAGE_BYTES + level_index(virtual_address, level) * PTE_SIZE
        )
        touched.add(entry_address & ~(CACHELINE_BYTES - 1))
        raw = int.from_bytes(memory.read(entry_address, PTE_SIZE), "little")
        decoded = X86PageTableEntry(_stripped_pte(raw))
        if not decoded.present:
            return None, touched
        table_pfn = decoded.pfn
    return (
        TLBEntry(
            pfn=decoded.pfn,
            writable=decoded.writable,
            user_accessible=decoded.user_accessible,
            no_execute=decoded.no_execute,
            global_page=decoded.global_page,
        ),
        touched,
    )


def register_invariants(checker, walker: PageWalker, kernel, tampered_fn=None) -> None:
    """Register the MMU (page-walk) cache consistency check.

    Every cached upper-level entry must equal the live in-memory PTE at
    its physical address — either raw or with the embedded MAC/identifier
    metadata stripped (the walker caches post-strip values). Entries on
    lines in ``tampered_fn()`` are skipped (legitimate shielding).
    """
    memory = kernel.controller.dram.memory

    def check():
        tampered = tampered_fn() if tampered_fn is not None else frozenset()
        violations = []
        for entry_address, value in walker.mmu_cache.entries():
            line_address = entry_address & ~(CACHELINE_BYTES - 1)
            if line_address in tampered:
                continue
            raw = int.from_bytes(memory.read(entry_address, PTE_SIZE), "little")
            if value != raw and value != _stripped_pte(raw):
                violations.append(
                    f"MMU cache holds {value:#x} for PTE at {entry_address:#x} "
                    f"but memory holds {raw:#x} "
                    f"(stripped {_stripped_pte(raw):#x})"
                )
        return violations

    checker.register("mmu_cache_consistency", check)
