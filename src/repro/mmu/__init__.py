"""MMU substrate: PTE formats, page tables, TLB, MMU cache, and walker."""

from repro.mmu.mmu_cache import MMUCache
from repro.mmu.page_table import PageTable, WalkStep, level_index, vpn_of
from repro.mmu.pte import (
    ArmPageTableEntry,
    X86PageTableEntry,
    make_arm_pte,
    make_x86_pte,
)
from repro.mmu.tlb import TLB, TLBEntry
from repro.mmu.walker import (
    ControllerPort,
    PageWalker,
    PTEIntegrityException,
    WalkResult,
)

__all__ = [
    "MMUCache",
    "PageTable",
    "WalkStep",
    "level_index",
    "vpn_of",
    "ArmPageTableEntry",
    "X86PageTableEntry",
    "make_arm_pte",
    "make_x86_pte",
    "TLB",
    "TLBEntry",
    "ControllerPort",
    "PageWalker",
    "PTEIntegrityException",
    "WalkResult",
]
