"""Attack response & graceful degradation (paper Sec VI discussion).

Detected-but-uncorrectable PTE faults need not be fatal: the OS can treat
them like a crash-consistency event and rebuild the mapping from its own
bookkeeping, the memory system can retire a row that keeps faulting, and
the guard can rotate its MAC key when incident pressure says the key (or
the module) is under sustained attack.

This package turns that response into a deterministic, policy-driven
state machine:

* :class:`~repro.recovery.policy.RecoveryPolicy` — the knobs (which
  stages are enabled, spare-row budget, retire/rekey thresholds) and the
  named presets the CLI exposes (``--recovery-policy``).
* :class:`~repro.recovery.shadow.ShadowMap` — the kernel's shadow
  reverse map: for every PTE store, who owns it and what it should say.
* :class:`~repro.recovery.manager.RecoveryManager` — the state machine
  itself: reconstruct → retire → rekey → panic, with availability and
  latency accounting for the siege experiments.
* :mod:`~repro.recovery.search` — the policy search space the
  worst-case availability frontier evaluates (``--policy-grid``) and
  the hardened point it converges on.
"""

from repro.recovery.policy import (
    RECOVERY_POLICIES,
    RecoveryPolicy,
    recovery_policy,
)
from repro.recovery.search import (
    AVAILABILITY_TARGET,
    POLICY_GRIDS,
    hardened_policy,
    policy_grid,
)
from repro.recovery.shadow import ShadowEntry, ShadowMap
from repro.recovery.manager import RecoveryEvent, RecoveryManager

__all__ = [
    "RECOVERY_POLICIES",
    "RecoveryPolicy",
    "recovery_policy",
    "AVAILABILITY_TARGET",
    "POLICY_GRIDS",
    "hardened_policy",
    "policy_grid",
    "ShadowEntry",
    "ShadowMap",
    "RecoveryEvent",
    "RecoveryManager",
]
