"""The kernel's shadow reverse map: what every PTE store *should* say.

Real kernels already hold the information a corrupted page-table line
encodes — ``struct page``/rmap tell them which process and VA own each
frame, and the VMA tree holds the permissions. PT-Guard's paper (Sec VI)
leans on exactly that: a detected-uncorrectable PTE fault can be treated
like a crash-consistency event and the mapping rebuilt from OS state.

:class:`ShadowMap` is that bookkeeping, reduced to the simulator's needs:
one :class:`ShadowEntry` per PTE physical address, recorded at the moment
the kernel writes the entry (the page-table code calls back on every
store, so intermediate levels are covered too — not just leaves).

Reconstruction cross-checks leaf entries against the owning process's
``frames`` map (``vpn -> pfn``), the authoritative allocation record: a
shadow entry that disagrees is *stale* — repaired from ``frames`` when
possible, dropped (slot rebuilt as not-present) when the mapping is
gone. The counters make that visible rather than silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.common.config import CACHELINE_BYTES, PTE_BYTES
from repro.common.stats import StatGroup


@dataclass
class ShadowEntry:
    """One recorded PTE store: owner, location and the value written."""

    pid: int
    level: int  # 0 = PML4 ... 3 = PT (leaf)
    entry_address: int  # physical address of the 8-byte entry
    value: int  # raw 64-bit PTE value the kernel wrote
    virtual_address: Optional[int] = None  # leaf entries: the mapped VA
    pfn: Optional[int] = None  # leaf entries: the mapped frame

    @property
    def is_leaf(self) -> bool:
        return self.level == 3

    @property
    def vpn(self) -> Optional[int]:
        if self.virtual_address is None:
            return None
        return self.virtual_address >> 12


class ShadowMap:
    """PTE-address-keyed record of every page-table store the kernel made."""

    def __init__(self) -> None:
        self._entries: Dict[int, ShadowEntry] = {}
        self.stats = StatGroup("shadow_map")

    def record(self, entry: ShadowEntry) -> None:
        """Record (or overwrite) the shadow of one PTE store."""
        self._entries[entry.entry_address] = entry
        self.stats.increment("records")

    def forget(self, entry_address: int) -> None:
        """Drop the shadow of a cleared entry (unmap wrote zero)."""
        if self._entries.pop(entry_address, None) is not None:
            self.stats.increment("forgets")

    def forget_pid(self, pid: int) -> int:
        """Drop every entry a dying process owned; returns the count."""
        doomed = [
            address
            for address, entry in self._entries.items()
            if entry.pid == pid
        ]
        for address in doomed:
            del self._entries[address]
        if doomed:
            self.stats.increment("forgets", len(doomed))
        return len(doomed)

    def lookup(self, entry_address: int) -> Optional[ShadowEntry]:
        return self._entries.get(entry_address)

    def entries_in_line(self, line_address: int) -> Iterator[ShadowEntry]:
        """Shadow entries for the 8 PTE slots of one cacheline."""
        base = line_address & ~(CACHELINE_BYTES - 1)
        for slot in range(CACHELINE_BYTES // PTE_BYTES):
            entry = self._entries.get(base + slot * PTE_BYTES)
            if entry is not None:
                yield entry

    def covers_line(self, line_address: int) -> bool:
        """True when at least one slot of the line has a shadow entry."""
        return any(True for _ in self.entries_in_line(line_address))

    def __len__(self) -> int:
        return len(self._entries)
