"""Recovery-policy search space for the worst-case availability frontier.

The frontier (:mod:`repro.analysis.frontier_eval`) asks, for every
candidate :class:`repro.recovery.RecoveryPolicy`, "what is the *lowest*
availability any adaptive strategy can force?" — a policy is only as
good as its worst case. This module defines the candidate space that
question runs over: the four CLI presets plus deliberately mis-tuned
points along every knob axis (rekey threshold and cooldown, spare-row
budget and retire threshold, stage gating), and the hardened point the
search converges on.

The hardened policy encodes the frontier's central finding — a
DAPPER-style result where the defense's *own response machinery* is the
attacker's best lever:

* **adaptive rekeys off** — each Sec VII-B sweep costs a measured ~155 k
  cycles; the ``rekey_burst`` strategy manufactures exactly the incident
  rate that converts every cooldown expiry into an attacker-purchased
  sweep. A hair-trigger threshold turns this into a rout.
* **retirement gated high** — against an adversary that re-templates
  after a migration, retirement buys little: the ``spare_exhaustion``
  strategy farms each migration's cycles and then keeps hammering the
  spare. A high threshold keeps the spares as insurance against a truly
  hot row without handing out migrations for free.
* **reconstruction on** — the one stage whose cost (a shadow-map
  rebuild, ~5 k cycles) is smaller than the window it saves, under
  every strategy.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.recovery.policy import RECOVERY_POLICIES, RecoveryPolicy

#: A policy "survives" a strategy when availability stays at or above
#: this (0.99 == at most 20k downtime cycles per 2M-cycle window).
AVAILABILITY_TARGET = 0.99


def hardened_policy() -> RecoveryPolicy:
    """The searched policy: stage gating tuned for the adaptive worst case."""
    return RecoveryPolicy(
        name="hardened",
        reconstruct_enabled=True,
        retire_enabled=True,
        retire_threshold=24,
        spare_rows=2,
        rekey_enabled=False,
    )


def _search_points() -> List[RecoveryPolicy]:
    """Mis-tuned grid points probing each knob axis of the policy space."""
    return [
        # Rekey axis: threshold down, cooldown off — every second
        # incident buys the attacker a full key sweep.
        RecoveryPolicy(
            name="hair_trigger", rekey_threshold=2, rekey_cooldown=0
        ),
        # Retire axis: threshold 1 with a small budget — each fault is a
        # migration until the spares drain.
        RecoveryPolicy(
            name="eager_retire",
            retire_threshold=1,
            spare_rows=4,
            rekey_enabled=False,
        ),
        hardened_policy(),
    ]


#: Named candidate sets the CLI exposes via ``--policy-grid``.
POLICY_GRIDS: Dict[str, List[RecoveryPolicy]] = {
    "default": [
        RECOVERY_POLICIES["none"],
        RECOVERY_POLICIES["reconstruct"],
        RECOVERY_POLICIES["retire"],
        RECOVERY_POLICIES["full"],
        *_search_points(),
    ],
    # The three-point smoke grid: seed behaviour, the paper default,
    # and the searched policy — enough to show the separation.
    "quick": [
        RECOVERY_POLICIES["none"],
        RECOVERY_POLICIES["full"],
        hardened_policy(),
    ],
}


def policy_grid(name: str) -> List[RecoveryPolicy]:
    """Look up a candidate set by name with a one-line error."""
    try:
        return list(POLICY_GRIDS[name])
    except KeyError:
        raise ConfigurationError(
            f"unknown policy grid {name!r}; "
            f"available: {', '.join(sorted(POLICY_GRIDS))}"
        ) from None
