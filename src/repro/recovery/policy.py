"""Recovery policy: which degraded modes are allowed, and their budgets.

A :class:`RecoveryPolicy` is a plain frozen dataclass so it can ride in
fabric job params (JSON round-trip via :meth:`RecoveryPolicy.as_params` /
:func:`policy_from_params`) and keep campaign cells content-addressed.

Stages run strictly in order; each one is individually gateable:

1. **reconstruct** — rebuild the corrupted page-table cacheline from the
   kernel's shadow reverse map, re-MAC it through the real controller
   write path and re-verify through the real read path.
2. **retire** — once one DRAM row has produced ``retire_threshold``
   uncorrectable faults, migrate its contents to a spare row and
   blacklist the victim (budget: ``spare_rows``).
3. **rekey** — when the incident rate inside a sliding window crosses
   ``rekey_threshold``, rotate the MAC key epoch (Sec VII-B sweep).
4. **panic** — nothing left: the fault is terminal after all (the
   bounded-spare / stale-shadow fallback the availability report counts).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the attack-response state machine.

    ``trap_overhead_cycles`` models the OS exception-delivery and
    handler-dispatch cost charged to every recovery attempt (successful
    or not); stage work on top of it is accounted from the *actual*
    latencies of the controller operations the stage performs, so the
    recovery-latency distribution is as real as the rest of the timing
    model.
    """

    name: str = "full"
    reconstruct_enabled: bool = True
    retire_enabled: bool = True
    rekey_enabled: bool = True
    #: uncorrectable faults one row may produce before it is retired
    retire_threshold: int = 2
    #: spare-row budget (rows carved off the top of DRAM at attach time)
    spare_rows: int = 8
    #: incidents inside the sliding window that trigger an epoch rekey
    rekey_threshold: int = 16
    #: sliding-window width, in incident ticks (monotonic event counter)
    rekey_window: int = 64
    #: minimum ticks between two adaptive rekeys (storm brake)
    rekey_cooldown: int = 32
    #: OS trap + handler dispatch cost charged per recovery attempt
    trap_overhead_cycles: int = 5000

    def __post_init__(self) -> None:
        if self.retire_threshold < 1:
            raise ConfigurationError("retire_threshold must be >= 1")
        if self.spare_rows < 0:
            raise ConfigurationError("spare_rows must be >= 0")
        if self.rekey_threshold < 1:
            raise ConfigurationError("rekey_threshold must be >= 1")
        if self.rekey_window < 1:
            raise ConfigurationError("rekey_window must be >= 1")
        if self.rekey_cooldown < 0:
            raise ConfigurationError("rekey_cooldown must be >= 0")
        if self.trap_overhead_cycles < 0:
            raise ConfigurationError("trap_overhead_cycles must be >= 0")

    def as_params(self) -> Dict[str, Any]:
        """JSON-able form for fabric job params (content-addressed)."""
        return asdict(self)


#: Named presets the CLI exposes via ``--recovery-policy``.
RECOVERY_POLICIES: Dict[str, RecoveryPolicy] = {
    # The seed behaviour: every uncorrectable fault is terminal.
    "none": RecoveryPolicy(
        name="none",
        reconstruct_enabled=False,
        retire_enabled=False,
        rekey_enabled=False,
    ),
    # Rebuild mappings but never touch DRAM topology or the key.
    "reconstruct": RecoveryPolicy(
        name="reconstruct", retire_enabled=False, rekey_enabled=False
    ),
    # Rebuild + row retirement, no adaptive rekey.
    "retire": RecoveryPolicy(name="retire", rekey_enabled=False),
    # Everything on (the default).
    "full": RecoveryPolicy(name="full"),
}


def recovery_policy(name: str) -> RecoveryPolicy:
    """Look up a preset by name with a one-line error listing valid names."""
    try:
        return RECOVERY_POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown recovery policy {name!r}; "
            f"available: {', '.join(sorted(RECOVERY_POLICIES))}"
        ) from None


def policy_from_params(params: Optional[Mapping[str, Any]]) -> Optional[RecoveryPolicy]:
    """Inverse of :meth:`RecoveryPolicy.as_params` (None passes through)."""
    return None if params is None else RecoveryPolicy(**params)
