"""The attack-response state machine: uncorrectable fault -> degraded mode.

:class:`RecoveryManager` is the OS-side handler behind the
``PTECheckFailed`` exception. Where the seed simulator killed the victim
process and called the trial terminal, the manager walks a strictly
ordered sequence of degraded modes gated by :class:`RecoveryPolicy`:

1. **reconstruct** the corrupted page-table cacheline from the kernel's
   shadow reverse map (:meth:`repro.os.kernel.Kernel.reconstruct_pte_line`),
   re-MACed through the real controller write path and re-verified
   through the real isPTE read path;
2. **retire** the victim DRAM row once it has produced
   ``retire_threshold`` uncorrectable faults, migrating its contents to
   a spare row (:meth:`repro.mem.controller.MemoryController.retire_row_of`)
   — bounded by the spare budget;
3. **rekey** adaptively: every incident ticks the guard's sliding
   window; when it recommends a rotation the manager drives the full
   Sec VII-B memory sweep (:meth:`repro.os.kernel.Kernel.rekey_memory`);
4. **panic** when the line still fails verification — the terminal
   outcome availability accounting charges downtime for.

Latency accounting is honest: every event carries the *actual*
controller cycles its stages consumed (reconstruction write+verify,
migration derived from the DRAM timing config, the rekey sweep) plus the
policy's fixed OS trap overhead. All decisions are deterministic —
counters and thresholds only, no clocks, no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.stats import StatGroup
from repro.recovery.policy import RecoveryPolicy

RowKey = Tuple[int, int, int, int]


@dataclass
class RecoveryEvent:
    """One uncorrectable fault and everything the response did about it."""

    line_address: int
    row_key: RowKey
    #: terminal classification: "reconstructed" | "retired" | "panic"
    action: str
    #: stages that ran, in order (e.g. ("reconstruct", "retire", "rekey"))
    stages: Tuple[str, ...]
    #: OS trap overhead + actual controller cycles of every stage
    latency_cycles: int
    #: True when the line verifies again (action != "panic")
    recovered: bool
    retired: bool = False
    rekeyed: bool = False
    #: guard key epoch after the response completed
    epoch: int = 0
    #: per-stage cycle attribution ("trap" / "reconstruct" / "migrate" /
    #: "rekey"); values always sum to ``latency_cycles``, so downtime is
    #: attributable without double counting
    stage_cycles: Dict[str, int] = field(default_factory=dict)


class RecoveryManager:
    """Policy-driven responder to detected-uncorrectable PTE faults."""

    def __init__(self, kernel, policy: Optional[RecoveryPolicy] = None):
        self.kernel = kernel
        self.controller = kernel.controller
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.stats = StatGroup("recovery")
        self.events: List[RecoveryEvent] = []
        self._row_faults: Dict[RowKey, int] = {}
        # Latched on the first failed retirement: once the spare budget
        # is gone it never refills, so later events fall straight back to
        # reconstruction instead of re-attempting (and re-counting) an
        # exhausted migration. Keeps ``row_retirements_exhausted`` an
        # edge counter, not a per-fault drumbeat, under sustained attack.
        self._spares_exhausted = False
        guard = self.controller.ptguard
        if guard is not None and self.policy.rekey_enabled:
            guard.arm_adaptive_rekey(
                self.policy.rekey_threshold,
                self.policy.rekey_window,
                self.policy.rekey_cooldown,
            )

    # -- the handler ---------------------------------------------------------

    def handle_pte_check_failed(self, line_address: int) -> RecoveryEvent:
        """Run the full response to one uncorrectable PTE-line fault."""
        policy = self.policy
        dram = self.controller.dram
        row_key = dram.mapper.row_key_of(line_address)
        self._row_faults[row_key] = self._row_faults.get(row_key, 0) + 1
        cycles = policy.trap_overhead_cycles
        stage_cycles: Dict[str, int] = {"trap": policy.trap_overhead_cycles}
        stages: List[str] = []
        recovered = False

        if policy.reconstruct_enabled:
            stages.append("reconstruct")
            recovered, reconstruct_cycles = self.kernel.reconstruct_pte_line(
                line_address
            )
            cycles += reconstruct_cycles
            stage_cycles["reconstruct"] = reconstruct_cycles

        # Stage order is load-bearing: the retire fallback (including the
        # exhausted-budget verdict) resolves *before* any rekey
        # accounting, so a spare-exhaustion and a rekey trigger landing
        # in the same window attribute deterministically and never
        # charge the same cycles twice.
        retired = False
        if (
            policy.retire_enabled
            and not self._spares_exhausted
            and self._row_faults[row_key] >= policy.retire_threshold
        ):
            stages.append("retire")
            if self.controller.retire_row_of(line_address) is not None:
                retired = True
                migration = self._migration_cycles()
                cycles += migration
                stage_cycles["migrate"] = migration
                # The spare starts with a clean slate of fault history.
                self._row_faults.pop(row_key, None)
            else:
                self._spares_exhausted = True
                self.stats.increment("retire_fallbacks")

        rekeyed = False
        guard = self.controller.ptguard
        if guard is not None and policy.rekey_enabled:
            # Every incident ticks the window, recovered or not: a storm
            # of *successfully* reconstructed faults is still an attack.
            if guard.record_incident():
                stages.append("rekey")
                self.kernel.rekey_memory()
                cycles += self.kernel.last_rekey_cycles
                stage_cycles["rekey"] = self.kernel.last_rekey_cycles
                rekeyed = True

        if recovered:
            action = "retired" if retired else "reconstructed"
        else:
            action = "panic"
        event = RecoveryEvent(
            line_address=line_address,
            row_key=row_key,
            action=action,
            stages=tuple(stages),
            latency_cycles=cycles,
            recovered=recovered,
            retired=retired,
            rekeyed=rekeyed,
            epoch=guard.epoch if guard is not None else 0,
            stage_cycles=stage_cycles,
        )
        self.events.append(event)
        self.stats.increment(f"events_{action}")
        if retired:
            self.stats.increment("rows_retired")
        if rekeyed:
            self.stats.increment("adaptive_rekeys")
        return event

    def _migration_cycles(self) -> int:
        """Cost of a row migration, derived from the DRAM timing config.

        One activation each of source and spare row, then a read + write
        per cacheline at row-hit latency. The copy itself runs below the
        controller (raw beats, MACs preserved), so this is modelled from
        the same timing parameters every other access pays.
        """
        timing = self.controller.dram.config.timing
        lines = self.controller.dram.mapper.lines_per_row
        return 2 * timing.row_miss_cycles + 2 * lines * timing.row_hit_cycles

    # -- accounting ----------------------------------------------------------

    @property
    def recovered_events(self) -> List[RecoveryEvent]:
        return [event for event in self.events if event.recovered]

    @property
    def panic_events(self) -> List[RecoveryEvent]:
        return [event for event in self.events if not event.recovered]

    def row_fault_count(self, row_key: RowKey) -> int:
        return self._row_faults.get(row_key, 0)

    def latency_distribution(self) -> List[int]:
        """Recovery latencies (cycles) of successful events, sorted."""
        return sorted(event.latency_cycles for event in self.recovered_events)
