"""Closed-form overhead model, cross-validating the simulator (Fig 6/7).

The paper's slowdown mechanism is simple enough to state analytically:
baseline PT-Guard adds ``L_mac`` cycles to every DRAM read, so

    slowdown ~ (reads_per_kilo_instruction x L_mac) / base_CPK

where ``base_CPK`` is baseline cycles per kilo-instruction. The simulator
must agree with this first-order model to a small tolerance — a strong
internal-consistency check that the measured Figure-6 numbers arise from
the mechanism the paper describes and not from simulation artefacts.

Also includes the Section V-E energy model: ~1.6 nJ per MAC computation
(Banik et al. [6]) against ~20 nJ per DRAM access, with the identifier
optimization gating the MAC unit to <2 % of reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import CoreResult

MAC_ENERGY_NJ = 1.6  # 15 nm gates, paper Sec V-E
DRAM_ACCESS_ENERGY_NJ = 20.0  # typical DDR4 64-byte access energy


def predicted_slowdown_percent(
    baseline: CoreResult, mac_latency_cycles: int, checked_read_fraction: float = 1.0
) -> float:
    """First-order slowdown prediction from a baseline run.

    ``checked_read_fraction`` is 1.0 for baseline PT-Guard (every DRAM
    read pays the MAC unit) and the measured identifier-match fraction
    for Optimized PT-Guard.
    """
    if baseline.cycles == 0:
        return 0.0
    extra_cycles = baseline.dram_reads * mac_latency_cycles * checked_read_fraction
    return 100.0 * extra_cycles / baseline.cycles


def agreement_error(
    baseline: CoreResult, guarded: CoreResult, mac_latency_cycles: int
) -> float:
    """|simulated - predicted| slowdown, in percentage points."""
    simulated = 100.0 * (baseline.ipc / guarded.ipc - 1.0)
    predicted = predicted_slowdown_percent(baseline, mac_latency_cycles)
    return abs(simulated - predicted)


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy overhead of PT-Guard for one simulation window."""

    dram_accesses: int
    mac_computations: int
    dram_energy_nj: float
    mac_energy_nj: float

    @property
    def overhead_percent(self) -> float:
        return 100.0 * self.mac_energy_nj / self.dram_energy_nj if self.dram_energy_nj else 0.0

    @property
    def checked_fraction(self) -> float:
        return self.mac_computations / self.dram_accesses if self.dram_accesses else 0.0


def energy_estimate(dram_accesses: int, mac_computations: int) -> EnergyEstimate:
    """Sec V-E: MAC energy relative to DRAM access energy."""
    return EnergyEstimate(
        dram_accesses=dram_accesses,
        mac_computations=mac_computations,
        dram_energy_nj=dram_accesses * DRAM_ACCESS_ENERGY_NJ,
        mac_energy_nj=mac_computations * MAC_ENERGY_NJ,
    )
