"""Attack-vs-defense matrix (paper Sections II, VIII; Figures 1/3).

Two layers, reproducing the paper's security narrative:

1. **Bit-flip layer** — can a hammering pattern flip bits in a victim row
   despite the deployed activation-tracking mitigation?

   ============== ======== ===== ============ ========= ========
   pattern        none     PARA  TRR          Counter   SoftTRR
   ============== ======== ===== ============ ========= ========
   double-sided   flips    safe  safe         safe      safe
   many-sided     flips    safe* breached     safe      breached
   half-double    safe     flips flips        flips     flips
   low-RTH module flips    -     -            breached  breached
   ============== ======== ===== ============ ========= ========

   (half-double is *safe with no defense* because direct distance-2
   coupling is too weak — the defense's own victim refreshes do the
   hammering, which is the paper's core argument for why new attacks keep
   breaking mitigations.)

2. **PTE-consumption layer** — once flips land in a PTE, does the
   page-table protection stop the exploit? SecWalk misses > 4 flips;
   monotonic pointers miss metadata flips and 0->1 PFN flips; PT-Guard
   detects every tampering (and optionally corrects it).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.attacks.defenses import (
    PARA,
    TRR,
    CompositeMitigation,
    CounterTRR,
    MonotonicPlacement,
    SecWalkChecker,
    SoftTRR,
)
from repro.attacks.hammer import HammerAttack
from repro.common.bitops import flip_bit
from repro.dram.device import DRAMDevice, MitigationPolicy
from repro.dram.rowhammer import RowhammerProfile
from repro.harness.system import build_system
from repro.mmu.pte import make_x86_pte


@dataclass
class FlipExperiment:
    """One bit-flip-layer cell."""

    defense: str
    attack: str
    victim_flipped: bool  # the designated (e.g. PTE) row flipped
    any_flips: bool  # any row in the blast zone flipped (TRRespass-style)
    flips_total: int
    activations: int
    mitigation_refreshes: int


def _make_defense(
    name: str, rows_per_bank: int, design_threshold: int, seed: int
) -> Optional[MitigationPolicy]:
    if name == "none":
        return None
    if name == "PARA":
        return PARA(probability=0.002 * 4800 / design_threshold * 0.125,
                    rows_per_bank=rows_per_bank, seed=seed)
    if name == "TRR":
        return TRR(rows_per_bank, sampler_size=4,
                   mitigation_interval=max(50, design_threshold // 4))
    if name == "CounterTRR":
        return CounterTRR(rows_per_bank, design_threshold=design_threshold)
    if name == "CounterTRR-lowRTH":
        # Designed for a 4x-higher Rowhammer threshold than the module
        # actually has (Sec II-B: "future modules can have lower
        # thresholds and this can break such mitigations").
        return CounterTRR(rows_per_bank, design_threshold=design_threshold * 6)
    if name == "SoftTRR":
        # Deployed SoftTRR runs above the module's built-in TRR; the
        # hardware layer's victim refreshes are what Half-Double rides.
        return CompositeMitigation(
            SoftTRR(rows_per_bank, design_threshold=design_threshold),
            TRR(rows_per_bank, sampler_size=4,
                mitigation_interval=max(50, design_threshold // 4)),
        )
    raise ValueError(f"unknown defense {name!r}")


def run_flip_experiment(
    defense_name: str,
    attack_name: str,
    profile: Optional[RowhammerProfile] = None,
    victim_row: int = 1000,
    seed: int = 11,
) -> FlipExperiment:
    """Hammer a victim row under one defense; observe whether it flips.

    Uses the threshold-scaled profile by default so each cell runs in
    well under a second while preserving every threshold ratio.
    """
    profile = profile or RowhammerProfile.scaled()
    # Defenses are designed for RTH/8 tracking thresholds (aggressive).
    design_threshold = max(8, profile.threshold // 8)
    system = build_system(rowhammer=profile, seed=seed)
    rows_per_bank = system.dram.config.rows_per_bank
    defense = _make_defense(defense_name, rows_per_bank, design_threshold, seed)
    system.dram.mitigation = defense
    if isinstance(defense, CompositeMitigation):
        for layer in defense.layers:
            if isinstance(layer, SoftTRR):
                # The kernel registers the victim as a PTE row (the target).
                layer.register_pte_row((0, 0, 0, victim_row))

    # Seed victim-row content so both flip polarities have bits to flip.
    rng = random.Random(seed)
    for address in system.dram.addresses_in_row((0, 0, 0, victim_row)):
        system.memory.write_line(address, rng.randbytes(64))

    attack = HammerAttack(system.dram)
    budget = profile.activation_budget() * profile.threshold // 4800
    if attack_name == "double-sided":
        report = attack.double_sided(victim_row, iterations=min(budget // 2, profile.threshold * 4))
    elif attack_name == "many-sided":
        report = attack.many_sided(victim_row, iterations=min(budget // 9, profile.threshold * 4), aggressors=9)
    elif attack_name == "half-double":
        report = attack.half_double(victim_row, iterations=min(budget // 2, profile.threshold * 40))
    else:
        raise ValueError(f"unknown attack {attack_name!r}")

    victim_key = (0, 0, 0, victim_row)
    victim_flips = [f for f in system.dram.bit_flips if f.row_key == victim_key]
    return FlipExperiment(
        defense=defense_name,
        attack=attack_name,
        victim_flipped=bool(victim_flips),
        any_flips=bool(system.dram.bit_flips),
        flips_total=len(system.dram.bit_flips),
        activations=report.activations,
        mitigation_refreshes=getattr(defense, "refreshes_issued", 0),
    )


def run_flip_matrix(
    defenses=("none", "PARA", "TRR", "CounterTRR", "CounterTRR-lowRTH", "SoftTRR"),
    attacks=("double-sided", "many-sided", "half-double"),
    profile: Optional[RowhammerProfile] = None,
    seed: int = 11,
) -> List[FlipExperiment]:
    """The full bit-flip-layer grid."""
    return [
        run_flip_experiment(defense, attack, profile=profile, seed=seed)
        for defense in defenses
        for attack in attacks
    ]


# -- PTE-consumption layer ---------------------------------------------------------


@dataclass
class ConsumptionExperiment:
    """One PTE-protection cell: a tampering scenario vs a protection."""

    protection: str
    scenario: str
    prevented: bool
    note: str


def run_consumption_matrix(seed: int = 13) -> List[ConsumptionExperiment]:
    """Tamper PTEs in the ways Section II-C describes and test each
    page-table protection's verdict."""
    rng = random.Random(seed)
    results: List[ConsumptionExperiment] = []

    original = make_x86_pte(pfn=0x1234, user=False, no_execute=True)
    watermark = 0x8000
    table_pte = make_x86_pte(pfn=watermark + 0x42)  # PFN in table region

    scenarios = {
        # 1 flip redirecting the PFN downward (classic, true-cell 1->0).
        "pfn-1flip-down": flip_bit(original, 12 + 4),
        # 5 PFN flips (breakthrough module, 7 flips/word observed [19]).
        "pfn-5flips": _flip_many(original, [12, 14, 17, 21, 25]),
        # user/supervisor bit flip: kernel page becomes user-visible.
        "user-bit": flip_bit(original, 2),
        # NX bit cleared: W^X bypass.
        "nx-bit": flip_bit(original, 63),
        # protection-key change: sandbox escape.
        "mpk-bits": flip_bit(original, 59),
        # anti-cell 0->1 PFN flip raising the PFN into the table region.
        "pfn-1flip-up": table_pte,
    }

    secwalk = SecWalkChecker()
    monotonic = MonotonicPlacement(watermark_pfn=watermark)

    for name, tampered in scenarios.items():
        # SecWalk: detects <= 4 flips.
        verdict = secwalk.check(original if name != "pfn-1flip-up" else make_x86_pte(pfn=0x42),
                                tampered)
        results.append(
            ConsumptionExperiment(
                protection="SecWalk", scenario=name,
                prevented=verdict.detected, note=verdict.reason,
            )
        )
        # Monotonic pointers.
        base = original if name != "pfn-1flip-up" else make_x86_pte(pfn=0x42)
        tampered_pfn = (tampered >> 12) & ((1 << 40) - 1)
        verdict = monotonic.exploit_prevented(base, tampered, tampered_pfn)
        results.append(
            ConsumptionExperiment(
                protection="MonotonicPointers", scenario=name,
                prevented=verdict.detected, note=verdict.reason,
            )
        )

    # PT-Guard: exercised on the real machine — every scenario must raise
    # an integrity failure (or be transparently corrected).
    from repro.common.config import PTGuardConfig
    from repro.attacks.exploit import PrivilegeEscalationExploit

    system = build_system(ptguard=PTGuardConfig())
    exploit = PrivilegeEscalationExploit(system, num_pages=512)
    outcome = exploit.attempt()
    results.append(
        ConsumptionExperiment(
            protection="PT-Guard", scenario="pfn-1flip (exploit chain)",
            prevented=outcome.detected and not outcome.escalated,
            note="PTECheckFailed raised" if outcome.detected else "MISSED",
        )
    )
    meta = PrivilegeEscalationExploit(
        build_system(ptguard=PTGuardConfig()), num_pages=64
    ).tamper_metadata_bit()
    results.append(
        ConsumptionExperiment(
            protection="PT-Guard", scenario="user-bit",
            prevented=meta.detected and not meta.tampered_pte_consumed,
            note="PTECheckFailed raised" if meta.detected else "MISSED",
        )
    )
    return results


def _flip_many(value: int, bits: List[int]) -> int:
    for bit in bits:
        value = flip_bit(value, bit)
    return value
