"""PTE value-locality profiling (paper Section VI-B, Figure 8).

The paper profiles the page tables of 623 processes on real Ubuntu
systems and finds 64.13 % zero PTEs, 23.73 % contiguous-PFN PTEs and the
rest non-contiguous. We reproduce the study over a *synthetic process
population* built on the OS substrate: processes map region mixes drawn
from realistic size distributions, fault pages in (sparsely or fully),
and a fraction of processes exits over time so the buddy allocator
fragments — the mechanism behind the per-process spread in the figure.

Classification follows the paper: within each PTE cacheline (8 entries),
an entry is *zero* when its raw value is 0, *contiguous* when its PFN is
+-1 of its nearest non-zero neighbour in the same cacheline, else
*non-contiguous*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.config import PAGE_BYTES
from repro.harness.system import System, build_system
from repro.mmu.pte import X86PageTableEntry
from repro.os.process import Process


@dataclass
class ProcessProfile:
    """Per-process PTE category counts."""

    name: str
    zero: int = 0
    contiguous: int = 0
    non_contiguous: int = 0

    @property
    def total(self) -> int:
        return self.zero + self.contiguous + self.non_contiguous

    @property
    def zero_fraction(self) -> float:
        return self.zero / self.total if self.total else 0.0

    @property
    def contiguous_fraction(self) -> float:
        return self.contiguous / self.total if self.total else 0.0

    @property
    def non_contiguous_fraction(self) -> float:
        return self.non_contiguous / self.total if self.total else 0.0


@dataclass
class PopulationProfile:
    """The Figure-8 dataset: one profile per process."""

    processes: List[ProcessProfile] = field(default_factory=list)

    @property
    def total_ptes(self) -> int:
        return sum(p.total for p in self.processes)

    def mean_fraction(self, category: str) -> float:
        """Unweighted mean across processes (the paper's statistic)."""
        if not self.processes:
            return 0.0
        return sum(getattr(p, f"{category}_fraction") for p in self.processes) / len(
            self.processes
        )

    def stderr_fraction(self, category: str) -> float:
        """Standard error of the mean, as the paper reports (sigma_xbar)."""
        n = len(self.processes)
        if n < 2:
            return 0.0
        mean = self.mean_fraction(category)
        var = sum(
            (getattr(p, f"{category}_fraction") - mean) ** 2 for p in self.processes
        ) / (n - 1)
        return (var / n) ** 0.5

    def sorted_by_contiguity(self) -> List[ProcessProfile]:
        """Processes sorted as in Figure 8 (by contiguous fraction)."""
        return sorted(self.processes, key=lambda p: p.contiguous_fraction)


def classify_line(entries: List[int]) -> tuple[int, int, int]:
    """Classify one PTE cacheline's 8 entries -> (zero, contiguous, non)."""
    zero = contiguous = non_contiguous = 0
    pfns = [
        X86PageTableEntry(e).pfn if e else None
        for e in entries
    ]
    for index, entry in enumerate(entries):
        if entry == 0:
            zero += 1
            continue
        # Nearest non-zero neighbours within the cacheline.
        neighbor_pfns = []
        for j in range(index - 1, -1, -1):
            if pfns[j] is not None:
                neighbor_pfns.append(pfns[j] - pfns[index])
                break
        for j in range(index + 1, len(entries)):
            if pfns[j] is not None:
                neighbor_pfns.append(pfns[j] - pfns[index])
                break
        if any(abs(delta) == 1 for delta in neighbor_pfns):
            contiguous += 1
        else:
            non_contiguous += 1
    return zero, contiguous, non_contiguous


def profile_process(process: Process) -> ProcessProfile:
    """Scan every leaf table page of a process and classify its PTEs."""
    profile = ProcessProfile(name=process.name)
    for _, entries in process.page_table.iter_leaf_tables():
        for base in range(0, len(entries), 8):
            zero, contiguous, non = classify_line(entries[base : base + 8])
            profile.zero += zero
            profile.contiguous += contiguous
            profile.non_contiguous += non
    return profile


# -- synthetic population ------------------------------------------------------


@dataclass(frozen=True)
class PopulationConfig:
    """Knobs of the synthetic workload population.

    The defaults are calibrated so the population statistics land near the
    paper's 64 % zeros / 24 % contiguous / 12 % non-contiguous. The three
    mechanisms that matter:

    * *sparse touching* of mapped regions creates zero PTEs (a leaf table
      is allocated whole even when few of its 512 entries are used);
    * *interleaved faulting* across concurrently running processes splits
      buddy-allocator runs among address spaces, capping contiguity;
    * *process churn* frees frames mid-run, fragmenting later allocations.
    """

    num_processes: int = 623
    concurrency: int = 12  # processes faulting in parallel (a "wave")
    churn_fraction: float = 0.35  # processes that exit (fragmenting memory)
    seed: int = 42
    small_regions: tuple = (6, 28)  # count range of small mappings (libs)
    small_pages: tuple = (1, 24)
    large_regions: tuple = (1, 3)
    large_pages: tuple = (96, 900)
    touch_fraction: tuple = (0.08, 0.85)  # sparse demand paging
    chunk_pages: tuple = (1, 8)  # pages faulted consecutively per turn


def _fault_plan(
    rng: random.Random, config: PopulationConfig, vma_start: int, pages: int
) -> List[List[int]]:
    """Plan which pages of a region get touched, grouped into sequential
    chunks whose *order* is randomised (allocation interleaving)."""
    touch = rng.uniform(*config.touch_fraction)
    count = max(1, int(pages * touch))
    start = rng.randrange(max(1, pages - count + 1))
    pages_list = list(range(start, start + count))
    chunks: List[List[int]] = []
    index = 0
    while index < len(pages_list):
        size = rng.randint(*config.chunk_pages)
        chunk = pages_list[index : index + size]
        chunks.append([vma_start + page * PAGE_BYTES for page in chunk])
        index += size
    return chunks


def synthesize_population(
    system: Optional[System] = None,
    config: Optional[PopulationConfig] = None,
) -> tuple[System, List[Process]]:
    """Create the process population on a (baseline) system."""
    config = config if config is not None else PopulationConfig()
    system = system if system is not None else build_system()
    rng = random.Random(config.seed)
    kernel = system.kernel
    processes: List[Process] = []

    wave: List[tuple[Process, List[List[int]]]] = []
    created = 0
    while created < config.num_processes or wave:
        # Top the wave up to the concurrency level.
        while created < config.num_processes and len(wave) < config.concurrency:
            process = kernel.create_process(f"proc-{created}")
            created += 1
            chunks: List[List[int]] = []
            va = 0x0000_1000_0000_0000
            region_pages = [
                rng.randint(*config.small_pages)
                for _ in range(rng.randint(*config.small_regions))
            ] + [
                rng.randint(*config.large_pages)
                for _ in range(rng.randint(*config.large_regions))
            ]
            for pages in region_pages:
                vma = kernel.mmap(process, pages, at=va, name="region")
                chunks.extend(_fault_plan(rng, config, vma.start, pages))
                va = vma.end + 16 * PAGE_BYTES
            rng.shuffle(chunks)
            wave.append((process, chunks))
            processes.append(process)

        # Round-robin: each runnable process faults one chunk per turn —
        # the interleaving that splits contiguous frame runs in real OSes.
        still_running = []
        for process, chunks in wave:
            if chunks:
                for fault_va in chunks.pop():
                    kernel.handle_page_fault(process, fault_va)
            if chunks:
                still_running.append((process, chunks))
            else:
                # Finished faulting; maybe exit entirely (churn).
                if rng.random() < config.churn_fraction:
                    processes.remove(process)
                    kernel.destroy_process(process)
        wave = still_running

    return system, processes


def profile_population(processes: List[Process]) -> PopulationProfile:
    """Profile every live process (the Figure-8 measurement)."""
    return PopulationProfile(processes=[profile_process(p) for p in processes])


def run_figure8(
    num_processes: int = 623, seed: int = 42
) -> PopulationProfile:
    """End-to-end Figure 8 reproduction: synthesize then profile."""
    config = PopulationConfig(num_processes=num_processes, seed=seed)
    _, processes = synthesize_population(config=config)
    return profile_population(processes)
