"""Siege evaluation: availability under *sustained* Rowhammer pressure.

A fault-injection campaign asks "what happens to one fault?"; a siege
asks "how long does the machine stay useful while faults keep landing?".
Each siege cell subjects one machine to ``windows`` consecutive exposure
windows of :data:`repro.faults.campaign.TRIAL_WINDOW_CYCLES` cycles, with
``faults_per_window`` PTE-line disturbances per window (the attack
intensity), every one driven through the real controller read path and —
when a policy is attached — the full :mod:`repro.recovery` state machine.

Reported per cell:

* **survival time** — windows elapsed before the first panic (the whole
  siege when none occurs);
* **availability** — uptime fraction: recovery latency counts as
  downtime inside its window, a panic forfeits the rest of the window;
* **recovery-latency distribution** — p50 / p95 / max cycles over the
  successfully recovered events;
* the degradation ledger: rows retired, adaptive rekeys, spares left,
  and the full outcome histogram (zero-silent-corruption guarantee).

Cells run as ``siege_cell`` fabric jobs, so caching, retries, timeouts
and ``--resume`` apply; everything is a pure function of the seed.

Two siege modes share this module:

* **fixed-intensity** (:func:`run_siege_cell`) — the PR-5 open-loop
  stress test, preserved bit-exactly: the adaptive machinery below never
  touches this path;
* **closed-loop adaptive** (:func:`run_adaptive_siege_cell`) — each
  window runs observe → adapt → hammer: the
  :class:`repro.attacks.adaptive.AdaptiveAttacker` reads the defense's
  observable telemetry, plans the window's hammer ops under its
  activation budget (explicit ops face the
  :class:`repro.attacks.defenses.BlockhammerThrottle`; PThammer-style
  implicit ops ride page-walk traffic past it), and the recovery
  machinery answers. Downtime is attributed per cause (recovery /
  migration / rekey-sweep / panic) without double counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Attack intensities: uncorrectable-grade disturbances per exposure window.
SIEGE_INTENSITIES: Dict[str, int] = {"low": 1, "medium": 4, "high": 16}

#: Deterministic multi-bit scenario the siege injects (mostly lands
#: uncorrectable — the population recovery exists for).
_SIEGE_SCENARIO = "pte_double"


@dataclass
class SiegeCell:
    """Outcome of one (intensity, policy, seed) siege."""

    intensity: str
    faults_per_window: int
    windows: int
    seed: int
    workload: str
    recovery_policy: Optional[str] = None
    injections: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    #: windows completed before the first panic (== windows if none)
    survived_windows: int = 0
    panics: int = 0
    exposure_cycles: int = 0
    downtime_cycles: int = 0
    recovery_latency_cycles: List[int] = field(default_factory=list)
    rows_retired: int = 0
    adaptive_rekeys: int = 0
    spare_rows_left: int = 0
    invariant_sweeps: int = 0

    def outcome(self, klass: str) -> int:
        return self.outcomes.get(klass, 0)

    @property
    def availability(self) -> float:
        if not self.exposure_cycles:
            return 1.0
        return 1.0 - self.downtime_cycles / self.exposure_cycles

    @property
    def survival_fraction(self) -> float:
        if not self.windows:
            return 1.0
        return self.survived_windows / self.windows

    def latency_percentile(self, quantile: float) -> int:
        """Deterministic nearest-rank percentile of recovery latencies."""
        values = sorted(self.recovery_latency_cycles)
        if not values:
            return 0
        index = min(len(values) - 1, int(round(quantile * (len(values) - 1))))
        return values[index]


def run_siege_cell(
    intensity: str,
    faults_per_window: int,
    windows: int,
    seed: int,
    workload: str = "povray",
    validate: bool = False,
    recovery: Optional[dict] = None,
) -> SiegeCell:
    """Run one siege in-process; pure function of its parameters."""
    from repro.analysis.correction_eval import walked_pte_lines, workload_process
    from repro.common.config import PAGE_BYTES, PTGuardConfig
    from repro.core import pattern
    from repro.faults.campaign import (
        OUTCOME_CLASSES,
        TRIAL_WINDOW_CYCLES,
        _classify,
    )
    from repro.faults.inject import FaultInjector
    from repro.faults.invariants import attach_validator
    from repro.harness.system import build_system
    from repro.recovery.policy import policy_from_params

    policy = policy_from_params(recovery)
    config = PTGuardConfig(correction_enabled=True)
    system = build_system(
        ptguard=config,
        seed=seed,
        # Spares are only carved out when retirement can use them, so
        # non-retiring policies keep the seed memory layout exactly.
        spare_rows=(
            policy.spare_rows
            if policy is not None and policy.retire_enabled
            else 0
        ),
    )
    kernel = system.kernel
    process = workload_process(system, workload, seed)
    for vpn in sorted(process.frames)[:64]:
        kernel.access_virtual(process, vpn * PAGE_BYTES)
    pte_lines = walked_pte_lines(system, process)

    checker = attach_validator(system) if validate else None
    injector = FaultInjector(seed=seed, max_phys_bits=config.max_phys_bits)
    manager = None
    if policy is not None:
        from repro.recovery.manager import RecoveryManager

        manager = RecoveryManager(kernel, policy)

    cell = SiegeCell(
        intensity=intensity,
        faults_per_window=faults_per_window,
        windows=windows,
        seed=seed,
        workload=workload,
        recovery_policy=policy.name if policy is not None else None,
    )
    outcomes = {klass: 0 for klass in OUTCOME_CLASSES}
    memory = system.memory
    controller = system.controller
    first_panic_window: Optional[int] = None

    for window in range(windows):
        cell.exposure_cycles += TRIAL_WINDOW_CYCLES
        window_down = 0
        for burst in range(faults_per_window):
            trial = window * faults_per_window + burst
            spec = injector.generate(_SIEGE_SCENARIO, trial, pte_lines, [])
            snapshot = memory.read_line(spec.line_address)
            epoch_before = system.guard.epoch if system.guard else 0
            original_protected = pattern.mask_unprotected(
                snapshot, config.max_phys_bits
            )
            system.dram.inject_fault(
                spec.line_address, spec.bit_offsets, scenario="siege"
            )
            cell.injections += 1
            try:
                response = controller.read_access(spec.line_address, is_pte=True)
            except Exception:  # noqa: BLE001 — any escape is a simulator crash
                outcomes["sim_crash"] += 1
            else:
                klass = _classify(
                    response, True, snapshot, original_protected,
                    config.max_phys_bits,
                )
                if klass == "detected_uncorrectable" and manager is not None:
                    event = manager.handle_pte_check_failed(spec.line_address)
                    if event.recovered:
                        klass = (
                            "recovered_retired"
                            if event.retired
                            else "recovered_reconstructed"
                        )
                        cell.recovery_latency_cycles.append(event.latency_cycles)
                        window_down += event.latency_cycles
                    else:
                        klass = "panic"
                        window_down = TRIAL_WINDOW_CYCLES
                elif klass == "detected_uncorrectable":
                    # No policy attached: the seed behaviour is terminal.
                    klass = "panic"
                    window_down = TRIAL_WINDOW_CYCLES
                if klass == "panic":
                    cell.panics += 1
                    if first_panic_window is None:
                        first_panic_window = window
                outcomes[klass] += 1
            finally:
                if (
                    manager is not None
                    and system.guard is not None
                    and system.guard.epoch != epoch_before
                ):
                    logical = (
                        pattern.strip_metadata(snapshot)
                        if config.identifier_enabled
                        else pattern.strip_mac(snapshot)
                    )
                    controller.write_access(spec.line_address, logical)
                else:
                    memory.write_line(spec.line_address, snapshot)
        cell.downtime_cycles += min(window_down, TRIAL_WINDOW_CYCLES)
        if checker is not None:
            checker.run_all(context=f"siege {intensity} window {window}")

    cell.survived_windows = (
        windows if first_panic_window is None else first_panic_window
    )
    if manager is not None:
        cell.rows_retired = manager.stats.get("rows_retired")
        cell.adaptive_rekeys = manager.stats.get("adaptive_rekeys")
        cell.spare_rows_left = system.dram.spare_rows_free
    if checker is not None:
        cell.invariant_sweeps = checker.stats.get("sweeps")
    cell.outcomes = outcomes
    return cell


# -- the closed-loop adaptive siege -------------------------------------------


@dataclass
class AdaptiveSiegeCell:
    """Outcome of one (strategy, policy, seed) closed-loop siege."""

    strategy: str
    windows: int
    seed: int
    workload: str
    recovery_policy: Optional[str] = None
    injections: int = 0
    hammer_ops: int = 0
    throttled_ops: int = 0
    walks_issued: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    survived_windows: int = 0
    panics: int = 0
    exposure_cycles: int = 0
    downtime_cycles: int = 0
    #: downtime attribution; the four parts always sum to
    #: ``downtime_cycles`` (a panic forfeits its whole window to
    #: ``downtime_panic_cycles``, discarding that window's partial costs)
    downtime_recovery_cycles: int = 0
    downtime_migration_cycles: int = 0
    downtime_rekey_cycles: int = 0
    downtime_panic_cycles: int = 0
    recovery_latency_cycles: List[int] = field(default_factory=list)
    rows_retired: int = 0
    adaptive_rekeys: int = 0
    rekeys_suppressed: int = 0
    spare_rows_left: int = 0
    retirements_exhausted: int = 0
    invariant_sweeps: int = 0
    final_strategy: str = ""
    #: per-window defense-visible telemetry (the ObservationChannel
    #: trace, as plain dicts so cells stay JSON round-trippable)
    observations: List[Dict[str, int]] = field(default_factory=list)
    #: controller decisions, in order (escalate mode only)
    strategy_switches: List[Dict[str, object]] = field(default_factory=list)

    outcome = SiegeCell.outcome
    availability = SiegeCell.availability
    survival_fraction = SiegeCell.survival_fraction
    latency_percentile = SiegeCell.latency_percentile

    @property
    def downtime_attribution(self) -> Dict[str, int]:
        return {
            "recovery": self.downtime_recovery_cycles,
            "migration": self.downtime_migration_cycles,
            "rekey": self.downtime_rekey_cycles,
            "panic": self.downtime_panic_cycles,
        }


def run_adaptive_siege_cell(
    strategy: str,
    windows: int,
    seed: int,
    workload: str = "povray",
    validate: bool = False,
    recovery: Optional[dict] = None,
) -> AdaptiveSiegeCell:
    """One closed-loop siege: observe → adapt → hammer, per window.

    ``strategy`` is a :data:`repro.attacks.adaptive.STRATEGY_ORDER` name
    (the attacker is pinned to it) or ``"escalate"`` (the deterministic
    switching controller runs the whole ladder). Pure function of its
    parameters, like every other cell.
    """
    from repro.analysis.correction_eval import walked_pte_lines, workload_process
    from repro.attacks.adaptive import (
        ObservationChannel,
        craft_bit_offsets,
        make_attacker,
    )
    from repro.attacks.defenses import BlockhammerThrottle
    from repro.common.config import PAGE_BYTES, PTGuardConfig
    from repro.core import pattern
    from repro.faults.campaign import (
        OUTCOME_CLASSES,
        TRIAL_WINDOW_CYCLES,
        _classify,
    )
    from repro.faults.inject import deterministic_choice
    from repro.faults.invariants import attach_validator
    from repro.harness.system import build_system
    from repro.recovery.policy import policy_from_params

    policy = policy_from_params(recovery)
    config = PTGuardConfig(correction_enabled=True)
    system = build_system(
        ptguard=config,
        seed=seed,
        spare_rows=(
            policy.spare_rows
            if policy is not None and policy.retire_enabled
            else 0
        ),
    )
    kernel = system.kernel
    process = workload_process(system, workload, seed)
    warm_vpns = sorted(process.frames)
    for vpn in warm_vpns[:64]:
        kernel.access_virtual(process, vpn * PAGE_BYTES)
    pte_lines = walked_pte_lines(system, process)

    checker = attach_validator(system) if validate else None
    manager = None
    if policy is not None:
        from repro.recovery.manager import RecoveryManager

        manager = RecoveryManager(kernel, policy)

    # Deterministic row inventory: insertion order follows the sorted
    # pte_lines; the heat order ranks rows by how many walked PTE lines
    # they host (where implicit walker pressure concentrates).
    mapper = system.dram.mapper
    rows: Dict[tuple, List[int]] = {}
    for line in pte_lines:
        rows.setdefault(mapper.row_key_of(line), []).append(line)
    row_list = list(rows)
    heat_list = sorted(rows, key=lambda key: (-len(rows[key]), rows[key][0]))

    throttle = BlockhammerThrottle()
    channel = ObservationChannel(system, manager=manager, throttle=throttle)
    attacker = make_attacker(strategy, seed)
    protected = pattern.protected_bit_positions(config.max_phys_bits)

    cell = AdaptiveSiegeCell(
        strategy=strategy,
        windows=windows,
        seed=seed,
        workload=workload,
        recovery_policy=policy.name if policy is not None else None,
    )
    outcomes = {klass: 0 for klass in OUTCOME_CLASSES}
    controller = system.controller
    ledger = channel.ledger
    first_panic_window: Optional[int] = None

    for window in range(windows):
        cell.exposure_cycles += TRIAL_WINDOW_CYCLES
        throttle.begin_window()
        plan = attacker.plan(window, n_rows=len(row_list))
        strategy_name = attacker.active.name
        window_recovery = window_migration = window_rekey = 0
        panic_in_window = False

        # Implicit phase: PThammer pressure is page-walk traffic. The
        # TLB and MMU caches are flushed (eviction, in the real attack)
        # so every translation re-walks through the controller.
        if plan.walks and warm_vpns:
            kernel.walker.tlb.flush()
            kernel.walker.mmu_cache.flush()
            for step in range(plan.walks):
                vpn = warm_vpns[(window * plan.walks + step) % len(warm_vpns)]
                try:
                    kernel.access_virtual(process, vpn * PAGE_BYTES)
                except Exception:  # noqa: BLE001 — clean lines never throw
                    outcomes["sim_crash"] += 1
                    break
                cell.walks_issued += 1

        for op_index, op in enumerate(plan.ops):
            order = heat_list if op.hot else row_list
            row_key = order[op.row_index % len(order)]
            if not op.implicit and not throttle.request(row_key, op.cost):
                cell.throttled_ops += 1
                continue
            lines = rows[row_key]
            line = lines[
                deterministic_choice(
                    seed,
                    f"adaptive:target:{strategy_name}",
                    f"{window}:{op_index}",
                    len(lines),
                )
            ]
            offsets = craft_bit_offsets(
                seed,
                op.kind,
                f"adaptive:{strategy_name}:{op.kind}",
                f"{window}:{op_index}",
                protected,
            )
            cell.hammer_ops += 1
            # An adaptive attacker re-templates after a retirement: the
            # victim's cells moved to a spare row, and the attacker
            # re-locates them (timing side channels, in the real attack)
            # and disturbs the *current* backing cells. This is the key
            # capability difference from the fixed-intensity siege,
            # where disturbance keeps landing on the original (now
            # unread) cells — there, retirement is a full cure; here it
            # only buys the migration it paid for.
            backing = system.dram.remap_address(line)
            snapshot = system.dram.read_line(line)
            epoch_before = system.guard.epoch if system.guard else 0
            original_protected = pattern.mask_unprotected(
                snapshot, config.max_phys_bits
            )
            system.dram.inject_fault(backing, offsets, scenario="adaptive_siege")
            cell.injections += 1
            try:
                response = controller.read_access(line, is_pte=True)
            except Exception:  # noqa: BLE001 — any escape is a simulator crash
                outcomes["sim_crash"] += 1
            else:
                klass = _classify(
                    response, True, snapshot, original_protected,
                    config.max_phys_bits,
                )
                if klass == "detected_corrected":
                    ledger["corrected"] += 1
                if klass == "detected_uncorrectable":
                    ledger["uncorrectable"] += 1
                if klass == "detected_uncorrectable" and manager is not None:
                    event = manager.handle_pte_check_failed(line)
                    if event.recovered:
                        klass = (
                            "recovered_retired"
                            if event.retired
                            else "recovered_reconstructed"
                        )
                        cell.recovery_latency_cycles.append(
                            event.latency_cycles
                        )
                        migrate = event.stage_cycles.get("migrate", 0)
                        rekey = event.stage_cycles.get("rekey", 0)
                        window_migration += migrate
                        window_rekey += rekey
                        window_recovery += (
                            event.latency_cycles - migrate - rekey
                        )
                    else:
                        klass = "panic"
                elif klass == "detected_uncorrectable":
                    klass = "panic"
                if klass == "panic":
                    panic_in_window = True
                    cell.panics += 1
                    ledger["panics"] += 1
                    if first_panic_window is None:
                        first_panic_window = window
                outcomes[klass] += 1
            finally:
                if (
                    manager is not None
                    and system.guard is not None
                    and system.guard.epoch != epoch_before
                ):
                    logical = (
                        pattern.strip_metadata(snapshot)
                        if config.identifier_enabled
                        else pattern.strip_mac(snapshot)
                    )
                    controller.write_access(line, logical)
                else:
                    # Restore through the remap-aware path: a retirement
                    # inside this very event moves the backing row, and
                    # the snapshot must land wherever reads now go.
                    system.dram.write_line(line, snapshot)
            if panic_in_window:
                # The machine is rebooting: the window is forfeit and the
                # rest of the plan never executes.
                break

        if panic_in_window:
            cell.downtime_cycles += TRIAL_WINDOW_CYCLES
            cell.downtime_panic_cycles += TRIAL_WINDOW_CYCLES
        else:
            # Sequential clamp keeps the attribution identity exact even
            # if a window ever saturates: parts are taken in stage order
            # until the window is full.
            taken = 0
            for attr, part in (
                ("downtime_recovery_cycles", window_recovery),
                ("downtime_migration_cycles", window_migration),
                ("downtime_rekey_cycles", window_rekey),
            ):
                take = min(part, TRIAL_WINDOW_CYCLES - taken)
                setattr(cell, attr, getattr(cell, attr) + take)
                taken += take
            cell.downtime_cycles += taken
        ledger["downtime_cycles"] = cell.downtime_cycles

        observation = channel.snapshot(window)
        cell.observations.append(observation.as_dict())
        attacker.observe(observation)
        if checker is not None:
            checker.run_all(context=f"adaptive {strategy} window {window}")

    cell.survived_windows = (
        windows if first_panic_window is None else first_panic_window
    )
    cell.final_strategy = attacker.active.name
    cell.strategy_switches = [switch.as_dict() for switch in attacker.switches]
    if manager is not None:
        cell.rows_retired = manager.stats.get("rows_retired")
        cell.adaptive_rekeys = manager.stats.get("adaptive_rekeys")
        cell.spare_rows_left = system.dram.spare_rows_free
    if system.guard is not None:
        cell.rekeys_suppressed = system.guard.stats.get(
            "adaptive_rekeys_suppressed"
        )
    cell.retirements_exhausted = controller.stats.get(
        "row_retirements_exhausted"
    )
    if checker is not None:
        cell.invariant_sweeps = checker.stats.get("sweeps")
    cell.outcomes = outcomes
    return cell


def adaptive_siege_cell_job(
    strategy: str,
    windows: int,
    seed: int,
    workload: str,
    validate: bool,
    recovery: Optional[dict],
    label: Optional[str] = None,
):
    """The :class:`SimJob` form of one adaptive siege cell."""
    from repro.harness.parallel import SimJob

    return SimJob(
        kind="adaptive_siege_cell",
        params={
            "strategy": strategy,
            "windows": windows,
            "seed": seed,
            "workload": workload,
            "validate": validate,
            "recovery": recovery,
        },
        label=label or f"adaptive-siege/{strategy}",
    )


# -- fabric integration --------------------------------------------------------


def siege_cell_job(
    intensity: str,
    faults_per_window: int,
    windows: int,
    seed: int,
    workload: str,
    validate: bool,
    recovery: Optional[dict],
):
    """The :class:`SimJob` form of one siege cell (content-addressed)."""
    from repro.harness.parallel import SimJob

    return SimJob(
        kind="siege_cell",
        params={
            "intensity": intensity,
            "faults_per_window": faults_per_window,
            "windows": windows,
            "seed": seed,
            "workload": workload,
            "validate": validate,
            "recovery": recovery,
        },
        label=f"siege/{intensity}",
    )


def run_siege(
    windows: int = 48,
    seed: int = 17,
    workload: str = "povray",
    validate: bool = False,
    recovery: Optional[dict] = None,
    intensities: Optional[Dict[str, int]] = None,
    workers: Optional[int] = None,
    cache=None,
) -> List[SiegeCell]:
    """Run the siege at every intensity, one fabric job per cell."""
    from repro.harness.parallel import run_jobs
    from repro.recovery.policy import RecoveryPolicy

    if recovery is None:
        recovery = RecoveryPolicy().as_params()
    chosen = intensities if intensities is not None else SIEGE_INTENSITIES
    jobs = [
        siege_cell_job(
            name, faults, windows, seed, workload, validate, recovery
        )
        for name, faults in sorted(chosen.items(), key=lambda kv: kv[1])
    ]
    return run_jobs(jobs, workers=workers, cache=cache)


# -- reporting -----------------------------------------------------------------


def format_siege_report(cells: Sequence[SiegeCell]) -> str:
    """Render the availability report (byte-identical across runs)."""
    lines: List[str] = []
    lines.append("Siege: availability under sustained Rowhammer")
    if cells:
        head = cells[0]
        lines.append(
            f"policy={head.recovery_policy or 'none'}  workload={head.workload}  "
            f"windows={head.windows}  seed={head.seed}"
        )
    lines.append("")
    header = (
        f"{'intensity':<10} {'faults/win':>10} {'survived':>9} "
        f"{'surv%':>7} {'avail':>8} {'p50':>8} {'p95':>8} {'max':>9} "
        f"{'retired':>8} {'rekeys':>7} {'panics':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in cells:
        lines.append(
            f"{cell.intensity:<10} {cell.faults_per_window:>10} "
            f"{cell.survived_windows:>6}/{cell.windows:<2} "
            f"{cell.survival_fraction * 100:>6.1f} "
            f"{cell.availability:>8.5f} "
            f"{cell.latency_percentile(0.50):>8} "
            f"{cell.latency_percentile(0.95):>8} "
            f"{cell.latency_percentile(1.00):>9} "
            f"{cell.rows_retired:>8} {cell.adaptive_rekeys:>7} "
            f"{cell.panics:>7}"
        )
    lines.append("")
    silent = sum(cell.outcome("silent_corruption") for cell in cells)
    injections = sum(cell.injections for cell in cells)
    lines.append(f"injections: {injections}")
    lines.append(
        f"silent corruptions: {silent} "
        f"({'zero-silent-corruption guarantee holds' if silent == 0 else 'GUARANTEE VIOLATED'})"
    )
    recovered = sum(
        cell.outcome("recovered_reconstructed") + cell.outcome("recovered_retired")
        for cell in cells
    )
    lines.append(f"recovered: {recovered}  panics: {sum(c.panics for c in cells)}")
    return "\n".join(lines)
