"""The worst-case availability frontier: policies vs adaptive strategies.

Every candidate :class:`repro.recovery.RecoveryPolicy` from the search
grid (:mod:`repro.recovery.search`) faces every adaptive strategy
(:mod:`repro.attacks.adaptive`) in a closed-loop siege
(:func:`repro.analysis.siege_eval.run_adaptive_siege_cell`), one cached
``adaptive_siege_cell`` fabric job per (policy, strategy) pair. A policy
is scored by its *minimum* availability across strategies — the
adversary picks the strategy, so only the worst case counts.

Per policy the frontier reports: the minimum availability and which
strategy forces it, whether that clears
:data:`repro.recovery.search.AVAILABILITY_TARGET` (``SURVIVES`` /
``BROKEN``), the recovery-latency p95 of the worst-case siege, and its
downtime attribution (recovery / migration / rekey-sweep / panic —
parts that sum exactly to the downtime). Ranking, rendering and every
cell are pure functions of the parameters, so the report is
byte-identical across runs, backends and cache states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.siege_eval import AdaptiveSiegeCell, adaptive_siege_cell_job


@dataclass
class FrontierRow:
    """One policy's worst case across every adaptive strategy."""

    policy: str
    #: availability per strategy name
    availability: Dict[str, float] = field(default_factory=dict)
    min_availability: float = 1.0
    #: the strategy that forces the minimum (ties break lexically)
    broken_by: str = ""
    #: recovery-latency p95 (cycles) of the worst-case siege
    latency_p95: int = 0
    #: downtime attribution of the worst-case siege, cycles per cause
    attribution: Dict[str, int] = field(default_factory=dict)
    panics: int = 0

    @property
    def survives(self) -> bool:
        from repro.recovery.search import AVAILABILITY_TARGET

        return self.min_availability >= AVAILABILITY_TARGET


def run_frontier(
    windows: int = 48,
    seed: int = 17,
    workload: str = "povray",
    validate: bool = False,
    policies=None,
    strategies: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    cache=None,
) -> Tuple[List[FrontierRow], List[AdaptiveSiegeCell]]:
    """Evaluate the frontier; returns (ranked rows, all siege cells).

    ``policies`` is a grid name (see
    :data:`repro.recovery.search.POLICY_GRIDS`), a list of
    :class:`~repro.recovery.RecoveryPolicy`, or None for the default
    grid. ``strategies`` defaults to the full ladder plus the switching
    controller (:data:`repro.attacks.adaptive.ALL_STRATEGIES`).
    """
    from repro.attacks.adaptive import ALL_STRATEGIES
    from repro.harness.parallel import run_jobs
    from repro.recovery.search import policy_grid

    if policies is None:
        policies = policy_grid("default")
    elif isinstance(policies, str):
        policies = policy_grid(policies)
    chosen = tuple(strategies) if strategies else tuple(sorted(ALL_STRATEGIES))

    jobs = []
    for policy in policies:
        for strategy in chosen:
            jobs.append(
                adaptive_siege_cell_job(
                    strategy=strategy,
                    windows=windows,
                    seed=seed,
                    workload=workload,
                    validate=validate,
                    recovery=policy.as_params(),
                    label=f"frontier/{policy.name}/{strategy}",
                )
            )
    cells: List[AdaptiveSiegeCell] = run_jobs(jobs, workers=workers, cache=cache)

    by_policy: Dict[str, List[AdaptiveSiegeCell]] = {}
    for cell in cells:
        by_policy.setdefault(cell.recovery_policy or "none", []).append(cell)

    rows: List[FrontierRow] = []
    for policy in policies:
        row = FrontierRow(policy=policy.name)
        worst: Optional[AdaptiveSiegeCell] = None
        for cell in sorted(
            by_policy.get(policy.name, []), key=lambda c: c.strategy
        ):
            avail = cell.availability
            row.availability[cell.strategy] = avail
            row.panics += cell.panics
            if worst is None or avail < row.min_availability:
                row.min_availability = avail
                row.broken_by = cell.strategy
                worst = cell
        if worst is not None:
            row.latency_p95 = worst.latency_percentile(0.95)
            row.attribution = dict(worst.downtime_attribution)
        rows.append(row)
    # The adversary ranks policies: best worst-case first; name breaks ties.
    rows.sort(key=lambda r: (-r.min_availability, r.policy))
    return rows, cells


def format_frontier_report(
    rows: Sequence[FrontierRow],
    cells: Sequence[AdaptiveSiegeCell],
) -> str:
    """Render the frontier (byte-identical across runs and backends)."""
    from repro.recovery.search import AVAILABILITY_TARGET

    lines: List[str] = []
    lines.append("Worst-case availability frontier: adaptive adversary siege")
    if cells:
        head = cells[0]
        lines.append(
            f"workload={head.workload}  windows={head.windows}  "
            f"seed={head.seed}  target={AVAILABILITY_TARGET:.5f}"
        )
    strategies = sorted({cell.strategy for cell in cells})
    lines.append(f"strategies: {', '.join(strategies)}")
    lines.append("")

    header = (
        f"{'rank':<5} {'policy':<13} {'min-avail':>9} {'broken-by':<18} "
        f"{'p95':>8} {'recov':>8} {'migr':>8} {'rekey':>8} {'panic':>9} "
        f"{'verdict':<8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for rank, row in enumerate(rows, start=1):
        attr = row.attribution
        lines.append(
            f"{rank:<5} {row.policy:<13} {row.min_availability:>9.5f} "
            f"{row.broken_by:<18} {row.latency_p95:>8} "
            f"{attr.get('recovery', 0):>8} {attr.get('migration', 0):>8} "
            f"{attr.get('rekey', 0):>8} {attr.get('panic', 0):>9} "
            f"{'SURVIVES' if row.survives else 'BROKEN':<8}"
        )
    lines.append("")

    if rows:
        weakest = min(rows, key=lambda r: (r.min_availability, r.policy))
        lines.append(
            f"weakest={weakest.policy} broken-by={weakest.broken_by} "
            f"min-avail={weakest.min_availability:.5f}"
        )
        lines.append("")

    # The full availability matrix; '*' marks cells below the target.
    width = max([len("policy")] + [len(row.policy) for row in rows])
    cols = [f"{name:>19}" for name in strategies]
    lines.append(f"{'policy':<{width}} " + " ".join(cols))
    for row in sorted(rows, key=lambda r: r.policy):
        cells_out = []
        for name in strategies:
            avail = row.availability.get(name)
            if avail is None:
                cells_out.append(f"{'-':>19}")
            else:
                mark = "*" if avail < AVAILABILITY_TARGET else " "
                cells_out.append(f"{avail:>18.5f}{mark}")
        lines.append(f"{row.policy:<{width}} " + " ".join(cells_out))
    lines.append("")

    switches = sum(len(cell.strategy_switches) for cell in cells)
    lines.append(
        f"cells: {len(cells)}  strategy switches: {switches}  "
        f"panics: {sum(cell.panics for cell in cells)}"
    )
    return "\n".join(lines)
