"""Fault-campaign reporting: Fig 9's coverage, extended scenario matrix.

The paper's Fig 9 measures best-effort correction over uniform per-bit
PTE flips; the campaign reproduces that regime (the ``uniform`` scenario)
and extends it to targeted adversarial scenarios — GbHammer-style global
bits, PFN-only, flags-only, embedded-MAC bits, bursts and unprotected
data lines — each classified into the eight-class outcome taxonomy of
:mod:`repro.faults.campaign` (recovery classes included when a
``--recovery-policy`` is attached).

Two guarantees the report states explicitly:

* **Detection** (Sec IV-F): single-bit PTE faults must show *zero*
  silent corruption — a 96-bit MAC catches any protected-bit change and
  soft-match tolerates MAC-bit flips.
* **Correction** (Sec VI): single-bit faults are fully correctable
  (flip-and-check enumerates every protected position; soft-match covers
  the MAC field), and uniform-flip coverage tracks Fig 9.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.reporting import banner, format_table
from repro.faults.campaign import (
    OUTCOME_CLASSES,
    SINGLE_BIT_PTE_SCENARIOS,
    CampaignResult,
    run_campaign,
)

_CLASS_HEADERS = {
    "detected_corrected": "corrected",
    "detected_uncorrectable": "uncorrectable",
    "recovered_reconstructed": "rebuilt",
    "recovered_retired": "retired",
    "panic": "panic",
    "silent_corruption": "silent",
    "masked_benign": "benign",
    "sim_crash": "crash",
}


def single_bit_summary(result: CampaignResult) -> dict:
    """Aggregate the single-bit PTE scenarios (the paper's guarantees)."""
    cells = result.single_bit_pte_cells()
    erroneous = sum(cell.erroneous for cell in cells)
    corrected = sum(cell.outcome("detected_corrected") for cell in cells)
    silent = sum(cell.outcome("silent_corruption") for cell in cells)
    return {
        "trials": sum(cell.trials for cell in cells),
        "protected_tampered": sum(cell.protected_tampered for cell in cells),
        "erroneous": erroneous,
        "corrected": corrected,
        "silent": silent,
        "corrected_fraction": corrected / erroneous if erroneous else 0.0,
    }


def format_fault_matrix(result: CampaignResult) -> str:
    """Render the scenario-by-outcome matrix plus the guarantee lines."""
    headers = ["scenario", "target", "trials", "bits"] + [
        _CLASS_HEADERS[klass] for klass in OUTCOME_CLASSES
    ] + ["corr-frac"]
    rows = []
    for cell in result.cells:
        rows.append(
            [
                cell.scenario,
                cell.target,
                cell.trials,
                cell.bits_injected,
                *[cell.outcome(klass) for klass in OUTCOME_CLASSES],
                f"{cell.corrected_fraction:.3f}",
            ]
        )
    histogram = result.histogram()
    summary = single_bit_summary(result)

    lines = [
        banner("Fault-injection campaign (outcome taxonomy, Fig 9 extended)"),
        format_table(headers, rows),
        "",
        "aggregate: "
        + ", ".join(f"{klass}={count}" for klass, count in histogram.items()),
        (
            f"single-bit PTE faults: {summary['trials']} trials, "
            f"{summary['silent']} silent corruptions "
            f"(detection guarantee: 0), corrected fraction "
            f"{summary['corrected_fraction']:.3f} (Sec VI: 1.000)"
        ),
    ]
    uniform = result.cell("uniform")
    if uniform is not None:
        lines.append(
            f"uniform flips (Fig 9 regime): corrected fraction "
            f"{uniform.corrected_fraction:.3f} over "
            f"{uniform.erroneous} erroneous lines"
        )
    data = result.cell("data_single")
    if data is not None:
        lines.append(
            f"unprotected data lines: {data.outcome('silent_corruption')}/"
            f"{data.trials} silent by design — PT-Guard's protection "
            f"boundary covers page tables only"
        )
    recovery_cells = [cell for cell in result.cells if cell.recovery_policy]
    if recovery_cells:
        recovered = sum(cell.recovered for cell in recovery_cells)
        panics = sum(cell.outcome("panic") for cell in recovery_cells)
        retired = sum(cell.rows_retired for cell in recovery_cells)
        rekeys = sum(cell.adaptive_rekeys for cell in recovery_cells)
        lines.append(
            f"recovery (policy={recovery_cells[0].recovery_policy}): "
            f"availability {result.availability:.6f}, "
            f"{recovered} recovered, {panics} panics, "
            f"{retired} rows retired, {rekeys} adaptive rekeys"
        )
    validated = sum(cell.invariant_sweeps for cell in result.cells)
    if validated:
        lines.append(f"runtime validator: {validated} invariant sweeps, all clean")
    return "\n".join(lines)


def run_fault_matrix(
    scenarios: Optional[Sequence[str]] = None,
    trials_per_cell: int = 120,
    seed: int = 11,
    workload: str = "povray",
    validate: bool = False,
    workers: Optional[int] = None,
    cache=None,
    recovery: Optional[dict] = None,
) -> CampaignResult:
    """Run the campaign behind the fault-matrix report."""
    return run_campaign(
        scenarios=scenarios,
        trials_per_cell=trials_per_cell,
        seed=seed,
        workload=workload,
        validate=validate,
        workers=workers,
        cache=cache,
        recovery=recovery,
    )
