"""Performance evaluation (paper Section IV-H, V-C/V-D; Figures 6 and 7).

Runs each workload trace on the simulated machine three ways —
unprotected baseline, PT-Guard, Optimized PT-Guard — and reports
normalized IPC and LLC MPKI per workload (Fig 6), plus the MAC-latency
sensitivity sweep over {5, 10, 15, 20} cycles for average and worst case
(Fig 7).

Timing runs use the ``pseudo`` MAC: tag *values* never affect timing
(only pattern/identifier matches do), and it keeps multi-million-access
simulations tractable — see :class:`repro.crypto.mac.PseudoLineMAC`.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import PTGuardConfig, optimized_ptguard_config
from repro.cpu.core import CoreResult
from repro.cpu.trace import TraceGenerator
from repro.cpu.workloads import WORKLOADS, WorkloadProfile, get_workload
from repro.harness import snapshot as boot_snapshot
from repro.harness.parallel import ResultCache, SimJob, guard_config_params, run_jobs
from repro.harness.system import COLD_BASE, HOT_BASE, build_system


@dataclass(frozen=True)
class WorkloadRun:
    """One (workload, configuration) timing result."""

    workload: str
    configuration: str  # "baseline" | "ptguard" | "optimized"
    result: CoreResult

    @property
    def ipc(self) -> float:
        return self.result.ipc


@dataclass
class Figure6Row:
    """One workload's Fig-6 datapoint."""

    workload: str
    suite: str
    target_mpki: float
    measured_mpki: float
    baseline_ipc: float
    ptguard_ipc: float
    optimized_ipc: Optional[float] = None

    @property
    def normalized_ipc(self) -> float:
        """IPC / IPC_b for PT-Guard (the Fig-6 top panel)."""
        return self.ptguard_ipc / self.baseline_ipc if self.baseline_ipc else 0.0

    @property
    def slowdown_percent(self) -> float:
        return (self.baseline_ipc / self.ptguard_ipc - 1.0) * 100.0 if self.ptguard_ipc else 0.0

    @property
    def optimized_slowdown_percent(self) -> Optional[float]:
        if self.optimized_ipc is None or not self.optimized_ipc:
            return None
        return (self.baseline_ipc / self.optimized_ipc - 1.0) * 100.0


def geometric_mean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def run_workload(
    profile: WorkloadProfile,
    guard_config: Optional[PTGuardConfig],
    mem_ops: int = 20_000,
    warmup_ops: int = 12_000,
    seed: int = 1,
    prefault: bool = False,
    mac_algorithm: str = "pseudo",
) -> CoreResult:
    """Simulate one workload on one machine configuration.

    With ``prefault=False`` (default) pages fault in on first touch —
    mostly during the untimed warmup, exactly like the paper's
    KVM-fast-forward methodology; faults are OS work outside the timed
    window either way, and the baseline/guarded runs see identical
    streams, so slowdown ratios are unaffected while runs start ~2s
    faster on large-footprint workloads.

    The result is a pure function of the arguments (a fresh system is
    built per call), which is what lets :func:`workload_job` run cells
    in any process and cache them content-addressed.

    Booting — build machine, map regions, (optionally) prefault — is
    identical for every call sharing ``(profile, config-sans-latency,
    seed, prefault, mac_algorithm)``, so it goes through the boot
    snapshot layer (:mod:`repro.harness.snapshot`): the first such call
    boots cold and is snapshotted; later calls deep-restore a private
    copy. ``mac_latency_cycles`` stays out of the snapshot key because
    the guard reads it per access from ``guard.config``, which is
    re-pointed at the caller's real config after restore — that is what
    lets the fig-7 latency sweep share one snapshot per (workload,
    design). Prefault uses a throwaway core: it only drives
    ``kernel.handle_page_fault``, so machine state is identical to
    faulting through the measurement core.
    """

    def boot():
        system = build_system(
            ptguard=guard_config, mac_algorithm=mac_algorithm, seed=seed
        )
        process, trace = system.workload_process(profile, seed=seed)
        if prefault:
            system.new_core(process).prefault(trace)
        return system, process.pid

    config_params = guard_config_params(guard_config)
    if config_params is not None:
        config_params = dict(config_params)
        del config_params["mac_latency_cycles"]
    system, pid = boot_snapshot.cached_boot(
        "workload_run",
        {
            "workload": asdict(profile),
            "config": config_params,
            "seed": seed,
            "prefault": prefault,
            "mac_algorithm": mac_algorithm,
        },
        boot,
    )
    if system.guard is not None:
        system.guard.config = guard_config
    process = system.kernel.processes[pid]
    trace = TraceGenerator(profile, hot_base=HOT_BASE, cold_base=COLD_BASE, seed=seed)
    core = system.new_core(process)
    return core.run(trace, mem_ops=mem_ops, warmup_ops=warmup_ops)


def workload_job(
    workload: str,
    guard_config: Optional[PTGuardConfig],
    mem_ops: int,
    warmup_ops: int,
    seed: int,
    label: Optional[str] = None,
) -> SimJob:
    """The :class:`SimJob` equivalent of one :func:`run_workload` call.

    The seed lands in the job params — part of the cache key, fixed by
    the emitter — so serial, parallel and cached runs of the same cell
    are bit-identical by construction. ``label`` names the cell in logs,
    journals and failure messages; it never enters the key, so fig 6 and
    fig 7 still share identical cells through the cache.
    """
    return SimJob(
        kind="workload_run",
        params={
            "workload": workload,
            "config": guard_config_params(guard_config),
            "mem_ops": mem_ops,
            "warmup_ops": warmup_ops,
            "seed": seed,
            "mac_algorithm": "pseudo",
        },
        label=label,
    )


def figure6_jobs(
    workload_names: Optional[Sequence[str]] = None,
    mem_ops: int = 20_000,
    warmup_ops: int = 12_000,
    mac_latency: int = 10,
    include_optimized: bool = True,
    seed: int = 1,
) -> List[SimJob]:
    """The Figure-6 job grid, workload-major then configuration.

    Exposed separately from :func:`run_figure6` so callers that reason
    about the cells themselves — the chaos benchmark picks an injection
    seed from the job keys — build exactly the grid the sweep runs.
    """
    profiles = (
        [get_workload(name) for name in workload_names]
        if workload_names is not None
        else list(WORKLOADS)
    )
    configs: List[Tuple[str, Optional[PTGuardConfig]]] = [
        ("baseline", None),
        ("ptguard", PTGuardConfig(mac_latency_cycles=mac_latency)),
    ]
    if include_optimized:
        configs.append(("optimized", optimized_ptguard_config(mac_latency)))
    return [
        workload_job(
            profile.name,
            config,
            mem_ops,
            warmup_ops,
            seed,
            label=f"fig6/{profile.name}/{design}",
        )
        for profile in profiles
        for design, config in configs
    ]


def run_figure6(
    workload_names: Optional[Sequence[str]] = None,
    mem_ops: int = 20_000,
    warmup_ops: int = 12_000,
    mac_latency: int = 10,
    include_optimized: bool = True,
    seed: int = 1,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Figure6Row]:
    """Figure 6: per-workload normalized IPC + MPKI at the default latency.

    Emits one job per (workload, configuration) cell and fans them out
    over ``workers`` processes (:func:`repro.harness.parallel.run_jobs`);
    results reassemble in job order, so the rows — and any report built
    from them — are identical at every worker count.
    """
    profiles = (
        [get_workload(name) for name in workload_names]
        if workload_names is not None
        else list(WORKLOADS)
    )
    jobs = figure6_jobs(
        workload_names, mem_ops, warmup_ops, mac_latency, include_optimized, seed
    )
    results = run_jobs(jobs, workers=workers, cache=cache)
    rows: List[Figure6Row] = []
    stride = 3 if include_optimized else 2
    for position, profile in enumerate(profiles):
        base, guarded = results[position * stride], results[position * stride + 1]
        optimized = results[position * stride + 2] if include_optimized else None
        rows.append(
            Figure6Row(
                workload=profile.name,
                suite=profile.suite,
                target_mpki=profile.target_mpki,
                measured_mpki=base.llc_mpki,
                baseline_ipc=base.ipc,
                ptguard_ipc=guarded.ipc,
                optimized_ipc=optimized.ipc if optimized else None,
            )
        )
    return rows


@dataclass
class Figure7Point:
    """One (design, MAC latency) sweep point: average + worst slowdown."""

    design: str  # "ptguard" | "optimized"
    mac_latency: int
    average_slowdown_percent: float
    worst_slowdown_percent: float
    worst_workload: str


def run_figure7(
    workload_names: Optional[Sequence[str]] = None,
    latencies: Sequence[int] = (5, 10, 15, 20),
    mem_ops: int = 20_000,
    warmup_ops: int = 12_000,
    seed: int = 1,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Figure7Point]:
    """Figure 7: slowdown vs MAC-computation latency, both designs.

    Baselines are simulated once per workload and reused across the
    sweep; every cell — baseline or sweep point — is one job, so the
    whole grid fans out at once.
    """
    profiles = (
        [get_workload(name) for name in workload_names]
        if workload_names is not None
        else list(WORKLOADS)
    )
    designs = ("ptguard", "optimized")
    jobs = [
        workload_job(
            profile.name,
            None,
            mem_ops,
            warmup_ops,
            seed,
            label=f"fig7/{profile.name}/baseline",
        )
        for profile in profiles
    ]
    for design in designs:
        for latency in latencies:
            for profile in profiles:
                config = (
                    PTGuardConfig(mac_latency_cycles=latency)
                    if design == "ptguard"
                    else optimized_ptguard_config(latency)
                )
                jobs.append(
                    workload_job(
                        profile.name,
                        config,
                        mem_ops,
                        warmup_ops,
                        seed,
                        label=f"fig7/{profile.name}/{design}@{latency}cy",
                    )
                )
    results = run_jobs(jobs, workers=workers, cache=cache)
    baselines: Dict[str, CoreResult] = {
        p.name: results[position] for position, p in enumerate(profiles)
    }
    cursor = len(profiles)
    points: List[Figure7Point] = []
    for design in designs:
        for latency in latencies:
            slowdowns = []
            for profile in profiles:
                result = results[cursor]
                cursor += 1
                base_ipc = baselines[profile.name].ipc
                slowdowns.append(
                    (profile.name, (base_ipc / result.ipc - 1.0) * 100.0)
                )
            worst_name, worst = max(slowdowns, key=lambda item: item[1])
            points.append(
                Figure7Point(
                    design=design,
                    mac_latency=latency,
                    average_slowdown_percent=arithmetic_mean([s for _, s in slowdowns]),
                    worst_slowdown_percent=worst,
                    worst_workload=worst_name,
                )
            )
    return points


def summarize_figure6(rows: List[Figure6Row]) -> Dict[str, float]:
    """The headline statistics the paper quotes from Fig 6."""
    slowdowns = [row.slowdown_percent for row in rows]
    normalized = [row.normalized_ipc for row in rows]
    summary = {
        "amean_slowdown_percent": arithmetic_mean(slowdowns),
        "gmean_normalized_ipc": geometric_mean(normalized),
        "worst_slowdown_percent": max(slowdowns) if slowdowns else 0.0,
        "worst_workload_mpki": max((r.measured_mpki for r in rows), default=0.0),
    }
    optimized = [
        row.optimized_slowdown_percent
        for row in rows
        if row.optimized_slowdown_percent is not None
    ]
    if optimized:
        summary["optimized_amean_slowdown_percent"] = arithmetic_mean(optimized)
        summary["optimized_worst_slowdown_percent"] = max(optimized)
    return summary
