"""Best-effort-correction evaluation (paper Section VI-F, Figure 9).

Methodology mirrors the paper: harvest the PTE cachelines that page-table
walks bring to the memory controller, inject uniform per-bit faults with
probability ``p_flip`` into the *stored* line (data + embedded MAC), and
run PT-Guard's read path. Every faulty line must be detected (100 %
coverage); the figure reports the fraction of *erroneous* lines the
correction engine restores, per workload and per ``p_flip`` in
{1/512, 1/256, 1/128} — the worst-case DDR4/LPDDR4 regime of [27].

A line counts as corrected when the repaired line's *protected content*
equals the original (unprotected bits — the accessed bit and the metadata
fields — are outside the MAC's contract). Mis-corrections (MAC accepts a
wrong value) are counted separately and must be zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import CACHELINE_BYTES, PAGE_BYTES, PTGuardConfig
from repro.core import pattern
from repro.dram.rowhammer import inject_uniform_flips
from repro.harness.system import System, build_system
from repro.os.process import Process

P_FLIP_POINTS = (1 / 512, 1 / 256, 1 / 128)

# Figure 9 shows 4 SPEC-2017 and 2 GAP workloads plus the average.
FIGURE9_WORKLOADS = ("xalancbmk", "mcf", "lbm", "povray", "bc", "pr")


@dataclass
class CorrectionStats:
    """Results for one (workload, p_flip) cell."""

    workload: str
    p_flip: float
    lines_injected: int = 0
    lines_erroneous: int = 0
    lines_detected: int = 0
    lines_corrected: int = 0
    miscorrections: int = 0
    winning_steps: Dict[str, int] = field(default_factory=dict)

    @property
    def corrected_fraction(self) -> float:
        return self.lines_corrected / self.lines_erroneous if self.lines_erroneous else 0.0

    @property
    def detection_coverage(self) -> float:
        return self.lines_detected / self.lines_erroneous if self.lines_erroneous else 1.0


def _workload_process(system: System, name: str, seed: int) -> Process:
    """A process whose page tables resemble the named workload's.

    Large workloads get a dense contiguous footprint plus sparse library
    regions; small ones mostly sparse regions — matching the PTE-locality
    spread the correction strategies exploit.
    """
    from repro.cpu.workloads import get_workload

    profile = get_workload(name)
    rng = random.Random((seed, name).__str__())
    kernel = system.kernel
    process = kernel.create_process(name)
    # A sibling process faults pages concurrently, so the buddy allocator
    # interleaves frames between the two — real machines show partial,
    # not perfect, PFN contiguity (Fig 8: 23.7%).
    sibling = kernel.create_process(f"{name}-bg")
    sibling_vma = kernel.mmap(sibling, 1 << 14, at=0x0000_3000_0000_0000)
    sibling_cursor = 0
    va = 0x0000_2000_0000_0000
    # Dense footprint region (scaled down: the PTE *structure* matters,
    # not the byte count).
    dense_pages = max(64, min(4096, profile.footprint_mib * 16))
    vma = kernel.mmap(process, dense_pages, at=va, name="footprint")
    for page in range(dense_pages):
        kernel.handle_page_fault(process, vma.start + page * PAGE_BYTES)
        # Interleave: the sibling steals frames with workload-dependent
        # frequency (random-access workloads interleave more).
        if rng.random() < 0.1 + 0.35 * profile.random_fraction:
            kernel.handle_page_fault(
                sibling, sibling_vma.start + sibling_cursor * PAGE_BYTES
            )
            sibling_cursor += 1
    va = vma.end + 16 * PAGE_BYTES
    # Sparse library-like regions.
    for _ in range(12):
        pages = rng.randint(2, 48)
        vma = kernel.mmap(process, pages, at=va, name="lib")
        for page in range(pages):
            if rng.random() < 0.4:
                kernel.handle_page_fault(process, vma.start + page * PAGE_BYTES)
        va = vma.end + 16 * PAGE_BYTES
    return process


def _walked_pte_lines(system: System, process: Process) -> List[int]:
    """Physical line addresses of the leaf PTE lines a full walk touches."""
    lines = set()
    for vpn in process.frames:
        entry_address = process.page_table.leaf_entry_address(vpn * PAGE_BYTES)
        if entry_address is not None:
            lines.add(entry_address & ~(CACHELINE_BYTES - 1))
    return sorted(lines)


def workload_process(system: System, name: str, seed: int) -> Process:
    """Public alias of :func:`_workload_process` (used by fault campaigns)."""
    return _workload_process(system, name, seed)


def walked_pte_lines(system: System, process: Process) -> List[int]:
    """Public alias of :func:`_walked_pte_lines` (used by fault campaigns)."""
    return _walked_pte_lines(system, process)


def evaluate_workload(
    workload: str,
    p_flip: float,
    max_lines: int = 400,
    trials_per_line: int = 3,
    seed: int = 7,
    guard_config: Optional[PTGuardConfig] = None,
) -> CorrectionStats:
    """Fig-9 cell: inject faults into one workload's walked PTE lines."""
    config = guard_config or PTGuardConfig(correction_enabled=True)
    system = build_system(ptguard=config, mac_algorithm="blake2", seed=seed)
    process = _workload_process(system, workload, seed)
    line_addresses = _walked_pte_lines(system, process)
    rng = random.Random((seed, workload, p_flip).__str__())
    if len(line_addresses) > max_lines:
        line_addresses = rng.sample(line_addresses, max_lines)

    guard = system.guard
    assert guard is not None
    stats = CorrectionStats(workload=workload, p_flip=p_flip)
    protected_mask_line = None

    for line_address in line_addresses:
        stored = system.memory.read_line(line_address)
        original_protected = pattern.mask_unprotected(stored, config.max_phys_bits)
        for _ in range(trials_per_line):
            faulty, flipped = inject_uniform_flips(stored, p_flip, rng)
            stats.lines_injected += 1
            if not flipped:
                continue
            erroneous = faulty != stored
            if not erroneous:
                continue
            stats.lines_erroneous += 1
            outcome = guard.process_read(line_address, faulty, is_pte=True)
            if outcome.pte_check_failed or outcome.corrected or not outcome.mac_matched:
                stats.lines_detected += 1
            else:
                # The MAC matched the faulty line outright: flips landed
                # only in unprotected bits (accessed/metadata). The PTE's
                # protected content is intact — not an integrity event.
                stats.lines_detected += 1
                stats.lines_corrected += 1
                continue
            if outcome.corrected:
                repaired = pattern.mask_unprotected(
                    pattern.embed_mac(outcome.line, 0), config.max_phys_bits
                )
                if repaired == original_protected:
                    stats.lines_corrected += 1
                    step = outcome.correction.winning_step if outcome.correction else "?"
                    stats.winning_steps[step] = stats.winning_steps.get(step, 0) + 1
                else:
                    stats.miscorrections += 1
    return stats


@dataclass
class Figure9Result:
    """The full grid: workloads x p_flip."""

    cells: List[CorrectionStats]

    def average_corrected(self, p_flip: float) -> float:
        relevant = [c for c in self.cells if abs(c.p_flip - p_flip) < 1e-12]
        if not relevant:
            return 0.0
        return sum(c.corrected_fraction for c in relevant) / len(relevant)

    def cell(self, workload: str, p_flip: float) -> CorrectionStats:
        for c in self.cells:
            if c.workload == workload and abs(c.p_flip - p_flip) < 1e-12:
                return c
        raise KeyError((workload, p_flip))


def figure9_cell_job(
    workload: str,
    p_flip: float,
    max_lines: int,
    trials_per_line: int,
    seed: int,
) -> "SimJob":
    """The :class:`SimJob` form of one :func:`evaluate_workload` cell.

    The seed sits in the params (hence in the content-addressed key), so
    the cell's fault-injection RNG stream is fixed by the job identity,
    not by which worker or run order executes it. The label (display
    only, outside the key) names the cell for journals and failures.
    """
    from repro.harness.parallel import SimJob

    return SimJob(
        kind="figure9_cell",
        params={
            "workload": workload,
            "p_flip": p_flip,
            "max_lines": max_lines,
            "trials_per_line": trials_per_line,
            "seed": seed,
        },
        label=f"fig9/{workload}/p_flip=1-{round(1 / p_flip)}",
    )


def run_figure9(
    workloads=FIGURE9_WORKLOADS,
    p_flips=P_FLIP_POINTS,
    max_lines: int = 300,
    trials_per_line: int = 3,
    seed: int = 7,
    workers: Optional[int] = None,
    cache=None,
) -> Figure9Result:
    """Full Figure-9 reproduction, one job per (workload, p_flip) cell."""
    from repro.harness.parallel import run_jobs

    jobs = [
        figure9_cell_job(workload, p_flip, max_lines, trials_per_line, seed)
        for workload in workloads
        for p_flip in p_flips
    ]
    return Figure9Result(cells=run_jobs(jobs, workers=workers, cache=cache))
