"""Denial-of-Service and OS-response analysis (paper Sec IV-G, VII-B).

When PT-Guard detects bit flips, the OS receives an exception and must
choose a response; an adversary might weaponise detection into a DoS by
repeatedly flipping a victim's PTEs. This module models the OS playbook
the paper sketches — terminate the victim, remap the victim's page
tables to a different physical row, or terminate the process resident in
the aggressor row — and measures the outcome of each policy under a
sustained attack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.common.config import CACHELINE_BYTES, PAGE_BYTES, PTGuardConfig
from repro.harness.system import System, build_system
from repro.mmu.walker import PTEIntegrityException
from repro.os.process import Process


@dataclass
class DoSOutcome:
    """Result of one sustained-attack episode under an OS policy."""

    policy: str
    attack_rounds: int
    victim_kills: int
    successful_accesses: int
    remaps: int
    attacker_killed: bool

    @property
    def availability(self) -> float:
        """Fraction of victim accesses that succeeded during the attack."""
        total = self.successful_accesses + self.victim_kills
        return self.successful_accesses / total if total else 0.0


class DoSExperiment:
    """A repeated-flip adversary against one victim process."""

    def __init__(self, policy: str = "kill_victim", rounds: int = 20, seed: int = 3):
        if policy not in ("kill_victim", "remap_victim", "kill_aggressor"):
            raise ValueError(f"unknown policy {policy!r}")
        self.policy = policy
        self.rounds = rounds
        self.rng = random.Random(seed)
        self.system: System = build_system(ptguard=PTGuardConfig())
        self.kernel = self.system.kernel
        self.victim: Process = self.kernel.create_process("victim")
        self.vma = self.kernel.mmap(self.victim, 8, populate=True)

    def _flip_victim_pte(self) -> int:
        entry = self.victim.page_table.leaf_entry_address(self.vma.start)
        line = entry & ~(CACHELINE_BYTES - 1)
        self.system.memory.flip_bit(line, self.rng.randrange(512))
        return line

    def _remap_page_table(self) -> None:
        """Move the victim's leaf page-table page to a fresh frame —
        the paper's 'remap the row experiencing bit flips' response."""
        old_steps = self.victim.page_table.walk_software(self.vma.start)
        assert old_steps is not None
        # Rebuild the mapping from scratch in a new leaf table: simplest
        # faithful model — unmap + remap reallocates via map()'s walk.
        for page in range(self.vma.num_pages):
            va = self.vma.start + page * PAGE_BYTES
            pfn = self.victim.frames.get(va >> 12)
            if pfn is not None:
                self.victim.page_table.map(va, pfn, writable=True, user=True)

    def run(self) -> DoSOutcome:
        kills = 0
        successes = 0
        remaps = 0
        attacker_killed = False
        for _ in range(self.rounds):
            self._flip_victim_pte()
            self.kernel.walker.flush_all()
            try:
                self.kernel.access_virtual(self.victim, self.vma.start)
                successes += 1
                continue
            except PTEIntegrityException:
                pass
            if self.policy == "kill_victim":
                kills += 1
                # The OS restarts the victim: fresh tables, clean state.
                self.kernel.destroy_process(self.victim)
                self.victim = self.kernel.create_process("victim")
                self.vma = self.kernel.mmap(self.victim, 8, populate=True)
            elif self.policy == "remap_victim":
                remaps += 1
                self._remap_page_table()
                self.kernel.walker.flush_all()
                try:
                    self.kernel.access_virtual(self.victim, self.vma.start)
                    successes += 1
                except PTEIntegrityException:
                    kills += 1
            elif self.policy == "kill_aggressor":
                # With the aggressor gone, no further flips arrive.
                attacker_killed = True
                kills += 1
                self._remap_page_table()
                self.kernel.walker.flush_all()
                break
        if attacker_killed:
            # Post-attack: the victim runs unharassed.
            for _ in range(self.rounds):
                try:
                    self.kernel.access_virtual(self.victim, self.vma.start)
                    successes += 1
                except PTEIntegrityException:
                    kills += 1
        return DoSOutcome(
            policy=self.policy,
            attack_rounds=self.rounds,
            victim_kills=kills,
            successful_accesses=successes,
            remaps=remaps,
            attacker_killed=attacker_killed,
        )


def compare_policies(rounds: int = 16, seed: int = 3) -> List[DoSOutcome]:
    """Run every OS response policy against the same adversary."""
    return [
        DoSExperiment(policy, rounds=rounds, seed=seed).run()
        for policy in ("kill_victim", "remap_victim", "kill_aggressor")
    ]
