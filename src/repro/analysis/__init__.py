"""Experiment analyses: one module per paper table/figure family."""

from repro.analysis.attack_matrix import (
    ConsumptionExperiment,
    FlipExperiment,
    run_consumption_matrix,
    run_flip_experiment,
    run_flip_matrix,
)
from repro.analysis.correction_eval import (
    CorrectionStats,
    Figure9Result,
    evaluate_workload,
    run_figure9,
)
from repro.analysis.perf_eval import (
    Figure6Row,
    Figure7Point,
    run_figure6,
    run_figure7,
    summarize_figure6,
)
from repro.analysis.pte_profile import (
    PopulationConfig,
    PopulationProfile,
    ProcessProfile,
    profile_population,
    profile_process,
    run_figure8,
    synthesize_population,
)
from repro.analysis.fault_matrix import (
    format_fault_matrix,
    run_fault_matrix,
    single_bit_summary,
)
from repro.analysis.reporting import ascii_bars, banner, format_table

__all__ = [
    "ConsumptionExperiment",
    "FlipExperiment",
    "run_consumption_matrix",
    "run_flip_experiment",
    "run_flip_matrix",
    "CorrectionStats",
    "Figure9Result",
    "evaluate_workload",
    "run_figure9",
    "Figure6Row",
    "Figure7Point",
    "run_figure6",
    "run_figure7",
    "summarize_figure6",
    "PopulationConfig",
    "PopulationProfile",
    "ProcessProfile",
    "profile_population",
    "profile_process",
    "run_figure8",
    "synthesize_population",
    "format_fault_matrix",
    "run_fault_matrix",
    "single_bit_summary",
    "ascii_bars",
    "banner",
    "format_table",
]

from repro.analysis.dos_eval import DoSExperiment, DoSOutcome, compare_policies  # noqa: E402
from repro.analysis.overhead_model import (  # noqa: E402
    EnergyEstimate,
    agreement_error,
    energy_estimate,
    predicted_slowdown_percent,
)

__all__ += [
    "DoSExperiment",
    "DoSOutcome",
    "compare_policies",
    "EnergyEstimate",
    "agreement_error",
    "energy_estimate",
    "predicted_slowdown_percent",
]

from repro.analysis.frontier_eval import (  # noqa: E402
    FrontierRow,
    format_frontier_report,
    run_frontier,
)
from repro.analysis.siege_eval import (  # noqa: E402
    AdaptiveSiegeCell,
    SiegeCell,
    run_adaptive_siege_cell,
    run_siege_cell,
)

__all__ += [
    "FrontierRow",
    "format_frontier_report",
    "run_frontier",
    "AdaptiveSiegeCell",
    "SiegeCell",
    "run_adaptive_siege_cell",
    "run_siege_cell",
]
