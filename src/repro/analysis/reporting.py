"""Plain-text table rendering for experiment output.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 100 else f"{cell:.1f}"
    return str(cell)


def format_percent(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}%"


def banner(title: str, width: int = 72) -> str:
    """Section banner for bench output."""
    pad = max(0, width - len(title) - 4)
    return f"== {title} {'=' * pad}"


def ascii_bars(
    labels: Sequence[str], values: Sequence[float], width: int = 40, unit: str = ""
) -> str:
    """Horizontal bar chart in ASCII (for figure-shaped bench output)."""
    if not values:
        return "(no data)"
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(value / peak * width))) if value > 0 else ""
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.2f}{unit}")
    return "\n".join(lines)
