"""System assembly and experiment harness."""

from repro.harness.chaos import ChaosPolicy
from repro.harness.parallel import (
    ExecutionPolicy,
    FabricStats,
    ResultCache,
    SimJob,
    SimJobError,
    SweepJournal,
    default_workers,
    execution_policy,
    last_run_stats,
    run_jobs,
    set_execution_policy,
)
from repro.harness.system import System, build_system

__all__ = [
    "System",
    "build_system",
    "ChaosPolicy",
    "ExecutionPolicy",
    "FabricStats",
    "ResultCache",
    "SimJob",
    "SimJobError",
    "SweepJournal",
    "default_workers",
    "execution_policy",
    "last_run_stats",
    "run_jobs",
    "set_execution_policy",
]
