"""System assembly and experiment harness."""

from repro.harness.system import System, build_system

__all__ = ["System", "build_system"]
