"""System assembly and experiment harness."""

from repro.harness.chaos import ChaosPolicy
from repro.harness.parallel import (
    BACKENDS,
    ExecutionPolicy,
    ExecutorBackend,
    FabricStats,
    InProcessBackend,
    ProcessPoolBackend,
    ResultCache,
    SimJob,
    SimJobError,
    SweepJournal,
    ThreadedLocalBackend,
    default_workers,
    execution_policy,
    get_backend,
    last_run_stats,
    run_jobs,
    set_execution_policy,
)
from repro.harness.system import System, build_system

__all__ = [
    "System",
    "build_system",
    "BACKENDS",
    "ChaosPolicy",
    "ExecutionPolicy",
    "ExecutorBackend",
    "FabricStats",
    "InProcessBackend",
    "ProcessPoolBackend",
    "ResultCache",
    "SimJob",
    "SimJobError",
    "SweepJournal",
    "ThreadedLocalBackend",
    "default_workers",
    "execution_policy",
    "get_backend",
    "last_run_stats",
    "run_jobs",
    "set_execution_policy",
]
