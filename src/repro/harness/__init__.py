"""System assembly and experiment harness."""

from repro.harness.parallel import (
    ResultCache,
    SimJob,
    SimJobError,
    default_workers,
    run_jobs,
)
from repro.harness.system import System, build_system

__all__ = [
    "System",
    "build_system",
    "ResultCache",
    "SimJob",
    "SimJobError",
    "default_workers",
    "run_jobs",
]
