"""Content-addressed post-boot snapshots: fabric cells skip boot entirely.

Every fabric cell used to pay a fixed boot tax before diverging on its
own parameters: build the machine, create the workload process, map (and
possibly prefault) its regions, warm translations, seed fault-target
lines — identical work for every cell that shares a configuration. This
module memoizes that work *post-boot*: the first cell to boot a given
configuration snapshots the fully-booted engine state under a content
digest; every later cell deep-restores a private copy and proceeds
straight to its own (seeded, per-cell) work.

Correctness model
-----------------
A snapshot is keyed by the sha256 of ``{schema, kind, params}`` where
``params`` is the canonical JSON of every input that can influence boot
state: workload identity/geometry, MAC backend, guard configuration and
the build seed. Inputs that *cannot* influence boot state are excluded
so more cells share a snapshot — notably ``mac_latency_cycles``, which
the guard reads per access (``guard.config`` is patched to the caller's
real config after restore; see :func:`repro.analysis.perf_eval.run_workload`).
The build ``seed`` is **included**: the DRAM device RNG, the guard's
MAC secret and the identifier sequence are all derived from it at boot.

Restores hand out a private ``copy.deepcopy`` of the memoized payload,
never the payload itself, so a cell can mutate its machine freely.
Whether a payload was freshly booted, memo-restored or disk-restored is
invisible to the cell — the equivalence is asserted by
``tests/test_boot_snapshot.py`` and byte-diffed end-to-end by the CI
``snapshot-equivalence-smoke`` job against ``REPRO_BOOT_SNAPSHOT=0``.

Storage
-------
Two tiers, both per config digest:

* a per-process LRU memo (:data:`_MEMO_ENTRIES` entries) — the fast path
  for serial sweeps and for pool workers that run many cells;
* an on-disk entry ``<cache dir>/boot_snapshots/<digest>.pkl`` in the
  existing result-cache directory (``REPRO_CACHE_DIR``), written
  atomically (tmp + rename) with a sha256 content header — the cross-
  process/cross-run path.

Disk entries are invalidated by construction: any change to the schema
version, a boot input, or the payload's pickled shape changes the digest
or fails the content check; a corrupt entry is discarded (unlinked) and
the cell boots fresh. Any I/O or pickling failure degrades to memo-only
operation with a one-time warning — snapshots are an optimisation, never
a correctness dependency.

``REPRO_BOOT_SNAPSHOT=0`` (:func:`repro.common.config.boot_snapshot_enabled`)
disables the layer entirely; runs under ``--validate`` bypass it too, so
the runtime invariant checker always inspects a machine it watched boot.
"""

from __future__ import annotations

import contextlib
import copy
import hashlib
import json
import logging
import os
import pathlib
import pickle
from collections import OrderedDict
from typing import Any, Callable, Mapping, Optional

logger = logging.getLogger(__name__)

#: Bump to invalidate every existing snapshot (payload shape changes).
SNAPSHOT_SCHEMA_VERSION = 1

#: Booted systems are tens of MB deep-copied; keep the memo small.
_MEMO_ENTRIES = 8

_memo: "OrderedDict[str, Any]" = OrderedDict()
_disk_broken = False  # first I/O / pickling failure disables the disk tier


def snapshot_digest(kind: str, params: Mapping[str, Any]) -> str:
    """sha256 over the canonical JSON of (schema version, kind, params)."""
    body = json.dumps(
        {"schema": SNAPSHOT_SCHEMA_VERSION, "kind": kind, "params": params},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def snapshot_dir() -> pathlib.Path:
    """Disk tier location, inside the existing result-cache directory."""
    from repro.harness.parallel import default_cache_dir

    return default_cache_dir() / "boot_snapshots"


def reset() -> None:
    """Drop the in-process memo and re-arm the disk tier (tests/benches)."""
    global _disk_broken
    _memo.clear()
    _disk_broken = False


def _remember(digest: str, payload: Any) -> None:
    _memo[digest] = payload
    _memo.move_to_end(digest)
    while len(_memo) > _MEMO_ENTRIES:
        _memo.popitem(last=False)


def fetch(digest: str) -> Optional[Any]:
    """A private deep copy of the payload for ``digest``, or None."""
    payload = _memo.get(digest)
    if payload is not None:
        _memo.move_to_end(digest)
        return copy.deepcopy(payload)
    path = snapshot_dir() / f"{digest}.pkl"
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    header, _, body = blob.partition(b"\n")
    try:
        intact = header.decode("ascii") == hashlib.sha256(body).hexdigest()
    except UnicodeDecodeError:
        intact = False
    if intact:
        try:
            payload = pickle.loads(body)
        except Exception:  # noqa: BLE001 — stale/foreign pickle == corrupt
            intact = False
    if not intact:
        logger.warning(
            "boot snapshot %s failed its content check -- discarding "
            "(the cell boots fresh)",
            path.name,
        )
        with contextlib.suppress(OSError):
            path.unlink()
        return None
    _remember(digest, payload)
    return copy.deepcopy(payload)


def store(digest: str, payload: Any) -> None:
    """Memoize ``payload`` (a pristine copy is taken; the caller's object
    stays live and mutable) and write the disk entry if the tier works."""
    global _disk_broken
    pristine = copy.deepcopy(payload)
    _remember(digest, pristine)
    if _disk_broken:
        return
    try:
        body = pickle.dumps(pristine, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # noqa: BLE001 — unpicklable component
        _disk_broken = True
        logger.warning(
            "boot snapshot payload is not picklable (%s) -- disk tier "
            "disabled for this process, memo stays active",
            exc,
        )
        return
    try:
        directory = snapshot_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{digest}.pkl"
        tmp = path.with_name(f".{digest}.{os.getpid()}.tmp")
        tmp.write_bytes(
            hashlib.sha256(body).hexdigest().encode("ascii") + b"\n" + body
        )
        os.replace(tmp, path)
    except OSError as exc:
        _disk_broken = True
        logger.warning(
            "boot snapshot write failed (%s) -- disk tier disabled for "
            "this process, memo stays active",
            exc,
        )


def cached_boot(kind: str, params: Mapping[str, Any], boot: Callable[[], Any]) -> Any:
    """Return the booted payload for ``(kind, params)``.

    On a hit the caller receives a private deep copy of the snapshot; on
    a miss ``boot()`` runs, its result is snapshotted, and the *original*
    (never a copy) is returned — so the miss path is the cold-boot path,
    observable state included. Disabled (always boots) when
    ``REPRO_BOOT_SNAPSHOT=0`` or under ``--validate``.
    """
    from repro.common.config import boot_snapshot_enabled
    from repro.faults.invariants import validation_enabled

    if not boot_snapshot_enabled() or validation_enabled():
        return boot()
    digest = snapshot_digest(kind, params)
    payload = fetch(digest)
    if payload is None:
        payload = boot()
        store(digest, payload)
    return payload
