"""Full-system assembly: wire DRAM, PT-Guard, caches, MMU, kernel, core.

:func:`build_system` is the main entry point of the library — it
assembles the machine of paper Table III with or without PT-Guard and
returns a :class:`System` handle exposing every layer, so examples,
tests, attacks and benchmarks all construct their machines the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import PTGuardConfig, SystemConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.core.guard import PTGuard
from repro.cpu.core import InOrderCore
from repro.cpu.trace import TraceGenerator
from repro.cpu.workloads import WorkloadProfile
from repro.dram.device import DRAMDevice, MitigationPolicy
from repro.dram.rowhammer import RowhammerProfile
from repro.mem.controller import MemoryController
from repro.mem.memory import PhysicalMemory
from repro.mmu.mmu_cache import MMUCache
from repro.mmu.tlb import TLB
from repro.mmu.walker import PageWalker
from repro.os.kernel import Kernel
from repro.os.process import Process

from repro.common.config import MIB

HOT_BASE = 0x0000_5000_0000_0000
COLD_BASE = 0x0000_6000_0000_0000


@dataclass
class System:
    """One assembled machine."""

    config: SystemConfig
    memory: PhysicalMemory
    dram: DRAMDevice
    guard: Optional[PTGuard]
    controller: MemoryController
    hierarchy: CacheHierarchy
    kernel: Kernel

    def new_core(self, process: Process) -> InOrderCore:
        """A hardware thread with private TLB/MMU-cache over the shared
        hierarchy (single-core experiments use exactly one)."""
        walker = PageWalker(self.hierarchy, tlb=TLB(self.config.tlb.entries),
                            mmu_cache=MMUCache(self.config.tlb.mmu_cache_bytes,
                                               self.config.tlb.mmu_cache_assoc))
        return InOrderCore(self.hierarchy, walker, self.kernel, process)

    def workload_process(self, profile: WorkloadProfile, seed: int = 1):
        """Create a process + trace pair laid out for ``profile``."""
        from repro.cpu.trace import HOT_REGION_BYTES

        process = self.kernel.create_process(profile.name)
        trace = TraceGenerator(profile, hot_base=HOT_BASE, cold_base=COLD_BASE, seed=seed)
        self.kernel.mmap(
            process,
            HOT_REGION_BYTES // 4096,
            name="hot",
            at=HOT_BASE,
        )
        self.kernel.mmap(
            process,
            profile.footprint_mib * MIB // 4096,
            name="cold",
            at=COLD_BASE,
        )
        return process, trace


def build_system(
    config: Optional[SystemConfig] = None,
    ptguard: Optional[PTGuardConfig] = None,
    mac_algorithm: str = "blake2",
    rowhammer: Optional[RowhammerProfile] = None,
    mitigation: Optional[MitigationPolicy] = None,
    seed: int = 2023,
    spare_rows: int = 0,
) -> System:
    """Assemble a machine.

    Parameters
    ----------
    config:
        Machine configuration (defaults to paper Table III).
    ptguard:
        PT-Guard configuration, or None for the unprotected baseline. A
        guard config already present in ``config.ptguard`` is used when
        this argument is None.
    mac_algorithm:
        ``"qarma"`` (paper primitive), ``"siphash"``, ``"blake2"``
        (default; fast and keyed) or ``"pseudo"`` (timing runs only).
    rowhammer:
        DRAM vulnerability profile; None disables bit flips.
    mitigation:
        Optional in-DRAM mitigation (e.g. TRR) for attack experiments.
    spare_rows:
        Rows reserved for retirement (repro.recovery). Reserved *before*
        the kernel is built so the allocator never hands out their pages.
    """
    config = config if config is not None else SystemConfig()
    guard_config = ptguard if ptguard is not None else config.ptguard
    memory = PhysicalMemory(config.dram.size_bytes)
    dram = DRAMDevice(
        config.dram,
        memory,
        rowhammer_profile=rowhammer,
        mitigation=mitigation,
        seed=seed,
    )
    guard = (
        PTGuard(guard_config, mac_algorithm=mac_algorithm, seed=seed)
        if guard_config is not None
        else None
    )
    if spare_rows:
        dram.reserve_spare_rows(spare_rows)
    controller = MemoryController(dram, guard)
    hierarchy = CacheHierarchy(config, controller)
    # Hardware coherence: foreign stores (the kernel's port) invalidate
    # stale cached copies.
    controller.attach_coherent_cache(hierarchy)
    kernel = Kernel(controller, config)
    return System(
        config=config,
        memory=memory,
        dram=dram,
        guard=guard,
        controller=controller,
        hierarchy=hierarchy,
        kernel=kernel,
    )
