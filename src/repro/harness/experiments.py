"""Named experiments: one entry per paper table/figure (DESIGN.md index).

Each function runs an experiment at a configurable scale and returns a
formatted report string; the CLI (:mod:`repro.harness.runner`) and the
benchmarks call these, so the rows/series the paper reports come from a
single code path.

Scale control: ``scale=1.0`` is the bench default (minutes); the paper's
full scale is reached with larger factors (e.g. ``--scale 5``) —
absolute magnitudes are simulator-bound, shapes stabilise well before
full scale.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.analysis import (
    ascii_bars,
    banner,
    format_table,
    run_consumption_matrix,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_flip_matrix,
    summarize_figure6,
)
from repro.analysis.correction_eval import FIGURE9_WORKLOADS, P_FLIP_POINTS
from repro.common.config import PTGuardConfig, optimized_ptguard_config
from repro.core import security
from repro.core.guard import PTGuard
from repro.harness.parallel import ResultCache
from repro.mmu.pte import ARMV8_LAYOUT, X86_64_LAYOUT


def env_scale(default: float = 1.0) -> float:
    """Scale factor from the REPRO_SCALE environment variable."""
    try:
        return float(os.environ.get("REPRO_SCALE", default))
    except ValueError:
        return default


def scaled_process_count(
    scale: float, base: int = 623, floor: int = 20, cap: int = 1400
) -> int:
    """Process-population size for Figure 8 at a given scale.

    ``base`` is the paper's 623-process Ubuntu profile; small scales are
    floored at ``floor`` so the statistics stay meaningful and large
    scales are clamped at ``cap`` (beyond which the 4 GB simulated DRAM
    starts rejecting allocations).
    """
    return max(floor, min(cap, int(base * scale)))


def experiment_tables_1_2() -> str:
    """Tables I and II: the architectural PTE layouts."""
    lines = [banner("Table I: x86_64 PTE layout")]
    lines.append(
        format_table(
            ["bits", "purpose"],
            [
                (f"{hi}:{lo}" if hi != lo else str(hi), name)
                for name, (hi, lo) in X86_64_LAYOUT.items()
            ],
        )
    )
    lines.append("")
    lines.append(banner("Table II: ARMv8 PTE layout"))
    lines.append(format_table(
        ["bits", "purpose"],
        [
            (f"{hi}:{lo}" if hi != lo else str(hi), name)
            for name, (hi, lo) in ARMV8_LAYOUT.items()
        ],
    ))
    return "\n".join(lines)


def experiment_figure6(
    scale: float = 1.0,
    workloads: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> str:
    """Figure 6: normalized IPC + MPKI across the 25 workloads."""
    mem_ops = int(20_000 * scale)
    warmup = int(12_000 * scale)
    rows = run_figure6(
        workloads, mem_ops=mem_ops, warmup_ops=warmup, workers=workers, cache=cache
    )
    summary = summarize_figure6(rows)
    out = [banner("Figure 6: PT-Guard normalized IPC and LLC MPKI")]
    out.append(
        format_table(
            ["workload", "suite", "MPKI(meas)", "MPKI(paper)", "IPC/IPCb",
             "slowdown%", "opt-slowdown%"],
            [
                (
                    r.workload,
                    r.suite,
                    round(r.measured_mpki, 1),
                    r.target_mpki,
                    round(r.normalized_ipc, 4),
                    round(r.slowdown_percent, 2),
                    round(r.optimized_slowdown_percent, 2)
                    if r.optimized_slowdown_percent is not None
                    else "-",
                )
                for r in rows
            ],
        )
    )
    out.append("")
    out.append(
        f"AMEAN slowdown: {summary['amean_slowdown_percent']:.2f}% "
        f"(paper: 1.3%) | GMEAN normalized IPC: "
        f"{summary['gmean_normalized_ipc']:.4f} | worst "
        f"{summary['worst_slowdown_percent']:.2f}% (paper: 3.6% xalancbmk)"
    )
    if "optimized_amean_slowdown_percent" in summary:
        out.append(
            f"Optimized: AMEAN {summary['optimized_amean_slowdown_percent']:.2f}% "
            f"(paper: 0.2%), worst "
            f"{summary['optimized_worst_slowdown_percent']:.2f}% (paper: 0.4%)"
        )
    out.append("")
    out.append(banner("slowdown by workload (shape of Fig 6 top)"))
    out.append(
        ascii_bars(
            [r.workload for r in rows],
            [max(0.0, r.slowdown_percent) for r in rows],
            unit="%",
        )
    )
    return "\n".join(out)


def experiment_figure7(
    scale: float = 1.0,
    workloads: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> str:
    """Figure 7: slowdown vs MAC latency for both designs."""
    mem_ops = int(20_000 * scale)
    warmup = int(12_000 * scale)
    if workloads is None:
        # Default to a representative subset: full 25 x 8 runs is slow.
        workloads = ["xalancbmk", "lbm", "mcf", "pr", "bwaves", "xz", "povray", "namd"]
    points = run_figure7(
        workloads, mem_ops=mem_ops, warmup_ops=warmup, workers=workers, cache=cache
    )
    out = [banner("Figure 7: slowdown vs MAC-computation latency")]
    out.append(
        format_table(
            ["design", "MAC cycles", "avg slowdown%", "worst slowdown%", "worst workload"],
            [
                (
                    p.design,
                    p.mac_latency,
                    round(p.average_slowdown_percent, 2),
                    round(p.worst_slowdown_percent, 2),
                    p.worst_workload,
                )
                for p in points
            ],
        )
    )
    out.append(
        "paper: PT-Guard avg 0.7% (5cy) -> 2.6% (20cy); "
        "Optimized stays below 0.3% at every latency"
    )
    return "\n".join(out)


def experiment_figure8(scale: float = 1.0) -> str:
    """Figure 8: PTE PFN-category distribution over the process population."""
    profile = run_figure8(num_processes=scaled_process_count(scale))
    out = [banner(f"Figure 8: PTE locality over {len(profile.processes)} processes")]
    rows = []
    for category, paper in (("zero", 64.13), ("contiguous", 23.73), ("non_contiguous", 12.14)):
        rows.append(
            (
                category,
                f"{profile.mean_fraction(category) * 100:.2f}%",
                f"{profile.stderr_fraction(category) * 100:.3f}",
                f"{paper:.2f}%",
            )
        )
    out.append(format_table(["category", "measured", "stderr", "paper"], rows))
    ranked = profile.sorted_by_contiguity()
    step = max(1, len(ranked) // 20)
    out.append("")
    out.append(banner("per-process contiguous fraction (sorted, Fig 8 shape)"))
    out.append(
        ascii_bars(
            [p.name for p in ranked[::step]],
            [p.contiguous_fraction * 100 for p in ranked[::step]],
            unit="%",
        )
    )
    return "\n".join(out)


def experiment_figure9(
    scale: float = 1.0,
    workloads: Sequence[str] = FIGURE9_WORKLOADS,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> str:
    """Figure 9: fraction of faulty PTE lines corrected per p_flip."""
    max_lines = int(200 * scale)
    result = run_figure9(
        workloads=workloads,
        max_lines=max_lines,
        trials_per_line=3,
        workers=workers,
        cache=cache,
    )
    out = [banner("Figure 9: best-effort correction of faulty PTE cachelines")]
    rows = []
    for workload in workloads:
        row = [workload]
        for p_flip in P_FLIP_POINTS:
            cell = result.cell(workload, p_flip)
            row.append(f"{cell.corrected_fraction * 100:.1f}%")
        rows.append(tuple(row))
    rows.append(
        tuple(
            ["AVERAGE"]
            + [f"{result.average_corrected(p) * 100:.1f}%" for p in P_FLIP_POINTS]
        )
    )
    out.append(format_table(["workload", "p=1/512", "p=1/256", "p=1/128"], rows))
    out.append("paper: 93% average at p=1/512, 70% at p=1/128; 100% detection")
    total_mis = sum(c.miscorrections for c in result.cells)
    total_err = sum(c.lines_erroneous for c in result.cells)
    covered = all(c.detection_coverage == 1.0 for c in result.cells if c.lines_erroneous)
    out.append(
        f"detection coverage 100%: {covered} | mis-corrections: {total_mis} "
        f"over {total_err} faulty lines (paper: none)"
    )
    return "\n".join(out)


def experiment_campaign(
    scale: float = 1.0,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    scenarios: Optional[Sequence[str]] = None,
    validate: Optional[bool] = None,
    recovery: Optional[dict] = None,
) -> str:
    """Fault-injection campaign: Fig 9's coverage plus the extended
    scenario matrix under the eight-class outcome taxonomy."""
    from repro.analysis.fault_matrix import format_fault_matrix, run_fault_matrix
    from repro.faults.invariants import validation_enabled

    if validate is None:
        validate = validation_enabled()
    trials = max(20, int(120 * scale))
    result = run_fault_matrix(
        scenarios=scenarios,
        trials_per_cell=trials,
        validate=validate,
        workers=workers,
        cache=cache,
        recovery=recovery,
    )
    return format_fault_matrix(result)


def experiment_siege(
    scale: float = 1.0,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    validate: Optional[bool] = None,
    recovery: Optional[dict] = None,
) -> str:
    """Sustained-attack siege: survival time, availability and the
    recovery-latency distribution across attack intensities
    (:mod:`repro.analysis.siege_eval`)."""
    from repro.analysis.siege_eval import format_siege_report, run_siege
    from repro.faults.invariants import validation_enabled

    if validate is None:
        validate = validation_enabled()
    windows = max(8, int(48 * scale))
    cells = run_siege(
        windows=windows,
        validate=validate,
        recovery=recovery,
        workers=workers,
        cache=cache,
    )
    return format_siege_report(cells)


def experiment_frontier(
    scale: float = 1.0,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    validate: Optional[bool] = None,
    strategies: Optional[list] = None,
    policy_grid: Optional[str] = None,
    windows: Optional[int] = None,
) -> str:
    """Worst-case availability frontier: every recovery policy in the
    search grid against every adaptive attack strategy
    (:mod:`repro.analysis.frontier_eval`)."""
    from repro.analysis.frontier_eval import format_frontier_report, run_frontier
    from repro.faults.invariants import validation_enabled

    if validate is None:
        validate = validation_enabled()
    if windows is None:
        windows = max(8, int(48 * scale))
    rows, cells = run_frontier(
        windows=windows,
        validate=validate,
        policies=policy_grid,
        strategies=strategies,
        workers=workers,
        cache=cache,
    )
    return format_frontier_report(rows, cells)


def experiment_security_analysis() -> str:
    """Sections IV-G and VI-E: the analytical security model."""
    out = [banner("Security analysis (Eq 1, Eq 2)")]
    rows = []
    for k in range(0, 7):
        summary = security.summarize(soft_match_k=k)
        rows.append(
            (
                k,
                f"2^{-security.effective_mac_bits(96, k, 372):.1f}".replace("-", ""),
                round(summary.effective_bits, 1),
                round(summary.security_loss, 1),
                f"{summary.p_uncorrectable * 100:.3f}%",
                f"{summary.years_to_attack:.2e}",
            )
        )
    out.append(
        format_table(
            ["k", "p_escape", "n_eff bits", "loss bits", "p_uncorr (p=1%)", "years to attack"],
            rows,
        )
    )
    chosen = security.choose_soft_match_k(96, 0.01)
    out.append(
        f"chosen k for p_flip=1% (Sec VI-E policy): {chosen} (paper: 4); "
        f"n_eff at k=4, Gmax=372: {security.effective_mac_bits(96, 4, 372):.1f} "
        f"bits (paper: 66)"
    )
    out.append(
        f"exact-match 96-bit MAC time-to-attack: "
        f"{security.years_to_attack(96):.2e} years (paper: >1e14)"
    )
    return "\n".join(out)


def experiment_storage() -> str:
    """Section V-E: SRAM budget."""
    base = PTGuard(PTGuardConfig())
    optimized = PTGuard(optimized_ptguard_config())
    out = [banner("Section V-E: SRAM storage budget")]
    out.append(
        format_table(
            ["design", "SRAM bytes", "paper"],
            [
                ("PT-Guard", base.sram_bytes, 52),
                ("Optimized PT-Guard", optimized.sram_bytes, 71),
            ],
        )
    )
    return "\n".join(out)


def experiment_attack_matrix() -> str:
    """Sections II/VIII: the attack-vs-defense story."""
    out = [banner("Bit-flip layer: hammering pattern vs deployed mitigation")]
    out.append(
        format_table(
            ["defense", "attack", "PTE row flipped", "any flips", "mitig refreshes"],
            [
                (e.defense, e.attack, e.victim_flipped, e.any_flips, e.mitigation_refreshes)
                for e in run_flip_matrix()
            ],
        )
    )
    out.append("")
    out.append(banner("PTE-consumption layer: tampering vs page-table protection"))
    out.append(
        format_table(
            ["protection", "scenario", "prevented", "why"],
            [
                (e.protection, e.scenario, e.prevented, e.note)
                for e in run_consumption_matrix()
            ],
        )
    )
    return "\n".join(out)


def experiment_multicore(
    scale: float = 1.0,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> str:
    """Section VII-C: 4-core slowdown (SAME and MIX)."""
    from repro.cpu.multicore import make_random_mix, make_same_mix, slowdown_job
    from repro.harness.parallel import run_jobs

    mem_ops = int(4000 * scale)
    out = [banner("Section VII-C: 4-core slowdown")]
    labelled = [
        (
            f"SAME-{name}",
            slowdown_job(
                make_same_mix(name),
                mem_ops_per_core=mem_ops,
                label=f"sec7c/SAME-{name}",
            ),
        )
        for name in ("lbm", "xalancbmk", "xz", "namd")
    ]
    for seed in (1, 2):
        mix = make_random_mix(seed)
        labelled.append(
            (
                f"MIX-{seed} ({','.join(mix)})",
                slowdown_job(
                    mix,
                    mem_ops_per_core=mem_ops,
                    seed=seed,
                    label=f"sec7c/MIX-{seed}",
                ),
            )
        )
    slowdowns = run_jobs(
        [job for _, job in labelled], workers=workers, cache=cache
    )
    rows = [
        (label, round(s, 2)) for (label, _), s in zip(labelled, slowdowns)
    ]
    out.append(format_table(["configuration", "slowdown %"], rows))
    out.append(
        f"average: {sum(slowdowns) / len(slowdowns):.2f}% | worst: "
        f"{max(slowdowns):.2f}% (paper: 0.5% avg / 1.6% worst with O3 cores; "
        "our blocking in-order cores keep full stall exposure, so absolute "
        "values sit closer to the single-core numbers)"
    )
    return "\n".join(out)


EXPERIMENTS = {
    "tables12": experiment_tables_1_2,
    "fig6": experiment_figure6,
    "fig7": experiment_figure7,
    "fig8": experiment_figure8,
    "fig9": experiment_figure9,
    "security": experiment_security_analysis,
    "storage": experiment_storage,
    "attacks": experiment_attack_matrix,
    "multicore": experiment_multicore,
    "campaign": experiment_campaign,
    "siege": experiment_siege,
    "frontier": experiment_frontier,
}
