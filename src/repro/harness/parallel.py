"""Parallel experiment fabric: job fan-out + content-addressed result cache.

The paper's evaluation is a grid of *independent* simulations (Fig 6 is
25 workloads x 3 configurations, Fig 7 is workloads x MAC latencies x 2
designs, Fig 9 is workloads x p_flip). Each cell builds its own
:class:`~repro.harness.system.System` from nothing but its parameters
and a seed, so cells can run in any order, in any process, and be
replayed from a cache — the results are a pure function of the job.

Three pieces:

* :class:`SimJob` — a picklable description of one simulation cell:
  a ``kind`` (dispatch key into the job registry) plus a flat, JSON-able
  ``params`` mapping. Its :meth:`SimJob.key` is a stable SHA-256 over
  the canonical JSON of (schema version, kind, params); the seed is part
  of ``params``, chosen by the *emitter*, never by execution order — the
  determinism argument in one line.
* :func:`run_jobs` — executes a job list and returns results **in job
  order**. ``workers=1`` runs fully in-process (debuggable with pdb);
  ``workers>1`` shards jobs round-robin by index over a
  ``multiprocessing`` pool (deterministic assignment, deterministic
  reassembly). A job that raises anywhere surfaces as
  :class:`SimJobError` carrying the worker traceback — never a hang.
* :class:`ResultCache` — an on-disk, content-addressed store of encoded
  results keyed by :meth:`SimJob.key`. Any change to the config, the
  workload, the op counts, the seed or :data:`CACHE_SCHEMA_VERSION`
  changes the key, so stale entries are unreachable rather than
  invalidated.

Every result — cached or fresh, serial or parallel — passes through the
same encode/decode pair, so all execution modes hand back *identical*
objects and downstream report strings are byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pathlib
import traceback
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

CACHE_SCHEMA_VERSION = 1


class SimJobError(RuntimeError):
    """A simulation job raised; carries the job identity and the worker
    traceback so parallel failures read like serial ones."""


@dataclass(frozen=True)
class SimJob:
    """One simulation cell: ``kind`` dispatches, ``params`` parameterise.

    ``params`` must be JSON-able primitives (str/int/float/bool/None,
    lists, flat dicts) — that is what makes the job picklable for the
    pool *and* hashable for the cache with one canonical form.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def canonical(self) -> str:
        """Stable serialisation: the content that is addressed."""
        return json.dumps(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "kind": self.kind,
                "params": self.params,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def key(self) -> str:
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()


# -- job registry -------------------------------------------------------------
#
# kind -> (run, encode, decode). ``run(params) -> result`` does the
# simulation; ``encode`` maps the result to a JSON-able payload and
# ``decode`` inverts it. run_jobs round-trips *every* result through
# encode/decode so cached and fresh results are indistinguishable.

JobSpec = Tuple[
    Callable[[Mapping[str, Any]], Any],
    Callable[[Any], Any],
    Callable[[Any], Any],
]

_REGISTRY: Dict[str, JobSpec] = {}


def register_job_kind(
    kind: str,
    run: Callable[[Mapping[str, Any]], Any],
    encode: Callable[[Any], Any] = lambda result: result,
    decode: Callable[[Any], Any] = lambda payload: payload,
) -> None:
    """Register a job kind. Built-in kinds are registered below; tests may
    add their own (visible to pool workers under the ``fork`` start
    method, which Linux provides)."""
    _REGISTRY[kind] = (run, encode, decode)


def _spec(kind: str) -> JobSpec:
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise SimJobError(f"unknown job kind {kind!r}") from None


def execute_job(job: SimJob) -> Any:
    """Run one job and return its *encoded* payload."""
    run, encode, _ = _spec(job.kind)
    return encode(run(job.params))


def decode_result(job: SimJob, payload: Any) -> Any:
    return _spec(job.kind)[2](payload)


# -- built-in job kinds -------------------------------------------------------
#
# Imports stay inside the runners: harness.parallel is imported by the
# analysis/cpu modules that emit jobs, so the back-edges must be lazy.


def _guard_config_from(params: Optional[Mapping[str, Any]]):
    from repro.common.config import PTGuardConfig

    return None if params is None else PTGuardConfig(**params)


def guard_config_params(config) -> Optional[Dict[str, Any]]:
    """Canonical JSON-able form of a PTGuardConfig (or None baseline)."""
    return None if config is None else asdict(config)


def _run_workload_job(params: Mapping[str, Any]):
    from repro.analysis.perf_eval import run_workload
    from repro.cpu.workloads import get_workload

    return run_workload(
        get_workload(params["workload"]),
        _guard_config_from(params["config"]),
        mem_ops=params["mem_ops"],
        warmup_ops=params["warmup_ops"],
        seed=params["seed"],
        prefault=params.get("prefault", False),
        mac_algorithm=params.get("mac_algorithm", "pseudo"),
    )


def _encode_core_result(result) -> Dict[str, Any]:
    return asdict(result)


def _decode_core_result(payload):
    from repro.cpu.core import CoreResult

    return CoreResult(**payload)


def _run_figure9_cell(params: Mapping[str, Any]):
    from repro.analysis.correction_eval import evaluate_workload

    return evaluate_workload(
        params["workload"],
        params["p_flip"],
        max_lines=params["max_lines"],
        trials_per_line=params["trials_per_line"],
        seed=params["seed"],
        guard_config=_guard_config_from(params.get("config")),
    )


def _encode_correction_stats(stats) -> Dict[str, Any]:
    return asdict(stats)


def _decode_correction_stats(payload):
    from repro.analysis.correction_eval import CorrectionStats

    return CorrectionStats(**payload)


def _run_multicore_slowdown(params: Mapping[str, Any]) -> float:
    from repro.cpu.multicore import multicore_slowdown

    return multicore_slowdown(
        list(params["mix"]),
        mem_ops_per_core=params["mem_ops_per_core"],
        mac_latency=params["mac_latency"],
        seed=params["seed"],
    )


register_job_kind(
    "workload_run", _run_workload_job, _encode_core_result, _decode_core_result
)
register_job_kind(
    "figure9_cell",
    _run_figure9_cell,
    _encode_correction_stats,
    _decode_correction_stats,
)
register_job_kind("multicore_slowdown", _run_multicore_slowdown)


# -- result cache -------------------------------------------------------------


def default_cache_dir() -> pathlib.Path:
    """``REPRO_CACHE_DIR`` or ``~/.cache/ptguard-repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "ptguard-repro"


class ResultCache:
    """Content-addressed on-disk store of encoded job results.

    Layout: ``<root>/<key[:2]>/<key>.json`` holding the job's canonical
    identity next to its payload (self-describing for debugging).
    Writes are atomic (tmp + rename), so concurrent workers and
    concurrent *runs* can share a cache directory safely — last writer
    wins with identical bytes.
    """

    def __init__(self, root: Optional[pathlib.Path] = None):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, job: SimJob) -> Optional[Any]:
        """The encoded payload for ``job``, or None on a miss."""
        path = self._path(job.key())
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, job: SimJob, payload: Any) -> None:
        key = job.key()
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps(
            {"kind": job.kind, "params": job.params, "result": payload},
            sort_keys=True,
        )
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
        tmp.write_text(body + "\n", encoding="utf-8")
        os.replace(tmp, path)


# -- execution ----------------------------------------------------------------


def default_workers() -> int:
    """``REPRO_WORKERS`` or the machine's CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _run_shard(shard: Sequence[Tuple[int, SimJob]]) -> List[Tuple[int, bool, Any]]:
    """Pool worker: run one shard serially, never raise across the pipe."""
    out: List[Tuple[int, bool, Any]] = []
    for index, job in shard:
        try:
            out.append((index, True, execute_job(job)))
        except Exception:
            out.append((index, False, (job.kind, dict(job.params), traceback.format_exc())))
    return out


def _raise_job_error(info: Tuple[str, Dict[str, Any], str]) -> None:
    kind, params, trace = info
    raise SimJobError(
        f"job kind={kind!r} params={params!r} raised in worker:\n{trace}"
    )


def _pool_context():
    # fork keeps test-registered job kinds and the configured sys.path
    # visible in workers; fall back to the platform default elsewhere.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_jobs(
    jobs: Sequence[SimJob],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> List[Any]:
    """Execute ``jobs`` and return decoded results in job order.

    ``workers=None`` resolves through :func:`default_workers`;
    ``workers=1`` (or a single missing job) runs in-process. With a
    ``cache``, hits skip execution entirely and fresh results are stored
    back; the returned objects are identical either way because both
    paths round-trip through the job kind's encode/decode pair.
    """
    resolved = default_workers() if workers is None else max(1, workers)
    payloads: List[Optional[Any]] = [None] * len(jobs)
    done = [False] * len(jobs)

    if cache is not None:
        for index, job in enumerate(jobs):
            hit = cache.get(job)
            if hit is not None:
                payloads[index] = hit
                done[index] = True

    missing = [(index, job) for index, job in enumerate(jobs) if not done[index]]
    if missing:
        if resolved <= 1 or len(missing) == 1:
            for index, job in missing:
                try:
                    payloads[index] = execute_job(job)
                except SimJobError:
                    raise
                except Exception:
                    _raise_job_error((job.kind, dict(job.params), traceback.format_exc()))
        else:
            pool_size = min(resolved, len(missing))
            shards = [missing[offset::pool_size] for offset in range(pool_size)]
            context = _pool_context()
            with context.Pool(processes=pool_size) as pool:
                for batch in pool.map(_run_shard, shards):
                    for index, ok, payload in batch:
                        if not ok:
                            _raise_job_error(payload)
                        payloads[index] = payload
        if cache is not None:
            for index, job in missing:
                cache.put(job, payloads[index])

    return [decode_result(job, payloads[index]) for index, job in enumerate(jobs)]
