"""Parallel experiment fabric: job fan-out, result cache, resilience.

The paper's evaluation is a grid of *independent* simulations (Fig 6 is
25 workloads x 3 configurations, Fig 7 is workloads x MAC latencies x 2
designs, Fig 9 is workloads x p_flip). Each cell builds its own
:class:`~repro.harness.system.System` from nothing but its parameters
and a seed, so cells can run in any order, in any process, and be
replayed from a cache — the results are a pure function of the job.

Pieces:

* :class:`SimJob` — a picklable description of one simulation cell:
  a ``kind`` (dispatch key into the job registry) plus a flat, JSON-able
  ``params`` mapping, and an optional human-readable ``label`` used in
  logs/journals (never in the cache key). Its :meth:`SimJob.key` is a
  stable SHA-256 over the canonical JSON of (schema version, kind,
  params); the seed is part of ``params``, chosen by the *emitter*,
  never by execution order — the determinism argument in one line.
* :func:`run_jobs` — executes a job list and returns results **in job
  order**. ``workers=1`` runs fully in-process (debuggable with pdb);
  ``workers>1`` runs a supervised worker pool with per-job wall-clock
  deadlines, hung-worker kill, retry with exponential backoff for
  *transient* failures (crashes/timeouts — see the
  :class:`~repro.common.errors.SimJobError` taxonomy), and graceful
  degradation to in-process serial execution when the pool itself keeps
  failing. A job that raises anywhere surfaces as a
  :class:`SimJobError` carrying the worker traceback — never a hang.
* :class:`ExecutorBackend` — *how* the missing cells actually execute,
  behind one contract: :class:`InProcessBackend` (serial, the degraded
  path), :class:`ProcessPoolBackend` (the supervised pool above) and
  :class:`ThreadedLocalBackend` (a thread pool, built for embedding many
  concurrent sweeps in one process — the fabric service). ``run_jobs``
  picks one automatically from ``workers``, or callers name one
  explicitly (``backend=``, ``ExecutionPolicy.backend``,
  ``REPRO_BACKEND``). Reports are byte-identical across all three; the
  conformance suite (``tests/test_backend_conformance.py``) enforces it.

Execution policy and per-run stats are **context-local**
(:mod:`contextvars`), not process-global: concurrent sweeps — two
service tenants on different dispatcher threads, a nested sweep inside a
job — each see their own :class:`ExecutionPolicy` and
:func:`last_run_stats`, never each other's.
* :class:`ResultCache` — an on-disk, content-addressed store of encoded
  results keyed by :meth:`SimJob.key`. Any change to the config, the
  workload, the op counts, the seed or :data:`CACHE_SCHEMA_VERSION`
  changes the key, so stale entries are unreachable rather than
  invalidated. Every entry carries a SHA-256 digest of its payload that
  is verified on read; corrupt/truncated entries are quarantined to
  ``<root>/quarantine/`` and recomputed, never trusted and never fatal.
* :class:`SweepJournal` — an append-only JSONL manifest, one file per
  sweep under ``<cache root>/journals/``, recording each completed cell
  as it lands. Completed cells also hit the cache *immediately*
  (write-through), so a run interrupted by SIGINT/SIGKILL/OOM resumes
  with ``--resume`` recomputing only the missing cells — and, because
  every result round-trips the same encode/decode pair, emitting
  byte-identical report strings.

Deterministic fault injection for all of the above lives in
:mod:`repro.harness.chaos`.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import json
import logging
import multiprocessing
import os
import pathlib
import queue as queue_module
import threading
import time
import traceback
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.common.errors import (
    ConfigurationError,
    JobExecutionError,
    JobTimeoutError,
    RetryBudgetExceededError,
    SimJobError,
    UnknownJobKindError,
    WorkerCrashError,
)

logger = logging.getLogger(__name__)

# Version 2: entries grew a payload digest (verified on read).
CACHE_SCHEMA_VERSION = 2

# Supervisor poll granularity: deadline checks and worker-death scans
# happen at least this often while waiting for results.
_POLL_INTERVAL_S = 0.05

# Exit status a chaos-killed worker dies with (mirrors SIGKILL/OOM).
CHAOS_KILL_EXIT = 137


@dataclass(frozen=True)
class SimJob:
    """One simulation cell: ``kind`` dispatches, ``params`` parameterise.

    ``params`` must be JSON-able primitives (str/int/float/bool/None,
    lists, flat dicts) — that is what makes the job picklable for the
    pool *and* hashable for the cache with one canonical form.
    ``label`` is display-only (logs, journal, error messages): it is
    excluded from equality and from the cache key, so fig 6 and fig 7
    can label the same underlying cell differently and still share it.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = field(default=None, compare=False)

    def canonical(self) -> str:
        """Stable serialisation: the content that is addressed."""
        return json.dumps(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "kind": self.kind,
                "params": self.params,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def key(self) -> str:
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short identity for logs: label (or kind) plus a key prefix."""
        return f"{self.label or self.kind}[{self.key()[:8]}]"


# -- job registry -------------------------------------------------------------
#
# kind -> (run, encode, decode). ``run(params) -> result`` does the
# simulation; ``encode`` maps the result to a JSON-able payload and
# ``decode`` inverts it. run_jobs round-trips *every* result through
# encode/decode so cached and fresh results are indistinguishable.

JobSpec = Tuple[
    Callable[[Mapping[str, Any]], Any],
    Callable[[Any], Any],
    Callable[[Any], Any],
]

_REGISTRY: Dict[str, JobSpec] = {}


def register_job_kind(
    kind: str,
    run: Callable[[Mapping[str, Any]], Any],
    encode: Callable[[Any], Any] = lambda result: result,
    decode: Callable[[Any], Any] = lambda payload: payload,
) -> None:
    """Register a job kind. Built-in kinds are registered below; tests may
    add their own (visible to pool workers under the ``fork`` start
    method, which Linux provides)."""
    _REGISTRY[kind] = (run, encode, decode)


def _spec(kind: str) -> JobSpec:
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise UnknownJobKindError(f"unknown job kind {kind!r}") from None


def execute_job(job: SimJob) -> Any:
    """Run one job and return its *encoded* payload."""
    run, encode, _ = _spec(job.kind)
    return encode(run(job.params))


def decode_result(job: SimJob, payload: Any) -> Any:
    return _spec(job.kind)[2](payload)


# -- built-in job kinds -------------------------------------------------------
#
# Imports stay inside the runners: harness.parallel is imported by the
# analysis/cpu modules that emit jobs, so the back-edges must be lazy.


def _guard_config_from(params: Optional[Mapping[str, Any]]):
    from repro.common.config import PTGuardConfig

    return None if params is None else PTGuardConfig(**params)


def guard_config_params(config) -> Optional[Dict[str, Any]]:
    """Canonical JSON-able form of a PTGuardConfig (or None baseline)."""
    return None if config is None else asdict(config)


def _run_workload_job(params: Mapping[str, Any]):
    from repro.analysis.perf_eval import run_workload
    from repro.cpu.workloads import get_workload

    return run_workload(
        get_workload(params["workload"]),
        _guard_config_from(params["config"]),
        mem_ops=params["mem_ops"],
        warmup_ops=params["warmup_ops"],
        seed=params["seed"],
        prefault=params.get("prefault", False),
        mac_algorithm=params.get("mac_algorithm", "pseudo"),
    )


def _encode_core_result(result) -> Dict[str, Any]:
    return asdict(result)


def _decode_core_result(payload):
    from repro.cpu.core import CoreResult

    return CoreResult(**payload)


def _run_figure9_cell(params: Mapping[str, Any]):
    from repro.analysis.correction_eval import evaluate_workload

    return evaluate_workload(
        params["workload"],
        params["p_flip"],
        max_lines=params["max_lines"],
        trials_per_line=params["trials_per_line"],
        seed=params["seed"],
        guard_config=_guard_config_from(params.get("config")),
    )


def _encode_correction_stats(stats) -> Dict[str, Any]:
    return asdict(stats)


def _decode_correction_stats(payload):
    from repro.analysis.correction_eval import CorrectionStats

    return CorrectionStats(**payload)


def _run_multicore_slowdown(params: Mapping[str, Any]) -> float:
    from repro.cpu.multicore import multicore_slowdown

    return multicore_slowdown(
        list(params["mix"]),
        mem_ops_per_core=params["mem_ops_per_core"],
        mac_latency=params["mac_latency"],
        seed=params["seed"],
    )


def _run_fault_campaign_cell(params: Mapping[str, Any]):
    from repro.faults.campaign import run_campaign_cell

    return run_campaign_cell(
        scenario=params["scenario"],
        trials=params["trials"],
        seed=params["seed"],
        workload=params["workload"],
        validate=params.get("validate", False),
        mac_algorithm=params.get("mac_algorithm", "blake2"),
        recovery=params.get("recovery"),
    )


def _encode_campaign_cell(cell) -> Dict[str, Any]:
    return asdict(cell)


def _decode_campaign_cell(payload):
    from repro.faults.campaign import CampaignCell

    return CampaignCell(**payload)


def _run_siege_cell(params: Mapping[str, Any]):
    from repro.analysis.siege_eval import run_siege_cell

    return run_siege_cell(
        intensity=params["intensity"],
        faults_per_window=params["faults_per_window"],
        windows=params["windows"],
        seed=params["seed"],
        workload=params["workload"],
        validate=params.get("validate", False),
        recovery=params.get("recovery"),
    )


def _encode_siege_cell(cell) -> Dict[str, Any]:
    return asdict(cell)


def _decode_siege_cell(payload):
    from repro.analysis.siege_eval import SiegeCell

    return SiegeCell(**payload)


def _run_adaptive_siege_cell(params: Mapping[str, Any]):
    from repro.analysis.siege_eval import run_adaptive_siege_cell

    return run_adaptive_siege_cell(
        strategy=params["strategy"],
        windows=params["windows"],
        seed=params["seed"],
        workload=params["workload"],
        validate=params.get("validate", False),
        recovery=params.get("recovery"),
    )


def _decode_adaptive_siege_cell(payload):
    from repro.analysis.siege_eval import AdaptiveSiegeCell

    return AdaptiveSiegeCell(**payload)


register_job_kind(
    "workload_run", _run_workload_job, _encode_core_result, _decode_core_result
)
register_job_kind(
    "figure9_cell",
    _run_figure9_cell,
    _encode_correction_stats,
    _decode_correction_stats,
)
register_job_kind("multicore_slowdown", _run_multicore_slowdown)
register_job_kind(
    "fault_campaign_cell",
    _run_fault_campaign_cell,
    _encode_campaign_cell,
    _decode_campaign_cell,
)
register_job_kind(
    "siege_cell",
    _run_siege_cell,
    _encode_siege_cell,
    _decode_siege_cell,
)
register_job_kind(
    "adaptive_siege_cell",
    _run_adaptive_siege_cell,
    _encode_siege_cell,
    _decode_adaptive_siege_cell,
)


# -- result cache -------------------------------------------------------------


def default_cache_dir() -> pathlib.Path:
    """``REPRO_CACHE_DIR`` or ``~/.cache/ptguard-repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "ptguard-repro"


def payload_digest(payload: Any) -> str:
    """SHA-256 over the canonical JSON of an encoded result payload."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed on-disk store of encoded job results.

    Layout: ``<root>/<key[:2]>/<key>.json`` holding the job's canonical
    identity next to its payload and a SHA-256 ``digest`` of the payload
    (self-describing for debugging, self-verifying on read). Writes are
    atomic (tmp + rename), so concurrent workers and concurrent *runs*
    can share a cache directory safely — last writer wins with identical
    bytes.

    Read-side integrity: :meth:`get` re-derives the payload digest and
    treats any unparsable or digest-mismatching entry as *corrupt* —
    the file is moved to ``<root>/quarantine/`` (kept for post-mortem),
    ``corrupt`` is incremented and the lookup degrades to a miss, so a
    flipped bit on disk costs one recompute, never a crash and never a
    silently wrong report. Genuine I/O failures other than a missing
    file (e.g. ``EACCES``) are counted in ``io_errors`` and warned about
    once per cache instance instead of silently masquerading as misses.

    The quarantine directory is bounded: once it exceeds
    ``quarantine_limit`` entries (``REPRO_QUARANTINE_LIMIT``, default 64;
    0 or negative disables the cap) the oldest entries are evicted and a
    single summary line is logged, so repeated chaos runs keep recent
    evidence without growing the directory forever.
    """

    def __init__(
        self,
        root: Optional[pathlib.Path] = None,
        quarantine_limit: Optional[int] = None,
    ):
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        if quarantine_limit is None:
            quarantine_limit = int(
                os.environ.get("REPRO_QUARANTINE_LIMIT", "64") or "64"
            )
        self.quarantine_limit = quarantine_limit
        self.quarantine_evictions = 0
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.io_errors = 0
        self.put_errors = 0
        self._io_warned = False
        self._put_warned = False

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.root / "quarantine"

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: pathlib.Path, job: SimJob, why: str) -> None:
        self.corrupt += 1
        target = self.quarantine_dir / path.name
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            with contextlib.suppress(OSError):
                path.unlink()
        logger.warning(
            "quarantined corrupt cache entry for %s (%s) -> %s; recomputing",
            job.describe(),
            why,
            target,
        )
        self._enforce_quarantine_limit()

    def _enforce_quarantine_limit(self) -> None:
        """Evict oldest quarantined entries beyond the cap (one log line)."""
        limit = self.quarantine_limit
        if limit is None or limit <= 0:
            return
        try:
            entries = sorted(
                self.quarantine_dir.glob("*.json"),
                key=lambda p: (p.stat().st_mtime, p.name),
            )
        except OSError:
            return
        excess = len(entries) - limit
        if excess <= 0:
            return
        evicted = 0
        for path in entries[:excess]:
            with contextlib.suppress(OSError):
                path.unlink()
                evicted += 1
        if evicted:
            self.quarantine_evictions += evicted
            logger.warning(
                "quarantine at cap (%d entries): evicted %d oldest "
                "(REPRO_QUARANTINE_LIMIT raises the cap)",
                limit,
                evicted,
            )

    def get(self, job: SimJob) -> Optional[Any]:
        """The encoded payload for ``job``, or None on a miss.

        Corrupt entries (bad JSON, missing fields, digest mismatch) are
        quarantined and reported as misses; I/O errors other than
        "file not found" are counted and warned about, then reported as
        misses so a sweep degrades to recomputation instead of dying.
        """
        path = self._path(job.key())
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            self.io_errors += 1
            if not self._io_warned:
                self._io_warned = True
                logger.warning(
                    "cache read failed (%s: %s) -- treating as a miss; "
                    "further I/O errors are counted in io_errors without "
                    "repeating this warning",
                    type(exc).__name__,
                    exc,
                )
            self.misses += 1
            return None
        try:
            entry = json.loads(text)
            payload = entry["result"]
            digest = entry["digest"]
        except (ValueError, KeyError, TypeError):
            self._quarantine(path, job, "unparsable entry")
            self.misses += 1
            return None
        if payload_digest(payload) != digest:
            self._quarantine(path, job, "payload digest mismatch")
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def _write_entry(self, job: SimJob, payload: Any) -> None:
        key = job.key()
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps(
            {
                "kind": job.kind,
                "params": job.params,
                "result": payload,
                "digest": payload_digest(payload),
            },
            sort_keys=True,
        )
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
        tmp.write_text(body + "\n", encoding="utf-8")
        os.replace(tmp, path)

    def put(self, job: SimJob, payload: Any) -> bool:
        """Write ``job``'s result through to disk; False on a disk fault.

        A failed write-through (ENOSPC, EIO, an unwritable root) costs
        durability, not correctness: the in-memory result is unaffected
        and the sweep keeps going, so a full disk degrades the cache to
        memory-only instead of killing the campaign. Failures are
        counted in ``put_errors`` and warned about once per cache
        instance — the durable service surfaces the count as
        ``durability: degraded`` in its health probes.
        """
        try:
            self._write_entry(job, payload)
        except OSError as exc:
            self.put_errors += 1
            if not self._put_warned:
                self._put_warned = True
                logger.warning(
                    "cache write failed (%s: %s) -- result kept in memory "
                    "only; further write failures are counted in put_errors "
                    "without repeating this warning",
                    type(exc).__name__,
                    exc,
                )
            return False
        return True

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "io_errors": self.io_errors,
            "put_errors": self.put_errors,
            "quarantine_evictions": self.quarantine_evictions,
        }


# -- sweep journal ------------------------------------------------------------


def sweep_id(jobs: Sequence[SimJob]) -> str:
    """Stable identity of a sweep: a hash over its ordered job keys."""
    digest = hashlib.sha256()
    for job in jobs:
        digest.update(job.key().encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def journal_flush_interval(default: int = 16) -> int:
    """Journal fsync cadence from ``REPRO_JOURNAL_FLUSH``.

    Every append is still *flushed* (visible to readers immediately);
    this bounds how many appends may ride between *fsyncs* — the
    crash-durability knob. ``1`` restores the original fsync-per-append
    behaviour; :func:`run_jobs` forces that under chaos injection so the
    torn-tail/resume tests keep exercising worst-case journals. Losing
    the tail of a journal is always safe: payloads live in the
    write-through cache, so a resume merely re-reads a few cells it
    would have skipped. Unset or invalid values fall back to
    ``default``; values below 1 clamp to 1.
    """
    raw = os.environ.get("REPRO_JOURNAL_FLUSH")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(1, value)


class SweepJournal:
    """Append-only JSONL manifest of one sweep's progress.

    One file per sweep (named by :func:`sweep_id`) next to the cache:
    ``<cache root>/journals/<sweep id>.jsonl``. Records are flushed per
    append and fsynced at least every ``fsync_interval`` appends
    (:func:`journal_flush_interval`), so after SIGKILL/OOM the journal
    is at worst missing a bounded tail — and :meth:`load` tolerates
    exactly that by discarding a truncated line. The journal is
    bookkeeping, not a data store: payloads live in the cache (written
    through as cells finish), which is what makes ``--resume`` recompute
    only the missing cells.
    """

    def __init__(self, path: pathlib.Path, fsync_interval: int = 1):
        self.path = pathlib.Path(path)
        self.fsync_interval = max(1, fsync_interval)
        self._handle = None
        self._unsynced = 0

    def append(self, record: Mapping[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._unsynced += 1
        if self._unsynced >= self.fsync_interval:
            self.sync()

    def sync(self) -> None:
        """Force the durability point up to the last append."""
        if self._handle is not None and self._unsynced:
            os.fsync(self._handle.fileno())
        self._unsynced = 0

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    @staticmethod
    def load(path: pathlib.Path) -> List[Dict[str, Any]]:
        """All parseable records; a torn final line (crash mid-append)
        and anything after it are dropped."""
        records: List[Dict[str, Any]] = []
        try:
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        records.append(json.loads(line))
                    except ValueError:
                        break
        except OSError:
            return []
        return records


# -- execution policy ---------------------------------------------------------


@dataclass
class ExecutionPolicy:
    """Resilience knobs for :func:`run_jobs`.

    ``timeout_s`` — per-job wall-clock deadline; a worker that exceeds
    it is killed and the job retried (None disables enforcement).
    ``retries`` — how many *additional* attempts a transiently-failing
    job (crash/timeout) gets before the run gives up with
    :class:`RetryBudgetExceededError`. Permanent failures (the job's own
    code raised) are never retried. Retries back off exponentially:
    ``backoff_base_s * 2**attempt`` capped at ``backoff_cap_s``.
    ``max_worker_restarts`` — pool-level failure budget (default
    ``3 * pool size``); beyond it the pool is abandoned and, when
    ``fallback_serial`` is set, the remaining jobs run in-process with a
    warning. ``chaos`` is a :class:`repro.harness.chaos.ChaosPolicy`
    for deterministic fault injection; ``resume`` marks an explicitly
    resumed run (journal bookkeeping only — cached cells are reused
    either way). ``backend`` names an executor backend (a
    :data:`BACKENDS` key) to force for every sweep under this policy;
    None keeps the automatic workers-based choice.
    """

    timeout_s: Optional[float] = None
    retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    fallback_serial: bool = True
    max_worker_restarts: Optional[int] = None
    chaos: Optional[Any] = None
    resume: bool = False
    backend: Optional[str] = None

    @classmethod
    def from_env(cls) -> "ExecutionPolicy":
        """Defaults, overridden by REPRO_TIMEOUT / REPRO_RETRIES /
        REPRO_CHAOS / REPRO_BACKEND where set (unparsable values warn
        and are ignored)."""
        policy = cls()
        backend = os.environ.get("REPRO_BACKEND")
        if backend:
            if backend in BACKENDS:
                policy.backend = backend
            else:
                logger.warning(
                    "ignoring unknown REPRO_BACKEND=%r (choose from %s)",
                    backend,
                    ", ".join(sorted(BACKENDS)),
                )
        timeout = os.environ.get("REPRO_TIMEOUT")
        if timeout:
            try:
                policy.timeout_s = max(0.001, float(timeout))
            except ValueError:
                logger.warning("ignoring unparsable REPRO_TIMEOUT=%r", timeout)
        retries = os.environ.get("REPRO_RETRIES")
        if retries:
            try:
                policy.retries = max(0, int(retries))
            except ValueError:
                logger.warning("ignoring unparsable REPRO_RETRIES=%r", retries)
        spec = os.environ.get("REPRO_CHAOS")
        if spec:
            from repro.harness.chaos import ChaosPolicy

            try:
                policy.chaos = ChaosPolicy.from_spec(spec)
            except ValueError as exc:
                logger.warning("ignoring unparsable REPRO_CHAOS=%r (%s)", spec, exc)
        return policy


# Context-local, not process-global: each thread (and each copied
# context, e.g. a service dispatcher) resolves its own default policy,
# so two concurrent sweeps in one process can never observe each other's
# timeouts, chaos injection or backend choice. A fresh context lazily
# re-reads the environment, which is exactly the old process-global
# cold-start behaviour.
_POLICY_VAR: contextvars.ContextVar[Optional[ExecutionPolicy]] = (
    contextvars.ContextVar("repro_execution_policy", default=None)
)


def get_execution_policy() -> ExecutionPolicy:
    policy = _POLICY_VAR.get()
    if policy is None:
        policy = ExecutionPolicy.from_env()
        _POLICY_VAR.set(policy)
    return policy


def set_execution_policy(policy: Optional[ExecutionPolicy]) -> None:
    """Install the context-local default policy (None re-reads the env).

    Context-local means per thread / per :mod:`contextvars` context:
    setting a policy on one service dispatcher thread leaves every other
    sweep's policy untouched.
    """
    _POLICY_VAR.set(policy)


@contextlib.contextmanager
def execution_policy(policy: ExecutionPolicy) -> Iterator[ExecutionPolicy]:
    """Temporarily install ``policy`` as this context's default."""
    token = _POLICY_VAR.set(policy)
    try:
        yield policy
    finally:
        _POLICY_VAR.reset(token)


@dataclass
class FabricStats:
    """Observability for the last :func:`run_jobs` call (per context)."""

    jobs: int = 0
    cached: int = 0
    fresh: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    quarantined: int = 0
    resumed_cells: int = 0
    degraded: bool = False

    def eventful(self) -> bool:
        """True when anything beyond plain execution happened."""
        return bool(
            self.retries
            or self.timeouts
            or self.crashes
            or self.quarantined
            or self.degraded
            or self.resumed_cells
        )


_STATS_VAR: contextvars.ContextVar[Optional[FabricStats]] = (
    contextvars.ContextVar("repro_last_run_stats", default=None)
)


def last_run_stats() -> FabricStats:
    """Stats of the most recent run_jobs call in this context.

    Context-local like the execution policy: a sweep running on another
    thread (another service tenant, a nested sweep) never overwrites the
    stats this caller is about to read. A context that has not run any
    sweep yet reads all-zero stats.
    """
    stats = _STATS_VAR.get()
    return stats if stats is not None else FabricStats()


# -- execution ----------------------------------------------------------------


def default_workers() -> int:
    """``REPRO_WORKERS`` or the machine's CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def job_batch_size() -> int:
    """``REPRO_JOB_BATCH``: cells dispatched per worker task (default 1).

    Each pool task round-trips a queue message, a pickle of the job(s)
    and a supervisor wake-up; for sweeps of many short cells that
    dispatch overhead dominates. Batching N cells per task amortises it
    N-fold: results come back as one pickled bulk list and are completed
    (cached, journaled) individually, so ordering, write-through,
    resume and report bytes are identical to unbatched dispatch — the
    per-job deadline is simply enforced at chunk granularity
    (``timeout_s x chunk length``). 1 preserves the historical
    one-task-per-cell behaviour.
    """
    env = os.environ.get("REPRO_JOB_BATCH")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            logger.warning("ignoring unparsable REPRO_JOB_BATCH=%r", env)
    return 1


START_METHOD_PREFERENCE = ("fork", "forkserver", "spawn")


def _pool_context():
    """An explicitly chosen multiprocessing context.

    Preference chain fork -> forkserver -> spawn (first available), so
    behaviour never depends on the platform default: fork keeps
    test-registered job kinds and the configured sys.path visible in
    workers; forkserver/spawn re-import modules, which still covers the
    built-in kinds. ``REPRO_START_METHOD`` forces a specific method
    (useful for exercising the spawn path on Linux).
    """
    available = multiprocessing.get_all_start_methods()
    override = os.environ.get("REPRO_START_METHOD")
    if override:
        if override not in available:
            raise ConfigurationError(
                f"REPRO_START_METHOD={override!r} is not available on this "
                f"platform (available: {', '.join(available)})"
            )
        return multiprocessing.get_context(override)
    for method in START_METHOD_PREFERENCE:
        if method in available:
            return multiprocessing.get_context(method)
    raise ConfigurationError(
        "no usable multiprocessing start method "
        f"(available: {', '.join(available) or 'none'})"
    )


def _format_job_failure(
    kind: str, params: Dict[str, Any], label: Optional[str], trace: str
) -> str:
    who = f"{label} (kind={kind!r})" if label else f"kind={kind!r}"
    return f"job {who} params={params!r} raised in worker:\n{trace}"


def _worker_main(worker_id: int, task_queue, result_queue, chaos) -> None:
    """Pool worker loop: run assigned job chunks, never raise across the
    pipe. A task is ``(chunk_id, [(index, job), ...], attempt,
    timeout_s)``; results return as one pickled bulk list per chunk.
    Chaos injection (first attempt only, keyed on the chunk's first
    job): ``kill`` exits hard with no result (simulated OOM-kill);
    ``delay`` sleeps past the chunk's deadline so the supervisor's
    timeout path fires.
    """
    while True:
        item = task_queue.get()
        if item is None:
            return
        chunk_id, pairs, attempt, timeout_s = item
        if chaos is not None and attempt == 0:
            key = pairs[0][1].key()
            if chaos.decide(key, "kill"):
                os._exit(CHAOS_KILL_EXIT)
            if timeout_s is not None and chaos.decide(key, "delay"):
                time.sleep(2.0 * timeout_s + 0.5)
        payloads = []
        failure = None
        for _, job in pairs:
            try:
                payloads.append(execute_job(job))
            except Exception:
                failure = (
                    job.kind,
                    dict(job.params),
                    job.label,
                    traceback.format_exc(),
                )
                break
        if failure is not None:
            result_queue.put((worker_id, chunk_id, attempt, False, failure))
        else:
            result_queue.put((worker_id, chunk_id, attempt, True, payloads))


class _WorkerHandle:
    """One supervised worker process plus its private task queue."""

    __slots__ = ("context", "worker_id", "task_queue", "process", "current")

    def __init__(self, context, worker_id: int, result_queue, chaos):
        self.context = context
        self.worker_id = worker_id
        self.task_queue = context.Queue()
        self.process = context.Process(
            target=_worker_main,
            args=(worker_id, self.task_queue, result_queue, chaos),
            daemon=True,
        )
        self.process.start()
        self.current: Optional[
            Tuple[int, List[Tuple[int, SimJob]], int, Optional[float]]
        ] = None

    def assign(
        self,
        chunk_id: int,
        pairs: List[Tuple[int, SimJob]],
        attempt: int,
        timeout_s,
    ) -> None:
        # The per-job deadline scales with the chunk: N batched cells get
        # N times the wall-clock budget of a single dispatch.
        scaled = timeout_s * len(pairs) if timeout_s is not None else None
        deadline = time.monotonic() + scaled if scaled is not None else None
        self.current = (chunk_id, pairs, attempt, deadline)
        self.task_queue.put((chunk_id, pairs, attempt, scaled))

    def _discard_queue(self) -> None:
        self.task_queue.close()
        self.task_queue.cancel_join_thread()

    def kill(self) -> None:
        """Hard stop: terminate, escalate to SIGKILL, reap."""
        process = self.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        self._discard_queue()

    def stop(self) -> None:
        """Cooperative stop: sentinel, bounded join, then force."""
        try:
            self.task_queue.put(None)
        except Exception:
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.kill()
        else:
            self._discard_queue()


class _PoolBroken(Exception):
    """Internal: the pool burnt its restart budget; carry the jobs that
    still need running so the caller can fall back to serial."""

    def __init__(self, remaining: List[Tuple[int, SimJob]], reason: str):
        super().__init__(reason)
        self.remaining = remaining
        self.reason = reason


def _run_missing_serial(
    missing: Sequence[Tuple[int, SimJob]],
    complete: Callable[[int, SimJob, Any, int], None],
) -> None:
    """In-process execution: permanent failures raise immediately.

    There is no crash/timeout surface in-process (nothing to kill), so
    kill/delay chaos channels do not apply here — cache corruption
    still does, via ``complete``'s write-through path.
    """
    for index, job in missing:
        try:
            payload = execute_job(job)
        except SimJobError:
            raise
        except Exception:
            raise JobExecutionError(
                _format_job_failure(
                    job.kind, dict(job.params), job.label, traceback.format_exc()
                )
            ) from None
        complete(index, job, payload, 0)


def _describe_chunk(pairs: Sequence[Tuple[int, SimJob]]) -> str:
    head = pairs[0][1].describe()
    if len(pairs) == 1:
        return head
    return f"{head} (+{len(pairs) - 1} batched)"


def _run_missing_pooled(
    missing: Sequence[Tuple[int, SimJob]],
    pool_size: int,
    policy: ExecutionPolicy,
    stats: FabricStats,
    complete: Callable[[int, SimJob, Any, int], None],
) -> None:
    """Supervised pool execution of ``missing`` (index, job) pairs.

    Jobs are grouped into chunks of :func:`job_batch_size` cells; the
    supervisor hands one chunk at a time to each worker over a private
    queue and collects bulk results from a shared queue, so it can
    enforce wall-clock deadlines (kill + respawn the worker, retry the
    chunk), detect dead workers (crash / OOM / chaos kill) and apply
    the transient-retry budget with exponential backoff. Retry,
    timeout and crash recovery operate at chunk granularity — a chunk
    is the unit of dispatch — while ``complete`` (caching, journaling)
    still runs per job, so resume/cache semantics are unchanged.
    Raises the appropriate :class:`SimJobError` subtype on permanent
    failure and :class:`_PoolBroken` once worker restarts exceed their
    budget.
    """
    context = _pool_context()
    chaos = policy.chaos
    result_queue = context.Queue()

    batch = job_batch_size()
    chunks: List[List[Tuple[int, SimJob]]] = [
        list(missing[offset : offset + batch])
        for offset in range(0, len(missing), batch)
    ]
    chunk_of: Dict[int, List[Tuple[int, SimJob]]] = dict(enumerate(chunks))
    pool_size = min(pool_size, len(chunks))
    max_restarts = (
        policy.max_worker_restarts
        if policy.max_worker_restarts is not None
        else 3 * pool_size
    )

    pending: deque = deque((chunk_id, 0) for chunk_id in chunk_of)
    delayed: List[Tuple[float, int, int]] = []  # (ready_at, chunk_id, attempt)
    outstanding = set(chunk_of)
    attempts_of: Dict[int, int] = {chunk_id: 0 for chunk_id in chunk_of}
    completions = 0
    restarts = 0
    workers: List[_WorkerHandle] = []

    def remaining_jobs() -> List[Tuple[int, SimJob]]:
        left = [pair for chunk_id in outstanding for pair in chunk_of[chunk_id]]
        return sorted(left)

    def handle_transient(chunk_id: int, attempt: int, failure: SimJobError) -> None:
        if attempt >= policy.retries:
            raise RetryBudgetExceededError(
                f"job {_describe_chunk(chunk_of[chunk_id])} failed "
                f"{attempt + 1} attempt(s); retry budget ({policy.retries}) "
                "exhausted"
            ) from failure
        stats.retries += 1
        next_attempt = attempt + 1
        attempts_of[chunk_id] = next_attempt
        backoff = min(policy.backoff_cap_s, policy.backoff_base_s * (2**attempt))
        delayed.append((time.monotonic() + backoff, chunk_id, next_attempt))
        logger.warning(
            "%s -- retrying in %.2gs (attempt %d of %d)",
            failure,
            backoff,
            next_attempt + 1,
            policy.retries + 1,
        )

    try:
        try:
            for worker_id in range(pool_size):
                workers.append(_WorkerHandle(context, worker_id, result_queue, chaos))
        except OSError as exc:
            raise _PoolBroken(remaining_jobs(), f"could not start pool: {exc}")

        while outstanding:
            now = time.monotonic()
            if delayed:
                ready = [item for item in delayed if item[0] <= now]
                if ready:
                    delayed[:] = [item for item in delayed if item[0] > now]
                    for _, chunk_id, attempt in sorted(
                        ready, key=lambda item: item[1]
                    ):
                        pending.append((chunk_id, attempt))
            for worker in workers:
                if worker.current is None and pending:
                    chunk_id, attempt = pending.popleft()
                    worker.assign(
                        chunk_id, chunk_of[chunk_id], attempt, policy.timeout_s
                    )

            try:
                worker_id, chunk_id, attempt, ok, payload = result_queue.get(
                    timeout=_POLL_INTERVAL_S
                )
            except queue_module.Empty:
                pass
            else:
                worker = workers[worker_id]
                if (
                    worker.current is not None
                    and worker.current[0] == chunk_id
                    and worker.current[2] == attempt
                ):
                    worker.current = None
                if chunk_id in outstanding and attempt == attempts_of[chunk_id]:
                    if ok:
                        outstanding.discard(chunk_id)
                        for (index, job), item in zip(chunk_of[chunk_id], payload):
                            completions += 1
                            complete(index, job, item, attempt)
                            if (
                                chaos is not None
                                and chaos.abort_after is not None
                                and completions >= chaos.abort_after
                            ):
                                raise KeyboardInterrupt(
                                    f"chaos: abort after {completions} completions"
                                )
                    else:
                        kind, params, label, trace = payload
                        raise JobExecutionError(
                            _format_job_failure(kind, params, label, trace)
                        )

            now = time.monotonic()
            for slot, worker in enumerate(workers):
                current = worker.current
                if current is not None:
                    chunk_id, pairs, attempt, deadline = current
                    if deadline is not None and now > deadline:
                        stats.timeouts += 1
                        worker.kill()
                        restarts += 1
                        workers[slot] = _WorkerHandle(
                            context, slot, result_queue, chaos
                        )
                        if (
                            chunk_id in outstanding
                            and attempt == attempts_of[chunk_id]
                        ):
                            handle_transient(
                                chunk_id,
                                attempt,
                                JobTimeoutError(
                                    f"job {_describe_chunk(pairs)} exceeded its "
                                    f"{policy.timeout_s * len(pairs):.3g}s "
                                    f"wall-clock deadline "
                                    f"(attempt {attempt + 1}); worker killed"
                                ),
                            )
                        continue
                if not worker.process.is_alive():
                    exitcode = worker.process.exitcode
                    worker.kill()
                    restarts += 1
                    workers[slot] = _WorkerHandle(context, slot, result_queue, chaos)
                    if current is not None:
                        chunk_id, pairs, attempt, _ = current
                        if (
                            chunk_id in outstanding
                            and attempt == attempts_of[chunk_id]
                        ):
                            stats.crashes += 1
                            handle_transient(
                                chunk_id,
                                attempt,
                                WorkerCrashError(
                                    f"worker died (exit code {exitcode}) while "
                                    f"running job {_describe_chunk(pairs)} "
                                    f"(attempt {attempt + 1})"
                                ),
                            )
            if restarts > max_restarts:
                raise _PoolBroken(
                    remaining_jobs(),
                    f"{restarts} worker restarts exceeded the budget of "
                    f"{max_restarts}",
                )
    finally:
        for worker in workers:
            with contextlib.suppress(Exception):
                worker.stop()
        result_queue.close()
        result_queue.cancel_join_thread()


# -- executor backends --------------------------------------------------------
#
# One contract, three carriers. ``run_jobs`` stays the only public
# entry point; a backend only decides *where* the missing cells execute
# (calling process, supervised process pool, thread pool), never what
# they mean — caching, journaling, resume and report assembly are all
# upstream of it, which is why reports are byte-identical across
# backends (tests/test_backend_conformance.py).


class ExecutorBackend:
    """How a list of missing ``(index, job)`` pairs actually executes.

    Contract (enforced for every implementation by the conformance
    suite):

    * :meth:`run` executes every pair and calls
      ``complete(index, job, encoded_payload, attempt)`` exactly once
      per job, in any order. ``complete`` is not thread-safe — backends
      with internal concurrency must serialize calls to it.
    * Failures surface as the :class:`SimJobError` taxonomy: transient
      faults (crash/timeout, including chaos-injected ones) are retried
      under ``policy.retries`` with exponential backoff; permanent
      faults raise immediately with the job traceback attached.
    * A backend whose carrier infrastructure collapses raises
      :class:`_PoolBroken` carrying the unfinished pairs, so
      :func:`run_jobs` can degrade to :class:`InProcessBackend`.
    """

    name = "abstract"

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers

    def run(
        self,
        missing: Sequence[Tuple[int, SimJob]],
        policy: ExecutionPolicy,
        stats: FabricStats,
        complete: Callable[[int, SimJob, Any, int], None],
    ) -> None:
        raise NotImplementedError

    def pool_size(self, missing_count: int) -> int:
        return max(1, min(self.workers or default_workers(), missing_count))


class InProcessBackend(ExecutorBackend):
    """Serial in-the-calling-process execution — the degraded path.

    No carrier to crash and nothing to kill, so the kill/delay chaos
    channels do not apply here (cache corruption still does, through
    ``complete``'s write-through path) and permanent failures raise
    immediately. This is both the ``workers=1`` debug path and the
    backend every degradation ladder bottoms out on.
    """

    name = "inprocess"

    def run(self, missing, policy, stats, complete):
        _run_missing_serial(missing, complete)


class ProcessPoolBackend(ExecutorBackend):
    """The supervised multiprocessing pool (the historical parallel path).

    Real process isolation: per-cell wall-clock deadlines enforced by
    killing hung workers, crash detection by exit code, chunked dispatch
    (``REPRO_JOB_BATCH``) and the pinned start-method chain. The one
    backend that survives a genuinely hung or memory-exploding job.
    """

    name = "process-pool"

    def run(self, missing, policy, stats, complete):
        _run_missing_pooled(
            missing, self.pool_size(len(missing)), policy, stats, complete
        )


class ThreadedLocalBackend(ExecutorBackend):
    """Thread-pool execution inside the calling process.

    Built for embedding: the fabric service (:mod:`repro.service`) runs
    many concurrent sweeps in one process, where a process pool per
    sweep would multiply fork cost and an in-process serial run would
    serialize tenants. Jobs execute on plain threads — no pickling, so
    job kinds registered at runtime are always visible, and because
    policy/stats are context-local, concurrent sweeps on sibling threads
    stay fully isolated.

    Fault model: threads cannot be SIGKILLed or preempted, so the
    kill/delay chaos channels are *simulated* — a kill verdict raises
    :class:`WorkerCrashError` as if the carrier died and a delay verdict
    raises :class:`JobTimeoutError` as if the deadline fired (first
    attempt only, exactly like the process pool) — and retried under the
    same budget/backoff. ``timeout_s`` is consequently advisory here: a
    genuinely hung job hangs its thread, so use the process-pool backend
    when job code cannot be trusted to return. Everything else —
    taxonomy, retry accounting, write-through caching, journaling,
    report bytes — is identical to the other backends.
    """

    name = "threaded"

    def run(self, missing, policy, stats, complete):
        chaos = policy.chaos
        cond = threading.Condition()
        pending: deque = deque((index, job, 0) for index, job in missing)
        state = {"outstanding": len(missing), "completions": 0}
        failures: List[BaseException] = []

        def fail(error: BaseException) -> None:
            with cond:
                failures.append(error)
                cond.notify_all()

        def finish(index: int, job: SimJob, payload: Any, attempt: int) -> None:
            with cond:
                if failures:
                    return
                try:
                    complete(index, job, payload, attempt)
                except BaseException as exc:
                    failures.append(exc)
                    cond.notify_all()
                    return
                state["outstanding"] -= 1
                state["completions"] += 1
                if (
                    chaos is not None
                    and chaos.abort_after is not None
                    and state["completions"] >= chaos.abort_after
                ):
                    failures.append(
                        KeyboardInterrupt(
                            f"chaos: abort after {state['completions']} completions"
                        )
                    )
                cond.notify_all()

        def handle_transient(index, job, attempt, exc) -> bool:
            """Account + reschedule; False once the budget is gone."""
            with cond:
                if isinstance(exc, JobTimeoutError):
                    stats.timeouts += 1
                else:
                    stats.crashes += 1
                if attempt >= policy.retries:
                    budget = RetryBudgetExceededError(
                        f"job {job.describe()} failed {attempt + 1} "
                        f"attempt(s); retry budget ({policy.retries}) exhausted"
                    )
                    budget.__cause__ = exc
                    failures.append(budget)
                    cond.notify_all()
                    return False
                stats.retries += 1
            backoff = min(
                policy.backoff_cap_s, policy.backoff_base_s * (2**attempt)
            )
            logger.warning(
                "%s -- retrying in %.2gs (attempt %d of %d)",
                exc,
                backoff,
                attempt + 2,
                policy.retries + 1,
            )
            if backoff > 0:
                time.sleep(backoff)
            with cond:
                pending.append((index, job, attempt + 1))
                cond.notify_all()
            return True

        def worker() -> None:
            while True:
                with cond:
                    while (
                        not pending and state["outstanding"] > 0 and not failures
                    ):
                        cond.wait(_POLL_INTERVAL_S)
                    if failures or state["outstanding"] <= 0:
                        return
                    index, job, attempt = pending.popleft()
                try:
                    if chaos is not None and attempt == 0:
                        from repro.harness.chaos import simulated_thread_fault

                        fault = simulated_thread_fault(
                            chaos, job, policy.timeout_s
                        )
                        if fault is not None:
                            raise fault
                    payload = execute_job(job)
                except SimJobError as exc:
                    if not exc.transient:
                        fail(exc)
                        return
                    if not handle_transient(index, job, attempt, exc):
                        return
                    continue
                except Exception:
                    fail(
                        JobExecutionError(
                            _format_job_failure(
                                job.kind,
                                dict(job.params),
                                job.label,
                                traceback.format_exc(),
                            )
                        )
                    )
                    return
                finish(index, job, payload, attempt)

        threads = [
            threading.Thread(
                target=worker, name=f"repro-exec-{slot}", daemon=True
            )
            for slot in range(self.pool_size(len(missing)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]


BACKENDS: Dict[str, Callable[..., ExecutorBackend]] = {
    InProcessBackend.name: InProcessBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    ThreadedLocalBackend.name: ThreadedLocalBackend,
}


def get_backend(name: str, workers: Optional[int] = None) -> ExecutorBackend:
    """Instantiate a backend by :data:`BACKENDS` name.

    Raises :class:`ConfigurationError` on unknown names, listing the
    valid ones — the same one-line-error idiom the runner uses for
    unknown workloads and scenarios.
    """
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor backend {name!r} "
            f"(choose from {', '.join(sorted(BACKENDS))})"
        ) from None
    return factory(workers=workers)


def _resolve_backend(
    backend: Optional[Union[str, ExecutorBackend]],
    policy: ExecutionPolicy,
    resolved_workers: int,
    missing_count: int,
) -> ExecutorBackend:
    """Pick the executor: explicit arg > policy.backend > workers-based."""
    if isinstance(backend, ExecutorBackend):
        return backend
    name = backend if backend is not None else policy.backend
    if name is not None:
        return get_backend(name, workers=resolved_workers)
    if resolved_workers <= 1 or missing_count == 1:
        return InProcessBackend()
    return ProcessPoolBackend(workers=resolved_workers)


def run_jobs(
    jobs: Sequence[SimJob],
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    policy: Optional[ExecutionPolicy] = None,
    backend: Optional[Union[str, ExecutorBackend]] = None,
) -> List[Any]:
    """Execute ``jobs`` and return decoded results in job order.

    ``workers=None`` resolves through :func:`default_workers`;
    ``workers=1`` (or a single missing job) runs in-process. With a
    ``cache``, hits skip execution entirely and fresh results are stored
    back *as they finish* (write-through), next to an append-only
    :class:`SweepJournal` — which is what makes an interrupted sweep
    resumable with only the missing cells recomputed. ``policy``
    (default: the context-local :func:`get_execution_policy`) controls
    timeouts, the transient-retry budget, serial fallback and chaos
    injection. ``backend`` forces a specific executor — a
    :data:`BACKENDS` name or an :class:`ExecutorBackend` instance —
    overriding both ``policy.backend`` and the automatic workers-based
    choice. The returned objects are identical across every path —
    serial, pooled, threaded, retried, resumed or cached — because all
    of them round-trip through the job kind's encode/decode pair.
    """
    resolved = default_workers() if workers is None else max(1, workers)
    active = policy if policy is not None else get_execution_policy()
    stats = FabricStats(jobs=len(jobs))
    _STATS_VAR.set(stats)

    journal: Optional[SweepJournal] = None
    resumable = 0
    if cache is not None and jobs:
        sid = sweep_id(jobs)
        # Chaos campaigns pin fsync-per-append: their torn-tail/resume
        # assertions are about worst-case (every-record) journals.
        interval = 1 if active.chaos is not None else journal_flush_interval()
        journal = SweepJournal(
            cache.root / "journals" / f"{sid}.jsonl", fsync_interval=interval
        )
        prior = SweepJournal.load(journal.path)
        if prior and not any(r.get("event") == "sweep_complete" for r in prior):
            resumable = sum(1 for r in prior if r.get("event") == "job_done")
            logger.warning(
                "sweep %s: interrupted journal found (%d cells already "
                "complete) -- resuming from the cache",
                sid,
                resumable,
            )
        journal.append(
            {
                "event": "sweep_start",
                "sweep_id": sid,
                "jobs": len(jobs),
                "resumed": bool(resumable) or active.resume,
                "ts": time.time(),
            }
        )

    try:
        return _run_jobs_body(
            jobs, resolved, active, stats, cache, journal, resumable, backend
        )
    finally:
        if journal is not None:
            journal.close()


def _run_jobs_body(
    jobs: Sequence[SimJob],
    resolved: int,
    active: ExecutionPolicy,
    stats: "FabricStats",
    cache: Optional[ResultCache],
    journal: Optional[SweepJournal],
    resumable: int,
    backend: Optional[Union[str, ExecutorBackend]] = None,
) -> List[Any]:
    payloads: List[Optional[Any]] = [None] * len(jobs)
    done = [False] * len(jobs)

    corrupt_before = cache.corrupt if cache is not None else 0
    if cache is not None:
        for index, job in enumerate(jobs):
            hit = cache.get(job)
            if hit is not None:
                payloads[index] = hit
                done[index] = True
        stats.cached = sum(done)
        stats.quarantined = cache.corrupt - corrupt_before
        if resumable:
            stats.resumed_cells = stats.cached

    missing = [(index, job) for index, job in enumerate(jobs) if not done[index]]

    def complete(index: int, job: SimJob, payload: Any, attempt: int) -> None:
        payloads[index] = payload
        done[index] = True
        stats.fresh += 1
        if cache is not None:
            cache.put(job, payload)
            if active.chaos is not None and active.chaos.decide(job.key(), "corrupt"):
                from repro.harness.chaos import corrupt_cache_entry

                corrupt_cache_entry(cache, job)
        if journal is not None:
            journal.append(
                {
                    "event": "job_done",
                    "key": job.key(),
                    "kind": job.kind,
                    "label": job.label,
                    "attempt": attempt,
                    "ts": time.time(),
                }
            )

    if missing:
        chosen = _resolve_backend(backend, active, resolved, len(missing))
        try:
            chosen.run(missing, active, stats, complete)
        except _PoolBroken as broken:
            if not active.fallback_serial:
                raise WorkerCrashError(
                    f"{chosen.name} backend degraded ({broken.reason}) and "
                    "serial fallback is disabled"
                ) from None
            stats.degraded = True
            logger.warning(
                "%s backend degraded (%s) -- falling back to in-process "
                "serial execution for the %d remaining job(s)",
                chosen.name,
                broken.reason,
                len(broken.remaining),
            )
            InProcessBackend().run(broken.remaining, active, stats, complete)

    if journal is not None:
        journal.append(
            {
                "event": "sweep_complete",
                "fresh": stats.fresh,
                "cached": stats.cached,
                "ts": time.time(),
            }
        )
    return [decode_result(job, payloads[index]) for index, job in enumerate(jobs)]
