"""Command-line entry point: ``ptguard-repro <experiment> [--scale S]``.

Runs any experiment from the DESIGN.md index and prints the same
rows/series the paper's tables and figures report. Sweep experiments
(fig6/fig7/fig9/multicore) fan their independent cells out over a
process pool (``--workers`` / ``REPRO_WORKERS``) and memoize finished
cells in a content-addressed on-disk cache (``--cache-dir`` /
``REPRO_CACHE_DIR``; ``--no-cache`` disables), so repeated runs skip
already-simulated cells; see :mod:`repro.harness.parallel`.
"""

from __future__ import annotations

import argparse
import inspect
import json
import pathlib
import sys
import time
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS
from repro.harness.parallel import ResultCache


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ptguard-repro",
        description="PT-Guard (DSN 2023) reproduction experiments",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which paper artefact to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="work multiplier: 1.0 = quick (default); larger = closer to paper scale",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for sweep experiments "
        "(default: REPRO_WORKERS or the CPU count; 1 = fully in-process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="result-cache directory (default: REPRO_CACHE_DIR or "
        "~/.cache/ptguard-repro)",
    )
    parser.add_argument(
        "--json-summary",
        type=pathlib.Path,
        default=None,
        help="write {experiment: seconds} timing JSON to this path",
    )
    args = parser.parse_args(argv)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    timings = {}
    for name in names:
        function = EXPERIMENTS[name]
        parameters = inspect.signature(function).parameters
        kwargs = {}
        if "scale" in parameters:
            kwargs["scale"] = args.scale
        if "workers" in parameters:
            kwargs["workers"] = args.workers
        if "cache" in parameters:
            kwargs["cache"] = cache
        start = time.time()
        report = function(**kwargs)
        timings[name] = time.time() - start
        print(report)
        print(f"[{name}: {timings[name]:.1f}s]")
        print()
    if args.json_summary is not None:
        args.json_summary.parent.mkdir(parents=True, exist_ok=True)
        args.json_summary.write_text(
            json.dumps(timings, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
