"""Command-line entry point: ``ptguard-repro <experiment> [--scale S]``.

Runs any experiment from the DESIGN.md index and prints the same
rows/series the paper's tables and figures report. Sweep experiments
(fig6/fig7/fig9/multicore) fan their independent cells out over a
process pool (``--workers`` / ``REPRO_WORKERS``) and memoize finished
cells in a content-addressed on-disk cache (``--cache-dir`` /
``REPRO_CACHE_DIR``; ``--no-cache`` disables), so repeated runs skip
already-simulated cells; see :mod:`repro.harness.parallel`.

Resilience: ``--timeout`` puts a wall-clock deadline on every cell
(hung workers are killed and the cell retried), ``--retries`` bounds
the transient-retry budget, and an interrupted sweep (Ctrl-C, SIGKILL,
OOM) picks up where it left off with ``--resume`` — completed cells are
written through to the cache and journaled as they finish, so only the
missing cells are recomputed and the final report bytes are identical
to an uninterrupted run. ``--chaos`` injects deterministic faults for
testing (see :mod:`repro.harness.chaos`).
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import pathlib
import signal
import sys
import time
from typing import List, Optional

from repro.common.errors import PTGuardError
from repro.harness.experiments import EXPERIMENTS
from repro.harness.parallel import (
    ExecutionPolicy,
    ResultCache,
    execution_policy,
    last_run_stats,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ptguard-repro",
        description="PT-Guard (DSN 2023) reproduction experiments",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which paper artefact to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="work multiplier: 1.0 = quick (default); larger = closer to paper scale",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for sweep experiments "
        "(default: REPRO_WORKERS or the CPU count; 1 = fully in-process)",
    )
    parser.add_argument(
        "--workloads",
        type=str,
        default=None,
        metavar="A,B,...",
        help="comma-separated workload subset for fig6/fig7/fig9 "
        "(default: each figure's full set)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="result-cache directory (default: REPRO_CACHE_DIR or "
        "~/.cache/ptguard-repro)",
    )
    parser.add_argument(
        "--json-summary",
        type=pathlib.Path,
        default=None,
        help="write {experiment: seconds} timing JSON to this path",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock deadline; a hung worker is killed and the "
        "cell retried (default: REPRO_TIMEOUT or no deadline)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry budget for transient cell failures -- worker crashes and "
        "timeouts (default: REPRO_RETRIES or 2)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep from its journal + cache, "
        "recomputing only the missing cells (requires the cache)",
    )
    parser.add_argument(
        "--chaos",
        type=str,
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for testing, e.g. "
        "'seed=3,kill=0.1,delay=0.05,corrupt=0.1' (default: REPRO_CHAOS)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="enable the runtime invariant checker (TLB shadow walks, "
        "cache consistency, MAC differential oracle); also settable via "
        "REPRO_VALIDATE=1",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="execution batch size for the fused simulation core "
        "(default: REPRO_BATCH or 4096; 1 = scalar reference loop). "
        "Batched and scalar runs produce bit-identical reports",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-25 cumulative-time "
        "functions to stderr when the run finishes",
    )
    parser.add_argument(
        "--profile-out",
        type=str,
        default=None,
        metavar="FILE",
        help="write the full cProfile dump (pstats format) to FILE when "
        "the run finishes; implies profiling. Load it with "
        "'python -m pstats FILE' or snakeviz; CI uploads it as an "
        "artifact",
    )
    parser.add_argument(
        "--campaign",
        type=str,
        default=None,
        metavar="A,B,...",
        help="comma-separated fault-scenario subset for the campaign "
        "experiment (default: all scenarios; see repro.faults.inject)",
    )
    parser.add_argument(
        "--recovery-policy",
        type=str,
        default=None,
        metavar="NAME",
        help="attack-response policy for campaign/siege: none, "
        "reconstruct, retire or full (default: campaign runs without "
        "recovery; siege defaults to full)",
    )
    parser.add_argument(
        "--spare-rows",
        type=int,
        default=None,
        metavar="N",
        help="override the recovery policy's spare-row retirement budget",
    )
    parser.add_argument(
        "--rekey-threshold",
        type=int,
        default=None,
        metavar="N",
        help="override the recovery policy's adaptive-rekey incident "
        "threshold (incidents per sliding window)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.resume and args.no_cache:
        parser.error("--resume needs the result cache (drop --no-cache)")

    policy = ExecutionPolicy.from_env()
    if args.timeout is not None:
        policy.timeout_s = max(0.001, args.timeout)
    if args.retries is not None:
        policy.retries = max(0, args.retries)
    policy.resume = args.resume
    if args.chaos:
        from repro.harness.chaos import ChaosPolicy

        try:
            policy.chaos = ChaosPolicy.from_spec(args.chaos)
        except ValueError as exc:
            parser.error(f"--chaos: {exc}")

    workload_subset = (
        [name.strip() for name in args.workloads.split(",") if name.strip()]
        if args.workloads
        else None
    )
    if workload_subset:
        from repro.cpu.workloads import WORKLOADS_BY_NAME

        unknown = sorted(set(workload_subset) - set(WORKLOADS_BY_NAME))
        if unknown:
            parser.error(
                f"--workloads: unknown workload(s) {', '.join(unknown)} "
                f"(choose from {', '.join(sorted(WORKLOADS_BY_NAME))})"
            )

    scenario_subset = None
    if args.campaign:
        from repro.faults.inject import ALL_SCENARIOS

        scenario_subset = [
            name.strip() for name in args.campaign.split(",") if name.strip()
        ]
        unknown = sorted(set(scenario_subset) - set(ALL_SCENARIOS))
        if unknown:
            parser.error(
                f"--campaign: unknown scenario(s) {', '.join(unknown)} "
                f"(choose from {', '.join(ALL_SCENARIOS)})"
            )

    recovery_params = None
    if (
        args.recovery_policy is not None
        or args.spare_rows is not None
        or args.rekey_threshold is not None
    ):
        import dataclasses

        from repro.common.errors import ConfigurationError
        from repro.recovery.policy import recovery_policy

        try:
            policy_obj = recovery_policy(args.recovery_policy or "full")
            overrides = {}
            if args.spare_rows is not None:
                overrides["spare_rows"] = args.spare_rows
            if args.rekey_threshold is not None:
                overrides["rekey_threshold"] = args.rekey_threshold
            if overrides:
                policy_obj = dataclasses.replace(policy_obj, **overrides)
        except ConfigurationError as exc:
            parser.error(str(exc))
        recovery_params = policy_obj.as_params()

    if args.validate:
        from repro.faults.invariants import set_validation

        set_validation(True)
        os.environ["REPRO_VALIDATE"] = "1"  # propagate to pool workers

    if args.batch_size is not None:
        if args.batch_size < 0:
            parser.error("--batch-size must be >= 0")
        # Through the environment so pool workers inherit it too.
        os.environ["REPRO_BATCH"] = str(args.batch_size)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    timings = {}
    failures: List[str] = []
    # SIGTERM (the polite kill: CI cancellation, systemd stop, OOM killer
    # on cgroup soft limits) is handled like Ctrl-C: the fabric journal is
    # already written through as cells finish, so --resume picks up where
    # the sweep stopped. Exit code is the conventional 128+15.
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _raise_terminated)
    except ValueError:
        pass  # not the main thread (embedded use): leave signals alone
    profiler = None
    if args.profile or args.profile_out:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        with execution_policy(policy):
            return _run_experiments(
                args, cache, names, timings, failures, workload_subset,
                scenario_subset, recovery_params,
            )
    except KeyboardInterrupt:
        print("interrupted — rerun with --resume", file=sys.stderr)
        return 130
    except _Terminated:
        print("terminated (SIGTERM) — rerun with --resume", file=sys.stderr)
        return 143
    finally:
        if profiler is not None:
            import pstats

            profiler.disable()
            if args.profile_out:
                pstats.Stats(profiler).dump_stats(args.profile_out)
                print(f"--profile-out: wrote {args.profile_out}", file=sys.stderr)
            if args.profile:
                print("\n--profile: top 25 by cumulative time", file=sys.stderr)
                stats = pstats.Stats(profiler, stream=sys.stderr)
                stats.sort_stats("cumulative").print_stats(25)
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)


class _Terminated(Exception):
    """SIGTERM arrived; unwound like KeyboardInterrupt, exits 143."""


def _raise_terminated(signum, frame):
    raise _Terminated()


def _run_experiments(
    args, cache, names, timings, failures, workload_subset, scenario_subset=None,
    recovery_params=None,
) -> int:
    """The experiment loop; KeyboardInterrupt propagates to main()."""
    for name in names:
        function = EXPERIMENTS[name]
        parameters = inspect.signature(function).parameters
        kwargs = {}
        if "scale" in parameters:
            kwargs["scale"] = args.scale
        if "workers" in parameters:
            kwargs["workers"] = args.workers
        if "cache" in parameters:
            kwargs["cache"] = cache
        if "workloads" in parameters and workload_subset is not None:
            kwargs["workloads"] = workload_subset
        if "scenarios" in parameters and scenario_subset is not None:
            kwargs["scenarios"] = scenario_subset
        if "validate" in parameters and args.validate:
            kwargs["validate"] = True
        if "recovery" in parameters and recovery_params is not None:
            kwargs["recovery"] = recovery_params
        start = time.time()
        try:
            report = function(**kwargs)
        except PTGuardError as exc:
            failures.append(name)
            print(f"error: experiment {name!r} failed: {exc}", file=sys.stderr)
            continue
        timings[name] = time.time() - start
        print(report)
        print(f"[{name}: {timings[name]:.1f}s]")
        stats = last_run_stats()
        if stats.jobs and stats.eventful():
            print(
                f"[{name} fabric: {stats.fresh} fresh / {stats.cached} cached"
                f" ({stats.resumed_cells} resumed), retries={stats.retries},"
                f" timeouts={stats.timeouts}, crashes={stats.crashes},"
                f" quarantined={stats.quarantined}, degraded={stats.degraded}]",
                file=sys.stderr,
            )
        print()
    if args.json_summary is not None:
        args.json_summary.parent.mkdir(parents=True, exist_ok=True)
        args.json_summary.write_text(
            json.dumps(timings, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    if failures:
        print(
            f"{len(failures)} experiment(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
