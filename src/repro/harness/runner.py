"""Command-line entry point: ``ptguard-repro <experiment> [--scale S]``.

Runs any experiment from the DESIGN.md index and prints the same
rows/series the paper's tables and figures report.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import List, Optional

from repro.harness.experiments import EXPERIMENTS


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ptguard-repro",
        description="PT-Guard (DSN 2023) reproduction experiments",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which paper artefact to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="work multiplier: 1.0 = quick (default); larger = closer to paper scale",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        function = EXPERIMENTS[name]
        start = time.time()
        if "scale" in inspect.signature(function).parameters:
            report = function(scale=args.scale)
        else:
            report = function()
        print(report)
        print(f"[{name}: {time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
