"""Command-line entry point: ``ptguard-repro <experiment> [--scale S]``.

Runs any experiment from the DESIGN.md index and prints the same
rows/series the paper's tables and figures report. Sweep experiments
(fig6/fig7/fig9/multicore) fan their independent cells out over a
process pool (``--workers`` / ``REPRO_WORKERS``) and memoize finished
cells in a content-addressed on-disk cache (``--cache-dir`` /
``REPRO_CACHE_DIR``; ``--no-cache`` disables), so repeated runs skip
already-simulated cells; see :mod:`repro.harness.parallel`.

Resilience: ``--timeout`` puts a wall-clock deadline on every cell
(hung workers are killed and the cell retried), ``--retries`` bounds
the transient-retry budget, and an interrupted sweep (Ctrl-C, SIGKILL,
OOM) picks up where it left off with ``--resume`` — completed cells are
written through to the cache and journaled as they finish, so only the
missing cells are recomputed and the final report bytes are identical
to an uninterrupted run. ``--chaos`` injects deterministic faults for
testing (see :mod:`repro.harness.chaos`).

Service mode: ``--serve`` routes the experiment(s) through an embedded
:class:`repro.service.FabricService` — per-tenant result caches
(``--tenant``), token-bucket admission (``--rate CAP:REFILL``), a
bounded queue (``--queue-depth``) and a circuit breaker over the chosen
executor backend (``--backend``, ``--breaker-threshold``,
``--no-degraded``). When admission control refuses the work (rate
limit, full queue, open circuit with fallback disabled) the runner
exits with code 75 — EX_TEMPFAIL, the sysexits convention for "try
again later" — and prints the retry hint; transient overload is
distinguishable from real experiment failures (exit 1) in scripts.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import pathlib
import signal
import sys
import time
from typing import List, Optional

from repro.common.errors import PTGuardError
from repro.harness.experiments import EXPERIMENTS
from repro.harness.parallel import (
    ExecutionPolicy,
    ResultCache,
    execution_policy,
    last_run_stats,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ptguard-repro",
        description="PT-Guard (DSN 2023) reproduction experiments",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which paper artefact to regenerate",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="work multiplier: 1.0 = quick (default); larger = closer to paper scale",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for sweep experiments "
        "(default: REPRO_WORKERS or the CPU count; 1 = fully in-process)",
    )
    parser.add_argument(
        "--workloads",
        type=str,
        default=None,
        metavar="A,B,...",
        help="comma-separated workload subset for fig6/fig7/fig9 "
        "(default: each figure's full set)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always re-simulate; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="result-cache directory (default: REPRO_CACHE_DIR or "
        "~/.cache/ptguard-repro)",
    )
    parser.add_argument(
        "--json-summary",
        type=pathlib.Path,
        default=None,
        help="write {experiment: seconds} timing JSON to this path",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock deadline; a hung worker is killed and the "
        "cell retried (default: REPRO_TIMEOUT or no deadline)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry budget for transient cell failures -- worker crashes and "
        "timeouts (default: REPRO_RETRIES or 2)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep from its journal + cache, "
        "recomputing only the missing cells (requires the cache)",
    )
    parser.add_argument(
        "--chaos",
        type=str,
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for testing, e.g. "
        "'seed=3,kill=0.1,delay=0.05,corrupt=0.1' (default: REPRO_CHAOS)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="enable the runtime invariant checker (TLB shadow walks, "
        "cache consistency, MAC differential oracle); also settable via "
        "REPRO_VALIDATE=1",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="execution batch size for the fused simulation core "
        "(default: REPRO_BATCH or 4096; 1 = scalar reference loop). "
        "Batched and scalar runs produce bit-identical reports",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-25 cumulative-time "
        "functions to stderr when the run finishes",
    )
    parser.add_argument(
        "--profile-out",
        type=str,
        default=None,
        metavar="FILE",
        help="write the full cProfile dump (pstats format) to FILE when "
        "the run finishes; implies profiling. Load it with "
        "'python -m pstats FILE' or snakeviz; CI uploads it as an "
        "artifact",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run the experiment(s) through the embedded multi-tenant "
        "fabric service (admission control, per-tenant caches, circuit "
        "breaker); overload exits 75 (EX_TEMPFAIL) with a retry hint",
    )
    parser.add_argument(
        "--tenant",
        type=str,
        default="default",
        metavar="NAME",
        help="tenant id for --serve: results land in this tenant's "
        "private cache subtree (default: 'default')",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        metavar="N",
        help="--serve admission-queue depth (default: 8)",
    )
    parser.add_argument(
        "--rate",
        type=str,
        default=None,
        metavar="CAP:REFILL",
        help="--serve per-tenant token bucket: burst capacity and "
        "refill per second, e.g. '4:1' (default: 4:1; '0:0' blocks "
        "the tenant, exiting 75)",
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        metavar="NAME",
        help="executor backend: inprocess, process-pool or threaded "
        "(default: REPRO_BACKEND, or automatic by worker count; "
        "--serve defaults to threaded)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="--serve circuit breaker: consecutive transient backend "
        "failures before the circuit opens (default: 3)",
    )
    parser.add_argument(
        "--no-degraded",
        action="store_true",
        help="--serve fail-fast mode: an open circuit rejects work "
        "(exit 75) instead of degrading to in-process execution",
    )
    parser.add_argument(
        "--state-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="--serve durability: write-ahead state log under DIR; a "
        "crashed/killed service restarted with the same DIR replays its "
        "accepted submissions, recomputing only the missing cells "
        "(disk faults degrade to memory-only instead of failing)",
    )
    parser.add_argument(
        "--service-chaos",
        type=str,
        default=None,
        metavar="SPEC",
        help="deterministic service-level fault injection for testing, "
        "e.g. 'seed=7,crash=1.0' (crash SIGKILLs the service at a "
        "seed-addressed point mid-sweep; see repro.service.chaos)",
    )
    parser.add_argument(
        "--supervise",
        action="store_true",
        help="run --serve under a watchdog: a crashed (signal-killed) "
        "service process is restarted with bounded exponential backoff "
        "against the same --state-dir; a crash loop exits 75",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        metavar="N",
        help="--supervise restart budget within the crash window "
        "(default: 5); once spent the supervisor exits 75",
    )
    parser.add_argument(
        "--campaign",
        type=str,
        default=None,
        metavar="A,B,...",
        help="comma-separated fault-scenario subset for the campaign "
        "experiment (default: all scenarios; see repro.faults.inject)",
    )
    parser.add_argument(
        "--recovery-policy",
        type=str,
        default=None,
        metavar="NAME",
        help="attack-response policy for campaign/siege: none, "
        "reconstruct, retire or full (default: campaign runs without "
        "recovery; siege defaults to full)",
    )
    parser.add_argument(
        "--spare-rows",
        type=int,
        default=None,
        metavar="N",
        help="override the recovery policy's spare-row retirement budget",
    )
    parser.add_argument(
        "--rekey-threshold",
        type=int,
        default=None,
        metavar="N",
        help="override the recovery policy's adaptive-rekey incident "
        "threshold (incidents per sliding window)",
    )
    parser.add_argument(
        "--strategies",
        type=str,
        default=None,
        metavar="A,B,...",
        help="comma-separated adaptive-strategy subset for the frontier "
        "experiment: low_slow, rekey_burst, spare_exhaustion, "
        "pthammer_implicit, escalate (default: all)",
    )
    parser.add_argument(
        "--policy-grid",
        type=str,
        default=None,
        metavar="NAME",
        help="recovery-policy candidate set for the frontier experiment: "
        "default or quick (see repro.recovery.search)",
    )
    parser.add_argument(
        "--windows",
        type=int,
        default=None,
        metavar="N",
        help="exposure windows per frontier siege cell "
        "(default: derived from --scale)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.resume and args.no_cache:
        parser.error("--resume needs the result cache (drop --no-cache)")

    policy = ExecutionPolicy.from_env()
    if args.timeout is not None:
        policy.timeout_s = max(0.001, args.timeout)
    if args.retries is not None:
        policy.retries = max(0, args.retries)
    policy.resume = args.resume
    if args.chaos:
        from repro.harness.chaos import ChaosPolicy

        try:
            policy.chaos = ChaosPolicy.from_spec(args.chaos)
        except ValueError as exc:
            parser.error(f"--chaos: {exc}")
    if args.backend is not None:
        from repro.harness.parallel import BACKENDS

        if args.backend not in BACKENDS:
            parser.error(
                f"--backend: unknown backend {args.backend!r} "
                f"(choose from {', '.join(sorted(BACKENDS))})"
            )
        policy.backend = args.backend

    workload_subset = (
        [name.strip() for name in args.workloads.split(",") if name.strip()]
        if args.workloads
        else None
    )
    if workload_subset:
        from repro.cpu.workloads import WORKLOADS_BY_NAME

        unknown = sorted(set(workload_subset) - set(WORKLOADS_BY_NAME))
        if unknown:
            parser.error(
                f"--workloads: unknown workload(s) {', '.join(unknown)} "
                f"(choose from {', '.join(sorted(WORKLOADS_BY_NAME))})"
            )

    strategy_subset = None
    if args.strategies:
        from repro.attacks.adaptive import ALL_STRATEGIES

        strategy_subset = [
            name.strip() for name in args.strategies.split(",") if name.strip()
        ]
        unknown = sorted(set(strategy_subset) - set(ALL_STRATEGIES))
        if unknown:
            parser.error(
                f"--strategies: unknown strategy(ies) {', '.join(unknown)} "
                f"(choose from {', '.join(ALL_STRATEGIES)})"
            )

    if args.policy_grid is not None:
        from repro.recovery.search import POLICY_GRIDS

        if args.policy_grid not in POLICY_GRIDS:
            parser.error(
                f"--policy-grid: unknown grid {args.policy_grid!r} "
                f"(choose from {', '.join(sorted(POLICY_GRIDS))})"
            )

    if args.windows is not None and args.windows < 1:
        parser.error("--windows must be >= 1")

    scenario_subset = None
    if args.campaign:
        from repro.faults.inject import ALL_SCENARIOS

        scenario_subset = [
            name.strip() for name in args.campaign.split(",") if name.strip()
        ]
        unknown = sorted(set(scenario_subset) - set(ALL_SCENARIOS))
        if unknown:
            parser.error(
                f"--campaign: unknown scenario(s) {', '.join(unknown)} "
                f"(choose from {', '.join(ALL_SCENARIOS)})"
            )

    recovery_params = None
    if (
        args.recovery_policy is not None
        or args.spare_rows is not None
        or args.rekey_threshold is not None
    ):
        import dataclasses

        from repro.common.errors import ConfigurationError
        from repro.recovery.policy import recovery_policy

        try:
            policy_obj = recovery_policy(args.recovery_policy or "full")
            overrides = {}
            if args.spare_rows is not None:
                overrides["spare_rows"] = args.spare_rows
            if args.rekey_threshold is not None:
                overrides["rekey_threshold"] = args.rekey_threshold
            if overrides:
                policy_obj = dataclasses.replace(policy_obj, **overrides)
        except ConfigurationError as exc:
            parser.error(str(exc))
        recovery_params = policy_obj.as_params()

    if args.validate:
        from repro.faults.invariants import set_validation

        set_validation(True)
        os.environ["REPRO_VALIDATE"] = "1"  # propagate to pool workers

    if args.batch_size is not None:
        if args.batch_size < 0:
            parser.error("--batch-size must be >= 0")
        # Through the environment so pool workers inherit it too.
        os.environ["REPRO_BATCH"] = str(args.batch_size)

    if args.serve and args.no_cache:
        parser.error("--serve stores results in per-tenant caches (drop --no-cache)")
    if args.rate is not None and not args.serve:
        parser.error("--rate only applies with --serve")
    if args.state_dir is not None and not args.serve:
        parser.error("--state-dir only applies with --serve")
    if args.service_chaos is not None and not args.serve:
        parser.error("--service-chaos only applies with --serve")
    if args.service_chaos is not None:
        from repro.service.chaos import ServiceChaosPolicy

        try:
            ServiceChaosPolicy.from_spec(args.service_chaos)
        except ValueError as exc:
            parser.error(f"--service-chaos: {exc}")
    if args.supervise:
        if not args.serve or args.state_dir is None:
            parser.error("--supervise needs --serve and --state-dir (the "
                         "restarted process recovers from the state log)")
        if args.max_restarts < 0:
            parser.error("--max-restarts must be >= 0")
        if os.environ.get("REPRO_SUPERVISED") != "1":
            return _supervise(args, argv)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    timings = {}
    failures: List[str] = []
    # SIGTERM (the polite kill: CI cancellation, systemd stop, OOM killer
    # on cgroup soft limits) is handled like Ctrl-C: the fabric journal is
    # already written through as cells finish, so --resume picks up where
    # the sweep stopped. Exit code is the conventional 128+15.
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _raise_terminated)
    except ValueError:
        pass  # not the main thread (embedded use): leave signals alone
    profiler = None
    if args.profile or args.profile_out:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if args.serve:
            return _run_service(args, parser, policy, names, workload_subset)
        with execution_policy(policy):
            return _run_experiments(
                args, cache, names, timings, failures, workload_subset,
                scenario_subset, recovery_params, strategy_subset,
            )
    except KeyboardInterrupt:
        print("interrupted — rerun with --resume", file=sys.stderr)
        return 130
    except _Terminated:
        print("terminated (SIGTERM) — rerun with --resume", file=sys.stderr)
        return 143
    finally:
        if profiler is not None:
            import pstats

            profiler.disable()
            if args.profile_out:
                pstats.Stats(profiler).dump_stats(args.profile_out)
                print(f"--profile-out: wrote {args.profile_out}", file=sys.stderr)
            if args.profile:
                print("\n--profile: top 25 by cumulative time", file=sys.stderr)
                stats = pstats.Stats(profiler, stream=sys.stderr)
                stats.sort_stats("cumulative").print_stats(25)
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)


EX_TEMPFAIL = 75
"""Exit code for transient service-side refusals (sysexits EX_TEMPFAIL).

Admission control saying "not now" — a rate-limited tenant, a full
queue, an open circuit with degraded fallback disabled — is not an
experiment failure (exit 1) and not a usage error (exit 2): the same
command retried later is expected to succeed. Scripts and CI retry
loops key off this code; the stderr message carries the typed reason
and, when the service can estimate one, a retry-after hint.
"""


def _supervise(args, argv: Optional[List[str]]) -> int:
    """--supervise: watchdog loop around a child ``--serve`` process.

    The child runs the same command line minus the supervision flags,
    with ``REPRO_SUPERVISED=1`` so it never recurses. A signal-killed
    child (SIGKILL/SIGSEGV/...) is restarted against the same
    ``--state-dir`` — the WAL replay makes the restart resume rather
    than redo — with bounded exponential backoff; ``--max-restarts``
    crashes inside the crash window exit 75 (EX_TEMPFAIL). Clean exits,
    including failures the service *chose* (1, 2, 75), propagate
    unchanged.
    """
    import subprocess

    from repro.service.supervisor import Supervisor, SupervisorConfig

    raw = list(sys.argv[1:]) if argv is None else list(argv)
    child_args: List[str] = []
    skip_value = False
    for token in raw:
        if skip_value:
            skip_value = False
            continue
        if token == "--supervise":
            continue
        if token == "--max-restarts":
            skip_value = True
            continue
        if token.startswith("--max-restarts="):
            continue
        child_args.append(token)
    command = [sys.executable, "-m", "repro.harness.runner", *child_args]
    env = dict(os.environ)
    env["REPRO_SUPERVISED"] = "1"

    def spawn() -> int:
        return subprocess.run(command, env=env).returncode

    supervisor = Supervisor(
        spawn, SupervisorConfig(max_restarts=args.max_restarts)
    )
    print(
        f"[supervisor: watching {' '.join(command[2:])} "
        f"(restart budget {args.max_restarts})]",
        file=sys.stderr,
    )
    code = supervisor.run()
    if supervisor.restarts:
        print(
            f"[supervisor: {supervisor.restarts} restart(s), exit {code}]",
            file=sys.stderr,
        )
    return code


def _parse_rate(raw: Optional[str], parser) -> tuple:
    """``CAP:REFILL`` -> (capacity, refill_per_s); default (4, 1)."""
    if raw is None:
        return 4.0, 1.0
    capacity, separator, refill = raw.partition(":")
    try:
        if not separator:
            raise ValueError
        values = float(capacity), float(refill)
        if values[0] < 0 or values[1] < 0:
            raise ValueError
        return values
    except ValueError:
        parser.error(f"--rate: want CAP:REFILL with non-negative numbers, got {raw!r}")


def _run_service(args, parser, policy, names, workload_subset) -> int:
    """--serve: submit the experiment(s) through the embedded service.

    One FabricService per invocation; each experiment becomes one
    tracked submission under ``--tenant``. Overload (AdmissionRejected /
    CircuitOpenError) exits EX_TEMPFAIL with the retry hint on stderr;
    experiment failures keep exiting 1 as in direct mode.
    """
    from repro.common.errors import AdmissionRejected, CircuitOpenError
    from repro.harness.parallel import default_cache_dir
    from repro.service import FabricService, ServiceChaosPolicy, ServiceConfig

    rate_capacity, rate_refill = _parse_rate(args.rate, parser)
    config = ServiceConfig(
        queue_depth=max(1, args.queue_depth),
        dispatchers=1,
        rate_capacity=rate_capacity,
        rate_refill_per_s=rate_refill,
        breaker_threshold=max(1, args.breaker_threshold),
        backend=args.backend or "threaded",
        workers=args.workers if args.workers else 2,
        allow_degraded=not args.no_degraded,
    )
    cache_root = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    service_chaos = (
        ServiceChaosPolicy.from_spec(args.service_chaos)
        if args.service_chaos
        else None
    )
    failures: List[str] = []
    service = FabricService(
        cache_root=cache_root,
        config=config,
        state_dir=args.state_dir,
        chaos=service_chaos,
    )
    try:
        for name in names:
            kwargs = {"scale": args.scale}
            if workload_subset is not None:
                kwargs["workloads"] = workload_subset
            try:
                ticket = service.submit_sweep(
                    experiment=name,
                    tenant=args.tenant,
                    policy=policy,
                    **kwargs,
                )
                report = service.results(ticket)
            except (AdmissionRejected, CircuitOpenError) as exc:
                _report_tempfail(name, exc)
                return EX_TEMPFAIL
            except PTGuardError as exc:
                failures.append(name)
                print(f"error: experiment {name!r} failed: {exc}", file=sys.stderr)
                continue
            print(report)
            view = service.status(ticket)
            print(
                f"[{name} service: tenant={view['tenant']} "
                f"backend={view['backend']} degraded={view['degraded']}]",
                file=sys.stderr,
            )
            print()
        health = service.health()
        print(
            f"[service health: {health['status']}, "
            f"durability={health['durability']['mode']}, "
            f"counters={health['counters']}]",
            file=sys.stderr,
        )
    finally:
        service.close()
    if failures:
        print(
            f"{len(failures)} experiment(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _report_tempfail(name: str, exc) -> None:
    reason = getattr(exc, "reason", None) or "circuit_open"
    retry_after = getattr(exc, "retry_after_s", None)
    hint = (
        f"; retry in {retry_after:.1f}s"
        if isinstance(retry_after, (int, float))
        else "; retry later"
    )
    print(
        f"temporarily unavailable ({reason}): experiment {name!r} was "
        f"refused -- {exc}{hint} [exit {EX_TEMPFAIL} = EX_TEMPFAIL]",
        file=sys.stderr,
    )


class _Terminated(Exception):
    """SIGTERM arrived; unwound like KeyboardInterrupt, exits 143."""


def _raise_terminated(signum, frame):
    raise _Terminated()


def _run_experiments(
    args, cache, names, timings, failures, workload_subset, scenario_subset=None,
    recovery_params=None, strategy_subset=None,
) -> int:
    """The experiment loop; KeyboardInterrupt propagates to main()."""
    for name in names:
        function = EXPERIMENTS[name]
        parameters = inspect.signature(function).parameters
        kwargs = {}
        if "scale" in parameters:
            kwargs["scale"] = args.scale
        if "workers" in parameters:
            kwargs["workers"] = args.workers
        if "cache" in parameters:
            kwargs["cache"] = cache
        if "workloads" in parameters and workload_subset is not None:
            kwargs["workloads"] = workload_subset
        if "scenarios" in parameters and scenario_subset is not None:
            kwargs["scenarios"] = scenario_subset
        if "validate" in parameters and args.validate:
            kwargs["validate"] = True
        if "recovery" in parameters and recovery_params is not None:
            kwargs["recovery"] = recovery_params
        if "strategies" in parameters and strategy_subset is not None:
            kwargs["strategies"] = strategy_subset
        if "policy_grid" in parameters and args.policy_grid is not None:
            kwargs["policy_grid"] = args.policy_grid
        if "windows" in parameters and args.windows is not None:
            kwargs["windows"] = args.windows
        start = time.time()
        try:
            report = function(**kwargs)
        except PTGuardError as exc:
            failures.append(name)
            print(f"error: experiment {name!r} failed: {exc}", file=sys.stderr)
            continue
        timings[name] = time.time() - start
        print(report)
        print(f"[{name}: {timings[name]:.1f}s]")
        stats = last_run_stats()
        if stats.jobs and stats.eventful():
            print(
                f"[{name} fabric: {stats.fresh} fresh / {stats.cached} cached"
                f" ({stats.resumed_cells} resumed), retries={stats.retries},"
                f" timeouts={stats.timeouts}, crashes={stats.crashes},"
                f" quarantined={stats.quarantined}, degraded={stats.degraded}]",
                file=sys.stderr,
            )
        print()
    if args.json_summary is not None:
        args.json_summary.parent.mkdir(parents=True, exist_ok=True)
        args.json_summary.write_text(
            json.dumps(timings, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    if failures:
        print(
            f"{len(failures)} experiment(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
