"""Deterministic chaos injection for the parallel experiment fabric.

The resilience layer in :mod:`repro.harness.parallel` claims that worker
kills, hung jobs and on-disk cache corruption cost recomputation, never
correctness. This module is how tests (and the CI chaos smoke job)
*prove* that end-to-end: a :class:`ChaosPolicy` injects exactly those
faults, and the sweep's report must still come out byte-identical to a
fault-free run.

Every injection decision is a pure function of ``(seed, channel, job
key)``: a SHA-256 over those strings maps to a fraction in [0, 1) that
is compared against the channel's probability. No RNG state, no
ordering dependence — the same sweep with the same seed injects the
same faults regardless of worker count, scheduling or retries, which is
what lets tests assert exact, reproducible failure counts. The decision
function itself lives in :mod:`repro.faults.inject`
(:func:`~repro.faults.inject.deterministic_fraction`), shared with the
simulator-level fault injectors so harness and DRAM corruption draw from
one audited primitive; the digest format is frozen by the byte-identity
guarantees in ``tests/test_chaos.py``.

Channels:

* ``kill`` — the worker calls ``os._exit(137)`` before running the job
  (first attempt only), simulating a SIGKILL/OOM-killed worker. On the
  threaded backend — where a carrier cannot be SIGKILLed — the same
  verdict raises :class:`WorkerCrashError` directly
  (:func:`simulated_thread_fault`), so the retry/backoff path is
  exercised identically; on the in-process backend there is no carrier
  at all and the channel does not apply.
* ``delay`` — the worker sleeps past the job's wall-clock deadline
  (first attempt only), forcing the supervisor's hung-worker kill and
  the timeout/retry path. Skipped when no deadline is set. The threaded
  backend simulates the verdict as a raised :class:`JobTimeoutError`
  instead of actually sleeping.
* ``corrupt`` — after the fresh result is written through to the cache,
  the entry file is garbled in place, forcing the read-side digest
  check to quarantine and recompute on the next lookup.

``abort_after`` (a count, not a channel) makes the supervisor raise
``KeyboardInterrupt`` after N completed cells — a deterministic stand-in
for an operator interrupt, used to test ``--resume``.

Activation: pass a policy programmatically, or use ``--chaos`` /
``REPRO_CHAOS`` with a spec like ``seed=3,kill=0.2,delay=0.1,corrupt=0.1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.inject import deterministic_fraction, garble_payload

_PROBABILITY_CHANNELS = ("kill", "delay", "corrupt")


@dataclass(frozen=True)
class ChaosPolicy:
    """Seed-driven fault-injection probabilities per channel."""

    seed: int = 0
    kill: float = 0.0
    delay: float = 0.0
    corrupt: float = 0.0
    abort_after: Optional[int] = None

    def decide(self, key: str, channel: str) -> bool:
        """Deterministic verdict for one (job key, channel) pair.

        Delegates to the shared decision primitive — byte-identical to
        the historical inline formula (asserted by the chaos tests).
        """
        probability = getattr(self, channel)
        if probability <= 0.0:
            return False
        return deterministic_fraction(self.seed, channel, key) < probability

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosPolicy":
        """Parse ``seed=3,kill=0.2,delay=0.1,corrupt=0.1,abort_after=5``.

        Raises ``ValueError`` on unknown fields, malformed values or
        probabilities outside [0, 1].
        """
        values: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, separator, raw = part.partition("=")
            name, raw = name.strip(), raw.strip()
            if not separator or not raw:
                raise ValueError(f"bad chaos field {part!r} (want name=value)")
            if name == "seed":
                values["seed"] = int(raw)
            elif name == "abort_after":
                count = int(raw)
                if count < 1:
                    raise ValueError("abort_after must be >= 1")
                values["abort_after"] = count
            elif name in _PROBABILITY_CHANNELS:
                probability = float(raw)
                if not 0.0 <= probability <= 1.0:
                    raise ValueError(
                        f"{name} probability {probability} outside [0, 1]"
                    )
                values[name] = probability
            else:
                raise ValueError(f"unknown chaos field {name!r}")
        return cls(**values)


def simulated_thread_fault(policy: ChaosPolicy, job, timeout_s):
    """Kill/delay verdicts mapped onto a thread-carrier backend.

    Threads cannot be SIGKILLed or preempted, so the threaded executor
    backend asks this function (first attempt only, like the pool
    worker) what *would* have happened and raises the answer: a kill
    verdict becomes a :class:`WorkerCrashError` (as if the carrier
    died), a delay verdict becomes a :class:`JobTimeoutError` (as if the
    deadline fired — only when a deadline is actually set, mirroring the
    pool's skip). Decisions draw from the same ``(seed, channel, job
    key)`` digest as the process pool, so a chaos seed injects the same
    fault pattern on every backend. Returns None when neither channel
    fires.
    """
    from repro.common.errors import JobTimeoutError, WorkerCrashError

    key = job.key()
    if policy.decide(key, "kill"):
        return WorkerCrashError(
            f"worker thread chaos-killed (simulated) while running job "
            f"{job.describe()} (attempt 1)"
        )
    if timeout_s is not None and policy.decide(key, "delay"):
        return JobTimeoutError(
            f"job {job.describe()} chaos-delayed past its {timeout_s:.3g}s "
            "wall-clock deadline (simulated, attempt 1)"
        )
    return None


def corrupt_cache_entry(cache, job) -> None:
    """Garble ``job``'s on-disk cache entry in place.

    The file stays present and non-empty (a deleted entry would be a
    plain miss — too easy), so the read path must *detect* the damage
    via its digest check, quarantine the entry and recompute.
    """
    path = cache._path(job.key())
    try:
        data = path.read_bytes()
    except OSError:
        return
    path.write_bytes(garble_payload(data))
