"""MAC construction over a 64-byte PTE cacheline (paper Section IV-F).

The paper builds the MAC from QARMA-128: the cacheline (with unprotected
bits zeroed) is split into four 16-byte chunks ``C_i``; each chunk is
XOR-combined with the 16-byte line address ``A`` and enciphered,
``Q_i = Q(C_i ^ A)``; the four outputs are XORed into a 128-bit value and
the upper 32 bits are dropped, yielding a 96-bit MAC.

:class:`QarmaLineMAC` reproduces that construction exactly. Because our
QARMA implementation cannot be validated against official vectors offline,
:class:`SipHashLineMAC` offers a drop-in primitive with published test
vectors. Both satisfy the :class:`LineMAC` interface the PT-Guard engine
consumes.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Protocol

from repro.crypto.qarma import Qarma128
from repro.crypto.siphash import siphash24_wide

CACHELINE_BYTES = 64


class LineMAC(Protocol):
    """Interface of a keyed MAC over (line bytes, line address)."""

    mac_bits: int

    def compute(self, line: bytes, address: int) -> int:
        """Return the MAC tag of a 64-byte line bound to its address."""
        ...


class QarmaLineMAC:
    """The paper's QARMA-128 MAC: X = Q(C1^A) ^ ... ^ Q(C4^A), truncated.

    Parameters
    ----------
    key:
        32 bytes (256-bit QARMA-128 key, as the paper specifies).
    mac_bits:
        Tag width; 96 by default, 64 for the reduced design option
        discussed in Section VII-A.
    use_tables:
        Select the table-driven cipher fast path (default) or the
        cell-by-cell reference path — the differential oracle in
        :mod:`repro.faults.invariants` cross-checks one against the
        other on sampled calls.
    """

    def __init__(
        self,
        key: bytes,
        mac_bits: int = 96,
        rounds: int = 8,
        use_tables: bool = True,
    ):
        if len(key) != 32:
            raise ValueError("QARMA-128 key must be 32 bytes")
        if not 1 <= mac_bits <= 128:
            raise ValueError("mac_bits must lie in [1, 128]")
        self.mac_bits = mac_bits
        self.key_bytes = 32
        self._cipher = Qarma128(key, rounds=rounds, use_tables=use_tables)
        self._mask = (1 << mac_bits) - 1
        self._batch = None  # lazily built numpy QarmaBatch128

    def __deepcopy__(self, memo):
        # Keyed but stateless after construction (compute() mutates
        # nothing; _batch is a lazily-built cache of derived tables), so
        # boot-snapshot restores share the instance instead of cloning
        # the cipher tables.
        return self

    def __getstate__(self):
        # The batched cipher holds large numpy table views; it rebuilds
        # lazily on first compute_batch, so never serialize it.
        state = self.__dict__.copy()
        state["_batch"] = None
        return state

    def compute(self, line: bytes, address: int) -> int:
        if len(line) != CACHELINE_BYTES:
            raise ValueError(f"line must be {CACHELINE_BYTES} bytes")
        tag = 0
        for chunk_index in range(4):
            chunk = line[chunk_index * 16 : (chunk_index + 1) * 16]
            # A_i is the 16-byte address of chunk i: binding each chunk to
            # its own address keeps the four cipher inputs distinct (else
            # identical chunks would cancel under the closing XOR).
            chunk_address = (address + 16 * chunk_index) & ((1 << 128) - 1)
            block = int.from_bytes(chunk, "little") ^ chunk_address
            tag ^= self._cipher.encrypt(block)
        # Drop the upper (128 - mac_bits) bits, as Section IV-F prescribes.
        return tag & self._mask

    def compute_batch(self, lines, addresses):
        """Vectorized :meth:`compute` over parallel lists of lines/addresses.

        Bit-exact against the scalar path (the batched cipher shares the
        scalar instance's tables and tweakey schedule); falls back to a
        scalar loop when numpy is unavailable.
        """
        from repro.crypto import qarma_batch

        count = len(lines)
        if not count:
            return []
        if not qarma_batch.HAVE_NUMPY:
            return [self.compute(line, addr)
                    for line, addr in zip(lines, addresses)]
        import numpy as np

        if self._batch is None:
            self._batch = qarma_batch.QarmaBatch128(self._cipher)
        for line in lines:
            if len(line) != CACHELINE_BYTES:
                raise ValueError(f"line must be {CACHELINE_BYTES} bytes")
        # Each 64-byte line is four 16-byte chunks = four (lo, hi) u64
        # pairs; chunk i is XORed with its own 16-byte chunk address.
        words = np.frombuffer(b"".join(lines), dtype="<u8").reshape(count, 8)
        chunk_offsets = np.uint64(16) * np.arange(4, dtype=np.uint64)
        chunk_addr = np.asarray(addresses, dtype=np.uint64)[:, None] + chunk_offsets
        plain_lo = np.ascontiguousarray(words[:, 0::2] ^ chunk_addr).reshape(-1)
        plain_hi = np.ascontiguousarray(words[:, 1::2]).reshape(-1)
        out_lo, out_hi = self._batch.encrypt(plain_lo, plain_hi)
        tag_lo = np.bitwise_xor.reduce(out_lo.reshape(count, 4), axis=1).tolist()
        tag_hi = np.bitwise_xor.reduce(out_hi.reshape(count, 4), axis=1).tolist()
        mask = self._mask
        return [(tag_lo[i] | (tag_hi[i] << 64)) & mask for i in range(count)]


class SipHashLineMAC:
    """SipHash-2-4-based line MAC with identical interface and tag width.

    Substantially faster in pure Python than QARMA, and validated against
    the published SipHash reference vectors — the recommended default for
    large simulations. The line address is bound by prepending it to the
    message.
    """

    def __init__(self, key: bytes, mac_bits: int = 96):
        if len(key) != 16:
            raise ValueError("SipHash key must be 16 bytes")
        if not 1 <= mac_bits <= 128:
            raise ValueError("mac_bits must lie in [1, 128]")
        self.mac_bits = mac_bits
        self.key_bytes = 16
        self._key = key

    def __deepcopy__(self, memo):
        # Keyed but stateless after construction: share across
        # boot-snapshot restores instead of cloning.
        return self

    def compute(self, line: bytes, address: int) -> int:
        if len(line) != CACHELINE_BYTES:
            raise ValueError(f"line must be {CACHELINE_BYTES} bytes")
        message = address.to_bytes(8, "little") + line
        return siphash24_wide(self._key, message, self.mac_bits)


class Blake2LineMAC:
    """Keyed BLAKE2b line MAC — the fast default for large simulations.

    BLAKE2b runs in C via :mod:`hashlib`, ~3 orders of magnitude faster
    than our pure-Python QARMA. Tag distribution and tamper-detection
    properties are equivalent for simulation purposes; the paper's actual
    hardware primitive (QARMA-128) remains available via
    :class:`QarmaLineMAC` and is selected with ``algorithm="qarma"``.
    """

    def __init__(self, key: bytes, mac_bits: int = 96):
        if not 16 <= len(key) <= 64:
            raise ValueError("BLAKE2b key must be 16..64 bytes")
        if not 1 <= mac_bits <= 128:
            raise ValueError("mac_bits must lie in [1, 128]")
        self.mac_bits = mac_bits
        self.key_bytes = len(key)
        self._key = key
        self._digest_bytes = (mac_bits + 7) // 8
        self._mask = (1 << mac_bits) - 1

    def __deepcopy__(self, memo):
        # Keyed but stateless after construction: share across
        # boot-snapshot restores instead of cloning.
        return self

    def compute(self, line: bytes, address: int) -> int:
        if len(line) != CACHELINE_BYTES:
            raise ValueError(f"line must be {CACHELINE_BYTES} bytes")
        digest = hashlib.blake2b(
            address.to_bytes(8, "little") + line,
            key=self._key,
            digest_size=self._digest_bytes,
        ).digest()
        return int.from_bytes(digest, "little") & self._mask


class PseudoLineMAC:
    """Non-cryptographic CRC-based tag for *timing* simulations only.

    Timing experiments (Figs 6/7) never tamper with data, so the MAC's
    cryptographic strength is irrelevant there — only *which* lines get a
    tag embedded and *which* reads trigger a MAC-unit delay matter, and
    both are pattern/identifier decisions independent of the tag value.
    This tag costs ~100 ns instead of ~100 us, keeping multi-million-access
    simulations tractable. Never use it for security experiments; the
    factory (:func:`make_line_mac`) labels it ``"pseudo"`` to keep the
    choice explicit.
    """

    def __init__(self, key: bytes, mac_bits: int = 96):
        if len(key) < 4:
            raise ValueError("key must be at least 4 bytes")
        if not 1 <= mac_bits <= 128:
            raise ValueError("mac_bits must lie in [1, 128]")
        self.mac_bits = mac_bits
        self.key_bytes = len(key)
        self._seed = int.from_bytes(key[:4], "little")
        self._mask = (1 << mac_bits) - 1

    def __deepcopy__(self, memo):
        # Keyed but stateless after construction: share across
        # boot-snapshot restores instead of cloning.
        return self

    def compute(self, line: bytes, address: int) -> int:
        if len(line) != CACHELINE_BYTES:
            raise ValueError(f"line must be {CACHELINE_BYTES} bytes")
        crc = zlib.crc32(line, (self._seed ^ address) & 0xFFFFFFFF)
        # Spread the 32-bit CRC over the tag width with odd multipliers.
        tag = crc
        tag |= ((crc * 0x9E3779B9) & 0xFFFFFFFF) << 32
        tag |= ((crc * 0x85EBCA6B) & 0xFFFFFFFF) << 64
        return tag & self._mask


def derive_key(secret: bytes, purpose: str, length: int) -> bytes:
    """Derive a fixed-length subkey from a master secret (re-keying support).

    Used by the PT-Guard engine when the OS triggers re-keying after CTB
    pressure (Section VII-B): each epoch derives a fresh MAC key.
    """
    material = b""
    counter = 0
    while len(material) < length:
        material += hashlib.sha256(
            secret + purpose.encode("utf-8") + counter.to_bytes(4, "little")
        ).digest()
        counter += 1
    return material[:length]


def make_line_mac(
    algorithm: str,
    secret: bytes,
    mac_bits: int = 96,
    epoch: int = 0,
    reference: bool = False,
) -> LineMAC:
    """Factory for line MACs.

    ``algorithm`` is ``"qarma"`` (the paper's construction), ``"siphash"``
    (pure-Python, vector-validated) or ``"blake2"`` (fast C-backed default
    for large simulations). ``epoch`` selects the re-keying generation.
    ``reference=True`` builds an independent oracle instance for the
    runtime validator: for qarma it selects the cell-by-cell reference
    cipher instead of the lookup tables; other algorithms get a freshly
    derived instance (an independent-recomputation determinism check).
    """
    purpose = f"ptguard-mac-epoch-{epoch}"
    if algorithm == "qarma":
        return QarmaLineMAC(
            derive_key(secret, purpose, 32),
            mac_bits=mac_bits,
            use_tables=not reference,
        )
    if algorithm == "siphash":
        return SipHashLineMAC(derive_key(secret, purpose, 16), mac_bits=mac_bits)
    if algorithm == "blake2":
        return Blake2LineMAC(derive_key(secret, purpose, 32), mac_bits=mac_bits)
    if algorithm == "pseudo":
        return PseudoLineMAC(derive_key(secret, purpose, 16), mac_bits=mac_bits)
    raise ValueError(f"unknown MAC algorithm {algorithm!r}")
