"""Vectorized QARMA-128 encryption over numpy arrays of blocks.

The scalar table path in :mod:`repro.crypto.qarma` evaluates one block at
a time: each fused round is 16 Python-level table lookups XORed together.
This module lifts the identical mathematics onto numpy: a batch of N
128-bit blocks is carried as two ``uint64`` arrays (low/high halves), the
fused round tables are materialised once per cipher as ``(16, 256)``
``uint64`` lo/hi pairs, and a round becomes 16 fancy-indexed gathers per
half — amortising the interpreter overhead across the whole batch.

The batch path is bit-exact against :meth:`Qarma._encrypt_tables` (it
reads the same ``_TableSet`` and the same memoized tweakey schedule), and
property tests in ``tests/test_batch_equivalence.py`` pin that down.

numpy is an optional dependency of the simulator: when it is missing,
``QarmaBatch128`` raises at construction and callers fall back to the
scalar path (see :meth:`repro.crypto.mac.QarmaLineMAC.compute_batch`).
"""

from __future__ import annotations

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

HAVE_NUMPY = _np is not None

_M64 = (1 << 64) - 1


def _table_lohi(table):
    """Split 16 per-cell tables of 128-bit ints into (16, 256) lo/hi u64."""
    lo = _np.empty((16, 256), dtype=_np.uint64)
    hi = _np.empty((16, 256), dtype=_np.uint64)
    for i in range(16):
        row = table[i]
        lo[i] = [v & _M64 for v in row]
        hi[i] = [(v >> 64) & _M64 for v in row]
    return lo, hi


def split_blocks(values):
    """Pack an iterable of 128-bit ints into (lo, hi) uint64 arrays."""
    lo = _np.fromiter((v & _M64 for v in values), dtype=_np.uint64)
    hi = _np.fromiter(((v >> 64) & _M64 for v in values), dtype=_np.uint64,
                      count=len(lo))
    return lo, hi


def join_blocks(lo, hi):
    """Inverse of :func:`split_blocks`: a list of 128-bit Python ints."""
    lo_l = lo.tolist()
    hi_l = hi.tolist()
    return [lo_l[i] | (hi_l[i] << 64) for i in range(len(lo_l))]


class QarmaBatch128:
    """Batched encrypt for a :class:`repro.crypto.qarma.Qarma` instance
    with 8-bit cells (QARMA-128). Wraps — never replaces — the scalar
    cipher: tweakeys and whitening keys come from the wrapped instance's
    own memoized schedule, so both paths see identical key material."""

    def __init__(self, cipher):
        if not HAVE_NUMPY:
            raise RuntimeError("QarmaBatch128 requires numpy")
        if cipher.cell_bits != 8:
            raise ValueError("QarmaBatch128 supports 8-bit cells only")
        tables = cipher._tables
        self._tsl = _table_lohi(tables.tsl)
        self._tsl_inv = _table_lohi(tables.tsl_inv)
        self._sbox_pos = _table_lohi(tables.sbox_pos)
        self._sbox_inv_pos = _table_lohi(tables.sbox_inv_pos)
        self._reflect = _table_lohi(tables.reflect)
        self._rounds = cipher.rounds
        self._cipher = cipher

    @staticmethod
    def _apply(tab, xlo, xhi):
        """One fused table layer: XOR of 16 per-cell gathers, lo/hi halves.

        Cells 0-7 live in the low u64, cells 8-15 in the high u64; each
        contributes to both output halves because the packed tables span
        the whole 128-bit state.
        """
        tlo, thi = tab
        mask = _np.uint64(0xFF)
        cell = xlo & mask
        rlo = tlo[0][cell]
        rhi = thi[0][cell]
        for i in range(1, 8):
            cell = (xlo >> _np.uint64(8 * i)) & mask
            rlo = rlo ^ tlo[i][cell]
            rhi = rhi ^ thi[i][cell]
        for i in range(8):
            cell = (xhi >> _np.uint64(8 * i)) & mask
            rlo = rlo ^ tlo[8 + i][cell]
            rhi = rhi ^ thi[8 + i][cell]
        return rlo, rhi

    def encrypt(self, plain_lo, plain_hi, tweak: int = 0):
        """Encrypt a batch; mirrors ``Qarma._encrypt_tables`` line by line."""
        cipher = self._cipher
        tk, ltk, tkb, _ltkd, tweak_last = cipher._tweak_entry(tweak)
        w0, w1 = cipher._w0_int, cipher._w1_int

        def key_lohi(value):
            return _np.uint64(value & _M64), _np.uint64((value >> 64) & _M64)

        xlo = plain_lo.copy()
        xhi = plain_hi.copy()
        klo, khi = key_lohi(w0 ^ tk[0])
        xlo ^= klo
        xhi ^= khi
        for i in range(1, self._rounds):
            xlo, xhi = self._apply(self._tsl, xlo, xhi)
            klo, khi = key_lohi(ltk[i])
            xlo ^= klo
            xhi ^= khi
        xlo, xhi = self._apply(self._sbox_pos, xlo, xhi)
        klo, khi = key_lohi(w1 ^ tweak_last)
        xlo ^= klo
        xhi ^= khi
        xlo, xhi = self._apply(self._reflect, xlo, xhi)
        klo, khi = key_lohi(cipher._reflect_const)
        xlo ^= klo
        xhi ^= khi
        klo, khi = key_lohi(w0 ^ tweak_last)
        xlo ^= klo
        xhi ^= khi
        for i in range(self._rounds - 1, 0, -1):
            xlo, xhi = self._apply(self._tsl_inv, xlo, xhi)
            klo, khi = key_lohi(tkb[i])
            xlo ^= klo
            xhi ^= khi
        xlo, xhi = self._apply(self._sbox_inv_pos, xlo, xhi)
        klo, khi = key_lohi(tkb[0] ^ w1)
        xlo ^= klo
        xhi ^= khi
        return xlo, xhi
