"""Cryptographic primitives: QARMA cipher, SipHash, and line MACs."""

from repro.crypto.mac import (
    Blake2LineMAC,
    PseudoLineMAC,
    LineMAC,
    QarmaLineMAC,
    SipHashLineMAC,
    derive_key,
    make_line_mac,
)
from repro.crypto.qarma import Qarma, Qarma64, Qarma128
from repro.crypto.siphash import siphash24, siphash24_wide

__all__ = [
    "Blake2LineMAC",
    "PseudoLineMAC",
    "LineMAC",
    "QarmaLineMAC",
    "SipHashLineMAC",
    "derive_key",
    "make_line_mac",
    "Qarma",
    "Qarma64",
    "Qarma128",
    "siphash24",
    "siphash24_wide",
]
