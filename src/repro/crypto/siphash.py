"""SipHash-2-4 — a keyed pseudo-random function, implemented from scratch.

SipHash (Aumasson & Bernstein, 2012) is used as an alternative MAC
primitive to QARMA. Unlike our QARMA implementation — whose official test
vectors are unavailable offline — SipHash's reference vectors are public
and included in the test suite, giving the MAC layer a primitive whose
correctness is externally validated.

Only the 64-bit-output SipHash-2-4 variant is implemented; the MAC layer
derives wider tags by hashing with distinct per-lane tweaks.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1


def _rotl64(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (64 - amount))) & MASK64


def _sipround(v0: int, v1: int, v2: int, v3: int) -> tuple[int, int, int, int]:
    v0 = (v0 + v1) & MASK64
    v1 = _rotl64(v1, 13)
    v1 ^= v0
    v0 = _rotl64(v0, 32)
    v2 = (v2 + v3) & MASK64
    v3 = _rotl64(v3, 16)
    v3 ^= v2
    v0 = (v0 + v3) & MASK64
    v3 = _rotl64(v3, 21)
    v3 ^= v0
    v2 = (v2 + v1) & MASK64
    v1 = _rotl64(v1, 17)
    v1 ^= v2
    v2 = _rotl64(v2, 32)
    return v0, v1, v2, v3


def siphash24(key: bytes, data: bytes) -> int:
    """Compute SipHash-2-4 of ``data`` under a 16-byte ``key``.

    Returns the 64-bit tag as an integer.

    >>> key = bytes(range(16))
    >>> hex(siphash24(key, b""))
    '0x726fdb47dd0e0e31'
    """
    if len(key) != 16:
        raise ValueError("SipHash key must be exactly 16 bytes")
    k0 = int.from_bytes(key[:8], "little")
    k1 = int.from_bytes(key[8:], "little")

    v0 = k0 ^ 0x736F6D6570736575
    v1 = k1 ^ 0x646F72616E646F6D
    v2 = k0 ^ 0x6C7967656E657261
    v3 = k1 ^ 0x7465646279746573

    length = len(data)
    # Process all whole 8-byte words.
    for offset in range(0, length - length % 8, 8):
        word = int.from_bytes(data[offset : offset + 8], "little")
        v3 ^= word
        for _ in range(2):
            v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
        v0 ^= word

    # Final partial word carries the message length in its top byte.
    tail = data[length - length % 8 :]
    word = (length & 0xFF) << 56
    word |= int.from_bytes(tail, "little")
    v3 ^= word
    for _ in range(2):
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
    v0 ^= word

    v2 ^= 0xFF
    for _ in range(4):
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
    return (v0 ^ v1 ^ v2 ^ v3) & MASK64


def siphash24_wide(key: bytes, data: bytes, out_bits: int) -> int:
    """Derive an ``out_bits``-wide tag from SipHash-2-4 lanes.

    Each 64-bit lane hashes the message prefixed with its lane index, and
    the lanes are concatenated little-endian then truncated. This is a
    standard KDF-style widening; lanes are independent PRF outputs.
    """
    if out_bits <= 0:
        raise ValueError("out_bits must be positive")
    lanes = (out_bits + 63) // 64
    tag = 0
    for lane in range(lanes):
        tag |= siphash24(key, bytes([lane]) + data) << (64 * lane)
    return tag & ((1 << out_bits) - 1)
