"""QARMA — a low-latency tweakable block cipher (Avanzi, ToSC 2017).

PT-Guard constructs its PTE MAC from QARMA-128 (paper Section IV-F). This
module implements the QARMA construction from scratch: a 4x4 cell state,
``r`` forward rounds, a central Even-Mansour-style pseudo-reflector, and
``r`` backward rounds, with the tweak injected every round through the
``h`` cell permutation and ``omega`` LFSR.

Fidelity note (also recorded in DESIGN.md): the official QARMA test
vectors are not available offline, so this implementation is validated by
*property* tests — exact invertibility, key/tweak/plaintext avalanche, and
bias statistics — rather than by reference vectors. The structure (cell
sizes, permutations, Midori-derived S-box, circulant MixColumns matrices,
pi-digit round constants, reflection construction) follows the published
design. Where PT-Guard needs an externally validated primitive, the MAC
layer can swap in SipHash-2-4 (see :mod:`repro.crypto.siphash`).

Two variants are provided:

* ``Qarma64``  — 64-bit block, 4-bit cells, 128-bit key (r = 7).
* ``Qarma128`` — 128-bit block, 8-bit cells, 256-bit key (r = 8, i.e. the
  18-round configuration PT-Guard cites: 2r + 2 = 18).

Two evaluation paths share the same mathematics:

* the **reference path** (:meth:`Qarma.encrypt_reference`) operates on
  explicit 16-cell lists, one primitive at a time — slow, but a direct
  transcription of the construction;
* the **table path** (the default :meth:`Qarma.encrypt`) folds each
  round's linear layer (tau-shuffle then MixColumns) together with the
  adjacent S-box layer into 16 per-cell lookup tables over packed
  integers (AES "T-table" style), so a round is 16 table lookups XORed
  together instead of hundreds of per-cell operations. The tables are
  key-independent, built once per cell size and shared by every
  instance; the per-round tweakeys are memoized per tweak value. The
  table path is bit-exact against the reference path (property-tested in
  ``tests/test_qarma_tables.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple


def _invert_permutation(perm: Sequence[int]) -> Tuple[int, ...]:
    """Invert a permutation by index assignment (O(n), not O(n^2) scans)."""
    inverse = [0] * len(perm)
    for index, value in enumerate(perm):
        inverse[value] = index
    return tuple(inverse)


# Midori Sb0, the sigma_1 S-box family member QARMA recommends.
_SBOX4 = (0xC, 0xA, 0xD, 0x3, 0xE, 0xB, 0xF, 0x7, 0x8, 0x9, 0x1, 0x5, 0x0, 0x2, 0x4, 0x6)
_SBOX4_INV = _invert_permutation(_SBOX4)

# Cell shuffle tau (Midori's permutation) and its inverse.
_TAU = (0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2)
_TAU_INV = _invert_permutation(_TAU)

# Tweak-cell update permutation h.
_H = (6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11)

# Cells whose tweak value passes through the omega LFSR each round.
_LFSR_CELLS = (0, 1, 3, 4, 8, 11, 13)

# Round constants: leading fractional hex digits of pi, 64 bits per round.
_PI_CONSTANTS = (
    0x243F6A8885A308D3,
    0x13198A2E03707344,
    0xA4093822299F31D0,
    0x082EFA98EC4E6C89,
    0x452821E638D01377,
    0xBE5466CF34E90C6C,
    0xC0AC29B7C97C50DD,
    0x3F84D5B5B5470917,
    0x9216D5D98979FB1B,
    0xD1310BA698DFB5AC,
    0x2FFD72DBD01ADFB7,
    0xB8E1AFED6A267E96,
    0xBA7C9045F12C7F99,
    0x24A19947B3916CF7,
    0x0801F2E2858EFC16,
    0x636920D871574E69,
)
# The reflection constant alpha (a further pi-digit word).
_ALPHA = 0xC6EF3720A4093822

# MixColumns: involutory circ(0, p^1, p^2, p^1) for 4-bit cells,
# circ(0, p^1, p^2, p^5) for 8-bit cells (inverted numerically).
_MIX_ROTATIONS = {4: (0, 1, 2, 1), 8: (0, 1, 2, 5)}

# Bound on the per-instance tweakey-schedule memo (each entry is a handful
# of small tuples; the MAC use case only ever sees tweak 0).
_TWEAK_CACHE_MAX = 1024


def _mix_schedule(
    rotations: Sequence[int], cell_bits: int
) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
    """Precompute, per output row, the (source row, rotation) pairs of the
    circulant MixColumns matrix — instead of re-deriving ``(k - row) % 4``
    per cell per round. Rotations come out already reduced mod the cell
    size, and the zero diagonal entries are dropped."""
    schedule = []
    for row in range(4):
        entries = []
        for k in range(4):
            diagonal = (k - row) % 4
            if diagonal == 0:
                continue  # diagonal entry is the zero map in circ(0, ...)
            entries.append((k, rotations[diagonal] % cell_bits))
        schedule.append(tuple(entries))
    return tuple(schedule)


def _mix_cells(
    cells: Sequence[int],
    schedule: Tuple[Tuple[Tuple[int, int], ...], ...],
    cell_bits: int,
    mask: int,
) -> List[int]:
    """Multiply each state column by the circulant matrix (column-major
    state: column ``c`` holds cells ``c, c+4, c+8, c+12``)."""
    out = [0] * 16
    for col in range(4):
        column = (cells[col], cells[col + 4], cells[col + 8], cells[col + 12])
        for row in range(4):
            acc = 0
            for k, rot in schedule[row]:
                value = column[k]
                if rot:
                    value = ((value << rot) | (value >> (cell_bits - rot))) & mask
                acc ^= value
            out[col + 4 * row] = acc
    return out


def _shuffle_cells(cells: Sequence[int]) -> List[int]:
    return [cells[_TAU[i]] for i in range(16)]


def _shuffle_cells_inv(cells: Sequence[int]) -> List[int]:
    return [cells[_TAU_INV[i]] for i in range(16)]


# -- fused lookup tables (key-independent, shared across instances) ---------


class _TableSet:
    """Per-cell-size lookup tables for the packed-integer fast path.

    Every table is a list of 16 lists (one per cell position) mapping a
    cell value to its packed whole-state contribution; a full state
    transform is the XOR of 16 lookups.

    * ``tsl``      — S-box then (tau, MixColumns): one fused forward round
    * ``tsl_inv``  — inverse S-box then (inverse MixColumns, inverse tau)
    * ``linear``   — (tau, MixColumns) alone (used on tweakeys)
    * ``reflect``  — tau, MixColumns, inverse tau (the reflector's linear part)
    * ``reflect_inv`` — tau, inverse MixColumns, inverse tau
    * ``sbox_pos`` / ``sbox_inv_pos`` — the (inverse) S-box alone, in place
    """

    __slots__ = (
        "cell_bits",
        "mask",
        "tsl",
        "tsl_inv",
        "linear",
        "reflect",
        "reflect_inv",
        "sbox_pos",
        "sbox_inv_pos",
        "apply",
        "mix_inv_cells",
    )

    def __init__(self, cell_bits: int):
        self.cell_bits = cell_bits
        mask = (1 << cell_bits) - 1
        self.mask = mask
        size = 1 << cell_bits
        shifts = tuple(i * cell_bits for i in range(16))
        rotations = _MIX_ROTATIONS[cell_bits]
        forward_schedule = _mix_schedule(rotations, cell_bits)

        if cell_bits == 4:
            sbox: Sequence[int] = _SBOX4
            sbox_inv: Sequence[int] = _SBOX4_INV
        else:
            # 8-bit cells: S-box each nibble, then swap nibbles so the next
            # MixColumns round diffuses across nibble boundaries.
            sbox = tuple(
                (_SBOX4[v & 0xF] << 4) | _SBOX4[v >> 4] for v in range(256)
            )
            sbox_inv = tuple(
                (_SBOX4_INV[v & 0xF] << 4) | _SBOX4_INV[v >> 4] for v in range(256)
            )

        def mix_forward(cells: Sequence[int]) -> List[int]:
            return _mix_cells(cells, forward_schedule, cell_bits, mask)

        if cell_bits == 4:
            mix_inverse = mix_forward  # circ(0, 1, 2, 1) is an involution
        else:
            matrix = _invert_circulant(rotations, cell_bits)

            def mix_inverse(cells: Sequence[int]) -> List[int]:
                return _apply_gf2_matrix(matrix, cells, cell_bits)

        self.mix_inv_cells = mix_inverse

        def pack(cells: Sequence[int]) -> int:
            value = 0
            for i in range(16):
                value |= cells[i] << shifts[i]
            return value

        def linear_table(transform: Callable[[List[int]], List[int]]) -> List[List[int]]:
            """Tabulate a GF(2)-linear state transform per (position, value).

            Only the ``cell_bits`` single-bit basis inputs go through the
            (slow) reference transform; the rest of each 2^cell_bits-entry
            table is filled by XOR-combining basis images.
            """
            tables: List[List[int]] = []
            for position in range(16):
                basis = []
                for bit in range(cell_bits):
                    cells = [0] * 16
                    cells[position] = 1 << bit
                    basis.append(pack(transform(cells)))
                table = [0] * size
                for value in range(1, size):
                    low = value & -value
                    table[value] = table[value ^ low] ^ basis[low.bit_length() - 1]
                tables.append(table)
            return tables

        linear = linear_table(lambda c: mix_forward(_shuffle_cells(c)))
        linear_inv = linear_table(lambda c: _shuffle_cells_inv(mix_inverse(c)))
        self.linear = linear
        self.reflect = linear_table(
            lambda c: _shuffle_cells_inv(mix_forward(_shuffle_cells(c)))
        )
        self.reflect_inv = linear_table(
            lambda c: _shuffle_cells_inv(mix_inverse(_shuffle_cells(c)))
        )
        # Fold the S-box of the adjacent non-linear layer into the linear
        # tables: one fused lookup per cell covers a whole cipher round.
        self.tsl = [[linear[i][sbox[v]] for v in range(size)] for i in range(16)]
        self.tsl_inv = [
            [linear_inv[i][sbox_inv[v]] for v in range(size)] for i in range(16)
        ]
        self.sbox_pos = [[sbox[v] << shifts[i] for v in range(size)] for i in range(16)]
        self.sbox_inv_pos = [
            [sbox_inv[v] << shifts[i] for v in range(size)] for i in range(16)
        ]

        # Unrolled 16-lookup XOR fold, compiled once per cell size.
        parts = " ^ ".join(
            f"t[{i}][(x >> {shifts[i]}) & {mask}]" if i else f"t[0][x & {mask}]"
            for i in range(16)
        )
        self.apply = eval(f"lambda t, x: {parts}")  # noqa: S307 - static, trusted

    def __reduce__(self):
        # The compiled ``apply`` lambda and the mix closures cannot be
        # pickled; tables are pure functions of the cell size, so rebuild
        # through the memoized factory instead (boot-snapshot support).
        return (_tables_for, (self.cell_bits,))


_TABLE_SETS: Dict[int, _TableSet] = {}


def _tables_for(cell_bits: int) -> _TableSet:
    tables = _TABLE_SETS.get(cell_bits)
    if tables is None:
        tables = _TableSet(cell_bits)
        _TABLE_SETS[cell_bits] = tables
    return tables


class Qarma:
    """A QARMA-family tweakable block cipher instance.

    Parameters
    ----------
    key:
        ``2 * block_bits`` bits of key material as bytes
        (whitening key ``w0`` little-endian first, core key ``k0`` second).
    cell_bits:
        4 for QARMA-64, 8 for QARMA-128.
    rounds:
        Number of forward rounds ``r`` (total rounds = ``2r + 2``).
    use_tables:
        Select the packed-integer table path (default) or the cell-by-cell
        reference path for :meth:`encrypt`/:meth:`decrypt`. Both are
        bit-exact; the reference path exists for validation and as the
        executable specification.
    """

    def __init__(
        self, key: bytes, cell_bits: int = 8, rounds: int = 8, use_tables: bool = True
    ):
        if cell_bits not in (4, 8):
            raise ValueError("cell_bits must be 4 or 8")
        if not 1 <= rounds <= len(_PI_CONSTANTS):
            raise ValueError(f"rounds must lie in [1, {len(_PI_CONSTANTS)}]")
        self.cell_bits = cell_bits
        self.rounds = rounds
        self.block_bits = 16 * cell_bits
        self.block_bytes = self.block_bits // 8
        key_bytes = 2 * self.block_bytes
        if len(key) != key_bytes:
            raise ValueError(f"key must be {key_bytes} bytes, got {len(key)}")

        self._cell_mask = (1 << cell_bits) - 1
        w0 = int.from_bytes(key[: self.block_bytes], "little")
        k0 = int.from_bytes(key[self.block_bytes :], "little")
        self._w0 = self._to_cells(w0)
        self._k0 = self._to_cells(k0)
        # w1 = (w0 >>> 1) xor (w0 >> (b - 1)): the orthomorphism o(x).
        b = self.block_bits
        w1 = (((w0 >> 1) | (w0 << (b - 1))) ^ (w0 >> (b - 1))) & ((1 << b) - 1)
        self._w1 = self._to_cells(w1)
        self._alpha = self._constant_cells(_ALPHA)
        self._constants = [self._constant_cells(_PI_CONSTANTS[i]) for i in range(rounds)]
        self._mix_rot = _MIX_ROTATIONS[cell_bits]
        self._mix_sched = _mix_schedule(self._mix_rot, cell_bits)
        if cell_bits == 4:
            self._mix_rot_inv = self._mix_rot  # involution
        else:
            self._mix_rot_inv = _invert_circulant(self._mix_rot, cell_bits)

        # -- table-path (packed-integer) precomputation --------------------
        tables = _tables_for(cell_bits)
        self._tables = tables
        self._w0_int = w0
        self._w1_int = w1
        self._k0_int = k0
        self._alpha_int = self._from_cells(self._alpha)
        self._constants_int = [self._from_cells(c) for c in self._constants]
        # Reflector additive constants: tau^-1(k0) and tau^-1(M^-1(k0)).
        self._reflect_const = self._from_cells(_shuffle_cells_inv(self._k0))
        self._reflect_inv_const = self._from_cells(
            _shuffle_cells_inv(tables.mix_inv_cells(self._k0))
        )
        # L(alpha) with L = M . tau, for the decrypt-side tweakeys.
        self._linear_alpha = tables.apply(tables.linear, self._alpha_int)
        self._tweak_cache: Dict[int, tuple] = {}
        if use_tables:
            self.encrypt = self._encrypt_tables  # type: ignore[method-assign]
            self.decrypt = self._decrypt_tables  # type: ignore[method-assign]
        else:
            self.encrypt = self.encrypt_reference  # type: ignore[method-assign]
            self.decrypt = self.decrypt_reference  # type: ignore[method-assign]

    # -- cell <-> integer conversion -------------------------------------

    def _to_cells(self, value: int) -> List[int]:
        """Split an integer into 16 cells, cell 0 least significant."""
        return [(value >> (self.cell_bits * i)) & self._cell_mask for i in range(16)]

    def _from_cells(self, cells: Sequence[int]) -> int:
        value = 0
        for i, cell in enumerate(cells):
            value |= cell << (self.cell_bits * i)
        return value

    def _constant_cells(self, word64: int) -> List[int]:
        """Expand a 64-bit constant into 16 cells (repeated for 8-bit cells)."""
        if self.cell_bits == 4:
            return [(word64 >> (4 * i)) & 0xF for i in range(16)]
        doubled = word64 | (word64 << 64)
        return [(doubled >> (8 * i)) & 0xFF for i in range(16)]

    # -- primitive operations (each with an exact inverse) ----------------

    def _sub_cells(self, cells: List[int]) -> List[int]:
        if self.cell_bits == 4:
            return [_SBOX4[c] for c in cells]
        # 8-bit cells: S-box each nibble, then swap nibbles so the next
        # MixColumns round diffuses across nibble boundaries.
        return [(_SBOX4[c & 0xF] << 4) | _SBOX4[c >> 4] for c in cells]

    def _sub_cells_inv(self, cells: List[int]) -> List[int]:
        if self.cell_bits == 4:
            return [_SBOX4_INV[c] for c in cells]
        return [(_SBOX4_INV[c & 0xF] << 4) | _SBOX4_INV[c >> 4] for c in cells]

    def _shuffle(self, cells: List[int]) -> List[int]:
        return _shuffle_cells(cells)

    def _shuffle_inv(self, cells: List[int]) -> List[int]:
        return _shuffle_cells_inv(cells)

    def _mix_forward(self, cells: List[int]) -> List[int]:
        return _mix_cells(cells, self._mix_sched, self.cell_bits, self._cell_mask)

    def _mix_inverse(self, cells: List[int]) -> List[int]:
        if self.cell_bits == 4:
            return self._mix_forward(cells)
        return _apply_gf2_matrix(self._mix_rot_inv, cells, self.cell_bits)

    @staticmethod
    def _xor(a: Sequence[int], b: Sequence[int]) -> List[int]:
        return [x ^ y for x, y in zip(a, b)]

    def _lfsr(self, cell: int) -> int:
        """The omega LFSR on a tweak cell: maximal-period map per cell size."""
        n = self.cell_bits
        top = (cell >> (n - 1)) & 1
        second = (cell >> (n - 2)) & 1 if n == 4 else (cell >> 2) & 1
        return ((cell << 1) & self._cell_mask) | (top ^ second)

    def _lfsr_inv(self, cell: int) -> int:
        n = self.cell_bits
        low = cell & 1
        shifted = cell >> 1
        second = (shifted >> (n - 2)) & 1 if n == 4 else (shifted >> 2) & 1
        top = low ^ second
        return shifted | (top << (n - 1))

    def _tweak_schedule(self, tweak: int) -> List[List[int]]:
        """Materialise the per-round tweak states for the forward pass."""
        cells = self._to_cells(tweak & ((1 << self.block_bits) - 1))
        schedule = [list(cells)]
        for _ in range(self.rounds - 1):
            permuted = [cells[_H[i]] for i in range(16)]
            for idx in _LFSR_CELLS:
                permuted[idx] = self._lfsr(permuted[idx])
            cells = permuted
            schedule.append(list(cells))
        return schedule

    # -- rounds ------------------------------------------------------------

    def _forward_round(self, state: List[int], tweakey: List[int], short: bool) -> List[int]:
        state = self._xor(state, tweakey)
        if not short:
            state = self._shuffle(state)
            state = self._mix_forward(state)
        return self._sub_cells(state)

    def _backward_round(self, state: List[int], tweakey: List[int], short: bool) -> List[int]:
        state = self._sub_cells_inv(state)
        if not short:
            state = self._mix_inverse(state)
            state = self._shuffle_inv(state)
        return self._xor(state, tweakey)

    def _reflector(self, state: List[int]) -> List[int]:
        """The central pseudo-reflector: tau, M (keyed by k1), tau^-1."""
        state = self._shuffle(state)
        state = self._mix_forward(state)
        state = self._xor(state, self._k0)
        state = self._shuffle_inv(state)
        return state

    def _reflector_inv(self, state: List[int]) -> List[int]:
        state = self._shuffle(state)
        state = self._xor(state, self._k0)
        state = self._mix_inverse(state)
        state = self._shuffle_inv(state)
        return state

    # -- public API ----------------------------------------------------------

    def encrypt(self, plaintext: int, tweak: int = 0) -> int:
        """Encrypt one block (bound per instance to the table or reference
        path in ``__init__``; both compute the identical permutation)."""
        return self._encrypt_tables(plaintext, tweak)

    def decrypt(self, ciphertext: int, tweak: int = 0) -> int:
        """Invert :meth:`encrypt` exactly."""
        return self._decrypt_tables(ciphertext, tweak)

    # -- table path ----------------------------------------------------------

    def _tweak_entry(self, tweak: int) -> tuple:
        """Packed per-round tweakeys, memoized per tweak value.

        Returns ``(tk, ltk, tkb, ltkd, tweak_last)`` where ``tk[i]`` is the
        packed round tweakey ``k0 ^ t_i ^ c_i``, ``ltk[i] = L(tk[i])`` with
        ``L = M . tau`` (the form the fused forward tables consume),
        ``tkb[i] = tk[i] ^ alpha`` for the backward rounds, ``ltkd[i] =
        L(tk[i] ^ alpha)`` for the decrypt forward pass, and ``tweak_last``
        the packed final tweak state used in the central whitening.
        """
        entry = self._tweak_cache.get(tweak)
        if entry is not None:
            return entry
        tables = self._tables
        apply_tables = tables.apply
        linear = tables.linear
        k0 = self._k0_int
        alpha = self._alpha_int
        constants = self._constants_int
        schedule = [self._from_cells(c) for c in self._tweak_schedule(tweak)]
        tk = tuple(k0 ^ schedule[i] ^ constants[i] for i in range(self.rounds))
        ltk = (0,) + tuple(apply_tables(linear, tk[i]) for i in range(1, self.rounds))
        tkb = tuple(value ^ alpha for value in tk)
        ltkd = (0,) + tuple(value ^ self._linear_alpha for value in ltk[1:])
        entry = (tk, ltk, tkb, ltkd, schedule[-1])
        if len(self._tweak_cache) >= _TWEAK_CACHE_MAX:
            self._tweak_cache.clear()
        self._tweak_cache[tweak] = entry
        return entry

    def _encrypt_tables(self, plaintext: int, tweak: int = 0) -> int:
        self._check_block(plaintext)
        tables = self._tables
        apply_tables = tables.apply
        tsl = tables.tsl
        tk, ltk, tkb, _ltkd, tweak_last = self._tweak_entry(tweak)
        rounds = self.rounds

        # Forward rounds, S-box fused with the next round's linear layer.
        x = plaintext ^ self._w0_int ^ tk[0]
        for i in range(1, rounds):
            x = apply_tables(tsl, x) ^ ltk[i]
        x = apply_tables(tables.sbox_pos, x)
        # Central whitening, reflector, central whitening.
        x ^= self._w1_int ^ tweak_last
        x = apply_tables(tables.reflect, x) ^ self._reflect_const
        x ^= self._w0_int ^ tweak_last
        # Backward rounds (tweakeys carry alpha).
        tsl_inv = tables.tsl_inv
        for i in range(rounds - 1, 0, -1):
            x = apply_tables(tsl_inv, x) ^ tkb[i]
        x = apply_tables(tables.sbox_inv_pos, x) ^ tkb[0]
        return x ^ self._w1_int

    def _decrypt_tables(self, ciphertext: int, tweak: int = 0) -> int:
        self._check_block(ciphertext)
        tables = self._tables
        apply_tables = tables.apply
        tsl = tables.tsl
        tk, _ltk, tkb, ltkd, tweak_last = self._tweak_entry(tweak)
        rounds = self.rounds

        x = ciphertext ^ self._w1_int ^ tkb[0]
        for i in range(1, rounds):
            x = apply_tables(tsl, x) ^ ltkd[i]
        x = apply_tables(tables.sbox_pos, x)
        x ^= self._w0_int ^ tweak_last
        x = apply_tables(tables.reflect_inv, x) ^ self._reflect_inv_const
        x ^= self._w1_int ^ tweak_last
        tsl_inv = tables.tsl_inv
        for i in range(rounds - 1, 0, -1):
            x = apply_tables(tsl_inv, x) ^ tk[i]
        x = apply_tables(tables.sbox_inv_pos, x) ^ tk[0]
        return x ^ self._w0_int

    # -- reference path --------------------------------------------------------

    def encrypt_reference(self, plaintext: int, tweak: int = 0) -> int:
        """Encrypt one block via the cell-by-cell reference path."""
        self._check_block(plaintext)
        state = self._to_cells(plaintext)
        tweaks = self._tweak_schedule(tweak)

        state = self._xor(state, self._w0)
        for i in range(self.rounds):
            tweakey = self._xor(self._xor(self._k0, tweaks[i]), self._constants[i])
            state = self._forward_round(state, tweakey, short=(i == 0))
        # Forward whitening half-round before the reflector.
        state = self._xor(state, self._xor(self._w1, tweaks[-1]))
        state = self._reflector(state)
        state = self._xor(state, self._xor(self._w0, tweaks[-1]))
        for i in reversed(range(self.rounds)):
            tweakey = self._xor(
                self._xor(self._xor(self._k0, tweaks[i]), self._constants[i]),
                self._alpha,
            )
            state = self._backward_round(state, tweakey, short=(i == 0))
        state = self._xor(state, self._w1)
        return self._from_cells(state)

    def decrypt_reference(self, ciphertext: int, tweak: int = 0) -> int:
        """Invert :meth:`encrypt_reference` exactly (mechanical inverse)."""
        self._check_block(ciphertext)
        state = self._to_cells(ciphertext)
        tweaks = self._tweak_schedule(tweak)

        state = self._xor(state, self._w1)
        for i in range(self.rounds):
            tweakey = self._xor(
                self._xor(self._xor(self._k0, tweaks[i]), self._constants[i]),
                self._alpha,
            )
            # Inverse of a backward round is a forward round with same tweakey.
            state = self._forward_round_inv_of_backward(state, tweakey, short=(i == 0))
        state = self._xor(state, self._xor(self._w0, tweaks[-1]))
        state = self._reflector_inv(state)
        state = self._xor(state, self._xor(self._w1, tweaks[-1]))
        for i in reversed(range(self.rounds)):
            tweakey = self._xor(self._xor(self._k0, tweaks[i]), self._constants[i])
            state = self._backward_round_inv_of_forward(state, tweakey, short=(i == 0))
        state = self._xor(state, self._w0)
        return self._from_cells(state)

    def _forward_round_inv_of_backward(
        self, state: List[int], tweakey: List[int], short: bool
    ) -> List[int]:
        state = self._xor(state, tweakey)
        if not short:
            state = self._shuffle(state)
            state = self._mix_forward(state)
        return self._sub_cells(state)

    def _backward_round_inv_of_forward(
        self, state: List[int], tweakey: List[int], short: bool
    ) -> List[int]:
        state = self._sub_cells_inv(state)
        if not short:
            state = self._mix_inverse(state)
            state = self._shuffle_inv(state)
        return self._xor(state, tweakey)

    def encrypt_bytes(self, plaintext: bytes, tweak: bytes = b"") -> bytes:
        """Byte-oriented convenience wrapper around :meth:`encrypt`."""
        if len(plaintext) != self.block_bytes:
            raise ValueError(f"plaintext must be {self.block_bytes} bytes")
        tweak_int = int.from_bytes(tweak.ljust(self.block_bytes, b"\0"), "little")
        out = self.encrypt(int.from_bytes(plaintext, "little"), tweak_int)
        return out.to_bytes(self.block_bytes, "little")

    def _check_block(self, value: int) -> None:
        if value < 0 or value >> self.block_bits:
            raise ValueError(f"block must fit in {self.block_bits} bits")


def Qarma64(key: bytes, rounds: int = 7, use_tables: bool = True) -> Qarma:
    """QARMA-64: 64-bit block, 128-bit key."""
    return Qarma(key, cell_bits=4, rounds=rounds, use_tables=use_tables)


def Qarma128(key: bytes, rounds: int = 8, use_tables: bool = True) -> Qarma:
    """QARMA-128: 128-bit block, 256-bit key.

    The default ``rounds=8`` gives the 18-round (2r + 2) configuration
    PT-Guard uses, with a 3.4 ns / ~10-CPU-cycle hardware latency.
    """
    return Qarma(key, cell_bits=8, rounds=rounds, use_tables=use_tables)


# -- circulant-matrix inversion over GF(2) ---------------------------------


def _column_matrix(rotations: Sequence[int], cell_bits: int) -> List[List[int]]:
    """Build the GF(2) matrix of circ(rotations) acting on one 4-cell column."""
    dim = 4 * cell_bits
    matrix = [[0] * dim for _ in range(dim)]
    for row in range(4):
        for k in range(4):
            if (k - row) % 4 == 0:
                continue
            rot = rotations[(k - row) % 4] % cell_bits
            for b in range(cell_bits):
                # input bit b of cell k contributes to output bit (b+rot)%n
                src = k * cell_bits + b
                dst = row * cell_bits + ((b + rot) % cell_bits)
                matrix[dst][src] ^= 1
    return matrix


def _invert_gf2(matrix: List[List[int]]) -> List[List[int]]:
    """Invert a square GF(2) matrix by Gauss-Jordan; raises if singular."""
    dim = len(matrix)
    aug = [row[:] + [1 if i == j else 0 for j in range(dim)] for i, row in enumerate(matrix)]
    for col in range(dim):
        pivot = next((r for r in range(col, dim) if aug[r][col]), None)
        if pivot is None:
            raise ValueError("matrix is singular over GF(2)")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        for r in range(dim):
            if r != col and aug[r][col]:
                aug[r] = [a ^ b for a, b in zip(aug[r], aug[col])]
    return [row[dim:] for row in aug]


_INV_CACHE: dict = {}


def _invert_circulant(rotations: Sequence[int], cell_bits: int):
    """Return the inverse column transform for circ(rotations)."""
    key = (tuple(rotations), cell_bits)
    if key not in _INV_CACHE:
        _INV_CACHE[key] = _invert_gf2(_column_matrix(rotations, cell_bits))
    return _INV_CACHE[key]


def _apply_gf2_matrix(matrix: List[List[int]], cells: List[int], cell_bits: int) -> List[int]:
    """Apply a per-column GF(2) matrix to the 16-cell state."""
    out = [0] * 16
    dim = 4 * cell_bits
    for col in range(4):
        vec = 0
        for row in range(4):
            vec |= cells[col + 4 * row] << (row * cell_bits)
        result = 0
        for dst in range(dim):
            row_bits = matrix[dst]
            acc = 0
            for src in range(dim):
                if row_bits[src]:
                    acc ^= (vec >> src) & 1
            result |= acc << dst
        for row in range(4):
            out[col + 4 * row] = (result >> (row * cell_bits)) & ((1 << cell_bits) - 1)
    return out
