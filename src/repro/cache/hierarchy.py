"""Three-level cache hierarchy in front of the memory controller.

Models the paper's Table III memory system: L1 (split I/D in spirit; the
simulator routes data and walker traffic through L1D), a private L2 and a
last-level L3. Non-inclusive: a miss at level N probes level N+1; fills
propagate back up; dirty victims are written back to the next level down
and ultimately through the memory controller — where PT-Guard's write
pattern-match runs.

The ``is_pte`` tag travels with requests (the isPTE request-bus bit of
Figure 5) so DRAM reads triggered by page-table walks are MAC-checked.
The hierarchy surfaces ``pte_check_failed`` from the controller — caches
refuse to install a line that failed its integrity check (Sec IV-F:
"the caches do not install the line").
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.common.config import CACHELINE_BYTES, SystemConfig
from repro.common.stats import StatGroup
from repro.cache.cache import Cache, EvictedLine
from repro.mem.controller import MemoryController, MemoryRequest, MemoryResponse


class AccessResult(NamedTuple):
    """Outcome of one hierarchy access."""

    data: bytes
    latency_cycles: int
    hit_level: str  # "L1", "L2", "L3" or "DRAM"
    pte_check_failed: bool = False


class SharedLLCAdapter:
    """A shared last-level cache presented through the controller API.

    Multi-core systems give each core a private L1/L2
    :class:`CacheHierarchy` whose "controller" is this adapter: reads
    probe the shared LLC first and only misses reach the real memory
    controller (and PT-Guard); write-backs land in the LLC and spill to
    DRAM on eviction.
    """

    def __init__(self, llc: Cache, controller: MemoryController, hit_latency: int):
        self.llc = llc
        self.controller = controller
        self.hit_latency = hit_latency
        self.stats = StatGroup("shared_llc")
        self.ptguard = controller.ptguard
        self.dram = controller.dram
        # Writes always complete at the LLC hit latency; reuse one response.
        self._write_response = MemoryResponse(data=None, latency_cycles=hit_latency)

    def discard(self, address: int) -> None:
        """Coherence invalidation for the shared LLC (no write-back)."""
        self.llc.invalidate(address)

    def access(self, request: MemoryRequest):
        if request.is_write:
            return self.write_access(
                request.address, request.data, request.cycle, request.origin
            )
        return self.read_access(request.address, request.is_pte, request.cycle)

    def write_access(
        self,
        address: int,
        data: Optional[bytes],
        cycle: int = 0,
        origin: Optional[object] = None,
    ) -> MemoryResponse:
        self.stats.increment("writes")
        victim = self.llc.fill(address, data, dirty=True)
        if victim is not None and victim.dirty:
            self.controller.write_access(victim.address, victim.data, cycle, self)
        return self._write_response

    def read_access(
        self, address: int, is_pte: bool = False, cycle: int = 0
    ) -> MemoryResponse:
        self.stats.increment("pte_reads" if is_pte else "reads")
        line = self.llc.lookup(address)
        if line is not None:
            return MemoryResponse(data=line.data, latency_cycles=self.hit_latency)
        response = self.controller.read_access(address, is_pte, cycle)
        if response.data is not None and not response.pte_check_failed:
            victim = self.llc.fill(address, response.data, is_pte=is_pte)
            if victim is not None and victim.dirty:
                self.controller.write_access(victim.address, victim.data, cycle, self)
        return MemoryResponse(
            data=response.data,
            latency_cycles=self.hit_latency + response.latency_cycles,
            pte_check_failed=response.pte_check_failed,
            corrected=response.corrected,
            rekey_required=response.rekey_required,
            guard_outcome=response.guard_outcome,
        )


class CacheHierarchy:
    """L1D + L2 (+ L3) over a :class:`MemoryController`-compatible backend.

    By default builds the full three-level Table III hierarchy. Pass
    ``private_levels_only=True`` to build just L1/L2 (each core's private
    slice) over a :class:`SharedLLCAdapter`.
    """

    def __init__(
        self,
        config: SystemConfig,
        controller,
        private_levels_only: bool = False,
    ):
        self.config = config
        self.controller = controller
        self.l1 = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        if private_levels_only:
            self.l3 = None
            self._levels = [self.l1, self.l2]
            self._latencies = [config.l1d.hit_latency, config.l2.hit_latency]
            self._names = ["L1", "L2"]
        else:
            self.l3 = Cache(config.l3)
            self._levels = [self.l1, self.l2, self.l3]
            self._latencies = [
                config.l1d.hit_latency,
                config.l2.hit_latency,
                config.l3.hit_latency,
            ]
            self._names = ["L1", "L2", "L3"]
        self.stats = StatGroup("hierarchy")
        self._counters = self.stats.raw()  # inlined hot-path updates
        self._lat1 = self._latencies[0]
        self._lat2 = self._latencies[1]
        self._lat3 = self._latencies[2] if self.l3 is not None else 0
        self.cycle = 0  # advanced by the owning core model

    # -- main access path -----------------------------------------------------

    def read(self, address: int, is_pte: bool = False) -> AccessResult:
        """Read one line; returns data, latency and where it hit.

        The level probes are unrolled (L1 → L2 → L3 → DRAM): this is the
        single hottest function of a simulation, and the generic loop costs
        an indexing + frame per level per access.
        """
        address = address & ~(CACHELINE_BYTES - 1)
        counters = self._counters
        try:
            counters["reads"] += 1
        except KeyError:
            counters["reads"] = 1
        latency = self._lat1
        line = self.l1.lookup(address)
        if line is not None:
            return AccessResult(line.data, latency, "L1")
        latency += self._lat2
        line = self.l2.lookup(address)
        if line is not None:
            data = line.data
            victim = self.l1.fill(address, data, is_pte=is_pte)
            if victim is not None and victim.dirty:
                self._handle_victim(victim, level=0)
            return AccessResult(data, latency, "L2")
        return self.read_below_l2(address, is_pte, latency)

    def read_below_l2(self, address: int, is_pte: bool, latency: int) -> AccessResult:
        """Continue a read that missed L1 and L2: probe L3, then DRAM.

        Split out of :meth:`read` so the batched execution core
        (:mod:`repro.cpu.batch_core`) can inline the L1/L2 probes and fall
        through to this exact slow path — one shared implementation keeps
        the two paths outcome-identical by construction. ``latency`` is
        the cycle cost already accumulated by the caller's upper-level
        probes; ``address`` must already be line-aligned.
        """
        counters = self._counters
        l3 = self.l3
        if l3 is not None:
            latency += self._lat3
            line = l3.lookup(address)
            if line is not None:
                data = line.data
                self._fill_upper(2, address, data, is_pte)
                return AccessResult(data, latency, "L3")
        # LLC miss: go to DRAM through the controller (and PT-Guard).
        try:
            counters["llc_misses"] += 1
        except KeyError:
            counters["llc_misses"] = 1
        response = self.controller.read_access(address, is_pte, self.cycle)
        latency += response.latency_cycles
        data = response.data if response.data is not None else bytes(CACHELINE_BYTES)
        if response.pte_check_failed:
            # Sec IV-F: the line is not installed; the failure propagates.
            return AccessResult(
                data=data,
                latency_cycles=latency,
                hit_level="DRAM",
                pte_check_failed=True,
            )
        self._fill_all(address, data, is_pte)
        return AccessResult(data, latency, "DRAM")

    def write(self, address: int, data: bytes) -> AccessResult:
        """Write one full line (write-back, write-allocate)."""
        address = self._align(address)
        if len(data) != CACHELINE_BYTES:
            raise ValueError("hierarchy writes are full-line")
        self.stats.increment("writes")
        latency = self._latencies[0]
        if self.l1.write_hit(address, data):
            return AccessResult(data=data, latency_cycles=latency, hit_level="L1")
        # Write-allocate: fetch the line (ignoring its old data), then dirty it.
        result = self.read(address)
        victim = self.l1.fill(address, data, dirty=True)
        self._handle_victim(victim, level=0)
        return AccessResult(
            data=data,
            latency_cycles=latency + result.latency_cycles,
            hit_level=result.hit_level,
        )

    def write_partial(self, address: int, offset: int, payload: bytes) -> AccessResult:
        """Read-modify-write a fragment of a line (OS stores, PTE updates)."""
        address = self._align(address)
        if offset + len(payload) > CACHELINE_BYTES:
            raise ValueError("partial write crosses the line boundary")
        result = self.read(address)
        line = bytearray(result.data)
        line[offset : offset + len(payload)] = payload
        write_result = self.write(address, bytes(line))
        return AccessResult(
            data=bytes(line),
            latency_cycles=result.latency_cycles + write_result.latency_cycles,
            hit_level=result.hit_level,
        )

    # -- fills, evictions, write-backs ----------------------------------------

    def _fill_upper(self, hit_index: int, address: int, data: bytes, is_pte: bool) -> None:
        """Propagate a line into the levels above the one that hit."""
        for index in range(hit_index - 1, -1, -1):
            victim = self._levels[index].fill(address, data, is_pte=is_pte)
            self._handle_victim(victim, level=index)

    def _fill_all(self, address: int, data: bytes, is_pte: bool) -> None:
        for index in range(len(self._levels) - 1, -1, -1):
            victim = self._levels[index].fill(address, data, is_pte=is_pte)
            self._handle_victim(victim, level=index)

    def _handle_victim(self, victim: Optional[EvictedLine], level: int) -> None:
        """Push a dirty victim one level down (or to DRAM from the LLC)."""
        if victim is None or not victim.dirty:
            return
        if level + 1 < len(self._levels):
            lower_victim = self._levels[level + 1].fill(
                victim.address, victim.data, dirty=True
            )
            self._handle_victim(lower_victim, level=level + 1)
        else:
            self.stats.increment("writebacks")
            self.controller.write_access(victim.address, victim.data, self.cycle, self)

    # -- maintenance ---------------------------------------------------------------

    def flush(self) -> None:
        """Write back and drop every line (used between experiment phases)."""
        for index, cache in enumerate(self._levels):
            for victim in cache.flush_all():
                if index + 1 < len(self._levels):
                    lower_victim = self._levels[index + 1].fill(
                        victim.address, victim.data, dirty=True
                    )
                    self._handle_victim(lower_victim, level=index + 1)
                else:
                    self.controller.write_access(
                        victim.address, victim.data, self.cycle, self
                    )

    def invalidate(self, address: int) -> None:
        """clflush-style: write back then drop one line from all levels."""
        address = self._align(address)
        for index, cache in enumerate(self._levels):
            victim = cache.invalidate(address)
            if victim is not None:
                if index + 1 < len(self._levels):
                    lower_victim = self._levels[index + 1].fill(
                        victim.address, victim.data, dirty=True
                    )
                    self._handle_victim(lower_victim, level=index + 1)
                else:
                    self.controller.write_access(
                        victim.address, victim.data, self.cycle, self
                    )

    def discard(self, address: int) -> None:
        """Coherence invalidation: drop a line without write-back.

        Called when another agent (the kernel's store path, another core's
        write-back) updates DRAM behind this hierarchy's back — modelling
        what hardware coherence would have done with the stale copy.
        """
        address = self._align(address)
        for cache in self._levels:
            cache.invalidate(address)

    @staticmethod
    def _align(address: int) -> int:
        return address & ~(CACHELINE_BYTES - 1)

    # -- metrics -----------------------------------------------------------------

    @property
    def llc_misses(self) -> int:
        return self.stats.get("llc_misses")


def register_invariants(
    checker, hierarchy: CacheHierarchy, memory, tampered_fn=None
) -> None:
    """Register cache-consistency checks over a private hierarchy.

    Two invariants of the write-back protocol:

    * **clean-above-dirty**: wherever adjacent levels both hold a line and
      the upper copy is clean, the copies must be byte-identical (a clean
      upper copy can only have been filled from below and never diverges
      until dirtied).
    * **clean-vs-memory**: a line clean at every level that holds it, with
      no dirty copy anywhere, must match backing memory — either the raw
      stored bytes or their metadata-stripped form (PTE lines are
      installed post-strip). Lines named by ``tampered_fn()`` are skipped:
      caches *legitimately* shield pre-flip data after a Rowhammer/injected
      fault until eviction, and the attack experiments rely on it.

    Reads go straight to ``memory`` (never through the controller) so the
    check is side-effect-free.
    """
    from repro.core import pattern

    def check():
        tampered = tampered_fn() if tampered_fn is not None else frozenset()
        violations = []
        copies = {}  # address -> list of (level_name, CacheLine)
        for name, cache in zip(hierarchy._names, hierarchy._levels):
            for set_index, lines in cache._sets.items():
                for tag, line in lines.items():
                    address = cache._compose(set_index, tag)
                    copies.setdefault(address, []).append((name, line))
        for address, held in copies.items():
            for (upper_name, upper), (lower_name, lower) in zip(held, held[1:]):
                if not upper.dirty and upper.data != lower.data:
                    violations.append(
                        f"line {address:#x}: clean {upper_name} copy differs "
                        f"from {lower_name} copy"
                    )
            if address in tampered or any(line.dirty for _, line in held):
                continue
            stored = memory.read_line(address)
            candidates = (stored, pattern.strip_mac(stored), pattern.strip_metadata(stored))
            top = held[0][1].data
            if top not in candidates:
                violations.append(
                    f"line {address:#x}: clean cached copy matches neither "
                    f"backing memory nor its metadata-stripped form"
                )
        return violations

    checker.register("cache_consistency", check)
