"""Set-associative write-back cache with LRU replacement.

Caches carry data (64-byte lines), so the hierarchy is a faithful
functional filter in front of the memory controller: PT-Guard only ever
sees true DRAM traffic (misses and dirty evictions), exactly as in the
paper's Figure 5, and lines cached before a Rowhammer flip keep shielding
their consumers until evicted — a property the attack experiments rely on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.bitops import log2_exact
from repro.common.config import CacheConfig
from repro.common.stats import StatGroup


@dataclass
class CacheLine:
    """One resident line: its data and dirty state."""

    data: bytes
    dirty: bool = False
    is_pte: bool = False  # provenance tag (isPTE travelled with the fill)


@dataclass(frozen=True)
class EvictedLine:
    """A victim pushed out by a fill; dirty victims must be written back."""

    address: int
    data: bytes
    dirty: bool


class Cache:
    """One cache level. Addresses are line-aligned physical addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._offset_bits = log2_exact(config.line_bytes)
        self._set_bits = log2_exact(config.num_sets)
        # Per-set OrderedDict used as an LRU: oldest entry first.
        self._sets: Dict[int, OrderedDict[int, CacheLine]] = {}
        self.stats = StatGroup(config.name)

    def _index(self, address: int) -> Tuple[int, int]:
        line_address = address >> self._offset_bits
        set_index = line_address & (self.config.num_sets - 1)
        tag = line_address >> self._set_bits
        return set_index, tag

    def lookup(self, address: int, touch: bool = True) -> Optional[CacheLine]:
        """Probe for ``address``; moves the line to MRU when ``touch``."""
        set_index, tag = self._index(address)
        lines = self._sets.get(set_index)
        if lines is None or tag not in lines:
            self.stats.increment("misses")
            return None
        self.stats.increment("hits")
        if touch:
            lines.move_to_end(tag)
        return lines[tag]

    def fill(
        self, address: int, data: bytes, dirty: bool = False, is_pte: bool = False
    ) -> Optional[EvictedLine]:
        """Install a line, evicting the LRU victim of its set if needed."""
        set_index, tag = self._index(address)
        lines = self._sets.setdefault(set_index, OrderedDict())
        victim: Optional[EvictedLine] = None
        if tag in lines:
            existing = lines[tag]
            lines[tag] = CacheLine(data=data, dirty=dirty or existing.dirty, is_pte=is_pte)
            lines.move_to_end(tag)
            return None
        if len(lines) >= self.config.associativity:
            victim_tag, victim_line = lines.popitem(last=False)
            victim_address = self._compose(set_index, victim_tag)
            self.stats.increment("evictions")
            if victim_line.dirty:
                self.stats.increment("dirty_evictions")
            victim = EvictedLine(
                address=victim_address, data=victim_line.data, dirty=victim_line.dirty
            )
        lines[tag] = CacheLine(data=data, dirty=dirty, is_pte=is_pte)
        self.stats.increment("fills")
        return victim

    def write_hit(self, address: int, data: bytes) -> bool:
        """Update a resident line in place; returns False on miss."""
        set_index, tag = self._index(address)
        lines = self._sets.get(set_index)
        if lines is None or tag not in lines:
            return False
        lines[tag] = CacheLine(data=data, dirty=True, is_pte=lines[tag].is_pte)
        lines.move_to_end(tag)
        return True

    def invalidate(self, address: int) -> Optional[EvictedLine]:
        """Drop a line (returns it if it was dirty, for write-back)."""
        set_index, tag = self._index(address)
        lines = self._sets.get(set_index)
        if lines is None or tag not in lines:
            return None
        line = lines.pop(tag)
        if line.dirty:
            return EvictedLine(address=address, data=line.data, dirty=True)
        return None

    def flush_all(self) -> list[EvictedLine]:
        """Empty the cache, returning every dirty line for write-back."""
        dirty: list[EvictedLine] = []
        for set_index, lines in self._sets.items():
            for tag, line in lines.items():
                if line.dirty:
                    dirty.append(
                        EvictedLine(
                            address=self._compose(set_index, tag),
                            data=line.data,
                            dirty=True,
                        )
                    )
        self._sets.clear()
        return dirty

    def _compose(self, set_index: int, tag: int) -> int:
        return ((tag << self._set_bits) | set_index) << self._offset_bits

    @property
    def resident_lines(self) -> int:
        return sum(len(lines) for lines in self._sets.values())

    def contains(self, address: int) -> bool:
        """Stat-free probe (for tests and invariant checks)."""
        set_index, tag = self._index(address)
        lines = self._sets.get(set_index)
        return lines is not None and tag in lines
