"""Set-associative write-back cache with LRU replacement.

Caches carry data (64-byte lines), so the hierarchy is a faithful
functional filter in front of the memory controller: PT-Guard only ever
sees true DRAM traffic (misses and dirty evictions), exactly as in the
paper's Figure 5, and lines cached before a Rowhammer flip keep shielding
their consumers until evicted — a property the attack experiments rely on.

Every simulated access funnels through :meth:`Cache.lookup` /
:meth:`Cache.fill`, so the hot path avoids per-call allocation: resident
lines are mutable ``__slots__`` objects updated in place on re-fill and
write hits, and the set-index/tag split is inlined rather than building a
tuple per probe.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, NamedTuple, Optional, Tuple

from repro.common.bitops import log2_exact
from repro.common.config import CacheConfig
from repro.common.stats import StatGroup


class CacheLine:
    """One resident line: its data and dirty state (mutated in place)."""

    __slots__ = ("data", "dirty", "is_pte")

    def __init__(self, data: bytes, dirty: bool = False, is_pte: bool = False):
        self.data = data
        self.dirty = dirty
        self.is_pte = is_pte  # provenance tag (isPTE travelled with the fill)

    def __repr__(self) -> str:
        return f"CacheLine(dirty={self.dirty}, is_pte={self.is_pte})"


class EvictedLine(NamedTuple):
    """A victim pushed out by a fill; dirty victims must be written back."""

    address: int
    data: bytes
    dirty: bool


class Cache:
    """One cache level. Addresses are line-aligned physical addresses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._offset_bits = log2_exact(config.line_bytes)
        self._set_bits = log2_exact(config.num_sets)
        self._set_mask = config.num_sets - 1
        self._assoc = config.associativity
        # Per-set OrderedDict used as an LRU: oldest entry first.
        self._sets: Dict[int, OrderedDict[int, CacheLine]] = {}
        self.stats = StatGroup(config.name)
        self._counters = self.stats.raw()  # inlined hot-path updates

    def _index(self, address: int) -> Tuple[int, int]:
        line_address = address >> self._offset_bits
        return line_address & self._set_mask, line_address >> self._set_bits

    def lookup(self, address: int, touch: bool = True) -> Optional[CacheLine]:
        """Probe for ``address``; moves the line to MRU when ``touch``."""
        line_address = address >> self._offset_bits
        lines = self._sets.get(line_address & self._set_mask)
        counters = self._counters
        if lines is not None:
            tag = line_address >> self._set_bits
            line = lines.get(tag)
            if line is not None:
                try:
                    counters["hits"] += 1
                except KeyError:
                    counters["hits"] = 1
                if touch:
                    lines.move_to_end(tag)
                return line
        try:
            counters["misses"] += 1
        except KeyError:
            counters["misses"] = 1
        return None

    def fill(
        self, address: int, data: bytes, dirty: bool = False, is_pte: bool = False
    ) -> Optional[EvictedLine]:
        """Install a line, evicting the LRU victim of its set if needed."""
        line_address = address >> self._offset_bits
        set_index = line_address & self._set_mask
        tag = line_address >> self._set_bits
        lines = self._sets.get(set_index)
        if lines is None:
            lines = self._sets[set_index] = OrderedDict()
        victim: Optional[EvictedLine] = None
        existing = lines.get(tag)
        if existing is not None:
            existing.data = data
            existing.dirty = dirty or existing.dirty
            existing.is_pte = is_pte
            lines.move_to_end(tag)
            return None
        counters = self._counters
        if len(lines) >= self._assoc:
            victim_tag, victim_line = lines.popitem(last=False)
            # Inlined _compose (one call per eviction adds up).
            victim_address = (
                (victim_tag << self._set_bits) | set_index
            ) << self._offset_bits
            try:
                counters["evictions"] += 1
            except KeyError:
                counters["evictions"] = 1
            if victim_line.dirty:
                try:
                    counters["dirty_evictions"] += 1
                except KeyError:
                    counters["dirty_evictions"] = 1
            victim = EvictedLine(
                address=victim_address, data=victim_line.data, dirty=victim_line.dirty
            )
            # Recycle the evicted line object for the incoming line.
            victim_line.data = data
            victim_line.dirty = dirty
            victim_line.is_pte = is_pte
            lines[tag] = victim_line
        else:
            lines[tag] = CacheLine(data, dirty, is_pte)
        try:
            counters["fills"] += 1
        except KeyError:
            counters["fills"] = 1
        return victim

    def write_hit(self, address: int, data: bytes) -> bool:
        """Update a resident line in place; returns False on miss."""
        line_address = address >> self._offset_bits
        lines = self._sets.get(line_address & self._set_mask)
        if lines is None:
            return False
        tag = line_address >> self._set_bits
        line = lines.get(tag)
        if line is None:
            return False
        line.data = data
        line.dirty = True
        lines.move_to_end(tag)
        return True

    def invalidate(self, address: int) -> Optional[EvictedLine]:
        """Drop a line (returns it if it was dirty, for write-back)."""
        set_index, tag = self._index(address)
        lines = self._sets.get(set_index)
        if lines is None or tag not in lines:
            return None
        line = lines.pop(tag)
        if line.dirty:
            return EvictedLine(address=address, data=line.data, dirty=True)
        return None

    def flush_all(self) -> list[EvictedLine]:
        """Empty the cache, returning every dirty line for write-back."""
        dirty: list[EvictedLine] = []
        for set_index, lines in self._sets.items():
            for tag, line in lines.items():
                if line.dirty:
                    dirty.append(
                        EvictedLine(
                            address=self._compose(set_index, tag),
                            data=line.data,
                            dirty=True,
                        )
                    )
        self._sets.clear()
        return dirty

    def _compose(self, set_index: int, tag: int) -> int:
        return ((tag << self._set_bits) | set_index) << self._offset_bits

    @property
    def resident_lines(self) -> int:
        return sum(len(lines) for lines in self._sets.values())

    def contains(self, address: int) -> bool:
        """Stat-free probe (for tests and invariant checks)."""
        set_index, tag = self._index(address)
        lines = self._sets.get(set_index)
        return lines is not None and tag in lines
