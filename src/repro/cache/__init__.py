"""Cache substrate: set-associative caches and the three-level hierarchy."""

from repro.cache.cache import Cache, CacheLine, EvictedLine
from repro.cache.hierarchy import AccessResult, CacheHierarchy

__all__ = [
    "Cache",
    "CacheLine",
    "EvictedLine",
    "AccessResult",
    "CacheHierarchy",
]
