"""DRAM substrate: geometry, device timing, and the Rowhammer fault model."""

from repro.dram.device import DRAMDevice, MitigationPolicy
from repro.dram.geometry import AddressMapper, DRAMCoordinate
from repro.dram.rowhammer import (
    BitFlip,
    RowhammerModel,
    RowhammerProfile,
    inject_uniform_flips,
)

__all__ = [
    "DRAMDevice",
    "MitigationPolicy",
    "AddressMapper",
    "DRAMCoordinate",
    "BitFlip",
    "RowhammerModel",
    "RowhammerProfile",
    "inject_uniform_flips",
]
