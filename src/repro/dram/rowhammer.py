"""Rowhammer fault model (paper Sections II-A, II-B, VI).

Models the disturbance physics the paper's threat model assumes:

* Every activation of row ``R`` deposits disturbance into its neighbours:
  a full unit into the distance-1 rows ``R +- 1`` and a much smaller dose
  into the distance-2 rows ``R +- 2`` (scaled by
  ``RowhammerProfile.half_double_factor`` — units are defined there). A
  row whose *absorbed* disturbance crosses the Rowhammer threshold (RTH)
  flips its vulnerable cells. A refresh of a row restores its charge
  (absorbed disturbance resets to zero).
* A *mitigation refresh* (the victim refresh TRR-like defenses issue)
  restores the refreshed row but re-activates its wordline, disturbing
  *its* neighbours — the Half-Double effect [30] by which refreshes of
  distance-1 rows hammer the distance-2 victim.
* Thresholds are configurable: 139K (DDR3 2014 [29]), 10K (DDR4 2020
  [27]), 4.8K (LPDDR4 2020 [27]).
* Cells have a fixed random polarity: *true cells* flip 1 -> 0, *anti
  cells* flip 0 -> 1 (the property monotonic-pointer defenses [58] rely
  on). Only a ``flip_probability`` fraction of cells is flippable at all,
  matching the worst-case per-bit probabilities of [27] (1% LPDDR4,
  0.1-0.2% DDR4).

The model is deterministic given a seed: cell vulnerability and polarity
are pure functions of (seed, cell location).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Set, Tuple

RowKey = Tuple[int, int, int, int]

BITS_PER_LINE = 512


@dataclass(frozen=True)
class RowhammerProfile:
    """Vulnerability parameters of a DRAM technology."""

    name: str
    threshold: int  # absorbed disturbance (activations) needed to flip
    flip_probability: float  # fraction of cells that are flippable
    # Units — a *disturbance divisor* (canonical definition, referenced by
    # the module docstring): one activation deposits 1.0 disturbance units
    # into each distance-1 neighbour and ``1 / half_double_factor`` units
    # into each distance-2 neighbour. Direct distance-2 coupling is ~3
    # orders of magnitude weaker than distance-1 [30]; Half-Double flips
    # are driven by the *mitigation refreshes* of distance-1 rows, not by
    # direct coupling. With the default of 2000, any realistic activation
    # budget divided by this factor stays below every real profile's RTH,
    # so hammering distance-2 rows alone (no defense issuing victim
    # refreshes) cannot flip.
    half_double_factor: float = 2000.0

    @classmethod
    def ddr3_2014(cls) -> "RowhammerProfile":
        return cls(name="DDR3-2014", threshold=139_000, flip_probability=0.001)

    @classmethod
    def ddr4_2020(cls) -> "RowhammerProfile":
        return cls(name="DDR4-2020", threshold=10_000, flip_probability=0.002)

    @classmethod
    def lpddr4_2020(cls) -> "RowhammerProfile":
        return cls(name="LPDDR4-2020", threshold=4_800, flip_probability=0.01)

    @classmethod
    def scaled(cls, threshold: int = 600, flip_probability: float = 0.01) -> "RowhammerProfile":
        """A threshold-scaled module for fast experiments.

        All defense/attack interactions are ratio-driven (tracker threshold
        vs RTH, activation budget vs RTH), so scaling RTH down by ~8x and
        defenses' design thresholds with it preserves every outcome while
        cutting simulated activations by the same factor.
        """
        return cls(
            name=f"scaled-RTH{threshold}",
            threshold=threshold,
            flip_probability=flip_probability,
        )

    @classmethod
    def invulnerable(cls) -> "RowhammerProfile":
        """A module that never flips (for control experiments)."""
        return cls(name="invulnerable", threshold=2**62, flip_probability=0.0)

    def activation_budget(self, refresh_window_ms: float = 64.0, trc_ns: float = 46.7) -> int:
        """Maximum single-bank activations an attacker fits in one refresh
        window (the physical bound on any hammering campaign)."""
        return int(refresh_window_ms * 1e6 / trc_ns)


@dataclass
class BitFlip:
    """One injected fault: which row/line/bit flipped and in what direction."""

    row_key: RowKey
    line_address: int
    bit_offset: int  # bit index within the 64-byte line
    direction: str  # "1->0" (true cell) or "0->1" (anti cell)
    distance: int  # dominant coupling distance when the flip occurred


class RowhammerModel:
    """Tracks absorbed disturbance per row and decides when bits flip.

    ``neighbor_fn(row_key, distance)`` must return the physically adjacent
    rows at the given distance (see
    :meth:`repro.dram.geometry.AddressMapper.neighbor_rows`).
    """

    def __init__(
        self,
        profile: RowhammerProfile,
        lines_per_row: int,
        neighbor_fn: Callable[[RowKey, int], List[RowKey]],
        seed: int = 2023,
    ):
        self.profile = profile
        self.lines_per_row = lines_per_row
        self._neighbor_fn = neighbor_fn
        self._seed = seed
        self._disturbance: Dict[RowKey, float] = {}
        # Which distance dominates the disturbance absorbed by each row,
        # recorded for reporting (Half-Double forensics).
        self._distance2_share: Dict[RowKey, float] = {}
        self._flipped_cells: Set[Tuple[RowKey, int, int]] = set()
        # Lazy per-line cell map: {bit -> is_true_cell} for vulnerable cells.
        self._line_cells: Dict[Tuple[RowKey, int], Dict[int, bool]] = {}
        # Victims whose flips were already materialised this charge cycle;
        # re-scanning them on every further activation is pointless until a
        # refresh restores their charge (polarity-blocked cells can only
        # become flippable again after the stored value changes, which in
        # this model implies a write and a later re-hammering).
        self._processed: Set[RowKey] = set()

    # -- cell physics -----------------------------------------------------

    def _cells_of_line(self, row_key: RowKey, line_index: int) -> Dict[int, bool]:
        """The vulnerable cells of one line: {bit_offset: is_true_cell}.

        Derived deterministically from the seed on first use (one RNG per
        line, not per cell, which keeps large sweeps fast).
        """
        key = (row_key, line_index)
        cells = self._line_cells.get(key)
        if cells is None:
            rng = random.Random(hash((self._seed, row_key, line_index)))
            p = self.profile.flip_probability
            cells = {
                bit: rng.random() < 0.5
                for bit in range(BITS_PER_LINE)
                if rng.random() < p
            }
            self._line_cells[key] = cells
        return cells

    def cell_is_vulnerable(self, row_key: RowKey, line_index: int, bit: int) -> bool:
        """Whether this cell can ever flip (fixed per seed)."""
        return bit in self._cells_of_line(row_key, line_index)

    def cell_is_true_cell(self, row_key: RowKey, line_index: int, bit: int) -> bool:
        """True cells discharge 1 -> 0; anti cells charge 0 -> 1.

        Only meaningful for vulnerable cells; invulnerable cells report a
        polarity too (False) but never flip.
        """
        return self._cells_of_line(row_key, line_index).get(bit, False)

    # -- disturbance bookkeeping -------------------------------------------

    def _deposit(self, row_key: RowKey) -> None:
        """Deposit the disturbance one activation of ``row_key`` causes."""
        for victim in self._neighbor_fn(row_key, 1):
            self._disturbance[victim] = self._disturbance.get(victim, 0.0) + 1.0
        coupling = 1.0 / self.profile.half_double_factor
        for victim in self._neighbor_fn(row_key, 2):
            self._disturbance[victim] = self._disturbance.get(victim, 0.0) + coupling
            share = self._distance2_share.get(victim, 0.0)
            self._distance2_share[victim] = share + coupling

    def record_activation(self, row_key: RowKey) -> None:
        """An ACT command opened ``row_key``; its neighbours absorb charge loss."""
        self._deposit(row_key)

    def record_refresh(self, row_key: RowKey) -> None:
        """A plain (auto) refresh restores the row's charge."""
        self._disturbance.pop(row_key, None)
        self._distance2_share.pop(row_key, None)
        self._processed.discard(row_key)

    def record_mitigation_refresh(self, row_key: RowKey) -> None:
        """A TRR-style victim refresh: restores ``row_key`` but re-activates
        its wordline, hammering *its* neighbours (Half-Double [30])."""
        self.record_refresh(row_key)
        self._deposit(row_key)

    def refresh_window_elapsed(self) -> None:
        """Periodic (64 ms) auto-refresh of the whole device."""
        self._disturbance.clear()
        self._distance2_share.clear()
        self._flipped_cells.clear()
        self._processed.clear()

    def disturbance(self, row_key: RowKey) -> float:
        return self._disturbance.get(row_key, 0.0)

    def over_threshold(self, row_key: RowKey) -> bool:
        return self.disturbance(row_key) >= self.profile.threshold

    def dominant_distance(self, row_key: RowKey) -> int:
        """1 if classic adjacency dominates the absorbed disturbance, else 2."""
        total = self._disturbance.get(row_key, 0.0)
        if total <= 0:
            return 1
        return 2 if self._distance2_share.get(row_key, 0.0) > total / 2 else 1

    def hammered_rows(self) -> List[RowKey]:
        """Rows currently over the flip threshold."""
        return [row for row, d in self._disturbance.items() if d >= self.profile.threshold]

    # -- flip computation ---------------------------------------------------

    def compute_flips(
        self,
        victim: RowKey,
        line_address_fn: Callable[[RowKey, int], int],
        read_bit: Callable[[int, int], int],
    ) -> List[BitFlip]:
        """Determine which bits of ``victim`` flip under current disturbance.

        ``read_bit(line_address, bit)`` must return the currently stored
        bit so polarity is honoured (true cells only flip stored 1s).
        Already-flipped cells never flip twice within a window.
        """
        if not self.over_threshold(victim) or victim in self._processed:
            return []
        self._processed.add(victim)
        distance = self.dominant_distance(victim)
        flips: List[BitFlip] = []
        for line_index in range(self.lines_per_row):
            cells = self._cells_of_line(victim, line_index)
            if not cells:
                continue
            line_address = line_address_fn(victim, line_index)
            for bit, true_cell in cells.items():
                cell_id = (victim, line_index, bit)
                if cell_id in self._flipped_cells:
                    continue
                stored = read_bit(line_address, bit)
                if true_cell and stored == 1:
                    direction = "1->0"
                elif not true_cell and stored == 0:
                    direction = "0->1"
                else:
                    continue  # polarity does not allow a flip
                self._flipped_cells.add(cell_id)
                flips.append(
                    BitFlip(
                        row_key=victim,
                        line_address=line_address,
                        bit_offset=bit,
                        direction=direction,
                        distance=distance,
                    )
                )
        return flips

    def reset_flip_history(self) -> None:
        self._flipped_cells.clear()


def inject_uniform_flips(
    line: bytes, flip_probability: float, rng: random.Random
) -> Tuple[bytes, List[int]]:
    """Flip each bit of a line independently with ``flip_probability``.

    This is the fault-injection methodology of Section VI-F ("we flip each
    bit with a uniform probability of p_flip"). Returns the faulty line and
    the sorted list of flipped bit offsets.
    """
    value = int.from_bytes(line, "little")
    total_bits = len(line) * 8
    flipped = [bit for bit in range(total_bits) if rng.random() < flip_probability]
    for bit in flipped:
        value ^= 1 << bit
    return value.to_bytes(len(line), "little"), flipped
