"""DRAM address mapping: physical address <-> (channel, rank, bank, row, column).

We use a row-interleaved mapping typical of client memory controllers:

    | row | rank | bank | channel | column | line-offset |

Low-order bits select the byte within a cacheline, then the column within
a row, then channel/bank/rank (so consecutive lines spread across banks of
the open row region), and the high bits select the row. The exact mapping
is not security-relevant for PT-Guard (which lives above the mapping), but
the Rowhammer model needs *physical row adjacency*, which this module
defines authoritatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import log2_exact, mask
from repro.common.config import CACHELINE_BYTES, DRAMConfig


@dataclass(frozen=True, order=True)
class DRAMCoordinate:
    """Location of one cacheline-sized beat inside the DRAM system."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    @property
    def bank_key(self) -> tuple[int, int, int]:
        """Globally unique bank identity (channel, rank, bank)."""
        return (self.channel, self.rank, self.bank)

    @property
    def row_key(self) -> tuple[int, int, int, int]:
        """Globally unique row identity (channel, rank, bank, row)."""
        return (self.channel, self.rank, self.bank, self.row)


class AddressMapper:
    """Bidirectional physical-address <-> DRAM-coordinate mapping."""

    def __init__(self, config: DRAMConfig):
        self.config = config
        self._offset_bits = log2_exact(CACHELINE_BYTES)
        self._column_bits = log2_exact(config.row_bytes // CACHELINE_BYTES)
        self._channel_bits = log2_exact(config.channels)
        self._bank_bits = log2_exact(config.banks)
        self._rank_bits = log2_exact(config.ranks)
        self._row_bits = log2_exact(config.rows_per_bank)
        self.address_bits = (
            self._offset_bits
            + self._column_bits
            + self._channel_bits
            + self._bank_bits
            + self._rank_bits
            + self._row_bits
        )
        if (1 << self.address_bits) != config.size_bytes:
            raise ValueError(
                f"inconsistent DRAM geometry: 2^{self.address_bits} != "
                f"{config.size_bytes}"
            )
        # Precomputed field masks/shift for row_key_of (one call per DRAM
        # access — avoid rebuilding masks each time).
        self._rk_shift = self._offset_bits + self._column_bits
        self._channel_mask = mask(self._channel_bits)
        self._bank_mask = mask(self._bank_bits)
        self._rank_mask = mask(self._rank_bits)
        self._row_mask = mask(self._row_bits)

    def row_key_of(self, physical_address: int) -> tuple[int, int, int, int]:
        """Fast path: (channel, rank, bank, row) without object creation."""
        value = physical_address >> self._rk_shift
        channel = value & self._channel_mask
        value >>= self._channel_bits
        bank = value & self._bank_mask
        value >>= self._bank_bits
        rank = value & self._rank_mask
        value >>= self._rank_bits
        row = value & self._row_mask
        return (channel, rank, bank, row)

    def decompose(self, physical_address: int) -> DRAMCoordinate:
        """Map a physical byte address to its DRAM coordinate."""
        if not 0 <= physical_address < self.config.size_bytes:
            raise ValueError(
                f"address {physical_address:#x} outside DRAM of size "
                f"{self.config.size_bytes:#x}"
            )
        value = physical_address >> self._offset_bits
        column = value & mask(self._column_bits)
        value >>= self._column_bits
        channel = value & mask(self._channel_bits)
        value >>= self._channel_bits
        bank = value & mask(self._bank_bits)
        value >>= self._bank_bits
        rank = value & mask(self._rank_bits)
        value >>= self._rank_bits
        row = value & mask(self._row_bits)
        return DRAMCoordinate(channel=channel, rank=rank, bank=bank, row=row, column=column)

    def compose(self, coordinate: DRAMCoordinate, offset: int = 0) -> int:
        """Map a DRAM coordinate (plus intra-line offset) back to an address."""
        value = coordinate.row
        value = (value << self._rank_bits) | coordinate.rank
        value = (value << self._bank_bits) | coordinate.bank
        value = (value << self._channel_bits) | coordinate.channel
        value = (value << self._column_bits) | coordinate.column
        return (value << self._offset_bits) | offset

    def row_base_address(self, row_key: tuple[int, int, int, int], column: int = 0) -> int:
        """Physical address of one cacheline of a row (fast path)."""
        channel, rank, bank, row = row_key
        value = row
        value = (value << self._rank_bits) | rank
        value = (value << self._bank_bits) | bank
        value = (value << self._channel_bits) | channel
        value = (value << self._column_bits) | column
        return value << self._offset_bits

    def row_addresses(self, row_key: tuple[int, int, int, int]) -> list[int]:
        """Return the physical line addresses of every cacheline in a row."""
        return [
            self.row_base_address(row_key, column)
            for column in range(1 << self._column_bits)
        ]

    def translate_row(self, address: int, target_row_key: tuple[int, int, int, int]) -> int:
        """Move ``address`` to the same column/offset of another row.

        The row-remap (retirement) path: a retired row's accesses land at
        the corresponding beat of its spare row.
        """
        column = (address >> self._offset_bits) & mask(self._column_bits)
        offset = address & mask(self._offset_bits)
        return self.row_base_address(target_row_key, column) | offset

    def neighbor_rows(
        self, row_key: tuple[int, int, int, int], distance: int
    ) -> list[tuple[int, int, int, int]]:
        """Rows at exactly ``distance`` from ``row_key`` in the same bank.

        Physical adjacency is modelled as numeric row adjacency (no
        in-DRAM remapping), which is the standard assumption in the
        Rowhammer literature when internal maps are linear.
        """
        channel, rank, bank, row = row_key
        neighbors = []
        for delta in (-distance, distance):
            neighbor = row + delta
            if 0 <= neighbor < self.config.rows_per_bank:
                neighbors.append((channel, rank, bank, neighbor))
        return neighbors

    @property
    def lines_per_row(self) -> int:
        return 1 << self._column_bits
