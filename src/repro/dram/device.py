"""DDR4-like DRAM device model: banks, row buffers, refresh, Rowhammer.

The device sits below the memory controller. It models:

* per-bank open-row state (row hit / closed-bank miss / row conflict
  latencies from :class:`repro.common.config.DRAMTimingConfig`);
* activation accounting feeding the :class:`RowhammerModel`, with bit
  flips *materialised* into the backing :class:`PhysicalMemory` the moment
  a victim row crosses the threshold — subsequent reads observe tampered
  data just like on real hardware;
* periodic auto-refresh (the 64 ms retention window), which restores
  charge and re-arms the fault model;
* an optional in-DRAM mitigation hook (e.g. TRR) consulted on every
  activation, whose victim refreshes feed back into the fault model —
  which is precisely what Half-Double exploits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Tuple

from repro.common.config import DRAMConfig
from repro.common.stats import StatGroup
from repro.dram.geometry import AddressMapper, DRAMCoordinate
from repro.dram.rowhammer import BitFlip, RowhammerModel, RowhammerProfile, RowKey
from repro.mem.memory import PhysicalMemory

BankKey = Tuple[int, int, int]


class MitigationPolicy(Protocol):
    """In-DRAM / in-controller Rowhammer mitigation interface (e.g. TRR).

    ``on_activation`` is called for every row activation and returns the
    rows the mitigation wants refreshed ("victim refreshes").
    """

    name: str

    def on_activation(self, row_key: RowKey, cycle: int) -> List[RowKey]:
        ...

    def on_refresh_window(self) -> None:
        ...


class DRAMDevice:
    """Functional + timing model of one DRAM sub-system."""

    def __init__(
        self,
        config: DRAMConfig,
        memory: PhysicalMemory,
        rowhammer_profile: Optional[RowhammerProfile] = None,
        mitigation: Optional[MitigationPolicy] = None,
        seed: int = 2023,
    ):
        if memory.size_bytes != config.size_bytes:
            raise ValueError("backing memory size must match DRAM config size")
        self.config = config
        self.memory = memory
        self.mapper = AddressMapper(config)
        self.mitigation = mitigation
        profile = rowhammer_profile or RowhammerProfile.invulnerable()
        self.rowhammer = RowhammerModel(
            profile,
            lines_per_row=self.mapper.lines_per_row,
            neighbor_fn=self.mapper.neighbor_rows,
            seed=seed,
        )
        self.stats = StatGroup("dram")
        self._counters = self.stats.raw()  # inlined hot-path updates
        timing = config.timing
        self._row_hit_cycles = timing.row_hit_cycles
        self._row_miss_cycles = timing.row_miss_cycles
        self._row_conflict_cycles = timing.row_conflict_cycles
        # Skip fault-model bookkeeping entirely for invulnerable modules
        # (pure timing runs) — it is per-activation overhead.
        self._rowhammer_active = profile.flip_probability > 0.0
        self._open_rows: Dict[BankKey, int] = {}
        self._flips_log: List[BitFlip] = []
        self._last_refresh_cycle = 0
        # Row retirement (repro.recovery): spare rows carved off the top
        # of the address space, and the victim -> spare remap applied to
        # every controller-side access. Modelled after DRAM post-package
        # repair: the redirect lives *inside* the device, so disturbance
        # (Rowhammer physics, injected faults) still lands in the retired
        # physical cells — which nobody reads any more.
        self._spare_rows: List[RowKey] = []
        self._reserved_spare_bytes = 0
        self._row_remap: Dict[RowKey, RowKey] = {}
        self._retired_rows: List[RowKey] = []

    # -- row retirement (repro.recovery) --------------------------------------

    def reserve_spare_rows(self, count: int) -> List[RowKey]:
        """Carve ``count`` spare rows off the top of the address space.

        Returns the reserved row keys. The kernel's allocator must treat
        the covered pages as off-limits (see ``reserved_spare_pages``);
        :func:`repro.harness.system.build_system` reserves before the
        kernel is constructed so the two never disagree.
        """
        if count < 0:
            raise ValueError("spare-row count must be >= 0")
        reserved: List[RowKey] = []
        base = self.config.size_bytes - self._reserved_spare_bytes
        for _ in range(count):
            base -= self.config.row_bytes
            if base < 0:
                raise ValueError("spare-row reservation exceeds DRAM size")
            reserved.append(self.mapper.row_key_of(base))
        self._reserved_spare_bytes += count * self.config.row_bytes
        self._spare_rows.extend(reserved)
        self.stats.increment("spare_rows_reserved", count)
        return reserved

    @property
    def reserved_spare_pages(self) -> int:
        """Pages the spare-row reservation makes unavailable to the OS."""
        from repro.common.config import PAGE_BYTES

        return -(-self._reserved_spare_bytes // PAGE_BYTES)

    @property
    def spare_rows_free(self) -> int:
        return len(self._spare_rows)

    @property
    def retired_rows(self) -> List[RowKey]:
        return list(self._retired_rows)

    def is_retired(self, row_key: RowKey) -> bool:
        return row_key in self._row_remap

    def remap_address(self, address: int) -> int:
        """The physical beat an access to ``address`` actually lands on."""
        if not self._row_remap:
            return address
        target = self._row_remap.get(self.mapper.row_key_of(address))
        if target is None:
            return address
        return self.mapper.translate_row(address, target)

    def retire_row(self, row_key: RowKey) -> Optional[RowKey]:
        """Migrate a victim row to a spare and blacklist the victim.

        The current *backing* row's raw bytes (MACs included — the copy
        sits below the guard) move beat-for-beat to the spare, then the
        remap redirects every later access. Returns the spare's row key,
        or None when the budget is exhausted (the caller's cue to degrade
        to panic). Retiring an already-retired row re-retires its backing
        spare — the chained-failure case of a spare that faults too.
        """
        if not self._spare_rows:
            self.stats.increment("retire_budget_exhausted")
            return None
        spare = self._spare_rows.pop(0)
        backing = self._row_remap.get(row_key, row_key)
        for source in self.mapper.row_addresses(backing):
            target = self.mapper.translate_row(source, spare)
            self.memory.write_line(target, self.memory.read_line(source))
        self._row_remap[row_key] = spare
        self._retired_rows.append(backing)
        self._open_rows.pop(row_key[:3], None)  # force re-activation
        self.stats.increment("rows_retired")
        return spare

    # -- timing + activation path -------------------------------------------

    def access(self, address: int, is_write: bool, cycle: int = 0) -> int:
        """Perform one cacheline access; returns the DRAM latency in cycles.

        Opening a row (on miss/conflict) is an activation and feeds the
        Rowhammer model; row hits do not re-activate (the basis of many
        hammering patterns being *activation*-bound, not access-bound).
        """
        if self._row_remap:
            address = self.remap_address(address)
        row_key = self.mapper.row_key_of(address)
        bank = row_key[:3]
        row = row_key[3]
        counters = self._counters
        open_row = self._open_rows.get(bank)

        if open_row == row:
            try:
                counters["row_hits"] += 1
            except KeyError:
                counters["row_hits"] = 1
            latency = self._row_hit_cycles
        else:
            if open_row is None:
                try:
                    counters["row_misses"] += 1
                except KeyError:
                    counters["row_misses"] = 1
                latency = self._row_miss_cycles
            else:
                try:
                    counters["row_conflicts"] += 1
                except KeyError:
                    counters["row_conflicts"] = 1
                latency = self._row_conflict_cycles
            self._open_rows[bank] = row
            self._activate(row_key, cycle)

        name = "writes" if is_write else "reads"
        try:
            counters[name] += 1
        except KeyError:
            counters[name] = 1
        return latency

    def _activate(self, row_key: RowKey, cycle: int) -> None:
        self.stats.increment("activations")
        if self._rowhammer_active:
            self.rowhammer.record_activation(row_key)
            self._materialise_flips_near(row_key)
        if self.mitigation is not None:
            for victim in self.mitigation.on_activation(row_key, cycle):
                self.refresh_row(victim, mitigation=True)

    def _materialise_flips_near(self, aggressor: RowKey) -> None:
        """Apply bit flips to any neighbour the last activation pushed over RTH."""
        candidates = self.mapper.neighbor_rows(aggressor, 1) + self.mapper.neighbor_rows(
            aggressor, 2
        )
        for victim in candidates:
            if not self.rowhammer.over_threshold(victim):
                continue
            flips = self.rowhammer.compute_flips(
                victim,
                line_address_fn=lambda row, idx: self.mapper.row_addresses(row)[idx],
                read_bit=self.memory.read_bit,
            )
            for flip in flips:
                self.memory.flip_bit(flip.line_address, flip.bit_offset)
                self._flips_log.append(flip)
                self.stats.increment("bit_flips")

    # -- refresh ---------------------------------------------------------------

    def refresh_row(self, row_key: RowKey, mitigation: bool = False) -> None:
        """Refresh a single row (auto-refresh slice or victim refresh)."""
        self.stats.increment("mitigation_refreshes" if mitigation else "refreshes")
        if mitigation:
            self.rowhammer.record_mitigation_refresh(row_key)
            # The mitigation refresh itself may push *its* neighbours over
            # the threshold — the Half-Double mechanism.
            self._materialise_flips_near(row_key)
        else:
            self.rowhammer.record_refresh(row_key)

    def refresh_window(self) -> None:
        """A full 64 ms retention window elapsed: every row refreshed."""
        self.stats.increment("refresh_windows")
        self.rowhammer.refresh_window_elapsed()
        if self.mitigation is not None:
            self.mitigation.on_refresh_window()

    def tick(self, cycle: int) -> None:
        """Advance wall-clock maintenance; call periodically with the CPU cycle."""
        window_cycles = int(
            self.config.timing.refresh_window_ms * 1e-3 * 3e9
        )  # 64 ms at 3 GHz
        if cycle - self._last_refresh_cycle >= window_cycles:
            self._last_refresh_cycle = cycle
            self.refresh_window()

    # -- synthetic fault injection (repro.faults) ------------------------------

    def inject_fault(
        self, line_address: int, bit_offsets: Iterable[int],
        scenario: str = "injected",
    ) -> List[BitFlip]:
        """Flip ``bit_offsets`` of one line, bypassing the physics model.

        Models an arbitrary disturbance (fault-injection campaigns, GbHammer
        style attacks) landing directly in the cells. Flips are materialised
        in backing memory and logged alongside Rowhammer flips with
        ``distance=0`` so forensics and validators can tell them apart.

        The row remap is deliberately *not* applied: disturbance is
        physics, it hits the named physical cells. After retirement the
        victim row's cells still take damage — but no access reads them,
        which is precisely the retirement benefit.
        """
        row_key = self.mapper.row_key_of(line_address)
        flips: List[BitFlip] = []
        for bit_offset in bit_offsets:
            before = self.memory.read_bit(line_address, bit_offset)
            self.memory.flip_bit(line_address, bit_offset)
            flips.append(
                BitFlip(
                    row_key=row_key,
                    line_address=line_address,
                    bit_offset=bit_offset,
                    direction="1->0" if before else "0->1",
                    distance=0,
                )
            )
        self._flips_log.extend(flips)
        self.stats.increment("injected_flips", len(flips))
        return flips

    def tampered_lines(self) -> frozenset:
        """Line addresses with at least one recorded flip (any origin)."""
        return frozenset(flip.line_address for flip in self._flips_log)

    # -- functional data path (used by the memory controller) -------------------

    def read_line(self, address: int) -> bytes:
        if self._row_remap:
            address = self.remap_address(address)
        return self.memory.read_line(address)

    def write_line(self, address: int, data: bytes) -> None:
        if self._row_remap:
            address = self.remap_address(address)
        self.memory.write_line(address, data)

    # -- introspection ------------------------------------------------------------

    @property
    def bit_flips(self) -> List[BitFlip]:
        """All flips materialised so far (forensics for experiments)."""
        return list(self._flips_log)

    def row_of(self, address: int) -> RowKey:
        return self.mapper.decompose(address).row_key

    def addresses_in_row(self, row_key: RowKey) -> List[int]:
        return self.mapper.row_addresses(row_key)

    def open_row(self, bank: BankKey) -> Optional[int]:
        return self._open_rows.get(bank)
