"""Synthetic memory-trace generation from workload profiles.

A trace is a deterministic (seeded) stream of
:class:`TraceRecord(instructions, virtual_address, is_write)` items: the
core executes ``instructions`` non-memory instructions, then one memory
access. Two access regions model the locality structure:

* a *hot* region sized to fit in L2 — high-reuse working set served by
  the upper cache levels;
* a *cold* region sized from the profile's footprint — streamed
  sequentially or visited at random (``random_fraction``), producing the
  LLC misses (and the TLB misses / page-table walks that come with a
  footprint far beyond the TLB's 256 KB reach).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.common.config import CACHELINE_BYTES, KIB, MIB, PAGE_BYTES
from repro.cpu.workloads import WorkloadProfile

HOT_REGION_BYTES = 160 * KIB  # fits L2 (256 KB) with room for PTE lines


@dataclass(frozen=True)
class TraceRecord:
    """One step: run ``instructions`` cycles of ALU work, then access memory."""

    instructions: int
    virtual_address: int
    is_write: bool


@dataclass(frozen=True)
class TraceRegions:
    """The VA layout a trace expects the process to have mapped."""

    hot_base: int
    hot_bytes: int
    cold_base: int
    cold_bytes: int


class TraceGenerator:
    """Deterministic trace stream for one workload profile."""

    def __init__(
        self,
        profile: WorkloadProfile,
        hot_base: int,
        cold_base: int,
        seed: int = 1,
    ):
        self.profile = profile
        self.regions = TraceRegions(
            hot_base=hot_base,
            hot_bytes=HOT_REGION_BYTES,
            cold_base=cold_base,
            cold_bytes=profile.footprint_mib * MIB,
        )
        self._rng = random.Random((seed, profile.name).__str__())
        self._cold_cursor = 0
        # Average non-memory instructions between two memory operations.
        self._gap = max(1, round(1000 / profile.mem_ops_per_kilo))

    def __iter__(self) -> Iterator[TraceRecord]:
        while True:
            yield self.next_record()

    def next_record(self) -> TraceRecord:
        rng = self._rng
        profile = self.profile
        is_write = rng.random() < profile.write_fraction
        if rng.random() < profile.cold_fraction:
            address = self._cold_address()
        else:
            address = self._hot_address()
        # Jitter the instruction gap a little so bank conflicts vary.
        instructions = self._gap + rng.randrange(-1, 2) if self._gap > 1 else 1
        return TraceRecord(
            instructions=max(1, instructions),
            virtual_address=address,
            is_write=is_write,
        )

    def _hot_address(self) -> int:
        offset = self._rng.randrange(self.regions.hot_bytes // CACHELINE_BYTES)
        return self.regions.hot_base + offset * CACHELINE_BYTES

    def _cold_address(self) -> int:
        lines = self.regions.cold_bytes // CACHELINE_BYTES
        if self._rng.random() < self.profile.random_fraction:
            index = self._rng.randrange(lines)
        else:
            index = self._cold_cursor
            self._cold_cursor = (self._cold_cursor + 1) % lines
        return self.regions.cold_base + index * CACHELINE_BYTES

    def pages_touched(self) -> TraceRegions:
        return self.regions


def region_pages(regions: TraceRegions) -> Iterator[int]:
    """Every page base VA a trace may touch (for prefaulting)."""
    for offset in range(0, regions.hot_bytes, PAGE_BYTES):
        yield regions.hot_base + offset
    for offset in range(0, regions.cold_bytes, PAGE_BYTES):
        yield regions.cold_base + offset
