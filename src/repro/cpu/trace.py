"""Synthetic memory-trace generation from workload profiles.

A trace is a deterministic (seeded) stream of
:class:`TraceRecord(instructions, virtual_address, is_write)` items: the
core executes ``instructions`` non-memory instructions, then one memory
access. Two access regions model the locality structure:

* a *hot* region sized to fit in L2 — high-reuse working set served by
  the upper cache levels;
* a *cold* region sized from the profile's footprint — streamed
  sequentially or visited at random (``random_fraction``), producing the
  LLC misses (and the TLB misses / page-table walks that come with a
  footprint far beyond the TLB's 256 KB reach).

``next_record`` runs once per simulated access, so the generator prebinds
its RNG methods and precomputes region geometry. The draw *sequence* is
part of the reproducibility contract — each record consumes entropy in a
fixed order (write?, cold?, address draw(s), gap jitter), and the
optimisations here keep that order and the per-draw entropy identical, so
seeded runs replay the exact streams of earlier revisions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, NamedTuple

from repro.common.config import CACHELINE_BYTES, KIB, MIB, PAGE_BYTES
from repro.cpu.workloads import WorkloadProfile

HOT_REGION_BYTES = 160 * KIB  # fits L2 (256 KB) with room for PTE lines


class TraceRecord(NamedTuple):
    """One step: run ``instructions`` cycles of ALU work, then access memory."""

    instructions: int
    virtual_address: int
    is_write: bool


@dataclass(frozen=True)
class TraceRegions:
    """The VA layout a trace expects the process to have mapped."""

    hot_base: int
    hot_bytes: int
    cold_base: int
    cold_bytes: int


class TraceGenerator:
    """Deterministic trace stream for one workload profile."""

    def __init__(
        self,
        profile: WorkloadProfile,
        hot_base: int,
        cold_base: int,
        seed: int = 1,
    ):
        self.profile = profile
        self.regions = TraceRegions(
            hot_base=hot_base,
            hot_bytes=HOT_REGION_BYTES,
            cold_base=cold_base,
            cold_bytes=profile.footprint_mib * MIB,
        )
        self._rng = random.Random((seed, profile.name).__str__())
        self._cold_cursor = 0
        # Average non-memory instructions between two memory operations.
        self._gap = max(1, round(1000 / profile.mem_ops_per_kilo))
        # Hot-path bindings: next_record runs once per simulated access.
        # _randbelow(n) is exactly the entropy randrange(n) consumes, so
        # seeded streams match the randrange-based formulation bit for bit.
        self._random = self._rng.random
        self._randbelow = self._rng._randbelow
        self._getrandbits = self._rng.getrandbits
        self._hot_lines = self.regions.hot_bytes // CACHELINE_BYTES
        self._cold_lines = self.regions.cold_bytes // CACHELINE_BYTES
        # Rejection-sampling widths for the inlined _randbelow loops below
        # (bit_length of n, exactly what _randbelow_with_getrandbits uses).
        self._hot_k = self._hot_lines.bit_length()
        self._cold_k = self._cold_lines.bit_length()
        self._write_fraction = profile.write_fraction
        self._cold_fraction = profile.cold_fraction
        self._random_fraction = profile.random_fraction

    def __iter__(self) -> Iterator[TraceRecord]:
        while True:
            yield self.next_record()

    def next_record(self) -> TraceRecord:
        # The _randbelow(n) rejection loops are inlined as getrandbits
        # loops over n.bit_length() bits — byte-for-byte the algorithm of
        # random._randbelow_with_getrandbits, so the entropy stream (and
        # therefore every seeded trace) is unchanged.
        rng_random = self._random
        getrandbits = self._getrandbits
        is_write = rng_random() < self._write_fraction
        if rng_random() < self._cold_fraction:
            # Inlined _cold_address (hot loop).
            if rng_random() < self._random_fraction:
                lines = self._cold_lines
                index = getrandbits(self._cold_k)
                while index >= lines:
                    index = getrandbits(self._cold_k)
            else:
                index = self._cold_cursor
                self._cold_cursor = (index + 1) % self._cold_lines
            address = self.regions.cold_base + index * CACHELINE_BYTES
        else:
            # Inlined _hot_address (hot loop).
            lines = self._hot_lines
            index = getrandbits(self._hot_k)
            while index >= lines:
                index = getrandbits(self._hot_k)
            address = self.regions.hot_base + index * CACHELINE_BYTES
        gap = self._gap
        if gap > 1:
            # Jitter the gap a little so bank conflicts vary
            # (randrange(-1, 2) == _randbelow(3) - 1, same entropy draw).
            jitter = getrandbits(2)
            while jitter >= 3:
                jitter = getrandbits(2)
            instructions = gap + jitter - 1
            if instructions < 1:
                instructions = 1
        else:
            instructions = 1
        return TraceRecord(instructions, address, is_write)

    def _hot_address(self) -> int:
        return self.regions.hot_base + self._randbelow(self._hot_lines) * CACHELINE_BYTES

    def _cold_address(self) -> int:
        lines = self._cold_lines
        if self._random() < self._random_fraction:
            index = self._randbelow(lines)
        else:
            index = self._cold_cursor
            self._cold_cursor = (self._cold_cursor + 1) % lines
        return self.regions.cold_base + index * CACHELINE_BYTES

    def pages_touched(self) -> TraceRegions:
        return self.regions


def region_pages(regions: TraceRegions) -> Iterator[int]:
    """Every page base VA a trace may touch (for prefaulting)."""
    for offset in range(0, regions.hot_bytes, PAGE_BYTES):
        yield regions.hot_base + offset
    for offset in range(0, regions.cold_bytes, PAGE_BYTES):
        yield regions.cold_base + offset
