"""CPU substrate: in-order core timing, trace generation, workloads,
and the 4-core model."""

from repro.cpu.core import CoreResult, InOrderCore
from repro.cpu.multicore import (
    MulticoreResult,
    MulticoreSimulator,
    make_random_mix,
    make_same_mix,
    multicore_slowdown,
)
from repro.cpu.trace import TraceGenerator, TraceRecord, TraceRegions
from repro.cpu.workloads import (
    MEMORY_INTENSIVE,
    WORKLOADS,
    WORKLOADS_BY_NAME,
    WorkloadProfile,
    get_workload,
)

__all__ = [
    "CoreResult",
    "InOrderCore",
    "MulticoreResult",
    "MulticoreSimulator",
    "make_random_mix",
    "make_same_mix",
    "multicore_slowdown",
    "TraceGenerator",
    "TraceRecord",
    "TraceRegions",
    "MEMORY_INTENSIVE",
    "WORKLOADS",
    "WORKLOADS_BY_NAME",
    "WorkloadProfile",
    "get_workload",
]
