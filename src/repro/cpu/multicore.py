"""Multi-core timing model (paper Section VII-C).

Four cores, each with a private L1/L2 and TLB/walker, share the L3 and
the memory controller. The paper's observation: with more cores, memory-
channel contention inflates the *baseline* DRAM access time, so
PT-Guard's constant MAC delay is a smaller relative cost — average
slowdown drops from 1.3 % (single-core) to 0.5 %.

Contention model: the shared channel serialises DRAM data bursts. Each
DRAM access occupies the channel for ``burst_cycles``; an access issued
while the channel is busy waits for its turn. Cores advance in a
round-robin, one trace record per turn, with per-core cycle counts.

Workload mixes follow the paper: SAME (4 instances of one workload) and
MIX (4 distinct workloads).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

from repro.common.config import MIB, PTGuardConfig, SystemConfig
from repro.cpu.core import CoreResult, InOrderCore
from repro.cpu.trace import HOT_REGION_BYTES, TraceGenerator
from repro.cpu.workloads import WorkloadProfile, get_workload

if TYPE_CHECKING:  # harness imports cpu; keep the back-edge lazy
    from repro.harness.system import System

BURST_CYCLES = 32  # effective channel occupancy per 64-byte transfer
# (64 B at DDR4-2400 is ~10 CPU cycles on the pins; bank-group and
# command-bus overheads under 4-core contention push effective occupancy
# to ~3x that, which is what the shared-channel model charges.)


class SharedChannel:
    """Serialises DRAM accesses from all cores (bandwidth contention)."""

    def __init__(self, burst_cycles: int = BURST_CYCLES):
        self.burst_cycles = burst_cycles
        self._free_at = 0
        self.total_wait = 0

    def occupy(self, now: int) -> int:
        """Request the channel at cycle ``now``; returns queueing delay."""
        wait = max(0, self._free_at - now)
        self._free_at = max(self._free_at, now) + self.burst_cycles
        self.total_wait += wait
        return wait


@dataclass
class MulticoreResult:
    """Aggregate of one multi-core run."""

    per_core: List[CoreResult]

    @property
    def total_instructions(self) -> int:
        return sum(r.instructions for r in self.per_core)

    @property
    def max_cycles(self) -> int:
        return max((r.cycles for r in self.per_core), default=0)

    @property
    def system_ipc(self) -> float:
        """Total instructions over the longest core's cycles."""
        return self.total_instructions / self.max_cycles if self.max_cycles else 0.0


class MulticoreSimulator:
    """Round-robin interleaved execution of N cores on one System."""

    def __init__(
        self,
        profiles: Sequence[WorkloadProfile],
        guard_config: Optional[PTGuardConfig],
        config: Optional[SystemConfig] = None,
        seed: int = 3,
    ):
        from repro.harness.system import build_system

        if config is None:
            # Sec VII-C memory system: 1 MB shared LLC per core.
            from dataclasses import replace

            from repro.common.config import CacheConfig, MIB as _MIB

            config = replace(
                SystemConfig(),
                l3=CacheConfig("L3", len(profiles) * _MIB, 16, hit_latency=38),
            )
        self.system: "System" = build_system(
            config=config, ptguard=guard_config, mac_algorithm="pseudo", seed=seed
        )
        from repro.cache.cache import Cache
        from repro.cache.hierarchy import CacheHierarchy, SharedLLCAdapter
        from repro.cpu.core import InOrderCore as _Core
        from repro.mmu.mmu_cache import MMUCache
        from repro.mmu.tlb import TLB
        from repro.mmu.walker import PageWalker

        self.channel = SharedChannel()
        # One shared LLC in front of the controller; each core gets a
        # private L1/L2 hierarchy on top of it.
        self.shared_llc = SharedLLCAdapter(
            Cache(self.system.config.l3),
            self.system.controller,
            hit_latency=self.system.config.l3.hit_latency,
        )
        self.system.controller.attach_coherent_cache(self.shared_llc)
        self.cores: List[InOrderCore] = []
        self.traces: List[TraceGenerator] = []
        for index, profile in enumerate(profiles):
            # Distinct VA regions per core/process avoid sharing effects.
            hot_base = 0x0000_5000_0000_0000 + index * 0x0000_0100_0000_0000
            cold_base = 0x0000_6000_0000_0000 + index * 0x0000_0100_0000_0000
            process = self.system.kernel.create_process(f"{profile.name}-{index}")
            self.system.kernel.mmap(
                process, HOT_REGION_BYTES // 4096, name="hot", at=hot_base
            )
            self.system.kernel.mmap(
                process,
                profile.footprint_mib * MIB // 4096,
                name="cold",
                at=cold_base,
            )
            trace = TraceGenerator(
                profile, hot_base=hot_base, cold_base=cold_base, seed=seed + index
            )
            hierarchy = CacheHierarchy(
                self.system.config, self.shared_llc, private_levels_only=True
            )
            self.system.controller.attach_coherent_cache(hierarchy)
            walker = PageWalker(
                hierarchy,
                tlb=TLB(self.system.config.tlb.entries),
                mmu_cache=MMUCache(
                    self.system.config.tlb.mmu_cache_bytes,
                    self.system.config.tlb.mmu_cache_assoc,
                ),
            )
            core = _Core(hierarchy, walker, self.system.kernel, process)
            self.cores.append(core)
            self.traces.append(trace)

    def prefault(self) -> None:
        for core, trace in zip(self.cores, self.traces):
            core.prefault(trace)

    def run(self, mem_ops_per_core: int, warmup_ops: int = 4000) -> MulticoreResult:
        """Interleave cores record-by-record with channel contention."""
        for core, trace in zip(self.cores, self.traces):
            for _ in range(warmup_ops):
                record = trace.next_record()
                core._execute(record.virtual_address, record.is_write)

        starts = [core._reset_window() for core in self.cores]
        # Patch contention in: wrap the controller so each DRAM access adds
        # the channel queueing delay of the issuing core's current cycle.
        controller = self.system.controller
        original_read = controller.read_access
        original_write = controller.write_access
        active_core: Dict[str, Optional[InOrderCore]] = {"core": None}
        channel = self.channel

        def contended_read(address, is_pte=False, cycle=0):
            response = original_read(address, is_pte, cycle)
            core = active_core["core"]
            delay = channel.occupy(core.cycles if core else 0)
            return response._replace(
                latency_cycles=response.latency_cycles + delay
            )

        def contended_write(address, data, cycle=0, origin=None):
            response = original_write(address, data, cycle, origin)
            core = active_core["core"]
            channel.occupy(core.cycles if core else 0)  # writes occupy too
            return response

        controller.read_access = contended_read  # type: ignore[method-assign]
        controller.write_access = contended_write  # type: ignore[method-assign]
        try:
            remaining = [mem_ops_per_core] * len(self.cores)
            while any(remaining):
                for index, (core, trace) in enumerate(zip(self.cores, self.traces)):
                    if not remaining[index]:
                        continue
                    active_core["core"] = core
                    record = trace.next_record()
                    core.instructions += record.instructions + 1
                    core.cycles += record.instructions
                    core._execute(record.virtual_address, record.is_write, timed=True)
                    core.mem_ops += 1
                    remaining[index] -= 1
        finally:
            del controller.read_access  # type: ignore[method-assign]
            del controller.write_access  # type: ignore[method-assign]
            active_core["core"] = None

        return MulticoreResult(
            per_core=[
                core._result(start[0], start[1])
                for core, start in zip(self.cores, starts)
            ]
        )


def run_multicore_experiment(
    workload_names: Sequence[str],
    guard_config: Optional[PTGuardConfig],
    mem_ops_per_core: int = 6000,
    warmup_ops: int = 9000,
    seed: int = 3,
) -> MulticoreResult:
    # warmup >= ~3x the hot-region line count, so the measured window is
    # steady state rather than cold-cache fill (which would charge every
    # core a compulsory-miss MAC tax and flatten workload differences).
    """One SAME or MIX datapoint."""
    profiles = [get_workload(name) for name in workload_names]
    simulator = MulticoreSimulator(profiles, guard_config, seed=seed)
    simulator.prefault()
    return simulator.run(mem_ops_per_core=mem_ops_per_core, warmup_ops=warmup_ops)


def multicore_slowdown(
    workload_names: Sequence[str],
    mem_ops_per_core: int = 6000,
    mac_latency: int = 10,
    seed: int = 3,
) -> float:
    """Percent slowdown of PT-Guard vs baseline for one 4-core mix."""
    base = run_multicore_experiment(workload_names, None,
                                    mem_ops_per_core=mem_ops_per_core, seed=seed)
    guarded = run_multicore_experiment(
        workload_names,
        PTGuardConfig(mac_latency_cycles=mac_latency),
        mem_ops_per_core=mem_ops_per_core,
        seed=seed,
    )
    return (base.system_ipc / guarded.system_ipc - 1.0) * 100.0


def slowdown_job(
    workload_names: Sequence[str],
    mem_ops_per_core: int = 6000,
    mac_latency: int = 10,
    seed: int = 3,
    label: Optional[str] = None,
):
    """The :class:`~repro.harness.parallel.SimJob` form of one
    :func:`multicore_slowdown` datapoint (baseline + guarded pair run
    inside the job; the returned result is the slowdown percentage).
    ``label`` is display-only (logs/journal) and never enters the key."""
    from repro.harness.parallel import SimJob  # keep the back-edge lazy

    return SimJob(
        kind="multicore_slowdown",
        params={
            "mix": list(workload_names),
            "mem_ops_per_core": mem_ops_per_core,
            "mac_latency": mac_latency,
            "seed": seed,
        },
        label=label or f"sec7c/{'+'.join(workload_names)}",
    )


def make_same_mix(workload: str) -> List[str]:
    """SAME configuration: four instances of one workload."""
    return [workload] * 4


def make_random_mix(seed: int, pool: Optional[Sequence[str]] = None) -> List[str]:
    """MIX configuration: four randomly selected workloads."""
    from repro.cpu.workloads import WORKLOADS

    names = list(pool) if pool is not None else [w.name for w in WORKLOADS]
    rng = random.Random(seed)
    return [rng.choice(names) for _ in range(4)]
