"""Workload models for the 25 evaluation benchmarks (paper Sec III, Fig 6).

We cannot redistribute SPEC CPU2017 or run gem5 full-system traces, so
each workload is a *statistical model*: a memory-access mix (hot-set
reuse vs. streaming vs. random pointer-chasing over a large footprint)
tuned so the baseline simulation reproduces the per-workload LLC MPKI
the paper reports in Figure 6 (bottom). The slowdown PT-Guard induces is
then an emergent property of the simulated machine, never hard-coded.

``TARGET_MPKI`` values are read off the paper's Figure 6 (bottom panel);
they are calibration *targets* — the bench output reports the measured
MPKI next to the target so drift is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

MEM_OPS_PER_KILO_INSTRUCTION = 350  # ~35% of instructions touch memory


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one benchmark's memory behaviour."""

    name: str
    suite: str  # "spec-int" | "spec-fp" | "gap"
    target_mpki: float  # LLC misses per kilo-instruction (paper Fig 6)
    footprint_mib: int  # cold-region size driving LLC misses
    random_fraction: float  # fraction of cold accesses that are random
    write_fraction: float = 0.3
    mem_ops_per_kilo: int = MEM_OPS_PER_KILO_INSTRUCTION

    @property
    def cold_fraction(self) -> float:
        """Fraction of memory ops that target the cold (LLC-missing) region.

        Each cold access to a footprint far exceeding the LLC misses with
        probability ~1, so the cold fraction approximates
        target_mpki / mem_ops_per_kilo.
        """
        return min(1.0, self.target_mpki / self.mem_ops_per_kilo)


def _spec_int(name: str, mpki: float, mib: int = 32, rand: float = 0.5) -> WorkloadProfile:
    return WorkloadProfile(name, "spec-int", mpki, mib, rand)


def _spec_fp(name: str, mpki: float, mib: int = 32, rand: float = 0.2) -> WorkloadProfile:
    return WorkloadProfile(name, "spec-fp", mpki, mib, rand)


def _gap(name: str, mpki: float, mib: int = 48, rand: float = 0.8) -> WorkloadProfile:
    return WorkloadProfile(name, "gap", mpki, mib, rand, write_fraction=0.15)


# 20 SPEC CPU2017 workloads (all int + fp except gcc, blender, parest) and
# 5 GAP graph workloads with USA-road, per the paper's methodology.
WORKLOADS: List[WorkloadProfile] = [
    _spec_int("perlbench", 0.6, mib=16),
    _spec_int("mcf", 12.0, mib=48, rand=0.75),
    _spec_int("omnetpp", 7.0, mib=40, rand=0.7),
    _spec_int("xalancbmk", 29.0, mib=48, rand=0.6),
    _spec_int("x264", 0.8, mib=16, rand=0.2),
    _spec_int("deepsjeng", 0.5, mib=16, rand=0.5),
    _spec_int("leela", 0.4, mib=16, rand=0.5),
    _spec_int("exchange2", 0.05, mib=8, rand=0.2),
    _spec_int("xz", 2.5, mib=32, rand=0.4),
    _spec_fp("bwaves", 9.0, mib=48, rand=0.1),
    _spec_fp("cactuBSSN", 5.0, mib=40),
    _spec_fp("namd", 0.7, mib=16),
    _spec_fp("povray", 0.1, mib=8),
    _spec_fp("lbm", 26.0, mib=48, rand=0.05),
    _spec_fp("wrf", 3.0, mib=32),
    _spec_fp("cam4", 2.0, mib=32),
    _spec_fp("imagick", 0.3, mib=16),
    _spec_fp("nab", 1.2, mib=16),
    _spec_fp("fotonik3d", 15.0, mib=48, rand=0.1),
    _spec_fp("roms", 6.5, mib=40, rand=0.15),
    _gap("bc", 16.0),
    _gap("bfs", 11.0),
    _gap("cc", 18.0),
    _gap("pr", 20.0),
    _gap("sssp", 13.0),
]

WORKLOADS_BY_NAME: Dict[str, WorkloadProfile] = {w.name: w for w in WORKLOADS}

# Synthetic TLB-thrashing profile: uniform-random pointer chasing over a
# footprint far beyond TLB x page-size reach, so nearly every access
# walks — the PThammer-style implicit-access regime where page-walk cost
# (and PT-Guard's MAC verification of walked PTE lines) dominates. Used
# by the batched-walk equivalence tests and BENCH_hotpath.json; kept out
# of WORKLOADS so the figure-6 grid stays the paper's 25 benchmarks.
WALK_HEAVY = WorkloadProfile(
    "walkheavy", "synthetic", 300.0, 192, 1.0, write_fraction=0.1
)
WORKLOADS_BY_NAME[WALK_HEAVY.name] = WALK_HEAVY

MEMORY_INTENSIVE = [w.name for w in WORKLOADS if w.target_mpki >= 10.0]


def get_workload(name: str) -> WorkloadProfile:
    try:
        return WORKLOADS_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS_BY_NAME)}"
        ) from None
