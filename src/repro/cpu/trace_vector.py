"""Vectorized, bit-exact replay of :class:`TraceGenerator` streams.

``TraceGenerator.next_record`` consumes entropy from a CPython
``random.Random`` in a fixed draw order (the reproducibility contract
documented in :mod:`repro.cpu.trace`). This module replays that exact
word stream in bulk:

* ``numpy.random.RandomState`` implements the same MT19937 core as
  CPython's ``random.Random``. Transplanting the 625-word internal state
  via ``set_state``/``getstate`` makes ``randint(0, 2**32, dtype=uint32)``
  emit **bit-for-bit** the ``getrandbits(32)`` word stream — hundreds of
  times faster than drawing scalar words.
* ``random()`` is two words: ``((w0 >> 5) * 2**26 + (w1 >> 6)) / 2**53``,
  exact in float64. ``getrandbits(k <= 32)`` is one word ``>> (32 - k)``.
* Each record's draws are parsed *speculatively at every word offset* of
  a buffer (vectorized), then the true record boundaries are walked as a
  linked list: record ``k`` starts where record ``k-1``'s parse ended.
  Rejection-sampling loops become "next index with an in-range value"
  scans (a reversed ``minimum.accumulate``).

A parse that would read past the buffer is *trapped* (its next-pointer is
the buffer length ``W``): the walk stops, the RandomState rewinds to the
exact number of words actually consumed, and the next buffer re-parses
the boundary record from scratch. The scalar generator can always be
resynchronised — ``rewind_to`` restores it to any record boundary of the
last batch (used when a simulated exception aborts a batch mid-way), and
a completed batch leaves it positioned exactly where scalar replay of the
same records would have.

Property tests (``tests/test_batch_equivalence.py``) assert stream
equality against the scalar generator across every workload profile.
"""

from __future__ import annotations

import random

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

from repro.common.config import CACHELINE_BYTES
from repro.cpu.trace import TraceGenerator

HAVE_NUMPY = _np is not None

#: 1 / 2**53, the normalisation constant of CPython's random().
_INV_2_53 = 1.0 / 9007199254740992.0

#: Safety factor over the *expected* words per record (see
#: ``_expected_words_per_record``). The parse runs one vector op chain
#: over the whole buffer, so oversizing it costs linearly; undersizing
#: just means a second (smaller) buffer finishes the batch.
_BUFFER_SLACK = 1.2


def _next_true_index(ok, arange, sentinel):
    """``out[i]`` = smallest ``t >= i`` with ``ok[t]`` (``len(ok)`` if none)."""
    idx = _np.where(ok, arange[: len(ok)], sentinel)
    return _np.minimum.accumulate(idx[::-1])[::-1]

# Positions, draw values and instruction counts all fit comfortably in
# int32 (buffers are ~100k words, draw values < 2**26); the narrower
# dtype halves the parse's memory traffic. Only the final address
# computation widens to int64 (region bases are ~2**46).


def _expected_words_per_record(gen: TraceGenerator) -> float:
    """Mean MT19937 words one ``next_record`` consumes for this profile."""
    hot_rejections = (1 << gen._hot_k) / gen._hot_lines
    cold_rejections = (1 << gen._cold_k) / gen._cold_lines
    cold = gen._cold_fraction
    expected = 4.0  # write? + cold? (two random() calls, two words each)
    expected += (1.0 - cold) * hot_rejections
    expected += cold * (2.0 + gen._random_fraction * cold_rejections)
    if gen._gap > 1:
        expected += 4.0 / 3.0  # getrandbits(2) rejection below 3
    return expected


class VectorTraceReplayer:
    """Batch-produces the records of a wrapped :class:`TraceGenerator`.

    The wrapped generator remains the source of truth: its RNG state and
    cold-region cursor are resynchronised after every batch (and on
    :meth:`rewind_to`), so scalar and vectorized consumption can be
    interleaved freely — e.g. warmup via ``next_record`` followed by a
    batched timed window.
    """

    def __init__(self, generator: TraceGenerator):
        if not HAVE_NUMPY:
            raise RuntimeError("VectorTraceReplayer requires numpy")
        self.generator = generator
        version, internal, _gauss = generator._rng.getstate()
        if version != 3:
            raise RuntimeError("unsupported random.Random state version")
        self._rs = _np.random.RandomState()
        self._rs.set_state(
            ("MT19937", _np.array(internal[:624], dtype=_np.uint32), internal[624])
        )
        # Rewind metadata for the most recent batch: per parsed buffer, a
        # (first record index, words consumed before it, cursor before it,
        # word starts, seq-step mask) tuple. Kept as references to the
        # walk's own outputs — materialised only if rewind_to is called.
        self._batch_base_state = None
        self._batch_size = 0
        self._segments: list = []
        self._words_per_record = _expected_words_per_record(generator)
        self._arange = _np.arange(0, dtype=_np.int32)  # grown on demand

    def _arange_for(self, size: int):
        if len(self._arange) < size:
            self._arange = _np.arange(size, dtype=_np.int32)
        return self._arange

    # -- batch production --------------------------------------------------

    def next_batch(self, n: int):
        """Produce the next ``n`` records as parallel lists.

        Returns ``(instructions, addresses, is_writes)`` — plain Python
        lists of length ``n`` — and advances the wrapped generator's RNG
        and cursor exactly as ``n`` ``next_record()`` calls would have.
        """
        gen = self.generator
        self._batch_base_state = self._rs.get_state()
        self._batch_size = n
        self._segments = []

        out_instr: list = []
        out_addr: list = []
        out_write: list = []
        cursor = gen._cold_cursor
        words_before = 0
        multiplier = self._words_per_record * _BUFFER_SLACK
        while len(out_instr) < n:
            need = n - len(out_instr)
            width = int(need * multiplier) + 96
            consumed, emitted, cursor = self._parse_buffer(
                width, need, cursor, words_before,
                out_instr, out_addr, out_write,
            )
            if emitted == 0:
                # Pathological rejection run longer than the whole buffer:
                # nothing consumed (state was rewound to the start), so
                # retry with a wider buffer.
                multiplier *= 2
                continue
            words_before += consumed
        # Leave the scalar generator exactly where scalar replay would be.
        self._sync_generator()
        gen._cold_cursor = cursor
        return out_instr, out_addr, out_write

    def _parse_buffer(self, width, need, cursor0, words_before,
                      out_instr, out_addr, out_write):
        """Parse one word buffer; emit up to ``need`` complete records."""
        gen = self.generator
        np = _np
        state_before = self._rs.get_state()
        w = self._rs.randint(0, 2 ** 32, size=width, dtype=np.uint32)
        W = width

        # random() at word i (consumes words i, i+1), exact in float64.
        r = (
            np.float64(67108864.0) * (w[:-1] >> np.uint32(5)).astype(np.float64)
            + (w[1:] >> np.uint32(6))
        ) * _INV_2_53
        write_at = r < gen._write_fraction
        cold_at = r < gen._cold_fraction
        rand_at = r < gen._random_fraction

        # getrandbits(k) at word i, and "next acceptable rejection sample
        # at or after i" scans. The scan results are padded with sentinel
        # entries (value W, meaning "not found inside this buffer") and
        # the value arrays with one dummy slot, so every gather below
        # indexes in-bounds without clamping.
        arange = self._arange_for(W + 8)
        sentinel = np.int32(W)
        pos_pad = np.full(8, sentinel, dtype=np.int32)
        value_pad = np.zeros(1, dtype=np.int32)
        hotval = (w >> np.uint32(32 - gen._hot_k)).astype(np.int32)
        coldval = (w >> np.uint32(32 - gen._cold_k)).astype(np.int32)
        next_hot = np.concatenate(
            (_next_true_index(hotval < gen._hot_lines, arange, sentinel), pos_pad)
        )
        next_cold = np.concatenate(
            (_next_true_index(coldval < gen._cold_lines, arange, sentinel), pos_pad)
        )
        hotval_ext = np.concatenate((hotval, value_pad))
        coldval_ext = np.concatenate((coldval, value_pad))
        gap = gen._gap
        if gap > 1:
            jitval = (w >> np.uint32(30)).astype(np.int32)
            next_jit = np.concatenate(
                (_next_true_index(jitval < 3, arange, sentinel), pos_pad)
            )
            jitval_ext = np.concatenate((jitval, value_pad))

        # Speculative parse at every offset s: which draws would a record
        # starting at word s make, and where would the next record start?
        s = arange[:W]
        coldb = np.zeros(W, dtype=bool)
        coldb[: W - 3] = cold_at[2 : W - 1]
        randb = np.zeros(W, dtype=bool)
        randb[: W - 5] = rand_at[4 : W - 1]

        hot_pos = next_hot[4 : W + 4]
        cold_pos = next_cold[6 : W + 6]
        hot_idx = hotval_ext[hot_pos]  # hot_pos <= W: pad slot when unfound
        cold_idx = coldval_ext[cold_pos]

        kind = np.where(~coldb, 0, np.where(randb, 1, 2)).astype(np.int8)
        idx_val = np.where(coldb, cold_idx, hot_idx)
        after = np.where(
            ~coldb, hot_pos + 1, np.where(randb, cold_pos + 1, s + 6)
        )
        invalid = (s > W - 4) | (coldb & (s > W - 6))
        invalid |= ~coldb & (hot_pos >= sentinel)
        invalid |= coldb & randb & (cold_pos >= sentinel)
        if gap > 1:
            jit_pos = next_jit[after]  # after <= W + 1 < len(next_jit)
            invalid |= jit_pos >= sentinel
            instr = np.maximum(1, gap + jitval_ext[jit_pos] - 1)
            nxt = jit_pos + 1
        else:
            instr = np.ones(W, dtype=np.int32)
            nxt = after
        # Trap both invalid parses and exact-boundary completions (nxt ==
        # W): the latter are valid but indistinguishable from the trap, so
        # they are conservatively re-parsed in the next buffer.
        nxt_trap = np.where(invalid, sentinel, nxt)

        # Walk the true record chain (scalar: each step depends on the
        # previous one; everything per-record below stays vectorized).
        nxt_list = nxt_trap.tolist()
        starts = []
        append = starts.append
        pos = 0
        remaining = need
        while remaining:
            nx = nxt_list[pos]
            if nx >= W:
                break
            append(pos)
            remaining -= 1
            pos = nx
        count = len(starts)
        if count:
            sel = np.array(starts, dtype=np.int32)
            kind_sel = kind[sel]
            seq_mask = kind_sel == 2
            seq_steps = np.cumsum(seq_mask)
            cold_lines = gen._cold_lines
            index_sel = np.where(
                seq_mask,
                (cursor0 + seq_steps - 1) % cold_lines,
                idx_val[sel],
            )
            base = np.where(
                kind_sel == 0,
                np.int64(gen.regions.hot_base),
                np.int64(gen.regions.cold_base),
            )
            addresses = (
                base + index_sel.astype(np.int64) * CACHELINE_BYTES
            ).tolist()
            out_instr.extend(instr[sel].tolist())
            out_addr.extend(addresses)
            out_write.extend(write_at[sel].tolist())
            self._segments.append(
                (len(out_instr) - count, words_before, cursor0, starts, seq_mask)
            )
            cursor0 = (cursor0 + int(seq_steps[-1])) % cold_lines
        consumed = pos
        # Rewind the word source to exactly ``consumed`` drawn words.
        self._rs.set_state(state_before)
        if consumed:
            self._rs.randint(0, 2 ** 32, size=consumed, dtype=np.uint32)
        return consumed, count, cursor0

    # -- scalar resynchronisation -----------------------------------------

    def _sync_generator(self) -> None:
        state = self._rs.get_state()
        self.generator._rng.setstate(
            (3, tuple(int(x) for x in state[1]) + (int(state[2]),), None)
        )

    def rewind_to(self, index: int) -> None:
        """Reposition the wrapped generator at record ``index`` of the
        last batch — as if only records ``0..index-1`` had been drawn.

        Used when batch execution aborts mid-way (a simulated fault
        escalates to an exception): the un-executed tail of the batch must
        be re-drawable by whoever handles the fault.
        """
        if self._batch_base_state is None:
            raise RuntimeError("no batch to rewind")
        if not 0 <= index <= self._batch_size:
            raise IndexError(f"record index {index} outside the last batch")
        if index == self._batch_size:
            return  # a completed batch already left the generator there
        for first, words_before, cursor_before, starts, seq_mask in self._segments:
            if first <= index < first + len(starts):
                local = index - first
                words = words_before + starts[local]
                self._rs.set_state(self._batch_base_state)
                if words:
                    self._rs.randint(0, 2 ** 32, size=words, dtype=_np.uint32)
                self._sync_generator()
                self.generator._cold_cursor = (
                    cursor_before + int(seq_mask[:local].sum())
                ) % self.generator._cold_lines
                return
        raise IndexError(f"record index {index} not found in batch segments")
