"""In-order core timing model (paper Table III: 1 IPC peak, 3 GHz).

The core consumes a :class:`~repro.cpu.trace.TraceGenerator` stream.
Non-memory instructions retire one per cycle; each memory operation first
translates through the TLB/walker (page-table walks go through the cache
hierarchy with the ``isPTE`` bit and may reach DRAM, where PT-Guard adds
MAC latency), then performs the data access. L1 hits are considered
pipelined (no stall); deeper hits and DRAM accesses stall the core for
their full latency — the blocking in-order model whose slowdowns the
paper itself calls pessimistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.config import CACHELINE_BYTES, PAGE_BYTES, SystemConfig, batch_size
from repro.common.errors import PageFaultError
from repro.common.stats import StatGroup, per_kilo
from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.trace import TraceGenerator, region_pages
from repro.mmu.walker import PageWalker
from repro.os.kernel import Kernel
from repro.os.process import Process

try:  # the fused batch loop needs numpy; fall back to the scalar loop
    from repro.cpu import batch_core as _batch_core
except ImportError:  # pragma: no cover - numpy-less host
    _batch_core = None


@dataclass(frozen=True)
class CoreResult:
    """Timing outcome of one simulation window."""

    instructions: int
    cycles: int
    mem_ops: int
    llc_misses: int
    dram_reads: int
    dram_writes: int
    tlb_misses: int
    walks: int
    walk_dram_reads: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def llc_mpki(self) -> float:
        return per_kilo(self.llc_misses, self.instructions)


_PAYLOAD_CACHE: dict[int, bytes] = {}


def _store_payload(address: int) -> bytes:
    """Synthetic store data: address-derived, never pattern-matching.

    Bits 51:40 (the MAC field) are forced non-zero so regular data writes
    do not opportunistically receive MACs — mirroring real pointer-free
    data, and keeping the protected-line population realistic. Payloads
    are a pure function of the address, so they are memoized.
    """
    payload = _PAYLOAD_CACHE.get(address)
    if payload is None:
        if len(_PAYLOAD_CACHE) >= 1 << 18:  # bound memory on huge footprints
            _PAYLOAD_CACHE.clear()
        word = (address | 0x00FF_1000_0000_0000) & (1 << 64) - 1
        payload = _PAYLOAD_CACHE[address] = word.to_bytes(8, "little") * (
            CACHELINE_BYTES // 8
        )
    return payload


class InOrderCore:
    """One hardware thread over its own L1/L2 (hierarchy) and walker."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        walker: PageWalker,
        kernel: Kernel,
        process: Process,
        l1_hit_latency: Optional[int] = None,
    ):
        self.hierarchy = hierarchy
        self.walker = walker
        self.kernel = kernel
        self.process = process
        self.l1_hit_latency = (
            l1_hit_latency
            if l1_hit_latency is not None
            else hierarchy.config.l1d.hit_latency
        )
        self.cycles = 0
        self.instructions = 0
        self.mem_ops = 0
        self.stats = StatGroup("core")

    # -- execution ---------------------------------------------------------------

    def prefault(self, trace: TraceGenerator) -> int:
        """Map every page the trace may touch (models the fast-forward
        phase of the paper's methodology). Returns pages mapped."""
        count = 0
        for page_va in region_pages(trace.regions):
            self.kernel.handle_page_fault(self.process, page_va)
            count += 1
        return count

    def run(self, trace: TraceGenerator, mem_ops: int, warmup_ops: int = 0) -> CoreResult:
        """Execute ``warmup_ops`` untimed then ``mem_ops`` timed accesses.

        When the MAC verify cache is enabled, the first call pre-warms it
        from the page-table snapshot (in *both* execution modes, so
        batched and scalar runs stay stat-identical). Records are then
        replayed through the fused batch loop
        (:mod:`repro.cpu.batch_core`) unless ``REPRO_BATCH`` selects the
        scalar reference loop (or numpy is unavailable) — the two paths
        produce bit-identical results.
        """
        self._warm_mac_memo()
        batch = batch_size()
        if batch > 1 and _batch_core is not None:
            return _batch_core.run_batched(self, trace, mem_ops, warmup_ops, batch)
        for _ in range(warmup_ops):
            record = trace.next_record()
            self._execute(record.virtual_address, record.is_write)

        start_cycles, start_instructions = self._reset_window()
        next_record = trace.next_record
        execute = self._execute
        for _ in range(mem_ops):
            instructions, virtual_address, is_write = next_record()
            self.instructions += instructions + 1  # +1 for the mem op
            self.cycles += instructions
            execute(virtual_address, is_write, timed=True)
        self.mem_ops += mem_ops
        return self._result(start_cycles, start_instructions)

    def _warm_mac_memo(self) -> None:
        """Seed PT-Guard's MAC verify cache from the live page tables.

        Host-side speed only (see :meth:`repro.core.engine.MACEngine.warm`):
        no simulated counter or outcome changes. Runs when the memo is
        enabled and currently empty — i.e. once per core (or again after a
        re-key replaces the engine) — and reads the table lines straight
        from backing DRAM, never through the controller, so no simulated
        traffic is generated.
        """
        controller = self.hierarchy.controller
        guard = getattr(controller, "ptguard", None)
        dram = getattr(controller, "dram", None)
        if guard is None or dram is None:
            return
        engine = guard.engine
        limit = engine.verify_cache_entries
        if not limit or engine._cache:
            return
        lines_per_page = PAGE_BYTES // CACHELINE_BYTES
        addresses = []
        for pfn in self.process.page_table.table_pfns:
            base = pfn * PAGE_BYTES
            addresses.extend(
                base + CACHELINE_BYTES * i for i in range(lines_per_page)
            )
            if len(addresses) >= limit:
                addresses = addresses[:limit]
                break
        read_line = dram.read_line
        guard.warm_verify_cache([read_line(a) for a in addresses], addresses)

    def _reset_window(self) -> tuple[int, int]:
        self._window_stats = {
            "llc_misses": self.hierarchy.stats.get("llc_misses"),
            "dram_reads": self._dram_reads(),
            "dram_writes": self.hierarchy.controller.stats.get("writes"),
            "tlb_misses": self.walker.tlb.stats.get("misses"),
            "walks": self.walker.stats.get("walks"),
            "walk_dram": self.hierarchy.controller.stats.get("pte_reads"),
        }
        self.mem_ops = 0
        return self.cycles, self.instructions

    def _dram_reads(self) -> int:
        stats = self.hierarchy.controller.stats
        return stats.get("reads") + stats.get("pte_reads")

    def _result(self, start_cycles: int, start_instructions: int) -> CoreResult:
        window = self._window_stats
        return CoreResult(
            instructions=self.instructions - start_instructions,
            cycles=self.cycles - start_cycles,
            mem_ops=self.mem_ops,
            llc_misses=self.hierarchy.stats.get("llc_misses") - window["llc_misses"],
            dram_reads=self._dram_reads() - window["dram_reads"],
            dram_writes=self.hierarchy.controller.stats.get("writes")
            - window["dram_writes"],
            tlb_misses=self.walker.tlb.stats.get("misses") - window["tlb_misses"],
            walks=self.walker.stats.get("walks") - window["walks"],
            walk_dram_reads=self.hierarchy.controller.stats.get("pte_reads")
            - window["walk_dram"],
        )

    # -- one memory operation ---------------------------------------------------------

    def _execute(self, virtual_address: int, is_write: bool, timed: bool = False) -> None:
        physical = self._translate(virtual_address, timed)
        line_address = physical & ~(CACHELINE_BYTES - 1)
        if is_write:
            result = self.hierarchy.write(line_address, _store_payload(line_address))
        else:
            result = self.hierarchy.read(line_address)
        if timed:
            stall = result.latency_cycles - self.l1_hit_latency
            if stall > 0:
                self.cycles += stall
            self.hierarchy.cycle = self.cycles

    def _translate(self, virtual_address: int, timed: bool) -> int:
        # Fast path: probe the TLB directly — the common hit needs only the
        # PFN, not a full WalkResult. The walker re-probing is suppressed
        # (tlb_checked) so hit/miss counters match the one-probe-per-attempt
        # accounting of the plain walker path.
        process = self.process
        entry = self.walker.tlb.lookup(process.asid, virtual_address >> 12)
        if entry is not None:
            return entry.pfn * PAGE_BYTES + (virtual_address & (PAGE_BYTES - 1))
        tlb_checked = True
        while True:
            try:
                walk = self.walker.translate(
                    process.asid,
                    process.page_table.root_pfn,
                    virtual_address,
                    tlb_checked=tlb_checked,
                )
                if timed and not walk.tlb_hit:
                    # The walk's memory latency stalls the in-order pipe.
                    self.cycles += walk.latency_cycles
                    self.stats.increment("walk_stall_cycles", walk.latency_cycles)
                return walk.pfn * PAGE_BYTES + (virtual_address & (PAGE_BYTES - 1))
            except PageFaultError:
                # Demand-paging faults are OS work outside the timed window
                # (the paper fast-forwards past them with KVM).
                self.kernel.handle_page_fault(self.process, virtual_address)
                tlb_checked = False
