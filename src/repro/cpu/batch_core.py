"""Fused batch execution loop for :class:`~repro.cpu.core.InOrderCore`.

The scalar path costs ~45 Python calls per access (``next_record`` →
``_execute`` → ``_translate`` → ``hierarchy.read``/``write`` → per-level
``Cache.lookup``). This module collapses the common case — TLB hit, L1 or
L2 hit — into one flat loop over a pre-generated batch of trace records
(:class:`~repro.cpu.trace_vector.VectorTraceReplayer`), inlining the TLB
probe, the L1/L2 probes and the L1 write-hit update as plain dict
operations, and falling back to the *unmodified* scalar methods
(``InOrderCore._translate``, ``CacheHierarchy.read_below_l2``,
``CacheHierarchy.write``) for everything else. Because every slow path is
the scalar implementation itself and every inline fast path replicates the
scalar side effects exactly (counters, LRU ``move_to_end`` order, cycle
accounting, ``hierarchy.cycle`` visibility to the memory controller), a
batched run is bit-identical to a scalar run: same ``CoreResult``, same
stat counters, same DRAM traffic, same PT-Guard outcomes — the
equivalence is asserted by ``tests/test_batch_equivalence.py`` and the CI
``batch-equivalence-smoke`` job.

Counter updates for the inline paths are accumulated in locals and
flushed into the real stat dicts at batch end (and on the exception
path), so mid-batch slow-path increments — which hit the same dicts
directly — compose correctly: the flush *adds deltas*, it never
overwrites.

Exception safety: a fault injected mid-batch (``PTECheckFailedError``,
``InvariantViolation``, CTB overflow, ...) must leave the simulation in
the exact state the scalar loop would have left: counters flushed,
``instructions``/``cycles`` including the failing record's front-end
charge, and — critically — the trace RNG positioned *after* the failing
record (the scalar loop draws the record before executing it). The
handler flushes, syncs, rewinds the replayer to the record after the
failure, and re-raises.
"""

from __future__ import annotations

from repro.common.config import CACHELINE_BYTES, PAGE_BYTES
from repro.common.errors import InvariantViolation
from repro.common.stats import StatGroup

from repro.cpu import core as core_mod
from repro.cpu.trace_vector import VectorTraceReplayer
from repro.faults.invariants import validation_enabled

#: Module-wide statistics for the sampled replay oracle, following the
#: ``faults/invariants`` StatGroup discipline (shared across runs;
#: ``batches_checked`` / ``records_checked`` / ``violations``).
ORACLE_STATS = StatGroup("batch_replay_oracle")

#: Cross-check every Nth batch under ``--validate`` — a sampled
#: fraction, same cost philosophy as the MAC differential oracle's
#: ``sample_period``.
ORACLE_PERIOD = 16


class TraceReplayOracle:
    """Differential oracle for the vectorized trace replay.

    Under ``--validate`` (:func:`repro.faults.invariants.validation_enabled`)
    every :data:`ORACLE_PERIOD`-th batch is re-drawn by an independent
    scalar :class:`~repro.cpu.trace.TraceGenerator` clone seeded from
    the pre-batch RNG state, and compared record for record — plus the
    post-batch RNG state and cold cursor, so a single mis-parsed MT19937
    word is caught at the batch it happens in, not as a downstream
    outcome drift. Violations raise
    :class:`~repro.common.errors.InvariantViolation` in the
    ``faults/invariants`` style; the clone never touches the live
    generator, so a passing check perturbs nothing.
    """

    def __init__(self, trace, period: int = ORACLE_PERIOD):
        from repro.cpu.trace import TraceGenerator

        self.trace = trace
        self.period = period
        self._count = 0
        self._clone = TraceGenerator(
            trace.profile, trace.regions.hot_base, trace.regions.cold_base
        )

    def due(self) -> bool:
        due = self._count % self.period == 0
        self._count += 1
        return due

    def snapshot(self):
        return self.trace._rng.getstate(), self.trace._cold_cursor

    def verify(self, before, batch) -> None:
        instr_list, addr_list, write_list = batch
        clone = self._clone
        clone._rng.setstate(before[0])
        clone._cold_cursor = before[1]
        ORACLE_STATS.increment("batches_checked")
        ORACLE_STATS.increment("records_checked", len(instr_list))
        for i in range(len(instr_list)):
            record = clone.next_record()
            if (
                record.instructions != instr_list[i]
                or record.virtual_address != addr_list[i]
                or record.is_write != write_list[i]
            ):
                ORACLE_STATS.increment("violations")
                raise InvariantViolation(
                    f"[batch_replay_oracle] batched record {i} "
                    f"({instr_list[i]}, {addr_list[i]:#x}, {write_list[i]}) "
                    f"!= scalar replay ({record.instructions}, "
                    f"{record.virtual_address:#x}, {record.is_write})"
                )
        if (
            clone._rng.getstate() != self.trace._rng.getstate()
            or clone._cold_cursor != self.trace._cold_cursor
        ):
            ORACLE_STATS.increment("violations")
            raise InvariantViolation(
                "[batch_replay_oracle] generator state diverged from "
                "scalar replay after batch"
            )


def run_batched(core, trace, mem_ops: int, warmup_ops: int, batch_size: int):
    """Batched equivalent of :meth:`InOrderCore.run`.

    Executes ``warmup_ops`` untimed then ``mem_ops`` timed accesses in
    batches of ``batch_size`` records, returning the same
    :class:`~repro.cpu.core.CoreResult` the scalar loop would.
    """
    replayer = VectorTraceReplayer(trace)
    oracle = TraceReplayOracle(trace) if validation_enabled() else None

    def next_batch(n):
        if oracle is not None and oracle.due():
            before = oracle.snapshot()
            batch = replayer.next_batch(n)
            oracle.verify(before, batch)
            return batch
        return replayer.next_batch(n)

    if warmup_ops:
        remaining = warmup_ops
        while remaining:
            n = batch_size if batch_size < remaining else remaining
            _execute_batch(core, next_batch(n), replayer, timed=False)
            remaining -= n
    start_cycles, start_instructions = core._reset_window()
    remaining = mem_ops
    while remaining:
        n = batch_size if batch_size < remaining else remaining
        _execute_batch(core, next_batch(n), replayer, timed=True)
        remaining -= n
    core.mem_ops += mem_ops
    return core._result(start_cycles, start_instructions)


def _execute_batch(core, batch, replayer, timed: bool) -> None:
    """Run one pre-generated batch through the fused access loop."""
    instr_list, addr_list, write_list = batch

    hierarchy = core.hierarchy
    walker_tlb = core.walker.tlb
    asid = core.process.asid
    translate = core._translate
    store_payload = core_mod._store_payload
    l1_hit_latency = core.l1_hit_latency

    # Inlined-structure handles (the scalar methods these replicate are
    # TLB.lookup, Cache.lookup, Cache.write_hit and CacheHierarchy.read's
    # L1/L2 ladder — any change there must be mirrored here; the
    # equivalence tests exist to catch a drift).
    tlb_entries = walker_tlb._entries
    tlb_get = tlb_entries.get
    tlb_move = tlb_entries.move_to_end
    l1 = hierarchy.l1
    l2 = hierarchy.l2
    l1_sets = l1._sets
    l1_mask = l1._set_mask
    l1_bits = l1._set_bits
    l2_sets = l2._sets
    l2_mask = l2._set_mask
    l2_bits = l2._set_bits
    l1_fill = l1.fill
    handle_victim = hierarchy._handle_victim
    read_below_l2 = hierarchy.read_below_l2
    payload_cache = core_mod._PAYLOAD_CACHE
    lat1 = hierarchy._lat1
    lat12 = hierarchy._lat1 + hierarchy._lat2
    l2_stall = lat12 - l1_hit_latency
    if l2_stall < 0:  # scalar: `if stall > 0` — never un-charge cycles
        l2_stall = 0

    line_mask = ~(CACHELINE_BYTES - 1)
    page_mask = PAGE_BYTES - 1

    # Deferred counter accumulators (flushed in ``finally``).
    tlb_hits = 0
    l1_hits = 0
    l1_misses = 0
    l2_hits = 0
    l2_misses = 0
    reads = 0
    writes = 0

    cycles = core.cycles
    prev_end = cycles  # hierarchy.cycle the controller must see (= end of
    # the previous record): written lazily, only before slow paths that
    # can reach the controller, instead of once per record as the scalar
    # loop does — the visible value at every controller access and at
    # loop exit is identical.
    instr_acc = 0
    done = 0
    try:
        if timed:
            for gap, virtual_address, is_write in zip(
                instr_list, addr_list, write_list
            ):
                # Front-end charge: gap instructions + the mem op itself.
                instr_acc += gap + 1
                cycles += gap

                # --- translate (inline TLB hit; scalar walker else) ---
                key = (asid, virtual_address >> 12)
                entry = tlb_get(key)
                if entry is not None:
                    tlb_hits += 1
                    tlb_move(key)
                    physical = entry.pfn * PAGE_BYTES + (
                        virtual_address & page_mask
                    )
                else:
                    # core._translate re-probes (counting the miss),
                    # walks, and adds the walk stall to core.cycles.
                    hierarchy.cycle = prev_end
                    core.cycles = cycles
                    physical = translate(virtual_address, True)
                    cycles = core.cycles

                line_address = physical & line_mask
                la = line_address >> 6  # Cache._offset_bits is log2(64)
                tag1 = la >> l1_bits
                lines = l1_sets.get(la & l1_mask)
                line = None if lines is None else lines.get(tag1)
                if is_write:
                    # --- write (inline write-back, write-allocate) ---
                    writes += 1  # hierarchy "writes" stat
                    payload = payload_cache.get(line_address)
                    if payload is None:
                        payload = store_payload(line_address)
                    if line is not None:
                        # Cache.write_hit, in place; L1 latency, no stall.
                        line.data = payload
                        line.dirty = True
                        lines.move_to_end(tag1)
                    else:
                        # Write-allocate (CacheHierarchy.write miss
                        # path): fetch the line — counting the internal
                        # read and its L1 re-probe exactly as the scalar
                        # ladder does — then dirty it into L1.
                        hierarchy.cycle = prev_end
                        reads += 1
                        l1_misses += 1
                        tag2 = la >> l2_bits
                        lines2 = l2_sets.get(la & l2_mask)
                        line2 = None if lines2 is None else lines2.get(tag2)
                        if line2 is not None:
                            l2_hits += 1
                            lines2.move_to_end(tag2)
                            victim = l1_fill(
                                line_address, line2.data, is_pte=False
                            )
                            if victim is not None and victim.dirty:
                                handle_victim(victim, 0)
                            read_latency = lat12
                        else:
                            l2_misses += 1
                            result = read_below_l2(line_address, False, lat12)
                            read_latency = result.latency_cycles
                        victim = l1_fill(line_address, payload, dirty=True)
                        if victim is not None and victim.dirty:
                            handle_victim(victim, 0)
                        stall = lat1 + read_latency - l1_hit_latency
                        if stall > 0:
                            cycles += stall
                else:
                    # --- read (inline L1/L2 ladder; shared slow path) ---
                    reads += 1
                    if line is not None:
                        l1_hits += 1
                        lines.move_to_end(tag1)
                        # L1 hits are pipelined -> no stall
                    else:
                        hierarchy.cycle = prev_end
                        l1_misses += 1
                        tag2 = la >> l2_bits
                        lines2 = l2_sets.get(la & l2_mask)
                        line2 = None if lines2 is None else lines2.get(tag2)
                        if line2 is not None:
                            l2_hits += 1
                            lines2.move_to_end(tag2)
                            victim = l1_fill(
                                line_address, line2.data, is_pte=False
                            )
                            if victim is not None and victim.dirty:
                                handle_victim(victim, 0)
                            cycles += l2_stall
                        else:
                            l2_misses += 1
                            result = read_below_l2(line_address, False, lat12)
                            stall = result.latency_cycles - l1_hit_latency
                            if stall > 0:
                                cycles += stall
                prev_end = cycles
                done += 1
        else:
            # Untimed warmup: same access semantics, no cycle accounting
            # and no ``hierarchy.cycle`` updates (scalar warmup leaves
            # whatever value the previous phase set — usually 0).
            for virtual_address, is_write in zip(addr_list, write_list):
                key = (asid, virtual_address >> 12)
                entry = tlb_get(key)
                if entry is not None:
                    tlb_hits += 1
                    tlb_move(key)
                    physical = entry.pfn * PAGE_BYTES + (
                        virtual_address & page_mask
                    )
                else:
                    physical = translate(virtual_address, False)

                line_address = physical & line_mask
                la = line_address >> 6
                tag1 = la >> l1_bits
                lines = l1_sets.get(la & l1_mask)
                line = None if lines is None else lines.get(tag1)
                if is_write:
                    writes += 1
                    payload = payload_cache.get(line_address)
                    if payload is None:
                        payload = store_payload(line_address)
                    if line is not None:
                        line.data = payload
                        line.dirty = True
                        lines.move_to_end(tag1)
                    else:
                        reads += 1
                        l1_misses += 1
                        tag2 = la >> l2_bits
                        lines2 = l2_sets.get(la & l2_mask)
                        line2 = None if lines2 is None else lines2.get(tag2)
                        if line2 is not None:
                            l2_hits += 1
                            lines2.move_to_end(tag2)
                            victim = l1_fill(
                                line_address, line2.data, is_pte=False
                            )
                            if victim is not None and victim.dirty:
                                handle_victim(victim, 0)
                        else:
                            l2_misses += 1
                            read_below_l2(line_address, False, lat12)
                        victim = l1_fill(line_address, payload, dirty=True)
                        if victim is not None and victim.dirty:
                            handle_victim(victim, 0)
                else:
                    reads += 1
                    if line is not None:
                        l1_hits += 1
                        lines.move_to_end(tag1)
                    else:
                        l1_misses += 1
                        tag2 = la >> l2_bits
                        lines2 = l2_sets.get(la & l2_mask)
                        line2 = None if lines2 is None else lines2.get(tag2)
                        if line2 is not None:
                            l2_hits += 1
                            lines2.move_to_end(tag2)
                            victim = l1_fill(
                                line_address, line2.data, is_pte=False
                            )
                            if victim is not None and victim.dirty:
                                handle_victim(victim, 0)
                        else:
                            l2_misses += 1
                            read_below_l2(line_address, False, lat12)
                done += 1
    except BaseException:
        # Leave the exact state a scalar loop would have left: counters
        # flushed (below), front-end charge of the failing record already
        # applied, trace positioned after the failing (fully drawn) record.
        replayer.rewind_to(done + 1)
        raise
    finally:
        if timed:
            core.instructions += instr_acc
            core.cycles = cycles
            hierarchy.cycle = prev_end
        counters = walker_tlb._counters
        if tlb_hits:
            counters["hits"] = counters.get("hits", 0) + tlb_hits
        counters = l1._counters
        if l1_hits:
            counters["hits"] = counters.get("hits", 0) + l1_hits
        if l1_misses:
            counters["misses"] = counters.get("misses", 0) + l1_misses
        counters = l2._counters
        if l2_hits:
            counters["hits"] = counters.get("hits", 0) + l2_hits
        if l2_misses:
            counters["misses"] = counters.get("misses", 0) + l2_misses
        counters = hierarchy._counters
        if reads:
            counters["reads"] = counters.get("reads", 0) + reads
        if writes:
            counters["writes"] = counters.get("writes", 0) + writes
