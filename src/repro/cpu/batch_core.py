"""Fused batch execution loop for :class:`~repro.cpu.core.InOrderCore`.

The scalar path costs ~45 Python calls per access (``next_record`` →
``_execute`` → ``_translate`` → ``hierarchy.read``/``write`` → per-level
``Cache.lookup``). This module collapses the common case — TLB hit, L1 or
L2 hit — into one flat loop over a pre-generated batch of trace records
(:class:`~repro.cpu.trace_vector.VectorTraceReplayer`), inlining the TLB
probe, the L1/L2 probes and the L1 write-hit update as plain dict
operations. TLB misses no longer leave the fused loop either: the
4-level page walk is inlined (walk-cache probe/insert, PTE-line L1/L2
ladder, TLB install — see ``walk_miss``), the page-table line MAC tags
having been vectorized up front through ``compute_batch``
(:func:`_prime_walk_tags`), and the *unmodified* scalar implementations
(``InOrderCore._translate``, ``PageWalker.translate``,
``CacheHierarchy.read_below_l2``, ``CacheHierarchy.write``) remain the
reference slow path for everything else — non-hierarchy walk ports,
demand-paging faults and MAC-failed (faulted/tampered) lines. Because every slow path is
the scalar implementation itself and every inline fast path replicates the
scalar side effects exactly (counters, LRU ``move_to_end`` order, cycle
accounting, ``hierarchy.cycle`` visibility to the memory controller), a
batched run is bit-identical to a scalar run: same ``CoreResult``, same
stat counters, same DRAM traffic, same PT-Guard outcomes — the
equivalence is asserted by ``tests/test_batch_equivalence.py`` and the CI
``batch-equivalence-smoke`` job.

Counter updates for the inline paths are accumulated in locals and
flushed into the real stat dicts at batch end (and on the exception
path), so mid-batch slow-path increments — which hit the same dicts
directly — compose correctly: the flush *adds deltas*, it never
overwrites.

Exception safety: a fault injected mid-batch (``PTECheckFailedError``,
``InvariantViolation``, CTB overflow, ...) must leave the simulation in
the exact state the scalar loop would have left: counters flushed,
``instructions``/``cycles`` including the failing record's front-end
charge, and — critically — the trace RNG positioned *after* the failing
record (the scalar loop draws the record before executing it). The
handler flushes, syncs, rewinds the replayer to the record after the
failure, and re-raises.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.config import CACHELINE_BYTES, PAGE_BYTES
from repro.common.errors import InvariantViolation, PageFaultError
from repro.common.stats import StatGroup

from repro.cpu import core as core_mod
from repro.cpu.trace_vector import VectorTraceReplayer
from repro.faults.invariants import validation_enabled
from repro.mmu.tlb import TLBEntry
from repro.mmu.walker import PTEIntegrityException

#: Module-wide statistics for the sampled replay oracle, following the
#: ``faults/invariants`` StatGroup discipline (shared across runs;
#: ``batches_checked`` / ``records_checked`` / ``violations``).
ORACLE_STATS = StatGroup("batch_replay_oracle")

#: Cross-check every Nth batch under ``--validate`` — a sampled
#: fraction, same cost philosophy as the MAC differential oracle's
#: ``sample_period``.
ORACLE_PERIOD = 16

#: Observability for the bulk page-table tag priming pass (host-side
#: only — never part of a simulated outcome): ``lines_primed`` counts
#: PTE lines whose MAC tags were vectorized ahead of the batched walks.
BULK_TAG_STATS = StatGroup("batch_bulk_tags")


def _prime_walk_tags(core) -> int:
    """Vectorize the page-table line MAC tags before a batched run.

    Gathers every cacheline of the process's page-table pages straight
    from backing DRAM (no simulated traffic) and computes their tags in
    one ``compute_batch`` pass, installing them as *hints* on the MAC
    engine (:meth:`repro.core.engine.MACEngine.prime_bulk_tags`). The
    inline page walks below then reach the controller with their tags
    pre-computed: the engine still counts every simulated ``computations``
    tick and still runs its differential oracle, but the host-side scalar
    tag (for qarma, ~100 us each) is skipped. Lines whose protected bits
    changed since priming (faults, tampering, new table pages) miss the
    hint's content check and fall through to the scalar reference path —
    so priming can never mask a corruption. A no-op for backends without
    ``compute_batch``, where scalar priming would merely move the same
    host cost earlier.
    """
    controller = core.hierarchy.controller
    guard = getattr(controller, "ptguard", None)
    dram = getattr(controller, "dram", None)
    if guard is None or dram is None:
        return 0
    engine = guard.engine
    if getattr(engine.line_mac, "compute_batch", None) is None:
        return 0
    lines_per_page = PAGE_BYTES // CACHELINE_BYTES
    addresses = []
    for pfn in core.process.page_table.table_pfns:
        base = pfn * PAGE_BYTES
        addresses.extend(
            base + CACHELINE_BYTES * i for i in range(lines_per_page)
        )
    if not addresses:
        return 0
    read_line = dram.read_line
    primed = engine.prime_bulk_tags(
        [read_line(address) for address in addresses], addresses
    )
    if primed:
        BULK_TAG_STATS.increment("lines_primed", primed)
    return primed


class TraceReplayOracle:
    """Differential oracle for the vectorized trace replay.

    Under ``--validate`` (:func:`repro.faults.invariants.validation_enabled`)
    every :data:`ORACLE_PERIOD`-th batch is re-drawn by an independent
    scalar :class:`~repro.cpu.trace.TraceGenerator` clone seeded from
    the pre-batch RNG state, and compared record for record — plus the
    post-batch RNG state and cold cursor, so a single mis-parsed MT19937
    word is caught at the batch it happens in, not as a downstream
    outcome drift. Violations raise
    :class:`~repro.common.errors.InvariantViolation` in the
    ``faults/invariants`` style; the clone never touches the live
    generator, so a passing check perturbs nothing.
    """

    def __init__(self, trace, period: int = ORACLE_PERIOD):
        from repro.cpu.trace import TraceGenerator

        self.trace = trace
        self.period = period
        self._count = 0
        self._clone = TraceGenerator(
            trace.profile, trace.regions.hot_base, trace.regions.cold_base
        )

    def due(self) -> bool:
        due = self._count % self.period == 0
        self._count += 1
        return due

    def snapshot(self):
        return self.trace._rng.getstate(), self.trace._cold_cursor

    def verify(self, before, batch) -> None:
        instr_list, addr_list, write_list = batch
        clone = self._clone
        clone._rng.setstate(before[0])
        clone._cold_cursor = before[1]
        ORACLE_STATS.increment("batches_checked")
        ORACLE_STATS.increment("records_checked", len(instr_list))
        for i in range(len(instr_list)):
            record = clone.next_record()
            if (
                record.instructions != instr_list[i]
                or record.virtual_address != addr_list[i]
                or record.is_write != write_list[i]
            ):
                ORACLE_STATS.increment("violations")
                raise InvariantViolation(
                    f"[batch_replay_oracle] batched record {i} "
                    f"({instr_list[i]}, {addr_list[i]:#x}, {write_list[i]}) "
                    f"!= scalar replay ({record.instructions}, "
                    f"{record.virtual_address:#x}, {record.is_write})"
                )
        if (
            clone._rng.getstate() != self.trace._rng.getstate()
            or clone._cold_cursor != self.trace._cold_cursor
        ):
            ORACLE_STATS.increment("violations")
            raise InvariantViolation(
                "[batch_replay_oracle] generator state diverged from "
                "scalar replay after batch"
            )


def run_batched(core, trace, mem_ops: int, warmup_ops: int, batch_size: int):
    """Batched equivalent of :meth:`InOrderCore.run`.

    Executes ``warmup_ops`` untimed then ``mem_ops`` timed accesses in
    batches of ``batch_size`` records, returning the same
    :class:`~repro.cpu.core.CoreResult` the scalar loop would.
    """
    _prime_walk_tags(core)
    replayer = VectorTraceReplayer(trace)
    oracle = TraceReplayOracle(trace) if validation_enabled() else None

    def next_batch(n):
        if oracle is not None and oracle.due():
            before = oracle.snapshot()
            batch = replayer.next_batch(n)
            oracle.verify(before, batch)
            return batch
        return replayer.next_batch(n)

    if warmup_ops:
        remaining = warmup_ops
        while remaining:
            n = batch_size if batch_size < remaining else remaining
            _execute_batch(core, next_batch(n), replayer, timed=False)
            remaining -= n
    start_cycles, start_instructions = core._reset_window()
    remaining = mem_ops
    while remaining:
        n = batch_size if batch_size < remaining else remaining
        _execute_batch(core, next_batch(n), replayer, timed=True)
        remaining -= n
    core.mem_ops += mem_ops
    return core._result(start_cycles, start_instructions)


def _execute_batch(core, batch, replayer, timed: bool) -> None:
    """Run one pre-generated batch through the fused access loop."""
    instr_list, addr_list, write_list = batch

    hierarchy = core.hierarchy
    walker_tlb = core.walker.tlb
    asid = core.process.asid
    translate = core._translate
    store_payload = core_mod._store_payload
    l1_hit_latency = core.l1_hit_latency

    # Inlined-structure handles (the scalar methods these replicate are
    # TLB.lookup, Cache.lookup, Cache.write_hit and CacheHierarchy.read's
    # L1/L2 ladder — any change there must be mirrored here; the
    # equivalence tests exist to catch a drift).
    tlb_entries = walker_tlb._entries
    tlb_get = tlb_entries.get
    tlb_move = tlb_entries.move_to_end
    l1 = hierarchy.l1
    l2 = hierarchy.l2
    l1_sets = l1._sets
    l1_mask = l1._set_mask
    l1_bits = l1._set_bits
    l2_sets = l2._sets
    l2_mask = l2._set_mask
    l2_bits = l2._set_bits
    l1_fill = l1.fill
    handle_victim = hierarchy._handle_victim
    read_below_l2 = hierarchy.read_below_l2
    payload_cache = core_mod._PAYLOAD_CACHE
    lat1 = hierarchy._lat1
    lat12 = hierarchy._lat1 + hierarchy._lat2
    l2_stall = lat12 - l1_hit_latency
    if l2_stall < 0:  # scalar: `if stall > 0` — never un-charge cycles
        l2_stall = 0

    line_mask = ~(CACHELINE_BYTES - 1)
    page_mask = PAGE_BYTES - 1

    # Deferred counter accumulators (flushed in ``finally``).
    tlb_hits = 0
    l1_hits = 0
    l1_misses = 0
    l2_hits = 0
    l2_misses = 0
    reads = 0
    writes = 0
    # Inline-walk accumulators (same discipline).
    tlb_misses = 0
    tlb_evictions = 0
    walks = 0
    page_faults = 0
    integrity_failures = 0
    mmu_hits = 0
    mmu_misses = 0
    mmu_evictions = 0
    walk_stall = 0

    # Inline page-walk prebinds. The walk is fused only when the walker's
    # port IS the hierarchy (the standard core wiring) — exotic ports
    # (e.g. ControllerPort) keep the scalar ``core._translate`` bail.
    walker = core.walker
    kernel = core.kernel
    process = core.process
    root_pfn = process.page_table.root_pfn
    mmu_cache = walker.mmu_cache
    mmu_sets = mmu_cache._sets
    mmu_set_mask = mmu_cache.num_sets - 1
    mmu_set_bits = mmu_cache.num_sets.bit_length() - 1
    mmu_assoc = mmu_cache.associativity
    tlb_capacity = walker_tlb.capacity
    base_walk_latency = walker.tlb_hit_latency

    if walker.port is hierarchy:

        def walk_miss(virtual_address, key):
            """Inline 4-level walk, replicating ``PageWalker.translate``
            (plus ``core._translate``'s counting TLB probe and stall
            charge) side effect for side effect: walk-cache LRU order,
            PTE-line L1/L2 ladder and fills, stat counters, TLB insert.
            Returns ``(physical, walk_latency)``; the caller charges the
            latency only on the timed path. Integrity failures raise
            :class:`PTEIntegrityException` exactly as the scalar walker;
            demand-paging faults retry through the *scalar* walker, which
            re-probes the TLB (counting another miss) just as
            ``core._translate``'s retry loop does.
            """
            nonlocal tlb_misses, tlb_evictions, walks, page_faults
            nonlocal integrity_failures, mmu_hits, mmu_misses, mmu_evictions
            nonlocal reads, l1_hits, l1_misses, l2_hits, l2_misses
            tlb_misses += 1  # core._translate's counting TLB probe
            walks += 1  # walker.stats "walks"
            walk_latency = base_walk_latency
            table_pfn = root_pfn
            entries = None
            set_index = mmu_tag = 0
            for shift in (39, 30, 21, 12):  # PML4, PDPT, PD, PT
                entry_address = table_pfn * PAGE_BYTES + (
                    ((virtual_address >> shift) & 511) << 3
                )
                entry_value = None
                if shift != 12:
                    # MMUCache.lookup, inlined.
                    mmu_entry = entry_address >> 3
                    set_index = mmu_entry & mmu_set_mask
                    mmu_tag = mmu_entry >> mmu_set_bits
                    entries = mmu_sets.get(set_index)
                    entry_value = (
                        None if entries is None else entries.get(mmu_tag)
                    )
                    if entry_value is None:
                        mmu_misses += 1
                    else:
                        mmu_hits += 1
                        entries.move_to_end(mmu_tag)
                if entry_value is None:
                    # PTE-line fetch: CacheHierarchy.read(is_pte=True)
                    # inlined — the same L1/L2 ladder as the data path,
                    # sharing read_below_l2 as the slow path.
                    reads += 1
                    pte_line = entry_address & line_mask
                    la = pte_line >> 6
                    tag1 = la >> l1_bits
                    lines = l1_sets.get(la & l1_mask)
                    line = None if lines is None else lines.get(tag1)
                    if line is not None:
                        l1_hits += 1
                        lines.move_to_end(tag1)
                        data = line.data
                        walk_latency += lat1
                    else:
                        l1_misses += 1
                        tag2 = la >> l2_bits
                        lines2 = l2_sets.get(la & l2_mask)
                        line2 = None if lines2 is None else lines2.get(tag2)
                        if line2 is not None:
                            l2_hits += 1
                            lines2.move_to_end(tag2)
                            data = line2.data
                            victim = l1_fill(pte_line, data, is_pte=True)
                            if victim is not None and victim.dirty:
                                handle_victim(victim, 0)
                            walk_latency += lat12
                        else:
                            l2_misses += 1
                            result = read_below_l2(pte_line, True, lat12)
                            if result.pte_check_failed:
                                # Sec IV-F: never installed, never cached;
                                # the partial walk's latency is dropped,
                                # exactly as the scalar unwind does.
                                integrity_failures += 1
                                raise PTEIntegrityException(
                                    virtual_address,
                                    (39 - shift) // 9,
                                    entry_address,
                                )
                            data = result.data
                            walk_latency += result.latency_cycles
                    offset = entry_address & 63
                    entry_value = int.from_bytes(
                        data[offset : offset + 8], "little"
                    )
                if not entry_value & 1:
                    # Demand-paging fault: count it, drop the partial
                    # walk's latency (the scalar loop unwinds before
                    # charging it), map the page, retry via the scalar
                    # walker.
                    page_faults += 1
                    kernel.handle_page_fault(process, virtual_address)
                    while True:
                        try:
                            walk = walker.translate(
                                asid,
                                root_pfn,
                                virtual_address,
                                tlb_checked=False,
                            )
                        except PageFaultError:
                            kernel.handle_page_fault(process, virtual_address)
                            continue
                        return (
                            walk.pfn * PAGE_BYTES
                            + (virtual_address & page_mask),
                            0 if walk.tlb_hit else walk.latency_cycles,
                        )
                if shift != 12:
                    # MMUCache.insert, inlined (runs even after a lookup
                    # hit, as the scalar walker does).
                    if entries is None:
                        entries = mmu_sets[set_index] = OrderedDict()
                    if mmu_tag in entries:
                        entries.move_to_end(mmu_tag)
                    elif len(entries) >= mmu_assoc:
                        entries.popitem(last=False)
                        mmu_evictions += 1
                    entries[mmu_tag] = entry_value
                table_pfn = (entry_value >> 12) & 0xFF_FFFF_FFFF
            # Leaf: decode the raw PTE and install the TLB entry
            # (TLB.insert, inlined).
            entry = TLBEntry(
                pfn=table_pfn,
                writable=bool(entry_value & 2),
                user_accessible=bool(entry_value & 4),
                no_execute=bool(entry_value >> 63),
                global_page=bool(entry_value & 256),
            )
            if key in tlb_entries:
                tlb_move(key)
            elif len(tlb_entries) >= tlb_capacity:
                tlb_entries.popitem(last=False)
                tlb_evictions += 1
            tlb_entries[key] = entry
            return (
                table_pfn * PAGE_BYTES + (virtual_address & page_mask),
                walk_latency,
            )

    else:
        walk_miss = None

    cycles = core.cycles
    prev_end = cycles  # hierarchy.cycle the controller must see (= end of
    # the previous record): written lazily, only before slow paths that
    # can reach the controller, instead of once per record as the scalar
    # loop does — the visible value at every controller access and at
    # loop exit is identical.
    instr_acc = 0
    done = 0
    try:
        if timed:
            for gap, virtual_address, is_write in zip(
                instr_list, addr_list, write_list
            ):
                # Front-end charge: gap instructions + the mem op itself.
                instr_acc += gap + 1
                cycles += gap

                # --- translate (inline TLB hit; scalar walker else) ---
                key = (asid, virtual_address >> 12)
                entry = tlb_get(key)
                if entry is not None:
                    tlb_hits += 1
                    tlb_move(key)
                    physical = entry.pfn * PAGE_BYTES + (
                        virtual_address & page_mask
                    )
                else:
                    # The controller (DRAM timing, guard accounting) must
                    # see the end of the previous record, as the scalar
                    # loop's per-record ``hierarchy.cycle`` write ensures.
                    hierarchy.cycle = prev_end
                    if walk_miss is not None:
                        physical, walk_latency = walk_miss(
                            virtual_address, key
                        )
                        if walk_latency:
                            # core._translate: walk memory latency stalls
                            # the in-order pipe (zero only on the
                            # fault-retry TLB-hit path, where the scalar
                            # loop charges nothing either).
                            cycles += walk_latency
                            walk_stall += walk_latency
                    else:
                        # core._translate re-probes (counting the miss),
                        # walks, and adds the walk stall to core.cycles.
                        core.cycles = cycles
                        physical = translate(virtual_address, True)
                        cycles = core.cycles

                line_address = physical & line_mask
                la = line_address >> 6  # Cache._offset_bits is log2(64)
                tag1 = la >> l1_bits
                lines = l1_sets.get(la & l1_mask)
                line = None if lines is None else lines.get(tag1)
                if is_write:
                    # --- write (inline write-back, write-allocate) ---
                    writes += 1  # hierarchy "writes" stat
                    payload = payload_cache.get(line_address)
                    if payload is None:
                        payload = store_payload(line_address)
                    if line is not None:
                        # Cache.write_hit, in place; L1 latency, no stall.
                        line.data = payload
                        line.dirty = True
                        lines.move_to_end(tag1)
                    else:
                        # Write-allocate (CacheHierarchy.write miss
                        # path): fetch the line — counting the internal
                        # read and its L1 re-probe exactly as the scalar
                        # ladder does — then dirty it into L1.
                        hierarchy.cycle = prev_end
                        reads += 1
                        l1_misses += 1
                        tag2 = la >> l2_bits
                        lines2 = l2_sets.get(la & l2_mask)
                        line2 = None if lines2 is None else lines2.get(tag2)
                        if line2 is not None:
                            l2_hits += 1
                            lines2.move_to_end(tag2)
                            victim = l1_fill(
                                line_address, line2.data, is_pte=False
                            )
                            if victim is not None and victim.dirty:
                                handle_victim(victim, 0)
                            read_latency = lat12
                        else:
                            l2_misses += 1
                            result = read_below_l2(line_address, False, lat12)
                            read_latency = result.latency_cycles
                        victim = l1_fill(line_address, payload, dirty=True)
                        if victim is not None and victim.dirty:
                            handle_victim(victim, 0)
                        stall = lat1 + read_latency - l1_hit_latency
                        if stall > 0:
                            cycles += stall
                else:
                    # --- read (inline L1/L2 ladder; shared slow path) ---
                    reads += 1
                    if line is not None:
                        l1_hits += 1
                        lines.move_to_end(tag1)
                        # L1 hits are pipelined -> no stall
                    else:
                        hierarchy.cycle = prev_end
                        l1_misses += 1
                        tag2 = la >> l2_bits
                        lines2 = l2_sets.get(la & l2_mask)
                        line2 = None if lines2 is None else lines2.get(tag2)
                        if line2 is not None:
                            l2_hits += 1
                            lines2.move_to_end(tag2)
                            victim = l1_fill(
                                line_address, line2.data, is_pte=False
                            )
                            if victim is not None and victim.dirty:
                                handle_victim(victim, 0)
                            cycles += l2_stall
                        else:
                            l2_misses += 1
                            result = read_below_l2(line_address, False, lat12)
                            stall = result.latency_cycles - l1_hit_latency
                            if stall > 0:
                                cycles += stall
                prev_end = cycles
                done += 1
        else:
            # Untimed warmup: same access semantics, no cycle accounting
            # and no ``hierarchy.cycle`` updates (scalar warmup leaves
            # whatever value the previous phase set — usually 0).
            for virtual_address, is_write in zip(addr_list, write_list):
                key = (asid, virtual_address >> 12)
                entry = tlb_get(key)
                if entry is not None:
                    tlb_hits += 1
                    tlb_move(key)
                    physical = entry.pfn * PAGE_BYTES + (
                        virtual_address & page_mask
                    )
                elif walk_miss is not None:
                    # Untimed: same walk side effects, no cycle accounting
                    # and no ``hierarchy.cycle`` update (the scalar warmup
                    # leaves it stale too).
                    physical = walk_miss(virtual_address, key)[0]
                else:
                    physical = translate(virtual_address, False)

                line_address = physical & line_mask
                la = line_address >> 6
                tag1 = la >> l1_bits
                lines = l1_sets.get(la & l1_mask)
                line = None if lines is None else lines.get(tag1)
                if is_write:
                    writes += 1
                    payload = payload_cache.get(line_address)
                    if payload is None:
                        payload = store_payload(line_address)
                    if line is not None:
                        line.data = payload
                        line.dirty = True
                        lines.move_to_end(tag1)
                    else:
                        reads += 1
                        l1_misses += 1
                        tag2 = la >> l2_bits
                        lines2 = l2_sets.get(la & l2_mask)
                        line2 = None if lines2 is None else lines2.get(tag2)
                        if line2 is not None:
                            l2_hits += 1
                            lines2.move_to_end(tag2)
                            victim = l1_fill(
                                line_address, line2.data, is_pte=False
                            )
                            if victim is not None and victim.dirty:
                                handle_victim(victim, 0)
                        else:
                            l2_misses += 1
                            read_below_l2(line_address, False, lat12)
                        victim = l1_fill(line_address, payload, dirty=True)
                        if victim is not None and victim.dirty:
                            handle_victim(victim, 0)
                else:
                    reads += 1
                    if line is not None:
                        l1_hits += 1
                        lines.move_to_end(tag1)
                    else:
                        l1_misses += 1
                        tag2 = la >> l2_bits
                        lines2 = l2_sets.get(la & l2_mask)
                        line2 = None if lines2 is None else lines2.get(tag2)
                        if line2 is not None:
                            l2_hits += 1
                            lines2.move_to_end(tag2)
                            victim = l1_fill(
                                line_address, line2.data, is_pte=False
                            )
                            if victim is not None and victim.dirty:
                                handle_victim(victim, 0)
                        else:
                            l2_misses += 1
                            read_below_l2(line_address, False, lat12)
                done += 1
    except BaseException:
        # Leave the exact state a scalar loop would have left: counters
        # flushed (below), front-end charge of the failing record already
        # applied, trace positioned after the failing (fully drawn) record.
        replayer.rewind_to(done + 1)
        raise
    finally:
        if timed:
            core.instructions += instr_acc
            core.cycles = cycles
            hierarchy.cycle = prev_end
        counters = walker_tlb._counters
        if tlb_hits:
            counters["hits"] = counters.get("hits", 0) + tlb_hits
        if tlb_misses:
            counters["misses"] = counters.get("misses", 0) + tlb_misses
        if tlb_evictions:
            counters["evictions"] = counters.get("evictions", 0) + tlb_evictions
        if mmu_hits or mmu_misses or mmu_evictions:
            counters = mmu_cache.stats.raw()
            if mmu_hits:
                counters["hits"] = counters.get("hits", 0) + mmu_hits
            if mmu_misses:
                counters["misses"] = counters.get("misses", 0) + mmu_misses
            if mmu_evictions:
                counters["evictions"] = (
                    counters.get("evictions", 0) + mmu_evictions
                )
        if walks or page_faults or integrity_failures:
            counters = walker.stats.raw()
            if walks:
                counters["walks"] = counters.get("walks", 0) + walks
            if page_faults:
                counters["page_faults"] = (
                    counters.get("page_faults", 0) + page_faults
                )
            if integrity_failures:
                counters["integrity_failures"] = (
                    counters.get("integrity_failures", 0) + integrity_failures
                )
        if walk_stall:
            counters = core.stats.raw()
            counters["walk_stall_cycles"] = (
                counters.get("walk_stall_cycles", 0) + walk_stall
            )
        counters = l1._counters
        if l1_hits:
            counters["hits"] = counters.get("hits", 0) + l1_hits
        if l1_misses:
            counters["misses"] = counters.get("misses", 0) + l1_misses
        counters = l2._counters
        if l2_hits:
            counters["hits"] = counters.get("hits", 0) + l2_hits
        if l2_misses:
            counters["misses"] = counters.get("misses", 0) + l2_misses
        counters = hierarchy._counters
        if reads:
            counters["reads"] = counters.get("reads", 0) + reads
        if writes:
            counters["writes"] = counters.get("writes", 0) + writes
