"""Deterministic, seed-addressed fault injection.

Two layers live here:

* **Decision primitives** — :func:`deterministic_fraction`,
  :func:`deterministic_choice` and :func:`garble_payload`. These are the
  single source of truth for seeded corruption decisions; the chaos
  harness (:mod:`repro.harness.chaos`) delegates to them so that
  harness-level and simulator-level corruption share one decision
  function. The digest format — ``sha256(f"{seed}:{channel}:{key}")`` —
  is load-bearing: chaos replay guarantees in ``tests/test_chaos.py``
  assert byte-identical fault patterns across runs and platforms.

* **Scenario generators** — :class:`FaultInjector` turns
  ``(scenario, trial)`` into a :class:`FaultSpec` naming a DRAM line and
  the exact bit offsets to flip. Scenarios cover the threat surface
  beyond the Rowhammer physics model: single/double PTE data bits,
  embedded-MAC bits, GbHammer-style global-bit flips, PFN-only and
  flags-only flips, multi-bit bursts, uniform per-bit flips at a Fig-9
  probability, and non-PT data lines (the protection boundary).

Bit addressing: a 64-byte line holds eight PTEs; bit ``b`` of PTE ``i``
is line bit ``64*i + b``, matching :mod:`repro.core.pattern`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core import pattern

LINE_BITS = 512
PTE_BITS = 64
PTES_PER_LINE = 8

#: Scenarios that target page-table lines (protected by PT-Guard).
PTE_SCENARIOS: Tuple[str, ...] = (
    "pte_single",
    "pte_double",
    "mac_single",
    "burst",
    "global_bit",
    "pfn_only",
    "flags_only",
    "uniform",
)

#: Scenarios that target ordinary data lines (outside the protection
#: boundary — the taxonomy documents what PT-Guard does *not* cover).
DATA_SCENARIOS: Tuple[str, ...] = ("data_single",)

ALL_SCENARIOS: Tuple[str, ...] = PTE_SCENARIOS + DATA_SCENARIOS

#: x86 "global page" bit — the PTE bit GbHammer flips to splice a page
#: into another process's address space.
GLOBAL_BIT = 8

_BURST_WIDTH = 4


def _digest(seed: int, channel: str, key: str) -> bytes:
    """The shared decision digest. Format is frozen — see module doc."""
    material = f"{seed}:{channel}:{key}".encode("utf-8")
    return hashlib.sha256(material).digest()


def deterministic_fraction(seed: int, channel: str, key: str) -> float:
    """A uniform [0, 1) draw addressed by (seed, channel, key).

    Byte-compatible with the chaos harness's historical inline formula:
    the first 8 digest bytes as a big-endian integer over 2**64.
    """
    digest = _digest(seed, channel, key)
    return int.from_bytes(digest[:8], "big") / 2**64


def deterministic_choice(seed: int, channel: str, key: str, n: int) -> int:
    """A uniform index in [0, n) addressed by (seed, channel, key).

    Uses digest bytes 8:16 so a fraction and a choice drawn from the
    same address are independent.
    """
    if n <= 0:
        raise ValueError(f"deterministic_choice needs n >= 1, got {n}")
    digest = _digest(seed, channel, key)
    return int.from_bytes(digest[8:16], "big") % n


def garble_payload(data: bytes) -> bytes:
    """Corrupt a serialized payload the way the chaos harness does.

    Prepends junk and truncates — guaranteed to break both JSON framing
    and the payload digest, never to accidentally produce a valid entry.
    The exact bytes are frozen (chaos byte-identity guarantees).
    """
    return b'{"chaos": "corrupt", ' + data[: max(1, len(data) // 2)]


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: which line, which bits, what it models."""

    scenario: str
    line_address: int
    bit_offsets: Tuple[int, ...]  # offsets in [0, 512) within the line
    is_pte: bool
    description: str = ""

    def __post_init__(self) -> None:
        for offset in self.bit_offsets:
            if not 0 <= offset < LINE_BITS:
                raise ValueError(f"bit offset {offset} outside 64-byte line")


def _pte_offsets(pte_index: int, bit_positions: Sequence[int]) -> Tuple[int, ...]:
    return tuple(sorted(pte_index * PTE_BITS + b for b in bit_positions))


class FaultInjector:
    """Seed-addressed generator of :class:`FaultSpec` per scenario.

    Every draw is a pure function of ``(seed, scenario, field, trial)``
    via :func:`deterministic_choice`, so a campaign regenerates the
    identical fault sequence on every run, platform, and worker layout.
    """

    def __init__(self, seed: int, max_phys_bits: int = 40,
                 flip_probability: float = 1.0 / 256.0):
        self.seed = seed
        self.max_phys_bits = max_phys_bits
        self.flip_probability = flip_probability
        # Protected positions per PTE, ascending (flags, OS bits, PFN,
        # protection keys / NX) — the bits the MAC covers.
        self._protected = pattern.protected_bit_positions(max_phys_bits)
        self._mac_positions = list(
            range(pattern.MAC_FIELD_LOW, pattern.MAC_FIELD_HIGH + 1)
        )
        self._pfn_positions = [
            b for b in self._protected if 12 <= b < max_phys_bits
        ]
        self._flag_positions = [b for b in self._protected if b < 12]

    # -- draw helpers -------------------------------------------------

    def _choice(self, scenario: str, field: str, trial: int, n: int) -> int:
        return deterministic_choice(
            self.seed, f"fault:{scenario}:{field}", str(trial), n
        )

    def _pick_line(self, scenario: str, trial: int,
                   lines: Sequence[int]) -> int:
        if not lines:
            raise ValueError(f"scenario {scenario!r} has no candidate lines")
        return lines[self._choice(scenario, "line", trial, len(lines))]

    def _pick_pte(self, scenario: str, trial: int) -> int:
        return self._choice(scenario, "pte", trial, PTES_PER_LINE)

    def _single_from(self, scenario: str, trial: int,
                     positions: Sequence[int]) -> Tuple[int, ...]:
        pte = self._pick_pte(scenario, trial)
        bit = positions[self._choice(scenario, "bit", trial, len(positions))]
        return _pte_offsets(pte, [bit])

    # -- scenario generators ------------------------------------------

    def generate(self, scenario: str, trial: int,
                 pte_lines: Sequence[int],
                 data_lines: Sequence[int]) -> FaultSpec:
        """Build the fault for ``trial`` of ``scenario``.

        ``pte_lines`` are line addresses holding live page-table entries;
        ``data_lines`` are ordinary (unprotected) lines. Both must be in
        a deterministic order — the injector indexes into them.
        """
        if scenario in DATA_SCENARIOS:
            line = self._pick_line(scenario, trial, data_lines)
            is_pte = False
        elif scenario in PTE_SCENARIOS:
            line = self._pick_line(scenario, trial, pte_lines)
            is_pte = True
        else:
            raise ValueError(f"unknown fault scenario {scenario!r}")

        if scenario == "pte_single":
            offsets = self._single_from(scenario, trial, self._protected)
            note = "single protected data bit"
        elif scenario == "pte_double":
            offsets = self._double_protected(trial)
            note = "two protected data bits"
        elif scenario == "mac_single":
            offsets = self._single_from(scenario, trial, self._mac_positions)
            note = "single embedded-MAC bit"
        elif scenario == "burst":
            start = self._choice(
                scenario, "start", trial, LINE_BITS - _BURST_WIDTH + 1
            )
            offsets = tuple(range(start, start + _BURST_WIDTH))
            note = f"{_BURST_WIDTH}-bit burst"
        elif scenario == "global_bit":
            pte = self._pick_pte(scenario, trial)
            offsets = _pte_offsets(pte, [GLOBAL_BIT])
            note = "GbHammer-style global-bit flip"
        elif scenario == "pfn_only":
            offsets = self._single_from(scenario, trial, self._pfn_positions)
            note = "single PFN bit"
        elif scenario == "flags_only":
            offsets = self._single_from(scenario, trial, self._flag_positions)
            note = "single protected flag bit"
        elif scenario == "uniform":
            offsets = self._uniform_offsets(trial)
            note = f"uniform p={self.flip_probability:g} per bit"
        else:  # data_single
            offsets = (self._choice(scenario, "bit", trial, LINE_BITS),)
            note = "single bit in an unprotected data line"

        return FaultSpec(
            scenario=scenario,
            line_address=line,
            bit_offsets=offsets,
            is_pte=is_pte,
            description=note,
        )

    def _double_protected(self, trial: int) -> Tuple[int, ...]:
        """Two distinct protected (pte, bit) positions in one line."""
        combos = PTES_PER_LINE * len(self._protected)
        first = self._choice("pte_double", "first", trial, combos)
        second = self._choice("pte_double", "second", trial, combos - 1)
        if second >= first:
            second += 1

        def to_offset(combo: int) -> int:
            pte, idx = divmod(combo, len(self._protected))
            return pte * PTE_BITS + self._protected[idx]

        return tuple(sorted((to_offset(first), to_offset(second))))

    def _uniform_offsets(self, trial: int) -> Tuple[int, ...]:
        """Per-bit coin flips at ``flip_probability`` (Fig-9 regime).

        Re-salts until at least one bit flips so every campaign trial
        injects a real fault; the redraw is itself deterministic.
        """
        for attempt in range(64):
            rng = random.Random(
                _digest(self.seed, f"fault:uniform:{attempt}", str(trial))
            )
            offsets = tuple(
                b for b in range(LINE_BITS)
                if rng.random() < self.flip_probability
            )
            if offsets:
                return offsets
        # p >= 1/512 makes 64 consecutive empty draws vanishingly rare;
        # fall back to a single deterministic bit rather than loop on.
        return (deterministic_choice(
            self.seed, "fault:uniform:fallback", str(trial), LINE_BITS
        ),)
