"""Fault injection and self-checking for the simulator core.

Three pieces, independent of (and composable with) the Rowhammer physics
model in :mod:`repro.dram.rowhammer`:

* :mod:`repro.faults.inject` — deterministic, seed-addressed injectors
  that flip bits anywhere in DRAM (PTE data bits, embedded MAC bits,
  non-PT data lines, bursts) plus targeted scenario generators
  (GbHammer-style global-bit flips, PFN-only, flags-only). Also home of
  the shared deterministic decision primitives the chaos harness uses.
* :mod:`repro.faults.campaign` — drives every injected fault to ground
  through the walker/MAC/correction path and classifies the outcome
  (detected+corrected, detected+uncorrectable, silent corruption,
  masked/benign, simulator crash), fanning cells out through the
  :mod:`repro.harness.parallel` fabric.
* :mod:`repro.faults.invariants` — opt-in runtime validator
  (``--validate`` / ``REPRO_VALIDATE``): TLB-vs-page-table shadow walks,
  MMU-cache and cache-hierarchy consistency, and a differential MAC
  oracle — so SDC in the *simulator* is distinguishable from SDC the
  *defense* missed.
"""

from repro.faults.inject import (
    ALL_SCENARIOS,
    DATA_SCENARIOS,
    PTE_SCENARIOS,
    FaultInjector,
    FaultSpec,
    deterministic_choice,
    deterministic_fraction,
    garble_payload,
)
from repro.faults.campaign import (
    OUTCOME_CLASSES,
    CampaignCell,
    CampaignResult,
    campaign_cell_job,
    run_campaign,
    run_campaign_cell,
)
from repro.faults.invariants import (
    InvariantChecker,
    attach_validator,
    set_validation,
    validation_enabled,
)

__all__ = [
    "ALL_SCENARIOS",
    "DATA_SCENARIOS",
    "PTE_SCENARIOS",
    "FaultInjector",
    "FaultSpec",
    "deterministic_choice",
    "deterministic_fraction",
    "garble_payload",
    "OUTCOME_CLASSES",
    "CampaignCell",
    "CampaignResult",
    "campaign_cell_job",
    "run_campaign",
    "run_campaign_cell",
    "InvariantChecker",
    "attach_validator",
    "set_validation",
    "validation_enabled",
]
