"""Opt-in runtime invariant checking (``--validate`` / ``REPRO_VALIDATE``).

A fault-injection campaign is only as trustworthy as the simulator
running it: a bug that desynchronises the TLB from the page tables, or
the table-driven QARMA from the reference cipher, would masquerade as a
defense outcome. The validator makes simulator SDC loud and distinct:

* ``tlb_shadow_walk`` — every TLB entry must match a side-effect-free
  re-walk of the live page tables (:func:`repro.mmu.walker.shadow_tlb_entry`);
* ``mmu_cache_consistency`` — every cached upper-level PTE must equal the
  in-memory entry (raw or metadata-stripped);
* ``cache_consistency`` — write-back protocol invariants of the cache
  hierarchy, plus clean lines vs backing memory;
* ``mac_differential_oracle`` — the fast MAC path must agree with an
  independently built reference (for qarma: cell-by-cell cipher vs
  lookup tables), both on sampled live computations (armed via
  :meth:`PTGuard.arm_differential_oracle`) and on a fixed probe here.

All checks read raw memory directly — never through the controller or
walker ports — so running them perturbs no statistics, DRAM row state or
cache contents. Lines with recorded DRAM tampering are skipped where
caches/TLBs legitimately shield stale data (that shielding is a modelled
hardware property, not a bug).

Overhead: zero when disabled (one ``is not None`` test on the MAC-compute
path); with ``--validate`` a campaign pays one reference-MAC call per
``sample_period`` computations plus a full sweep of TLB/MMU-cache/cache
state per :meth:`InvariantChecker.run_all` call (campaigns run it every
32 trials), ~10-20% wall clock at default settings.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List

from repro.common.errors import InvariantViolation
from repro.common.stats import StatGroup

_FALSY = ("", "0", "false", "no", "off")

_override: bool | None = None


def set_validation(enabled: bool | None) -> None:
    """Force validation on/off in-process (None restores env control)."""
    global _override
    _override = enabled


def validation_enabled() -> bool:
    """True when the runtime validator should be attached.

    Resolution order: :func:`set_validation` override, then the
    ``REPRO_VALIDATE`` environment variable (falsy values: empty, ``0``,
    ``false``, ``no``, ``off``).
    """
    if _override is not None:
        return _override
    return os.environ.get("REPRO_VALIDATE", "").strip().lower() not in _FALSY


class InvariantChecker:
    """A registry of named self-checks over live simulator state.

    Components register zero-argument callables returning a list of
    violation strings (empty = clean). :meth:`run_all` raises a single
    :class:`~repro.common.errors.InvariantViolation` aggregating every
    failure, so one sweep reports all inconsistencies at once.
    """

    def __init__(self):
        self._checks: Dict[str, Callable[[], List[str]]] = {}
        self.stats = StatGroup("invariants")

    def register(self, name: str, check: Callable[[], List[str]]) -> None:
        if name in self._checks:
            raise ValueError(f"invariant {name!r} already registered")
        self._checks[name] = check

    @property
    def names(self):
        return tuple(self._checks)

    def run_all(self, context: str = "") -> int:
        """Run every registered check; returns the number run.

        Raises :class:`InvariantViolation` listing all failures.
        """
        self.stats.increment("sweeps")
        violations: List[str] = []
        for name, check in self._checks.items():
            self.stats.increment("checks_run")
            for message in check():
                violations.append(f"[{name}] {message}")
        if violations:
            self.stats.increment("violations", len(violations))
            where = f" ({context})" if context else ""
            raise InvariantViolation(
                f"{len(violations)} invariant violation(s){where}:\n  "
                + "\n  ".join(violations)
            )
        return len(self._checks)


def attach_validator(system, oracle_period: int = 64) -> InvariantChecker:
    """Wire every component's invariants to one checker for ``system``.

    ``system`` is a :class:`repro.harness.system.System`. Registers the
    TLB shadow-walk and MMU-cache checks against the kernel's walker, the
    cache-consistency checks against the (single-core) hierarchy, and —
    when a guard is present — arms the MAC differential oracle with
    ``oracle_period`` sampling.
    """
    from repro.cache import hierarchy as _hierarchy
    from repro.core import engine as _engine
    from repro.mmu import tlb as _tlb
    from repro.mmu import walker as _walker

    checker = InvariantChecker()
    kernel = system.kernel
    tampered = system.dram.tampered_lines

    _walker.register_invariants(checker, kernel.walker, kernel, tampered)
    _tlb.register_invariants(
        checker,
        kernel.walker.tlb,
        lambda asid, vpn: _walker.shadow_tlb_entry(kernel, asid, vpn),
        tampered,
    )
    _hierarchy.register_invariants(
        checker, system.hierarchy, system.memory, tampered
    )
    if system.guard is not None:
        system.guard.arm_differential_oracle(oracle_period)
        _engine.register_invariants(
            checker,
            lambda: system.guard.engine,
            lambda: system.guard.build_reference_mac(),
        )
    return checker
