"""Admission control primitives: token buckets and a bounded shed queue.

Both are deliberately *passive* data structures: they hold no locks and
spawn no threads. The :class:`~repro.service.core.FabricService` owns
one mutex and calls these under it, which keeps every admission decision
atomic with the bookkeeping it affects and makes the whole layer
testable with an injected clock (``time_fn``) — no sleeps, no races, no
wall-clock flakes.

Design rules, per the overload model in DESIGN.md:

* Admission never blocks and never grows without bound. A submission is
  accepted into a fixed-depth queue or rejected *now* with a typed
  :class:`~repro.common.errors.AdmissionRejected` carrying the reason
  and a retry hint.
* Shedding is deterministic and fair-by-tenant: when the queue is full,
  the victim is the *oldest* queued entry of the *heaviest* tenant (most
  queued entries; ties broken by whichever tenant queued earliest). A
  newcomer whose own tenant is (one of) the heaviest cannot displace
  another tenant's work — it is rejected instead. One tenant flooding
  the service therefore sheds only its own backlog.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import AdmissionRejected


class TokenBucket:
    """A standard token bucket with an injectable monotonic clock.

    ``capacity`` tokens maximum, refilled continuously at
    ``refill_per_s``. ``try_acquire`` never blocks: it either takes a
    token or reports the wait. A ``capacity`` of zero means "this tenant
    may never submit" (acquire always fails, retry hint is ``None``).
    """

    __slots__ = ("capacity", "refill_per_s", "_tokens", "_updated", "_time_fn")

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        time_fn: Callable[[], float] = time.monotonic,
    ):
        if capacity < 0 or refill_per_s < 0:
            raise ValueError("token bucket capacity/refill must be >= 0")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._tokens = float(capacity)
        self._updated = time_fn()
        self._time_fn = time_fn

    def _refill(self) -> None:
        now = self._time_fn()
        elapsed = now - self._updated
        if elapsed <= 0:
            # Clock regression (or no time passed): mint nothing and keep
            # the old watermark. Moving ``_updated`` backwards here would
            # let the same interval mint tokens twice once the clock
            # returns — a free-submission hole under an injectable or
            # stepping clock.
            return
        self._updated = now
        if self.refill_per_s > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_s
            )

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (no debt) otherwise."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> Optional[float]:
        """Seconds until ``tokens`` could be available; None if never.

        The hint is capped at the bucket's refill horizon — the time to
        fill from empty to ``tokens`` — so arithmetic artifacts (float
        drift, a regressed clock leaving the deficit momentarily
        overstated) can never tell a client to back off longer than the
        bucket itself could possibly need.
        """
        self._refill()
        deficit = tokens - self._tokens
        if deficit <= 0:
            return 0.0
        if self.refill_per_s <= 0 or tokens > self.capacity:
            return None
        return min(deficit, tokens) / self.refill_per_s

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class AdmissionQueue:
    """Bounded FIFO of pending submissions with tenant-fair shedding.

    Entries are ``(ticket, tenant)`` pairs kept in arrival order; the
    depth is fixed at construction. :meth:`offer` returns the ticket of
    a shed victim (to be failed by the caller) or ``None`` when the
    newcomer fit without displacement — and raises
    :class:`AdmissionRejected` (reason ``queue_full``) when the newcomer
    itself must be turned away because its tenant already dominates the
    queue. Not thread-safe on its own: the owning service serializes
    access under its lock.
    """

    __slots__ = ("depth", "_entries")

    def __init__(self, depth: int):
        if depth < 1:
            raise ValueError("admission queue depth must be >= 1")
        self.depth = int(depth)
        # ticket -> tenant; insertion order is arrival order.
        self._entries: "OrderedDict[str, str]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, ticket: str) -> bool:
        return ticket in self._entries

    def tenant_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for tenant in self._entries.values():
            counts[tenant] = counts.get(tenant, 0) + 1
        return counts

    def _heaviest_tenants(self) -> List[str]:
        counts = self.tenant_counts()
        if not counts:
            return []
        top = max(counts.values())
        return [tenant for tenant, n in counts.items() if n == top]

    def _oldest_of(self, tenants: List[str]) -> str:
        # First entry (arrival order) belonging to any candidate tenant:
        # deterministic victim regardless of dict hashing or tie counts.
        for ticket, tenant in self._entries.items():
            if tenant in tenants:
                return ticket
        raise KeyError("no entry for candidate tenants")  # unreachable

    def offer(self, ticket: str, tenant: str) -> Optional[str]:
        """Queue ``ticket``; returns the shed victim's ticket, if any.

        Raises :class:`AdmissionRejected` (``queue_full``) when the
        queue is full and the newcomer's own tenant is among the
        heaviest — shedding someone else's work to admit more of the
        dominant tenant would invert fairness.
        """
        if len(self._entries) < self.depth:
            self._entries[ticket] = tenant
            return None
        heaviest = self._heaviest_tenants()
        if tenant in heaviest:
            raise AdmissionRejected(
                f"admission queue full ({self.depth} deep) and tenant "
                f"{tenant!r} already holds the largest share",
                tenant=tenant,
                reason="queue_full",
            )
        victim = self._oldest_of(heaviest)
        del self._entries[victim]
        self._entries[ticket] = tenant
        return victim

    def take(self) -> Optional[Tuple[str, str]]:
        """Pop the oldest entry as ``(ticket, tenant)``; None when empty."""
        if not self._entries:
            return None
        ticket, tenant = next(iter(self._entries.items()))
        del self._entries[ticket]
        return ticket, tenant

    def remove(self, ticket: str) -> bool:
        """Drop ``ticket`` if still queued (cancel path); True if found."""
        return self._entries.pop(ticket, None) is not None

    def restore(self, ticket: str, tenant: str) -> None:
        """Re-queue a recovered submission, bypassing depth and shedding.

        Recovery replays accepted-but-unfinished tickets from the state
        log in their original accept order. Those submissions already
        won admission once — shedding or rejecting them now because the
        *replay* transiently overfills the queue would revoke an
        acknowledgement the client holds. The queue may exceed its depth
        until the dispatchers drain the backlog; new ``offer`` calls see
        the true length and shed accordingly.
        """
        self._entries[ticket] = tenant
