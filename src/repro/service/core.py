"""The multi-tenant fabric service: admission, dispatch, degradation.

:class:`FabricService` turns the batch experiment fabric
(:func:`repro.harness.run_jobs` and the named ``EXPERIMENTS``) into a
long-lived, overload-safe campaign service. The contract, from the
overload model in DESIGN.md:

* **Typed, bounded admission.** ``submit_sweep`` either returns a ticket
  or raises :class:`AdmissionRejected` *now* — per-tenant token buckets
  (``rate_limited``), a fixed-depth queue with tenant-fair shedding
  (``queue_full`` / ``shed``), and a closed service (``shutdown``).
  Nothing queues without bound; nothing blocks the caller.
* **Per-tenant isolation.** Every tenant's results live in a private
  subtree of the content-addressed cache
  (:func:`repro.service.tenancy.tenant_cache`); job keys are
  tenant-independent, so identical submissions from two tenants produce
  byte-identical payloads at distinct paths.
* **Degradation is a first-class state, not an error.** A backend that
  keeps failing transiently trips its circuit breaker; submissions are
  then routed to the in-process backend (observable via
  ``status``/``health``) until a probe succeeds. Accepted work still
  completes with byte-identical results — the write-through cache means
  a rerun after a backend failure recomputes only the missing cells.
  Operators who prefer fail-fast set ``allow_degraded=False`` and get
  :class:`CircuitOpenError` with a retry hint instead.
* **Determinism on demand.** The clock (``time_fn``) and the dispatcher
  threads (``start=False`` + :meth:`drain`) are injectable, so every
  overload scenario — floods, sheds, breaker trips — is reproducible in
  tests without sleeps or real time.

Progress streams from the sweep journals the fabric already writes
(:class:`repro.service.progress.JournalTail`); there is no second
bookkeeping channel to drift.
"""

from __future__ import annotations

import dataclasses
import inspect
import itertools
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    AdmissionRejected,
    CircuitOpenError,
    ConfigurationError,
    JobTimeoutError,
    RecoveredSubmissionError,
    RetryBudgetExceededError,
    SubmissionCancelled,
    SubmissionNotFound,
    WorkerCrashError,
)
from repro.common.stats import LatencyRecorder, StatGroup
from repro.harness.parallel import (
    BACKENDS,
    ExecutionPolicy,
    ResultCache,
    SimJob,
    default_cache_dir,
    execution_policy,
    run_jobs,
    sweep_id,
)
from repro.service.admission import AdmissionQueue, TokenBucket
from repro.service.breaker import OPEN, CircuitBreaker
from repro.service.chaos import CrashingCache, ServiceChaosPolicy
from repro.service.progress import JournalTail
from repro.service.tenancy import DEFAULT_TENANT, tenant_cache, validate_tenant
from repro.service.wal import StateLog

# Submission lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
REJECTED = "rejected"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, REJECTED, CANCELLED})

# Name of the write-ahead state log inside ``state_dir``.
WAL_FILENAME = "service.wal"


@dataclass
class ServiceConfig:
    """Operator knobs for :class:`FabricService`.

    ``rate_capacity`` / ``rate_refill_per_s`` are the default per-tenant
    token bucket (burst / sustained submissions-per-second);
    ``tenant_rates`` overrides specific tenants with ``(capacity,
    refill_per_s)`` pairs — a capacity of 0 blocks a tenant outright.
    ``backend`` is the primary executor (:data:`BACKENDS` key);
    ``allow_degraded`` chooses between rerouting to in-process execution
    (True, the default) and failing fast with :class:`CircuitOpenError`
    (False) when that backend's breaker is open.
    """

    queue_depth: int = 8
    dispatchers: int = 2
    rate_capacity: float = 4.0
    rate_refill_per_s: float = 1.0
    tenant_rates: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    backend: str = "threaded"
    workers: int = 2
    allow_degraded: bool = True

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown service backend {self.backend!r}; "
                f"valid: {', '.join(sorted(BACKENDS))}"
            )
        if self.dispatchers < 1:
            raise ConfigurationError("service needs at least one dispatcher")


@dataclass
class Submission:
    """One tracked sweep submission (jobs XOR a named experiment)."""

    ticket: str
    tenant: str
    jobs: Optional[List[SimJob]] = None
    experiment: Optional[str] = None
    experiment_kwargs: Dict[str, Any] = field(default_factory=dict)
    policy: Optional[ExecutionPolicy] = None
    state: str = QUEUED
    backend_used: Optional[str] = None
    degraded: bool = False
    error: Optional[BaseException] = None
    results: Optional[Any] = None
    submitted_at: float = 0.0
    dispatched_at: Optional[float] = None
    finished_at: Optional[float] = None
    journal_path: Optional[pathlib.Path] = None
    recovered: bool = False
    finished: threading.Event = field(default_factory=threading.Event)


class ReadyProbe(dict):
    """:meth:`FabricService.ready`'s structured answer.

    A plain dict (JSON-able for probe endpoints) whose truthiness is the
    ``ready`` flag, so existing ``if service.ready():`` callers keep
    their meaning while new callers read the queue and breaker detail.
    """

    def __init__(self, ready: bool, queue: Dict[str, int],
                 breakers: Dict[str, str],
                 durability: Optional[Dict[str, Any]] = None):
        super().__init__(ready=ready, queue=queue, breakers=breakers)
        if durability is not None:
            self["durability"] = durability

    def __bool__(self) -> bool:
        return bool(self["ready"])


def _is_transient_infra(error: BaseException) -> bool:
    """Did the *infrastructure* fail (backend health signal), as opposed
    to the job's own code? Retry-budget exhaustion inherits the verdict
    of its underlying cause."""
    if isinstance(error, (WorkerCrashError, JobTimeoutError)):
        return True
    if isinstance(error, RetryBudgetExceededError):
        return bool(getattr(error.__cause__, "transient", False))
    return False


class FabricService:
    """Long-lived, multi-tenant front end over the experiment fabric."""

    def __init__(
        self,
        cache_root: Optional[pathlib.Path] = None,
        config: Optional[ServiceConfig] = None,
        time_fn: Callable[[], float] = time.monotonic,
        start: bool = True,
        state_dir: Optional[pathlib.Path] = None,
        chaos: Optional[ServiceChaosPolicy] = None,
        crash_fn: Optional[Callable[[], None]] = None,
    ):
        self.cache_root = (
            pathlib.Path(cache_root) if cache_root is not None else default_cache_dir()
        )
        self.config = config if config is not None else ServiceConfig()
        self._time_fn = time_fn
        self._work = threading.Condition()
        self._queue = AdmissionQueue(self.config.queue_depth)
        self._submissions: Dict[str, Submission] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._caches: Dict[str, ResultCache] = {}
        self._tickets = itertools.count(1)
        self._closed = False
        self._threads: List[threading.Thread] = []
        self.counters = StatGroup("service")
        self.latency = {
            "queue_wait": LatencyRecorder("queue_wait"),
            "run": LatencyRecorder("run"),
            "reject": LatencyRecorder("reject"),
        }
        # Durability: a write-ahead state log under state_dir makes every
        # accepted ticket survive a crash; without one the service is
        # explicitly memory-only (the pre-durability behaviour).
        self.state_dir = pathlib.Path(state_dir) if state_dir is not None else None
        self._chaos = chaos
        self._crash_fn = crash_fn
        self._wal: Optional[StateLog] = None
        self._replayed = 0
        self._quarantined = 0
        self._recovered_live = 0
        self._recovered_terminal = 0
        if self.state_dir is not None:
            self._wal = StateLog(self.state_dir / WAL_FILENAME)
            self._recover()
        if start:
            self._start_dispatchers()

    # -- durability --------------------------------------------------------

    def _wal_append(self, record: Dict[str, Any]) -> None:
        """Log a state transition (call with ``self._work`` held)."""
        if self._wal is not None:
            self._wal.append(record)

    @staticmethod
    def _accept_record(submission: Submission) -> Dict[str, Any]:
        jobs = None
        if submission.jobs is not None:
            jobs = [
                {"kind": job.kind, "params": dict(job.params), "label": job.label}
                for job in submission.jobs
            ]
        return {
            "type": "accept",
            "ticket": submission.ticket,
            "tenant": submission.tenant,
            "jobs": jobs,
            "experiment": submission.experiment,
            "kwargs": submission.experiment_kwargs,
        }

    @staticmethod
    def _finish_record(submission: Submission) -> Dict[str, Any]:
        error = submission.error
        return {
            "type": "finish",
            "ticket": submission.ticket,
            "state": submission.state,
            "error": str(error) if error is not None else None,
            "reason": getattr(error, "reason", None),
        }

    @staticmethod
    def _ticket_number(ticket: str) -> int:
        try:
            return int(ticket.rsplit("-", 1)[-1])
        except ValueError:
            return 0

    def _recovered_error(
        self, record: Dict[str, Any], tenant: str
    ) -> Optional[BaseException]:
        """Reconstruct a typed error for a replayed terminal failure."""
        state = record.get("state")
        message = record.get("error") or f"submission {record.get('ticket')} failed"
        if state == REJECTED:
            return AdmissionRejected(
                message,
                tenant=tenant,
                reason=record.get("reason") or "overload",
            )
        if state == FAILED:
            return RecoveredSubmissionError(message)
        return None

    def _recover(self) -> None:
        """Replay the WAL: re-adopt live tickets, rehydrate terminal ones.

        Last record wins per ticket. Tickets whose latest state is
        ``queued``/``running`` are re-queued in their original accept
        order (bypassing shedding — they already won admission once);
        the cells they completed before the crash are in the tenant's
        write-through cache and each sweep's journal, so re-execution
        recomputes only the gap and the results come out byte-identical.
        Terminal tickets are rebuilt already-finished: ``results()`` on
        a re-issued ticket returns (rehydrating done results from the
        cache, all hits) or raises its typed error immediately. The log
        is then compacted to one accept + latest-state pair per ticket.
        """
        assert self._wal is not None
        replay = self._wal.replay()
        self._replayed = len(replay.records)
        self._quarantined = len(replay.quarantined)
        accepts: Dict[str, Dict[str, Any]] = {}
        order: List[str] = []
        latest: Dict[str, Dict[str, Any]] = {}
        for record in replay.records:
            ticket = record.get("ticket")
            rtype = record.get("type")
            if not isinstance(ticket, str):
                continue
            if rtype == "accept":
                if ticket not in accepts:
                    accepts[ticket] = record
                    order.append(ticket)
                    latest[ticket] = {"type": "accept", "state": QUEUED}
            elif rtype == "dispatch":
                latest[ticket] = {"type": "dispatch", "state": RUNNING}
            elif rtype == "finish":
                latest[ticket] = record

        highest = 0
        compacted: List[Dict[str, Any]] = []
        now = self._time_fn()
        for ticket in order:
            accept = accepts[ticket]
            highest = max(highest, self._ticket_number(ticket))
            tenant = accept.get("tenant") or DEFAULT_TENANT
            jobs: Optional[List[SimJob]] = None
            raw_jobs = accept.get("jobs")
            if raw_jobs is not None:
                jobs = [
                    SimJob(
                        kind=entry["kind"],
                        params=entry.get("params") or {},
                        label=entry.get("label"),
                    )
                    for entry in raw_jobs
                ]
            submission = Submission(
                ticket=ticket,
                tenant=tenant,
                jobs=jobs,
                experiment=accept.get("experiment"),
                experiment_kwargs=dict(accept.get("kwargs") or {}),
                submitted_at=now,
                recovered=True,
            )
            if jobs is not None:
                cache = self._tenant_cache(tenant)
                submission.journal_path = (
                    cache.root / "journals" / f"{sweep_id(jobs)}.jsonl"
                )
            final = latest[ticket]
            compacted.append(accept)
            if final.get("state") in TERMINAL_STATES:
                submission.state = final["state"]
                submission.error = self._recovered_error(final, tenant)
                submission.finished_at = now
                submission.finished.set()
                self._recovered_terminal += 1
                compacted.append(final)
            else:
                # queued or running when the process died: re-adopt.
                self._queue.restore(ticket, tenant)
                self._recovered_live += 1
            self._submissions[ticket] = submission
        if self._recovered_live or self._recovered_terminal:
            self.counters.increment("recovered", self._recovered_live)
        if highest:
            self._tickets = itertools.count(highest + 1)
        self._wal.close()
        if replay.records or not replay.clean:
            self._wal.compact(compacted)

    def durability(self) -> Dict[str, Any]:
        """The durability facet of ``health()``/``ready()``.

        ``mode`` is ``memory-only`` (no ``state_dir`` configured),
        ``durable`` (WAL and cache write-throughs landing), or
        ``degraded`` (a disk fault on either path — accepted work still
        completes, but would not survive a crash).
        """
        with self._work:
            return self._durability_locked()

    def _durability_locked(self) -> Dict[str, Any]:
        put_errors = sum(cache.put_errors for cache in self._caches.values())
        if self._wal is None:
            mode = "memory-only"
        elif self._wal.degraded or put_errors:
            mode = "degraded"
        else:
            mode = "durable"
        view: Dict[str, Any] = {
            "mode": mode,
            "replayed": self._replayed,
            "quarantined": self._quarantined,
            "recovered_live": self._recovered_live,
            "recovered_terminal": self._recovered_terminal,
            "cache_put_errors": put_errors,
        }
        if self._wal is not None:
            view["wal"] = self._wal.stats()
        return view

    # -- lifecycle ---------------------------------------------------------

    def _start_dispatchers(self) -> None:
        for index in range(self.config.dispatchers):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"fabric-dispatch-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def close(self) -> None:
        """Stop accepting work, fail queued submissions, join dispatchers.

        In-flight (running) submissions finish; queued-but-undispatched
        ones are rejected with reason ``shutdown`` so waiting callers
        fail fast instead of hanging on results that will never come.
        """
        with self._work:
            if self._closed:
                return
            self._closed = True
            while True:
                taken = self._queue.take()
                if taken is None:
                    break
                ticket, _tenant = taken
                submission = self._submissions[ticket]
                self._finish_locked(
                    submission,
                    REJECTED,
                    error=AdmissionRejected(
                        f"service shut down before submission {ticket} ran",
                        tenant=submission.tenant,
                        reason="shutdown",
                    ),
                )
            self._work.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads = []
        if self._wal is not None:
            # Every queued ticket was just finished (shutdown-rejected)
            # and logged; a clean close therefore leaves only terminal
            # records, so the next boot re-adopts nothing.
            self._wal.close()

    def __enter__(self) -> "FabricService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- admission ---------------------------------------------------------

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            capacity, refill = self.config.tenant_rates.get(
                tenant, (self.config.rate_capacity, self.config.rate_refill_per_s)
            )
            bucket = TokenBucket(capacity, refill, time_fn=self._time_fn)
            self._buckets[tenant] = bucket
        return bucket

    def submit_sweep(
        self,
        jobs: Optional[Sequence[SimJob]] = None,
        tenant: str = DEFAULT_TENANT,
        experiment: Optional[str] = None,
        policy: Optional[ExecutionPolicy] = None,
        **experiment_kwargs: Any,
    ) -> str:
        """Admit one sweep; returns a ticket or raises, synchronously.

        Exactly one of ``jobs`` (a sequence of :class:`SimJob`) and
        ``experiment`` (an ``EXPERIMENTS`` name, with keyword arguments
        like ``scale``/``workloads`` passed through) must be given.
        Raises :class:`ConfigurationError` for malformed requests and
        :class:`AdmissionRejected` for overload — the latter carries a
        machine-readable ``reason`` and a ``retry_after_s`` hint.
        """
        started = self._time_fn()
        validate_tenant(tenant)
        if (jobs is None) == (experiment is None):
            raise ConfigurationError(
                "submit_sweep wants exactly one of jobs= or experiment="
            )
        if experiment is not None:
            from repro.harness.experiments import EXPERIMENTS

            if experiment not in EXPERIMENTS:
                raise ConfigurationError(
                    f"unknown experiment {experiment!r}; "
                    f"valid: {', '.join(sorted(EXPERIMENTS))}"
                )
        job_list: Optional[List[SimJob]] = None
        if jobs is not None:
            job_list = list(jobs)
            if not job_list:
                raise ConfigurationError("submit_sweep got an empty job list")

        with self._work:
            try:
                if self._closed:
                    raise AdmissionRejected(
                        "service is shut down",
                        tenant=tenant,
                        reason="shutdown",
                    )
                bucket = self._bucket(tenant)
                if not bucket.try_acquire():
                    self.counters.increment("rate_limited")
                    raise AdmissionRejected(
                        f"tenant {tenant!r} is over its submission rate",
                        tenant=tenant,
                        reason="rate_limited",
                        retry_after_s=bucket.retry_after(),
                    )
                ticket = f"s-{next(self._tickets):04d}"
                submission = Submission(
                    ticket=ticket,
                    tenant=tenant,
                    jobs=job_list,
                    experiment=experiment,
                    experiment_kwargs=dict(experiment_kwargs),
                    policy=policy,
                    submitted_at=started,
                )
                if job_list is not None:
                    cache = self._tenant_cache(tenant)
                    submission.journal_path = (
                        cache.root / "journals" / f"{sweep_id(job_list)}.jsonl"
                    )
                try:
                    victim = self._queue.offer(ticket, tenant)
                except AdmissionRejected:
                    self.counters.increment("queue_full")
                    raise
                self._submissions[ticket] = submission
                # Logged before the ticket is returned: an acknowledged
                # accept is a durable accept.
                self._wal_append(self._accept_record(submission))
                if victim is not None:
                    shed = self._submissions[victim]
                    self.counters.increment("shed")
                    self._finish_locked(
                        shed,
                        REJECTED,
                        error=AdmissionRejected(
                            f"submission {victim} shed under load "
                            f"(tenant {shed.tenant!r} held the largest "
                            "queue share)",
                            tenant=shed.tenant,
                            reason="shed",
                            retry_after_s=self._bucket(shed.tenant).retry_after(),
                        ),
                    )
                self.counters.increment("accepted")
                self._work.notify()
                return ticket
            except AdmissionRejected:
                self.counters.increment("rejected")
                self.latency["reject"].record(self._time_fn() - started)
                raise

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            submission = self._next_submission(block=True)
            if submission is None:
                return
            self._execute(submission)

    def _next_submission(self, block: bool) -> Optional[Submission]:
        with self._work:
            while True:
                taken = self._queue.take()
                if taken is not None:
                    ticket, _tenant = taken
                    submission = self._submissions[ticket]
                    submission.state = RUNNING
                    self._wal_append({"type": "dispatch", "ticket": ticket})
                    submission.dispatched_at = self._time_fn()
                    self.latency["queue_wait"].record(
                        submission.dispatched_at - submission.submitted_at
                    )
                    return submission
                if self._closed or not block:
                    return None
                self._work.wait()

    def drain(self, limit: Optional[int] = None) -> int:
        """Run queued submissions on the calling thread (``start=False``
        mode); returns how many ran. The deterministic-test entry point:
        no dispatcher threads, no time dependence beyond ``time_fn``."""
        processed = 0
        while limit is None or processed < limit:
            submission = self._next_submission(block=False)
            if submission is None:
                break
            self._execute(submission)
            processed += 1
        return processed

    # -- execution ---------------------------------------------------------

    def _tenant_cache(self, tenant: str) -> ResultCache:
        # Memoized so write-error counters (put_errors) accumulate per
        # tenant across a submission's lifetime and feed the durability
        # probe, instead of resetting on every fresh ResultCache.
        cache = self._caches.get(tenant)
        if cache is None:
            cache = tenant_cache(self.cache_root, tenant)
            self._caches[tenant] = cache
        return cache

    def _breaker(self, backend: str) -> CircuitBreaker:
        breaker = self._breakers.get(backend)
        if breaker is None:
            breaker = CircuitBreaker(
                backend,
                threshold=self.config.breaker_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
                time_fn=self._time_fn,
            )
            self._breakers[backend] = breaker
        return breaker

    def _run_once(self, submission: Submission, backend: str) -> Any:
        """One execution attempt on ``backend``, in the caller's context.

        ``fallback_serial`` is forced off: backend degradation must
        surface here (as a transient error) so the *service* can record
        it against the breaker and own the rerun — silent in-fabric
        fallback would hide exactly the signal the breaker exists for.
        """
        base = submission.policy if submission.policy is not None else ExecutionPolicy()
        active = dataclasses.replace(base, backend=backend, fallback_serial=False)
        cache: Any = self._tenant_cache(submission.tenant)
        if self._chaos is not None:
            total = len(submission.jobs) if submission.jobs is not None else None
            point = self._chaos.crash_point(submission.ticket, total)
            if point is not None:
                # The crash channel: die after the Nth fresh cell lands
                # in the cache. Cached cells never re-put, so every
                # restarted attempt makes >= N cells of progress and a
                # supervised service converges even at crash=1.0.
                kwargs: Dict[str, Any] = {"crash_after": point}
                if self._crash_fn is not None:
                    kwargs["crash_fn"] = self._crash_fn
                cache = CrashingCache(cache, **kwargs)
        if submission.jobs is not None:
            return run_jobs(
                submission.jobs,
                workers=self.config.workers,
                cache=cache,
                policy=active,
            )
        from repro.harness.experiments import EXPERIMENTS

        function = EXPERIMENTS[submission.experiment]
        parameters = inspect.signature(function).parameters
        kwargs = {
            key: value
            for key, value in submission.experiment_kwargs.items()
            if key in parameters
        }
        if "cache" in parameters:
            kwargs.setdefault("cache", cache)
        if "workers" in parameters:
            kwargs.setdefault("workers", self.config.workers)
        with execution_policy(active):
            return function(**kwargs)

    def _execute(self, submission: Submission) -> None:
        primary = self.config.backend
        breaker = self._breaker(primary)
        with self._work:
            routed = primary if (primary == "inprocess" or breaker.allow()) else None
        if routed is None and not self.config.allow_degraded:
            self._finish(
                submission,
                FAILED,
                error=CircuitOpenError(
                    f"backend {primary!r} circuit is open and degraded "
                    "fallback is disabled",
                    backend=primary,
                    retry_after_s=breaker.retry_after(),
                ),
            )
            return
        if routed is None:
            submission.degraded = True
            self.counters.increment("degraded_runs")
            routed = "inprocess"

        submission.backend_used = routed
        try:
            results = self._run_once(submission, routed)
        except Exception as error:  # noqa: BLE001 - classified below
            if routed != "inprocess" and _is_transient_infra(error):
                with self._work:
                    breaker.record_failure()
                    self.counters.increment("backend_failures")
                if self.config.allow_degraded:
                    # The write-through cache holds every cell that
                    # finished before the backend died; the in-process
                    # rerun recomputes only the gap, so results remain
                    # byte-identical to an undisturbed run.
                    submission.degraded = True
                    submission.backend_used = "inprocess"
                    self.counters.increment("degraded_runs")
                    try:
                        results = self._run_once(submission, "inprocess")
                    except Exception as rerun_error:  # noqa: BLE001
                        self._finish(submission, FAILED, error=rerun_error)
                        return
                    self._finish(submission, DONE, results=results)
                    return
                if breaker.state == OPEN:
                    error = CircuitOpenError(
                        f"backend {primary!r} circuit opened after repeated "
                        "transient failures",
                        backend=primary,
                        retry_after_s=breaker.retry_after(),
                    )
                self._finish(submission, FAILED, error=error)
                return
            self._finish(submission, FAILED, error=error)
            return
        if routed != "inprocess":
            with self._work:
                breaker.record_success()
        self._finish(submission, DONE, results=results)

    def _finish(self, submission: Submission, state: str, **updates: Any) -> None:
        with self._work:
            self._finish_locked(submission, state, **updates)

    def _finish_locked(
        self,
        submission: Submission,
        state: str,
        error: Optional[BaseException] = None,
        results: Optional[Any] = None,
    ) -> None:
        submission.state = state
        submission.error = error
        submission.results = results
        submission.finished_at = self._time_fn()
        # Logged before the finished event wakes any waiter: by the time
        # a client observes the outcome, a restart would replay it.
        self._wal_append(self._finish_record(submission))
        if state == DONE:
            self.counters.increment("completed")
            if submission.dispatched_at is not None:
                self.latency["run"].record(
                    submission.finished_at - submission.dispatched_at
                )
        elif state == FAILED:
            self.counters.increment("failed")
        elif state == REJECTED:
            # Time for an accepted-then-refused submission (shed,
            # shutdown) to learn its fate -- the fail-fast metric.
            self.latency["reject"].record(
                submission.finished_at - submission.submitted_at
            )
        submission.finished.set()

    # -- client API --------------------------------------------------------

    def _submission(self, ticket: str) -> Submission:
        submission = self._submissions.get(ticket)
        if submission is None:
            raise SubmissionNotFound(f"no submission with ticket {ticket!r}")
        return submission

    def status(self, ticket: str) -> Dict[str, Any]:
        """Point-in-time view of one submission, progress included."""
        with self._work:
            submission = self._submission(ticket)
            view: Dict[str, Any] = {
                "ticket": submission.ticket,
                "tenant": submission.tenant,
                "state": submission.state,
                "backend": submission.backend_used,
                "degraded": submission.degraded,
                "recovered": submission.recovered,
                "error": str(submission.error) if submission.error else None,
            }
            journal_path = submission.journal_path
        if journal_path is not None:
            view["progress"] = JournalTail(journal_path).progress()
        return view

    def stream_progress(self, ticket: str) -> JournalTail:
        """A live :class:`JournalTail` for a jobs-based submission.

        Raises :class:`ConfigurationError` for experiment submissions
        (their sweeps are internal; poll :meth:`status` instead).
        """
        with self._work:
            submission = self._submission(ticket)
            if submission.journal_path is None:
                raise ConfigurationError(
                    f"submission {ticket} has no streamable journal "
                    "(experiment submissions aggregate internally)"
                )
            return JournalTail(submission.journal_path)

    def results(self, ticket: str, timeout: Optional[float] = None) -> Any:
        """Block until the submission resolves; return or raise its outcome.

        ``DONE`` returns the decoded results (or the experiment report);
        ``FAILED``/``REJECTED`` re-raise the stored typed error;
        ``CANCELLED`` raises :class:`SubmissionCancelled`. A submission
        already in a terminal state — cancelled, shed, failed, done —
        resolves *immediately*, whatever ``timeout`` says: the timeout
        bounds the wait for an outcome, never delays one that exists. A
        genuine timeout raises :class:`TimeoutError` without consuming
        the submission.
        """
        with self._work:
            submission = self._submission(ticket)
            terminal = submission.state in TERMINAL_STATES
        if terminal:
            # Terminal states are final: resolve now (outside the lock —
            # rehydrating a recovered result may touch the cache) rather
            # than making the caller spend its timeout on a done deal.
            return self._resolve(submission)
        if not submission.finished.wait(timeout):
            raise TimeoutError(
                f"submission {ticket} still {submission.state} "
                f"after {timeout}s"
            )
        return self._resolve(submission)

    def _resolve(self, submission: Submission) -> Any:
        """Return or raise a terminal submission's outcome."""
        if submission.state == DONE:
            if submission.results is None and submission.recovered:
                self._rehydrate(submission)
            return submission.results
        if submission.state == CANCELLED:
            raise SubmissionCancelled(
                f"submission {submission.ticket} was cancelled before "
                "completion"
            )
        assert submission.error is not None
        raise submission.error

    def _rehydrate(self, submission: Submission) -> None:
        """Recompute a recovered DONE submission's results from the cache.

        The WAL records *that* a submission completed, not its payload —
        the payload lives in the content-addressed cache, one entry per
        cell. Re-running the sweep in-process touches only cached
        entries (every cell completed before the crash, or the state
        would not be DONE), so this is a read-side reconstruction:
        exactly-once semantics by sha256 addressing, zero recomputation.
        Idempotent under races — concurrent callers rebuild identical
        bytes.
        """
        results = self._run_once(submission, "inprocess")
        with self._work:
            if submission.results is None:
                submission.results = results
                self.counters.increment("rehydrated")

    def cancel(self, ticket: str) -> bool:
        """Cancel a still-queued submission; False once it is running.

        Running sweeps are not interrupted — cells already computed are
        in the write-through cache and killing mid-sweep would forfeit
        that work for nothing.
        """
        with self._work:
            submission = self._submission(ticket)
            if submission.state != QUEUED or not self._queue.remove(ticket):
                return False
            self.counters.increment("cancelled")
            self._finish_locked(submission, CANCELLED)
            return True

    # -- probes ------------------------------------------------------------

    def ready(self) -> Dict[str, Any]:
        """Readiness probe: accepting submissions with queue headroom.

        Structured so an orchestrator can log *why* the service refused:
        the admission queue's current depth and headroom, and the breaker
        state of every registered backend. Truthiness follows the
        ``ready`` flag — ``if service.ready(): ...`` keeps working.
        """
        with self._work:
            queued = len(self._queue)
            accepting = not self._closed and queued < self._queue.depth
            return ReadyProbe(
                ready=accepting,
                queue={
                    "depth": self._queue.depth,
                    "queued": queued,
                    "headroom": max(0, self._queue.depth - queued),
                },
                breakers={
                    name: self._breaker(name).state
                    for name in sorted(BACKENDS)
                },
                durability=self._durability_locked(),
            )

    def health(self) -> Dict[str, Any]:
        """Liveness + load snapshot for operators and the smoke job.

        ``breakers`` covers every registered backend keyed by name — a
        backend that never ran reports a pristine closed breaker, so a
        monitoring scrape sees the same shape regardless of traffic.
        """
        with self._work:
            breakers = {
                name: self._breaker(name).snapshot()
                for name in sorted(BACKENDS)
            }
            durability = self._durability_locked()
            degraded = (
                any(b["state"] != "closed" for b in breakers.values())
                or durability["mode"] == "degraded"
            )
            return {
                "status": (
                    "closed"
                    if self._closed
                    else "degraded" if degraded else "ok"
                ),
                "queue": {
                    "depth": self._queue.depth,
                    "queued": len(self._queue),
                    "per_tenant": self._queue.tenant_counts(),
                },
                "breakers": breakers,
                "durability": durability,
                "caches": {
                    tenant: cache.stats()
                    for tenant, cache in sorted(self._caches.items())
                },
                "counters": self.counters.as_dict(),
                "latency": {
                    name: recorder.summary()
                    for name, recorder in self.latency.items()
                },
            }


class AsyncFabricService:
    """Thin asyncio facade over :class:`FabricService`.

    The service's own concurrency lives in plain threads (dispatchers,
    the blocking fabric); this wrapper exposes the client API as
    coroutines via ``asyncio.to_thread`` so an async caller (or a future
    HTTP front end) never blocks its event loop. One wrapper per
    service; construct with an existing service or the same arguments.
    """

    def __init__(self, service: Optional[FabricService] = None, **kwargs: Any):
        self.service = service if service is not None else FabricService(**kwargs)

    async def submit_sweep(self, *args: Any, **kwargs: Any) -> str:
        import asyncio

        return await asyncio.to_thread(self.service.submit_sweep, *args, **kwargs)

    async def status(self, ticket: str) -> Dict[str, Any]:
        import asyncio

        return await asyncio.to_thread(self.service.status, ticket)

    async def results(self, ticket: str, timeout: Optional[float] = None) -> Any:
        import asyncio

        return await asyncio.to_thread(self.service.results, ticket, timeout)

    async def cancel(self, ticket: str) -> bool:
        import asyncio

        return await asyncio.to_thread(self.service.cancel, ticket)

    async def health(self) -> Dict[str, Any]:
        import asyncio

        return await asyncio.to_thread(self.service.health)

    async def close(self) -> None:
        import asyncio

        await asyncio.to_thread(self.service.close)

    async def __aenter__(self) -> "AsyncFabricService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
