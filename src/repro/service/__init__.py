"""Overload-safe, multi-tenant campaign service over the experiment fabric.

Public surface:

* :class:`FabricService` / :class:`AsyncFabricService` — submit_sweep /
  status / results / cancel / health / ready over the pluggable
  executor backends, with typed admission control.
* :class:`ServiceConfig` — operator knobs (queue depth, per-tenant
  rates, breaker thresholds, primary backend, degraded-fallback mode).
* :func:`tenant_cache` / :func:`validate_tenant` — per-tenant
  namespacing of the content-addressed result cache.
* :class:`TokenBucket` / :class:`AdmissionQueue` /
  :class:`CircuitBreaker` — the admission primitives, clock-injectable
  for deterministic tests.
* :class:`JournalTail` — monotone streaming progress from sweep
  journals.
* :class:`ServiceChaosPolicy` / :func:`flood_plan` /
  :func:`killed_policy` — deterministic service-level chaos scenarios.
"""

from repro.service.admission import AdmissionQueue, TokenBucket
from repro.service.breaker import CircuitBreaker
from repro.service.chaos import (
    FloodEntry,
    ServiceChaosPolicy,
    flood_plan,
    killed_policy,
)
from repro.service.core import (
    AsyncFabricService,
    FabricService,
    ReadyProbe,
    ServiceConfig,
    Submission,
)
from repro.service.progress import JournalTail
from repro.service.tenancy import (
    DEFAULT_TENANT,
    tenant_cache,
    tenant_cache_root,
    validate_tenant,
)

__all__ = [
    "AdmissionQueue",
    "AsyncFabricService",
    "CircuitBreaker",
    "DEFAULT_TENANT",
    "FabricService",
    "FloodEntry",
    "JournalTail",
    "ReadyProbe",
    "ServiceChaosPolicy",
    "ServiceConfig",
    "Submission",
    "TokenBucket",
    "flood_plan",
    "killed_policy",
    "tenant_cache",
    "tenant_cache_root",
    "validate_tenant",
]
