"""Overload-safe, multi-tenant campaign service over the experiment fabric.

Public surface:

* :class:`FabricService` / :class:`AsyncFabricService` — submit_sweep /
  status / results / cancel / health / ready over the pluggable
  executor backends, with typed admission control.
* :class:`ServiceConfig` — operator knobs (queue depth, per-tenant
  rates, breaker thresholds, primary backend, degraded-fallback mode).
* :func:`tenant_cache` / :func:`validate_tenant` — per-tenant
  namespacing of the content-addressed result cache.
* :class:`TokenBucket` / :class:`AdmissionQueue` /
  :class:`CircuitBreaker` — the admission primitives, clock-injectable
  for deterministic tests.
* :class:`JournalTail` — monotone streaming progress from sweep
  journals.
* :class:`ServiceChaosPolicy` / :func:`flood_plan` /
  :func:`killed_policy` / :class:`CrashingCache` — deterministic
  service-level chaos scenarios, including seed-addressed mid-sweep
  process crashes.
* :class:`StateLog` / :class:`ReplayResult` — the write-ahead state log
  behind ``--state-dir``: torn-tail-tolerant, integrity-checked,
  disk-fault-degrading crash recovery for accepted submissions.
* :class:`Supervisor` / :class:`SupervisorConfig` — the ``--supervise``
  watchdog: bounded-backoff restarts with crash-loop detection.
"""

from repro.service.admission import AdmissionQueue, TokenBucket
from repro.service.breaker import CircuitBreaker
from repro.service.chaos import (
    CrashingCache,
    FloodEntry,
    ServiceChaosPolicy,
    flood_plan,
    killed_policy,
)
from repro.service.core import (
    AsyncFabricService,
    FabricService,
    ReadyProbe,
    ServiceConfig,
    Submission,
)
from repro.service.progress import JournalTail
from repro.service.supervisor import Supervisor, SupervisorConfig
from repro.service.tenancy import (
    DEFAULT_TENANT,
    tenant_cache,
    tenant_cache_root,
    validate_tenant,
)
from repro.service.wal import ReplayResult, StateLog, replay_bytes

__all__ = [
    "AdmissionQueue",
    "AsyncFabricService",
    "CircuitBreaker",
    "CrashingCache",
    "DEFAULT_TENANT",
    "FabricService",
    "FloodEntry",
    "JournalTail",
    "ReadyProbe",
    "ReplayResult",
    "ServiceChaosPolicy",
    "ServiceConfig",
    "StateLog",
    "Submission",
    "Supervisor",
    "SupervisorConfig",
    "TokenBucket",
    "flood_plan",
    "killed_policy",
    "replay_bytes",
    "tenant_cache",
    "tenant_cache_root",
    "validate_tenant",
]
