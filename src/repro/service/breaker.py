"""Per-backend circuit breaker for the fabric service.

The parallel fabric already survives individual worker crashes and hung
jobs (retry budgets, pool supervision, serial fallback). The breaker
addresses the layer above: a backend that keeps producing *transient
infrastructure* failures (``WorkerCrashError`` / ``JobTimeoutError``)
across submissions is probably sick — a broken sandbox, an exhausted
cgroup — and every sweep routed at it pays the full
retry-and-degrade tax before recovering. Tripping the breaker routes
subsequent submissions straight to the in-process backend until the
cooldown expires, converting repeated slow-path recoveries into one
fast, observable decision.

Standard three-state machine, deterministic by construction:

* ``closed`` — normal; consecutive transient failures are counted and
  any success resets the count. ``threshold`` consecutive failures trip
  to ``open``.
* ``open`` — :meth:`allow` is False until ``cooldown_s`` has elapsed on
  the injected clock, then the breaker moves to ``half_open``.
* ``half_open`` — exactly one probe submission is allowed through; its
  success closes the breaker, its failure re-opens (restarting the
  cooldown). Further :meth:`allow` calls while the probe is in flight
  return False.

Only *transient* failures count: a job whose own code raises is a user
error, says nothing about backend health, and must never poison routing
for other tenants. Like the admission primitives, the breaker is
lock-free and clock-injected; the owning service serializes calls.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-transient-failure breaker with an injectable clock."""

    __slots__ = (
        "name",
        "threshold",
        "cooldown_s",
        "_time_fn",
        "_state",
        "_failures",
        "_opened_at",
        "_probing",
        "trips",
    )

    def __init__(
        self,
        name: str,
        threshold: int = 3,
        cooldown_s: float = 30.0,
        time_fn: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("breaker cooldown must be >= 0")
        self.name = name
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._time_fn = time_fn
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state, advancing ``open`` -> ``half_open`` on expiry."""
        if self._state == OPEN and self._opened_at is not None:
            if self._time_fn() - self._opened_at >= self.cooldown_s:
                self._state = HALF_OPEN
                self._probing = False
        return self._state

    def allow(self) -> bool:
        """May the next submission use this backend right now?"""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probing:
            self._probing = True  # exactly one probe per half-open window
            return True
        return False

    def record_success(self) -> None:
        self._state = CLOSED
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        """Count one transient infrastructure failure."""
        if self.state == HALF_OPEN:
            self._trip()  # failed probe: straight back to open
            return
        self._failures += 1
        if self._failures >= self.threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._time_fn()
        self._failures = 0
        self._probing = False
        self.trips += 1

    def retry_after(self) -> Optional[float]:
        """Seconds until the next probe could be allowed (None if now)."""
        if self.state != OPEN or self._opened_at is None:
            return None
        remaining = self.cooldown_s - (self._time_fn() - self._opened_at)
        return max(0.0, remaining)

    def snapshot(self) -> Dict[str, object]:
        return {
            "backend": self.name,
            "state": self.state,
            "consecutive_failures": self._failures,
            "trips": self.trips,
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name}: {self.state}, "
            f"failures={self._failures}, trips={self.trips})"
        )
