"""Watchdog supervision for a crashy ``--serve`` process.

The durable service (``wal.py``) guarantees that a SIGKILLed service
loses no accepted work — but something still has to restart it. This
module is that something: a small, dependency-free supervisor loop that
respawns a crashed child with bounded exponential backoff, detects
crash loops (too many crashes inside a sliding window), and gives up
with ``EX_TEMPFAIL`` (75) once the restart budget is spent — the same
"transient, retry later" exit code the runner already uses for
exhausted retry budgets, so orchestrators treat a crash-looping service
and a flaky fabric identically.

Policy, all injectable for deterministic tests:

* A *crash* is a signal death (negative returncode from ``subprocess``)
  or the shell-reported equivalents (128+signum: 134/137/139). Clean
  exits — including nonzero ones like usage errors (2) or interrupts
  (130) — propagate immediately: restarting a process that *chose* to
  exit only hides the reason it chose to.
* Backoff between restarts is ``min(cap, base * 2**n)`` where ``n``
  counts restarts so far — bounded so a long-lived flaky service does
  not drift to hour-long gaps.
* Crash-loop detection is window-based, not lifetime-based: only
  crashes inside the trailing ``crash_window_s`` count against
  ``max_restarts``, so a service that crashes once a day runs forever
  while one that dies five times in five minutes is declared looping.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

logger = logging.getLogger(__name__)

# sysexits.h EX_TEMPFAIL, matching repro.harness.runner.EX_TEMPFAIL.
EX_TEMPFAIL = 75

# Shell-style 128+signum codes that mean "killed by signal" when the
# child was run through a layer that swallows negative returncodes.
_SIGNAL_EXIT_CODES = frozenset({134, 137, 139})  # SIGABRT, SIGKILL, SIGSEGV


def is_crash(returncode: int) -> bool:
    """Did this exit code indicate a signal death worth restarting?"""
    return returncode < 0 or returncode in _SIGNAL_EXIT_CODES


@dataclass(frozen=True)
class SupervisorConfig:
    """Restart policy knobs.

    ``max_restarts`` is the number of *restarts* granted per crash
    window: the (N+1)-th crash inside ``crash_window_s`` exceeds a
    budget of N and stops the loop with :data:`EX_TEMPFAIL`.
    """

    max_restarts: int = 5
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 30.0
    crash_window_s: float = 300.0

    def backoff_s(self, restarts_so_far: int) -> float:
        """Bounded exponential delay before restart number N+1."""
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * (2.0 ** restarts_so_far),
        )


class Supervisor:
    """Respawn a crashing child until it exits cleanly or loops.

    ``spawn`` runs one child to completion and returns its returncode
    (negative for signal deaths, per ``subprocess``). ``sleep_fn`` and
    ``time_fn`` are injectable so tests drive the whole policy — backoff
    schedule, window pruning, budget exhaustion — without waiting.
    """

    def __init__(
        self,
        spawn: Callable[[], int],
        config: Optional[SupervisorConfig] = None,
        sleep_fn: Callable[[float], None] = time.sleep,
        time_fn: Callable[[], float] = time.monotonic,
    ):
        self._spawn = spawn
        self.config = config or SupervisorConfig()
        self._sleep = sleep_fn
        self._time = time_fn
        self.restarts = 0
        self._crash_times: Deque[float] = deque()

    def _crashes_in_window(self, now: float) -> int:
        cutoff = now - self.config.crash_window_s
        while self._crash_times and self._crash_times[0] < cutoff:
            self._crash_times.popleft()
        return len(self._crash_times)

    def run(self) -> int:
        """Supervise until a clean exit or a spent restart budget."""
        while True:
            returncode = self._spawn()
            if not is_crash(returncode):
                if self.restarts:
                    logger.info(
                        "supervised service exited %d after %d restart(s)",
                        returncode,
                        self.restarts,
                    )
                return returncode
            now = self._time()
            self._crash_times.append(now)
            if self._crashes_in_window(now) > self.config.max_restarts:
                logger.error(
                    "supervised service crash-looping: %d crashes within "
                    "%.0fs exceeds restart budget %d -- giving up (exit %d)",
                    len(self._crash_times),
                    self.config.crash_window_s,
                    self.config.max_restarts,
                    EX_TEMPFAIL,
                )
                return EX_TEMPFAIL
            delay = self.config.backoff_s(self.restarts)
            self.restarts += 1
            logger.warning(
                "supervised service crashed (returncode %d); restart %d/%d "
                "in %.2fs",
                returncode,
                self.restarts,
                self.config.max_restarts,
                delay,
            )
            if delay > 0:
                self._sleep(delay)
