"""Deterministic chaos at the service layer.

:mod:`repro.harness.chaos` proves the *fabric* absorbs worker kills and
cache corruption without changing bytes. This module lifts the same
discipline one layer up, to the overload machinery: seeded submission
floods, backend kills mid-campaign and greedy tenants, all derived from
the shared :func:`~repro.faults.inject.deterministic_fraction`
primitive so a scenario replays identically on every run.

The harness contract, enforced by ``tests/test_service.py`` and the
service bench: under any seeded scenario, every *accepted* submission
completes with results byte-identical to a quiet serial run of the same
jobs, and every *rejected* submission fails fast with a typed
:class:`~repro.common.errors.AdmissionRejected` — never a hang, never a
silent drop, never cross-tenant contamination.

Pieces:

* :class:`ServiceChaosPolicy` — per-submission verdicts (is this
  submission's backend execution killed?) from ``(seed, channel,
  submission key)``.
* :func:`flood_plan` — a deterministic interleaved submission order for
  N tenants × M sweeps each (plus an optional greedy tenant submitting
  extra), shuffled by seed, not by wall clock.
* :func:`killed_policy` — the :class:`ExecutionPolicy` a chaos-killed
  submission carries: kill-probability 1 with a zero retry budget, so
  the primary backend deterministically reports a transient
  infrastructure failure and the service's breaker/degradation path —
  not the fabric's internal retry — must save the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.faults.inject import deterministic_fraction
from repro.harness.chaos import ChaosPolicy
from repro.harness.parallel import ExecutionPolicy

KILL_CHANNEL = "service-kill"
ORDER_CHANNEL = "service-order"


@dataclass(frozen=True)
class ServiceChaosPolicy:
    """Seeded per-submission fault verdicts for service scenarios."""

    seed: int = 0
    kill_backend: float = 0.0

    def backend_killed(self, submission_key: str) -> bool:
        """Is this submission's primary-backend execution chaos-killed?"""
        if self.kill_backend <= 0.0:
            return False
        return (
            deterministic_fraction(self.seed, KILL_CHANNEL, submission_key)
            < self.kill_backend
        )


@dataclass(frozen=True)
class FloodEntry:
    """One planned submission in a flood scenario."""

    tenant: str
    index: int
    killed: bool = False

    @property
    def key(self) -> str:
        return f"{self.tenant}:{self.index}"


def flood_plan(
    policy: ServiceChaosPolicy,
    tenants: Sequence[str],
    per_tenant: int,
    greedy_tenant: str = "",
    greedy_extra: int = 0,
) -> List[FloodEntry]:
    """A deterministic interleaved submission order for a flood.

    Each tenant contributes ``per_tenant`` submissions; ``greedy_tenant``
    (if set) contributes ``greedy_extra`` more — the overload source in
    fairness scenarios. Ordering is a seed-keyed shuffle (sort by the
    deterministic fraction of each entry's key), so the arrival pattern
    is adversarially interleaved yet identical on every run; each
    entry's ``killed`` verdict is pre-resolved from the same seed.
    """
    entries: List[FloodEntry] = []
    for tenant in tenants:
        for index in range(per_tenant):
            key = f"{tenant}:{index}"
            entries.append(
                FloodEntry(tenant, index, killed=policy.backend_killed(key))
            )
    for index in range(per_tenant, per_tenant + greedy_extra):
        key = f"{greedy_tenant}:{index}"
        entries.append(
            FloodEntry(greedy_tenant, index, killed=policy.backend_killed(key))
        )
    entries.sort(
        key=lambda e: (
            deterministic_fraction(policy.seed, ORDER_CHANNEL, e.key),
            e.key,
        )
    )
    return entries


def killed_policy(seed: int, timeout_s=None) -> ExecutionPolicy:
    """The policy a chaos-killed submission runs under.

    ``kill=1.0`` with ``retries=0`` means the first (and only) attempt
    on any carrier-based backend fails transiently and the retry budget
    is already spent — the fabric surfaces
    :class:`RetryBudgetExceededError` (cause: ``WorkerCrashError``)
    instead of recovering internally. Backoffs are zeroed: the failure
    is deterministic, waiting would only slow the test. The in-process
    backend has no carrier to kill, which is exactly why the service's
    degraded rerun succeeds and the accepted-work guarantee holds.
    """
    return ExecutionPolicy(
        timeout_s=timeout_s,
        retries=0,
        backoff_base_s=0.0,
        backoff_cap_s=0.0,
        chaos=ChaosPolicy(seed=seed, kill=1.0),
    )
