"""Deterministic chaos at the service layer.

:mod:`repro.harness.chaos` proves the *fabric* absorbs worker kills and
cache corruption without changing bytes. This module lifts the same
discipline one layer up, to the overload machinery: seeded submission
floods, backend kills mid-campaign and greedy tenants, all derived from
the shared :func:`~repro.faults.inject.deterministic_fraction`
primitive so a scenario replays identically on every run.

The harness contract, enforced by ``tests/test_service.py`` and the
service bench: under any seeded scenario, every *accepted* submission
completes with results byte-identical to a quiet serial run of the same
jobs, and every *rejected* submission fails fast with a typed
:class:`~repro.common.errors.AdmissionRejected` — never a hang, never a
silent drop, never cross-tenant contamination.

Pieces:

* :class:`ServiceChaosPolicy` — per-submission verdicts (is this
  submission's backend execution killed? does the whole *service
  process* crash mid-sweep, and after how many cells?) from ``(seed,
  channel, submission key)``.
* :func:`flood_plan` — a deterministic interleaved submission order for
  N tenants × M sweeps each (plus an optional greedy tenant submitting
  extra), shuffled by seed, not by wall clock.
* :func:`killed_policy` — the :class:`ExecutionPolicy` a chaos-killed
  submission carries: kill-probability 1 with a zero retry budget, so
  the primary backend deterministically reports a transient
  infrastructure failure and the service's breaker/degradation path —
  not the fabric's internal retry — must save the run.
* :class:`CrashingCache` — the ``crash`` channel's trigger: a cache
  proxy that fires a crash callback (SIGKILL by default) after the
  seed-addressed Nth write-through, so the process dies *between*
  durable cell completions — the exact window the WAL + journal
  recovery path must survive.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.faults.inject import deterministic_fraction
from repro.harness.chaos import ChaosPolicy
from repro.harness.parallel import ExecutionPolicy

KILL_CHANNEL = "service-kill"
ORDER_CHANNEL = "service-order"
CRASH_CHANNEL = "service-crash"
CRASH_POINT_CHANNEL = "service-crash-point"

# When a submission's cell count is unknown up front (experiment
# submissions size themselves), the crash point is drawn from this
# small fixed range instead: late enough that recovery has cached cells
# to adopt, early enough that work is genuinely left to recompute.
_FALLBACK_POINT_RANGE = (2, 5)


@dataclass(frozen=True)
class ServiceChaosPolicy:
    """Seeded per-submission fault verdicts for service scenarios."""

    seed: int = 0
    kill_backend: float = 0.0
    crash: float = 0.0

    def backend_killed(self, submission_key: str) -> bool:
        """Is this submission's primary-backend execution chaos-killed?"""
        if self.kill_backend <= 0.0:
            return False
        return (
            deterministic_fraction(self.seed, KILL_CHANNEL, submission_key)
            < self.kill_backend
        )

    def crash_point(
        self, submission_key: str, total_cells: Optional[int] = None
    ) -> Optional[int]:
        """After how many cache write-throughs does the service die?

        None when the ``crash`` channel does not fire for this
        submission. Otherwise a count in ``[1, total_cells]`` (or the
        fallback range when the cell count is unknown), derived from a
        second channel over the same seed so verdict and point are
        independent draws. Deterministic: the same submission key
        crashes at the same cell on every run, which is what makes the
        crash-restart byte-identity test repeatable.
        """
        if self.crash <= 0.0:
            return None
        verdict = deterministic_fraction(self.seed, CRASH_CHANNEL, submission_key)
        if verdict >= self.crash:
            return None
        fraction = deterministic_fraction(
            self.seed, CRASH_POINT_CHANNEL, submission_key
        )
        if total_cells is not None and total_cells > 0:
            return 1 + int(fraction * max(0, total_cells - 1))
        low, high = _FALLBACK_POINT_RANGE
        return low + int(fraction * (high - low + 1))

    @classmethod
    def from_spec(cls, spec: str) -> "ServiceChaosPolicy":
        """Parse ``seed=7,kill_backend=0.3,crash=1.0``.

        Same grammar as :meth:`ChaosPolicy.from_spec` one layer down:
        comma-separated ``name=value``, probabilities validated to
        [0, 1], unknown fields rejected.
        """
        values: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, separator, raw = part.partition("=")
            name, raw = name.strip(), raw.strip()
            if not separator or not raw:
                raise ValueError(
                    f"bad service chaos field {part!r} (want name=value)"
                )
            if name == "seed":
                values["seed"] = int(raw)
            elif name in ("kill_backend", "crash"):
                probability = float(raw)
                if not 0.0 <= probability <= 1.0:
                    raise ValueError(
                        f"{name} probability {probability} outside [0, 1]"
                    )
                values[name] = probability
            else:
                raise ValueError(f"unknown service chaos field {name!r}")
        return cls(**values)


def default_crash_fn() -> None:
    """Die the way a real crash does: SIGKILL, no cleanup, no atexit."""
    os.kill(os.getpid(), signal.SIGKILL)


class CrashingCache:
    """Cache proxy that crashes the process at the Nth write-through.

    Wraps a tenant's :class:`~repro.harness.parallel.ResultCache`;
    every attribute is delegated, but :meth:`put` counts completed
    write-throughs and fires ``crash_fn`` *after* the Nth entry lands
    on disk — i.e. after the cell is durably cached but before its
    ``job_done`` journal record is appended. That is the nastiest
    legal crash window (cached-but-unjournaled), and recovery must
    treat it as at worst one redundant cache probe, never a duplicated
    computation or a changed byte.

    Because each crashed attempt completes ``crash_point`` more cells
    than the last restart had cached, supervised restarts make strict
    progress and converge even at ``crash=1.0``.
    """

    def __init__(
        self,
        inner,
        crash_after: int,
        crash_fn: Callable[[], None] = default_crash_fn,
    ):
        self._inner = inner
        self._crash_after = max(1, crash_after)
        self._crash_fn = crash_fn
        self.puts = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def put(self, job, payload):
        result = self._inner.put(job, payload)
        self.puts += 1
        if self.puts >= self._crash_after:
            self._crash_fn()
        return result


@dataclass(frozen=True)
class FloodEntry:
    """One planned submission in a flood scenario."""

    tenant: str
    index: int
    killed: bool = False

    @property
    def key(self) -> str:
        return f"{self.tenant}:{self.index}"


def flood_plan(
    policy: ServiceChaosPolicy,
    tenants: Sequence[str],
    per_tenant: int,
    greedy_tenant: str = "",
    greedy_extra: int = 0,
) -> List[FloodEntry]:
    """A deterministic interleaved submission order for a flood.

    Each tenant contributes ``per_tenant`` submissions; ``greedy_tenant``
    (if set) contributes ``greedy_extra`` more — the overload source in
    fairness scenarios. Ordering is a seed-keyed shuffle (sort by the
    deterministic fraction of each entry's key), so the arrival pattern
    is adversarially interleaved yet identical on every run; each
    entry's ``killed`` verdict is pre-resolved from the same seed.
    """
    entries: List[FloodEntry] = []
    for tenant in tenants:
        for index in range(per_tenant):
            key = f"{tenant}:{index}"
            entries.append(
                FloodEntry(tenant, index, killed=policy.backend_killed(key))
            )
    for index in range(per_tenant, per_tenant + greedy_extra):
        key = f"{greedy_tenant}:{index}"
        entries.append(
            FloodEntry(greedy_tenant, index, killed=policy.backend_killed(key))
        )
    entries.sort(
        key=lambda e: (
            deterministic_fraction(policy.seed, ORDER_CHANNEL, e.key),
            e.key,
        )
    )
    return entries


def killed_policy(seed: int, timeout_s=None) -> ExecutionPolicy:
    """The policy a chaos-killed submission runs under.

    ``kill=1.0`` with ``retries=0`` means the first (and only) attempt
    on any carrier-based backend fails transiently and the retry budget
    is already spent — the fabric surfaces
    :class:`RetryBudgetExceededError` (cause: ``WorkerCrashError``)
    instead of recovering internally. Backoffs are zeroed: the failure
    is deterministic, waiting would only slow the test. The in-process
    backend has no carrier to kill, which is exactly why the service's
    degraded rerun succeeds and the accepted-work guarantee holds.
    """
    return ExecutionPolicy(
        timeout_s=timeout_s,
        retries=0,
        backoff_base_s=0.0,
        backoff_cap_s=0.0,
        chaos=ChaosPolicy(seed=seed, kill=1.0),
    )
