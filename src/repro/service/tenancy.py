"""Per-tenant namespacing of the content-addressed result cache.

Every tenant gets a private subtree of the service's cache root:
``<root>/tenants/<tenant>/`` — its own sha256-addressed entries, its own
``journals/`` and its own ``quarantine/``. Job keys are a pure function
of the job (tenant-independent), so two tenants submitting the same
sweep produce entries at *distinct paths* with *identical payload
digests* — isolation without forking the determinism argument. Nothing
a tenant writes is reachable from another tenant's lookups, and a
corrupt entry quarantines inside the owning tenant's subtree only.

Tenant identifiers are restricted to a filesystem-safe alphabet so a
tenant name can never escape its subtree (``../``, separators and
anything non-portable are rejected at admission, not sanitised into
collisions).
"""

from __future__ import annotations

import pathlib
import re
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.harness.parallel import ResultCache, default_cache_dir

DEFAULT_TENANT = "default"

# Portable, non-traversable, non-empty, bounded. A dot is allowed but a
# leading dot is not (hidden dirs / "." / ".." are all excluded).
_TENANT_PATTERN = re.compile(r"^[A-Za-z0-9_-][A-Za-z0-9._-]{0,63}$")


def validate_tenant(tenant: str) -> str:
    """Return ``tenant`` if it is a safe identifier, else raise.

    Raised as :class:`ConfigurationError` (a caller mistake, not an
    overload condition) with the accepted grammar in the message.
    """
    if not isinstance(tenant, str) or not _TENANT_PATTERN.match(tenant):
        raise ConfigurationError(
            f"invalid tenant id {tenant!r}: want 1-64 chars of "
            "[A-Za-z0-9._-], not starting with a dot"
        )
    return tenant


def tenant_cache_root(root: pathlib.Path, tenant: str) -> pathlib.Path:
    """The private cache subtree for ``tenant`` under service root ``root``."""
    return pathlib.Path(root) / "tenants" / validate_tenant(tenant)


def tenant_cache(
    root: Optional[pathlib.Path],
    tenant: str,
    quarantine_limit: Optional[int] = None,
) -> ResultCache:
    """A :class:`ResultCache` namespaced to ``tenant``.

    ``root`` is the *service* cache root (default:
    :func:`repro.harness.parallel.default_cache_dir`); the returned
    cache lives entirely under ``<root>/tenants/<tenant>/``.
    """
    base = pathlib.Path(root) if root is not None else default_cache_dir()
    return ResultCache(
        tenant_cache_root(base, tenant), quarantine_limit=quarantine_limit
    )
