"""Streaming progress from sweep journals.

The fabric already writes an append-only JSONL journal per sweep
(:class:`repro.harness.parallel.SweepJournal`): ``sweep_start``, one
``job_done`` per completed cell, ``sweep_complete``. The service
streams *live* progress to clients by tailing that file — no second
progress channel to keep consistent, no writer-side changes, and the
stream inherits the journal's crash story.

:class:`JournalTail` is an incremental reader with one invariant: the
sequence of records it has yielded is always a *monotonically growing
prefix* of the journal. It remembers a byte offset and, on each
:meth:`poll`, consumes only complete, newline-terminated, parseable
lines past that offset. A torn tail — a partial line mid-append, or a
line written but not yet newline-terminated — is left *unconsumed* (the
offset does not advance past it), so the next poll re-reads it once the
writer finishes. Records are therefore never yielded twice, never
skipped, and never yielded torn, even while the writer is appending
concurrently under any ``REPRO_JOURNAL_FLUSH`` batching.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional


class JournalTail:
    """Incremental reader over one sweep journal file."""

    def __init__(self, path: pathlib.Path):
        self.path = pathlib.Path(path)
        self.offset = 0
        self.records: List[Dict[str, Any]] = []

    def poll(self) -> List[Dict[str, Any]]:
        """Return records appended since the last poll (possibly empty).

        Only complete, parseable lines are consumed; the offset stops at
        the first torn/unterminated line so a concurrent append is
        picked up whole on a later poll. A journal that does not exist
        yet (sweep not started) is simply an empty poll.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset)
                data = handle.read()
        except OSError:
            return []

        fresh: List[Dict[str, Any]] = []
        consumed = 0
        while True:
            newline = data.find(b"\n", consumed)
            if newline < 0:
                break  # unterminated tail: leave for the next poll
            line = data[consumed : newline]
            stripped = line.strip()
            if stripped:
                try:
                    fresh.append(json.loads(stripped.decode("utf-8")))
                except (ValueError, UnicodeDecodeError):
                    # A terminated-but-garbled line can only be a torn
                    # write racing us; stop here and re-read next poll.
                    break
            consumed = newline + 1

        self.offset += consumed
        self.records.extend(fresh)
        return fresh

    # -- cumulative views over everything polled so far -------------------

    def completed(self) -> int:
        """Cells finished so far (``job_done`` records seen)."""
        return sum(1 for r in self.records if r.get("event") == "job_done")

    def total(self) -> Optional[int]:
        """Total cells in the sweep, once ``sweep_start`` has been seen."""
        for record in self.records:
            if record.get("event") == "sweep_start":
                return record.get("jobs")
        return None

    def done(self) -> bool:
        """True once ``sweep_complete`` has been seen."""
        return any(r.get("event") == "sweep_complete" for r in self.records)

    def progress(self) -> Dict[str, Any]:
        """One-line progress summary (polls first)."""
        self.poll()
        return {
            "completed": self.completed(),
            "total": self.total(),
            "done": self.done(),
        }
