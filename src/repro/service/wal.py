"""Write-ahead state log for the durable fabric service.

The fabric already survives the death of a *sweep*: completed cells are
written through to the content-addressed cache and journaled as they
finish, so ``--resume`` recomputes only the missing cells. What dies
with the process is the layer above — which submissions were accepted,
which tickets were issued, which tenants own them and how far each got.
:class:`StateLog` makes that state as crash-tolerant as the cells:
every service-visible transition (accept, dispatch, shed, cancel,
completion) is appended here *before* it is acknowledged, so a
restarted service replays the log, re-issues the same tickets and
re-adopts in-flight sweeps from their journals and cache entries.

Format and failure discipline, in the same idiom as the sweep journal
and :class:`~repro.service.progress.JournalTail`:

* **Records are JSONL with per-record integrity.** Each line is
  ``{"rec": <body>, "sha": <digest>}`` where ``sha`` is a truncated
  SHA-256 over the canonical JSON of the body. A flipped bit on disk is
  *detected*, never trusted.
* **Torn tails are expected, not fatal.** A crash mid-append leaves at
  worst one unterminated line; :func:`replay_bytes` stops consuming at
  the first torn tail, so the replayed state is always a *monotone
  prefix* of what was logged (the property test in
  ``tests/test_wal.py`` proves this for arbitrary truncation points).
* **Corrupt records are quarantined and skipped.** A terminated line
  whose digest does not verify (bit rot, a partially overwritten
  sector) is copied to ``<log>.quarantine`` for post-mortem and
  replay continues with the next record — the same
  detect/quarantine/degrade discipline the result cache applies to its
  entries.
* **Disk faults degrade, never crash.** ENOSPC/EIO on append marks the
  log ``degraded`` (warn-once, counted); the service keeps running
  memory-only and surfaces ``durability: degraded`` in ``health()`` /
  ``ready()`` instead of turning a full disk into an outage.
* **fsync is batched like the journal.** Every append is flushed;
  fsync happens at least every ``REPRO_WAL_FLUSH`` appends (default 1:
  a record is durable before the call that logged it returns, which is
  what "logged before acknowledged" means; raising it trades a bounded
  acknowledged-but-lost tail for throughput, exactly the
  ``REPRO_JOURNAL_FLUSH`` trade).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

logger = logging.getLogger(__name__)

# Bumped when the record encoding changes incompatibly; replay ignores
# records from other schema versions rather than misreading them.
WAL_SCHEMA_VERSION = 1

# Truncated SHA-256 hex digits per record. 16 hex chars = 64 bits:
# plenty to detect corruption (this is an integrity check against bit
# rot, not an adversarial MAC — the threat model is a dying disk).
_DIGEST_CHARS = 16


def wal_flush_interval(default: int = 1) -> int:
    """fsync cadence for the state log from ``REPRO_WAL_FLUSH``.

    Default 1: every record is fsynced before the append returns, so an
    acknowledged transition is durable. Values above 1 batch fsyncs
    (bounded acknowledged-but-lost tail after a crash); unset or
    unparsable values fall back to ``default``; values below 1 clamp
    to 1.
    """
    raw = os.environ.get("REPRO_WAL_FLUSH")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return max(1, value)


def _body_digest(body: Mapping[str, Any]) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:_DIGEST_CHARS]


def encode_record(record: Mapping[str, Any]) -> str:
    """One WAL line (newline-terminated) for ``record``.

    The body rides next to a truncated SHA-256 of its canonical JSON;
    :func:`decode_record` refuses any line whose digest does not
    re-derive, which is what lets replay distinguish "corrupt" from
    "merely torn".
    """
    body = {"v": WAL_SCHEMA_VERSION, **record}
    return (
        json.dumps(
            {"rec": body, "sha": _body_digest(body)},
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
    )


def decode_record(line: str) -> Optional[Dict[str, Any]]:
    """The record encoded in ``line``, or None if it does not verify.

    None covers every way a line can be wrong — unparsable JSON, a
    missing envelope field, a digest mismatch, a foreign schema
    version — because replay treats them all the same way: quarantine
    and skip.
    """
    try:
        envelope = json.loads(line)
        body = envelope["rec"]
        digest = envelope["sha"]
    except (ValueError, KeyError, TypeError):
        return None
    if not isinstance(body, dict) or not isinstance(digest, str):
        return None
    if body.get("v") != WAL_SCHEMA_VERSION:
        return None
    if _body_digest(body) != digest:
        return None
    record = dict(body)
    record.pop("v")
    return record


@dataclass
class ReplayResult:
    """What :func:`replay_bytes` recovered from a log image."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    torn: bool = False

    @property
    def clean(self) -> bool:
        return not self.quarantined and not self.torn


def replay_bytes(data: bytes) -> ReplayResult:
    """Replay a WAL image: verified records in order, damage accounted.

    Complete lines that verify are yielded in order; complete lines
    that do not verify are quarantined and *skipped* (replay
    continues); an unterminated final line is a torn tail from a crash
    mid-append and is dropped. Pure truncation therefore always yields
    an exact prefix of the appended records — the monotone-prefix
    invariant the recovery path is built on.
    """
    result = ReplayResult()
    consumed = 0
    while True:
        newline = data.find(b"\n", consumed)
        if newline < 0:
            result.torn = consumed < len(data)
            break
        raw = data[consumed : newline + 1]
        consumed = newline + 1
        stripped = raw.strip()
        if not stripped:
            continue
        try:
            line = stripped.decode("utf-8")
        except UnicodeDecodeError:
            result.quarantined.append(repr(stripped))
            continue
        record = decode_record(line)
        if record is None:
            result.quarantined.append(line)
        else:
            result.records.append(record)
    return result


class StateLog:
    """Append-only, fsync-batched, damage-tolerant service state log.

    One file (``service.wal`` under the service's ``--state-dir``);
    :meth:`append` never raises — a disk fault (ENOSPC, EIO, a path
    that cannot be created) flips the log to ``degraded`` with one
    warning and every later append becomes a counted no-op, so the
    service it backs keeps serving memory-only.
    """

    def __init__(
        self,
        path: pathlib.Path,
        fsync_interval: Optional[int] = None,
    ):
        self.path = pathlib.Path(path)
        self.fsync_interval = (
            wal_flush_interval() if fsync_interval is None else max(1, fsync_interval)
        )
        self.degraded = False
        self.write_errors = 0
        self.records_written = 0
        self._handle = None
        self._unsynced = 0
        self._warned = False

    # -- writing -----------------------------------------------------------

    def _fail(self, exc: OSError, what: str) -> None:
        self.write_errors += 1
        if not self._warned:
            self._warned = True
            logger.warning(
                "state log %s failed (%s: %s) -- degrading to memory-only "
                "durability; submissions keep running but will not survive "
                "a crash until the disk recovers",
                what,
                type(exc).__name__,
                exc,
            )
        self.degraded = True
        if self._handle is not None:
            with contextlib.suppress(OSError):
                self._handle.close()
            self._handle = None

    def append(self, record: Mapping[str, Any]) -> bool:
        """Log one record; True when it reached the file.

        False means the log is (now) degraded; the caller's state
        transition still happens — durability, not liveness, is what
        was lost.
        """
        if self.degraded:
            self.write_errors += 1
            return False
        line = encode_record(record)
        try:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()
            self._unsynced += 1
            if self._unsynced >= self.fsync_interval:
                self.sync()
        except OSError as exc:
            self._fail(exc, "append")
            return False
        self.records_written += 1
        return True

    def sync(self) -> None:
        if self._handle is not None and self._unsynced:
            try:
                os.fsync(self._handle.fileno())
            except OSError as exc:
                self._fail(exc, "fsync")
                return
        self._unsynced = 0

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            with contextlib.suppress(OSError):
                self._handle.close()
            self._handle = None

    # -- replay ------------------------------------------------------------

    def replay(self) -> ReplayResult:
        """Recover the log from disk; quarantine damaged lines.

        A missing file is an empty (clean) replay — first boot. Corrupt
        lines are appended to ``<log>.quarantine`` best-effort so the
        evidence survives the skip, mirroring the result cache's
        quarantine directory.
        """
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return ReplayResult()
        except OSError as exc:
            self._fail(exc, "replay read")
            return ReplayResult()
        result = replay_bytes(data)
        if result.quarantined:
            logger.warning(
                "state log %s: %d corrupt record(s) quarantined and "
                "skipped during replay",
                self.path,
                len(result.quarantined),
            )
            with contextlib.suppress(OSError):
                with open(
                    self.path.with_suffix(".quarantine"), "a", encoding="utf-8"
                ) as handle:
                    for line in result.quarantined:
                        handle.write(line + "\n")
        return result

    def compact(self, records: List[Mapping[str, Any]]) -> None:
        """Atomically rewrite the log as exactly ``records``.

        Used after replay to coalesce a long transition history into
        one accept + latest-state pair per ticket, bounding log growth
        across restarts. Atomic (tmp + rename) like every cache write;
        a failure degrades instead of raising, leaving the old log —
        which replays identically — in place.
        """
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(encode_record(record))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            with contextlib.suppress(OSError):
                tmp.unlink()
            self._fail(exc, "compact")

    def stats(self) -> Dict[str, int]:
        return {
            "records_written": self.records_written,
            "write_errors": self.write_errors,
            "fsync_interval": self.fsync_interval,
        }
