"""Shared utilities: bit manipulation, configuration, errors, statistics."""

from repro.common.bitops import (
    bit,
    bits,
    clear_bits,
    extract_bits,
    hamming_distance,
    insert_bits,
    mask,
    popcount,
)
from repro.common.config import (
    CacheConfig,
    DRAMTimingConfig,
    SystemConfig,
    default_system_config,
)
from repro.common.errors import (
    AllocationError,
    ConfigurationError,
    IntegrityError,
    PTGuardError,
    PageFaultError,
    TranslationError,
)
from repro.common.stats import StatCounter, StatGroup

__all__ = [
    "bit",
    "bits",
    "clear_bits",
    "extract_bits",
    "hamming_distance",
    "insert_bits",
    "mask",
    "popcount",
    "CacheConfig",
    "DRAMTimingConfig",
    "SystemConfig",
    "default_system_config",
    "AllocationError",
    "ConfigurationError",
    "IntegrityError",
    "PTGuardError",
    "PageFaultError",
    "TranslationError",
    "StatCounter",
    "StatGroup",
]
