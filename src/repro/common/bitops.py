"""Bit-manipulation helpers used throughout the simulator.

All routines operate on arbitrary-precision Python integers interpreted as
fixed-width little-endian bit vectors (bit 0 is the least-significant bit),
matching how the x86_64 and ARMv8 manuals number PTE bits.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return an integer with the ``width`` lowest bits set.

    >>> hex(mask(12))
    '0xfff'
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, position: int) -> int:
    """Return bit ``position`` of ``value`` (0 or 1)."""
    return (value >> position) & 1


def bits(value: int, high: int, low: int) -> int:
    """Return the inclusive bit-field ``value[high:low]``.

    Follows the hardware-manual convention where both bounds are inclusive
    and ``high >= low``: ``bits(0xABCD, 15, 12) == 0xA``.
    """
    if high < low:
        raise ValueError(f"invalid bit range [{high}:{low}]")
    return (value >> low) & mask(high - low + 1)


def extract_bits(value: int, high: int, low: int) -> int:
    """Alias of :func:`bits`, kept for call-site readability."""
    return bits(value, high, low)


def insert_bits(value: int, high: int, low: int, field: int) -> int:
    """Return ``value`` with the inclusive field ``[high:low]`` set to ``field``.

    Bits of ``field`` above the field width are rejected, which catches
    accidental truncation at the call site.
    """
    width = high - low + 1
    if high < low:
        raise ValueError(f"invalid bit range [{high}:{low}]")
    if field >> width:
        raise ValueError(
            f"field {field:#x} does not fit in [{high}:{low}] ({width} bits)"
        )
    cleared = value & ~(mask(width) << low)
    return cleared | (field << low)


def clear_bits(value: int, high: int, low: int) -> int:
    """Return ``value`` with the inclusive field ``[high:low]`` zeroed."""
    return insert_bits(value, high, low, 0)


def popcount(value: int) -> int:
    """Return the number of set bits in ``value``."""
    return value.bit_count()


def hamming_distance(a: int, b: int) -> int:
    """Return the Hamming distance between two integers."""
    return (a ^ b).bit_count()


def bytes_to_int(data: bytes) -> int:
    """Interpret ``data`` as a little-endian unsigned integer."""
    return int.from_bytes(data, "little")


def int_to_bytes(value: int, length: int) -> bytes:
    """Encode ``value`` as ``length`` little-endian bytes."""
    return value.to_bytes(length, "little")


def rotl(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` left by ``amount`` within ``width`` bits."""
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def rotr(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` right by ``amount`` within ``width`` bits."""
    return rotl(value, width - (amount % width), width)


def flip_bit(value: int, position: int) -> int:
    """Return ``value`` with bit ``position`` inverted."""
    return value ^ (1 << position)


def is_pow2(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of ``value``, requiring it to be a power of two."""
    if not is_pow2(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1
