"""Lightweight statistics counters for simulator components.

Each component owns a :class:`StatGroup`; counters are created lazily and
render to plain dictionaries for reporting, so benchmark harnesses can diff
baseline and protected runs without knowing component internals.

``StatGroup`` is on the per-access hot path of every simulated component
(caches, controller, guard, walker), so counters are stored as a plain
``dict`` of ints and :meth:`StatGroup.increment` is a single dict update —
no per-counter objects are allocated. :class:`StatCounter` remains as a
handle for callers that want an object-style counter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator


@dataclass
class StatCounter:
    """A named monotonic counter (standalone object form)."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"StatCounter({self.name}={self.value})"


class _BoundCounter:
    """A live view onto one named counter of a :class:`StatGroup`."""

    __slots__ = ("name", "_counters")

    def __init__(self, name: str, counters: Dict[str, int]):
        self.name = name
        self._counters = counters

    @property
    def value(self) -> int:
        return self._counters.get(self.name, 0)

    def increment(self, amount: int = 1) -> None:
        counters = self._counters
        try:
            counters[self.name] += amount
        except KeyError:
            counters[self.name] = amount

    def reset(self) -> None:
        self._counters[self.name] = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"StatCounter({self.name}={self.value})"


class StatGroup:
    """A named collection of counters, created on first increment.

    Counters live in a plain ``Dict[str, int]`` so the hot-path operations
    (:meth:`increment`, :meth:`get`) are bare dict accesses.
    """

    __slots__ = ("name", "_counters")

    def __init__(self, name: str):
        self.name = name
        self._counters: Dict[str, int] = {}

    def counter(self, name: str) -> _BoundCounter:
        """Return a live handle for the counter ``name`` (created at zero)."""
        self._counters.setdefault(name, 0)
        return _BoundCounter(name, self._counters)

    def raw(self) -> Dict[str, int]:
        """The live counter dict, for hot paths that inline their updates.

        Callers mutate it with ``try: d[k] += 1 / except KeyError: d[k] = 1``
        — observable state is identical to calling :meth:`increment`.
        """
        return self._counters

    def increment(self, name: str, amount: int = 1) -> None:
        counters = self._counters
        try:
            counters[name] += amount
        except KeyError:
            counters[name] = amount

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def reset(self) -> None:
        counters = self._counters
        for name in counters:
            counters[name] = 0

    def as_dict(self) -> Dict[str, int]:
        """Snapshot all counters as a plain dict (sorted for stable output)."""
        counters = self._counters
        return {name: counters[name] for name in sorted(counters)}

    def __iter__(self) -> Iterator[StatCounter]:
        return iter(
            StatCounter(name, value) for name, value in self._counters.items()
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"StatGroup({self.name}: {inner})"


class TaxonomyCounter:
    """Counters over a *closed* set of outcome classes.

    Unlike :class:`StatGroup` (lazy, open-ended), a taxonomy fixes its
    classes up front: every class renders in its declared order even at
    zero, and incrementing an unknown class is an error rather than a
    silently-created counter. Used for fault-campaign outcome
    classification, where a typo'd class would corrupt the histogram.
    """

    __slots__ = ("name", "classes", "_counters")

    def __init__(self, name: str, classes):
        self.name = name
        self.classes = tuple(classes)
        if len(set(self.classes)) != len(self.classes):
            raise ValueError(f"duplicate classes in taxonomy {name!r}")
        self._counters: Dict[str, int] = {c: 0 for c in self.classes}

    def increment(self, klass: str, amount: int = 1) -> None:
        if klass not in self._counters:
            raise KeyError(
                f"unknown class {klass!r} for taxonomy {self.name!r}; "
                f"expected one of {self.classes}"
            )
        self._counters[klass] += amount

    def get(self, klass: str) -> int:
        if klass not in self._counters:
            raise KeyError(
                f"unknown class {klass!r} for taxonomy {self.name!r}"
            )
        return self._counters[klass]

    def total(self) -> int:
        return sum(self._counters.values())

    def as_dict(self) -> Dict[str, int]:
        """All classes in declared order (zeros included)."""
        return {c: self._counters[c] for c in self.classes}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"TaxonomyCounter({self.name}: {inner})"


class LatencyRecorder:
    """Samples + order statistics for service latency accounting.

    Collects float samples (seconds) and answers nearest-rank
    percentiles; used by the fabric service for queue-wait / shed / run
    latencies and by ``BENCH_service.json``. Not a histogram: sample
    counts here are small (one per submission), so keeping the raw
    values and sorting on demand is both exact and cheap.
    """

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str):
        self.name = name
        self._samples: list = []
        self._sorted = True

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (p in [0, 100]); 0.0 when empty."""
        if not self._samples:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        rank = max(1, math.ceil(p / 100.0 * self.count))
        return self._samples[min(self.count, rank) - 1]

    def summary(self) -> Dict[str, float]:
        """{count, p50, p95, max} — zeros when no samples recorded."""
        if not self._samples:
            return {"count": 0, "p50": 0.0, "p95": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": max(self._samples),
        }

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"LatencyRecorder({self.name}: n={s['count']} "
            f"p50={s['p50']:.4g}s p95={s['p95']:.4g}s max={s['max']:.4g}s)"
        )


def ratio(numerator: int, denominator: int) -> float:
    """Safe ratio helper: returns 0.0 when the denominator is zero."""
    return numerator / denominator if denominator else 0.0


def per_kilo(numerator: int, denominator: int) -> float:
    """Events per thousand units (e.g. misses per kilo-instruction)."""
    return 1000.0 * ratio(numerator, denominator)
