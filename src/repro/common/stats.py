"""Lightweight statistics counters for simulator components.

Each component owns a :class:`StatGroup`; counters are created lazily and
render to plain dictionaries for reporting, so benchmark harnesses can diff
baseline and protected runs without knowing component internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class StatCounter:
    """A named monotonic counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"StatCounter({self.name}={self.value})"


@dataclass
class StatGroup:
    """A named collection of counters, created on first access."""

    name: str
    _counters: Dict[str, StatCounter] = field(default_factory=dict)

    def counter(self, name: str) -> StatCounter:
        """Return the counter ``name``, creating it at zero if needed."""
        if name not in self._counters:
            self._counters[name] = StatCounter(name)
        return self._counters[name]

    def increment(self, name: str, amount: int = 1) -> None:
        self.counter(name).increment(amount)

    def get(self, name: str) -> int:
        return self._counters[name].value if name in self._counters else 0

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()

    def as_dict(self) -> Dict[str, int]:
        """Snapshot all counters as a plain dict (sorted for stable output)."""
        return {name: self._counters[name].value for name in sorted(self._counters)}

    def __iter__(self) -> Iterator[StatCounter]:
        return iter(self._counters.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v.value}" for k, v in sorted(self._counters.items()))
        return f"StatGroup({self.name}: {inner})"


def ratio(numerator: int, denominator: int) -> float:
    """Safe ratio helper: returns 0.0 when the denominator is zero."""
    return numerator / denominator if denominator else 0.0


def per_kilo(numerator: int, denominator: int) -> float:
    """Events per thousand units (e.g. misses per kilo-instruction)."""
    return 1000.0 * ratio(numerator, denominator)
