"""System configuration dataclasses (paper Table III).

The defaults reproduce the paper's baseline system: a 3 GHz in-order x86_64
core, 64-entry fully-associative TLB, 8 KB MMU cache, 32 KB L1, 256 KB L2,
2 MB L3 and 4 GB of DDR4.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.common.bitops import is_pow2
from repro.common.errors import ConfigurationError

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

CACHELINE_BYTES = 64
PAGE_BYTES = 4 * KIB
PTE_BYTES = 8
PTES_PER_LINE = CACHELINE_BYTES // PTE_BYTES  # 8

DEFAULT_BATCH_SIZE = 4096


def batch_size(default: int = DEFAULT_BATCH_SIZE) -> int:
    """Execution batch size from the ``REPRO_BATCH`` environment variable.

    :meth:`repro.cpu.core.InOrderCore.run` replays trace records in
    batches of this many accesses through the fused loop
    (:mod:`repro.cpu.batch_core`); ``0`` or ``1`` selects the scalar
    reference loop (also forced when numpy is unavailable). The two paths
    are bit-identical — the knob exists for differential testing
    (``--batch-size`` on the CLI, the CI ``batch-equivalence-smoke``
    job) and for bisecting, not for tuning results. Unset or invalid
    values fall back to ``default``.
    """
    raw = os.environ.get("REPRO_BATCH")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else 0


def boot_snapshot_enabled() -> bool:
    """``REPRO_BOOT_SNAPSHOT`` gate for the post-boot snapshot cache.

    On by default: fabric cells that share a boot configuration restore
    a deep copy of a memoized fully-booted machine instead of re-booting
    (:mod:`repro.harness.snapshot`), which is what makes cold campaign
    sweeps cheap. ``0``/``false``/``off``/``no`` force every cell to
    boot from scratch — the reference behaviour the CI
    ``snapshot-equivalence-smoke`` job byte-compares against. Runs under
    ``--validate`` bypass snapshots regardless of this setting.
    """
    raw = os.environ.get("REPRO_BOOT_SNAPSHOT", "").strip().lower()
    return raw not in {"0", "false", "off", "no"}


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    hit_latency: int  # cycles
    line_bytes: int = CACHELINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_bytes):
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.associativity}*{self.line_bytes})"
            )
        if not is_pow2(self.num_sets):
            raise ConfigurationError(f"{self.name}: set count must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class DRAMTimingConfig:
    """Simplified DDR4 bank timing, expressed in CPU cycles at 3 GHz.

    The absolute values approximate DDR4-2400 (tRCD=tCL=tRP ~ 14.16 ns)
    scaled to a 3 GHz core clock, plus a fixed on-chip/queueing component so
    an LLC-miss round trip lands near 200 CPU cycles — the regime in which
    the paper's 10-cycle MAC latency produces its reported slowdowns.
    """

    row_hit_cycles: int = 130
    row_miss_cycles: int = 175  # precharged bank: tRCD + tCL
    row_conflict_cycles: int = 220  # open other row: tRP + tRCD + tCL
    refresh_interval_cycles: int = 192_000  # tREFI = 64 us / 8192 rows @3GHz
    refresh_window_ms: float = 64.0


@dataclass(frozen=True)
class DRAMConfig:
    """DRAM organisation. Defaults model a 4 GB single-channel DDR4 part."""

    size_bytes: int = 4 * GIB
    channels: int = 1
    ranks: int = 1
    banks: int = 16
    row_bytes: int = 8 * KIB
    timing: DRAMTimingConfig = field(default_factory=DRAMTimingConfig)

    def __post_init__(self) -> None:
        for name in ("size_bytes", "channels", "ranks", "banks", "row_bytes"):
            if not is_pow2(getattr(self, name)):
                raise ConfigurationError(f"DRAM {name} must be a power of two")

    @property
    def rows_per_bank(self) -> int:
        per_bank = self.size_bytes // (self.channels * self.ranks * self.banks)
        return per_bank // self.row_bytes


@dataclass(frozen=True)
class TLBConfig:
    entries: int = 64  # fully associative
    mmu_cache_bytes: int = 8 * KIB
    mmu_cache_assoc: int = 4


@dataclass(frozen=True)
class PTGuardConfig:
    """Parameters of the PT-Guard mechanism itself.

    ``max_phys_bits`` is *M* in Table IV: the number of bits of the maximum
    physical address. With the paper's 1 TB bound, M = 40, leaving PFN bits
    51:40 (12 per PTE, 96 per line) free for the MAC.
    """

    max_phys_bits: int = 40
    mac_bits: int = 96
    mac_latency_cycles: int = 10
    identifier_enabled: bool = False  # Optimized PT-Guard (Sec V-A)
    mac_zero_enabled: bool = False  # Sec V-B
    correction_enabled: bool = False  # Sec VI
    soft_match_k: int = 4  # MAC bit-faults tolerated (Sec VI-C)
    ctb_entries: int = 4
    almost_zero_threshold: int = 4  # <=4 set bits => guess zero-PTE
    # Host-side memo of computed tags (simulator speed only — simulated
    # latency, counters and outcomes are identical either way; see the
    # invariance tests in tests/test_qarma_tables.py). Off by default:
    # on trace-driven timing runs the guard re-sees a PTE line at the
    # DRAM boundary almost only right after a write (which invalidates
    # the memo), so the measured hit rate is ~0.1% and the bookkeeping
    # costs more than it saves (BENCH_hotpath.json). Enable (e.g. 4096)
    # for runs with a real cryptographic backend (qarma especially):
    # InOrderCore.run then pre-warms the memo from the page-table
    # snapshot in one vectorized pass (MACEngine.warm), moving the
    # ~100 us/tag scalar cost out of the measured window entirely.
    mac_verify_cache_entries: int = 0

    def __post_init__(self) -> None:
        if not 28 <= self.max_phys_bits <= 52:
            raise ConfigurationError("max_phys_bits must lie in [28, 52]")
        if self.mac_verify_cache_entries < 0:
            raise ConfigurationError("mac_verify_cache_entries must be >= 0")
        if self.mac_bits != 12 * PTES_PER_LINE:
            # The design pools 12 bits from each of the 8 PTEs in a line.
            if self.mac_bits not in (64, 96):
                raise ConfigurationError("mac_bits must be 64 or 96")
        if self.soft_match_k < 0 or self.soft_match_k >= self.mac_bits:
            raise ConfigurationError("soft_match_k must lie in [0, mac_bits)")


@dataclass(frozen=True)
class SystemConfig:
    """Full single-core system configuration (paper Table III)."""

    frequency_hz: int = 3_000_000_000
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 32 * KIB, 8, hit_latency=4)
    )
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 * KIB, 8, hit_latency=4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 256 * KIB, 16, hit_latency=14)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig("L3", 2 * MIB, 16, hit_latency=34)
    )
    tlb: TLBConfig = field(default_factory=TLBConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    ptguard: PTGuardConfig | None = None  # None => unprotected baseline

    def with_ptguard(self, guard: PTGuardConfig) -> "SystemConfig":
        """Return a copy of this configuration with PT-Guard enabled."""
        from dataclasses import replace

        return replace(self, ptguard=guard)


def default_system_config() -> SystemConfig:
    """Return the paper's Table III baseline configuration."""
    return SystemConfig()


def optimized_ptguard_config(mac_latency_cycles: int = 10) -> PTGuardConfig:
    """Return the Optimized PT-Guard configuration (Section V)."""
    return PTGuardConfig(
        mac_latency_cycles=mac_latency_cycles,
        identifier_enabled=True,
        mac_zero_enabled=True,
    )
