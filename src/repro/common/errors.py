"""Exception hierarchy for the PT-Guard reproduction.

Every error raised by the library derives from :class:`PTGuardError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing specific conditions.
"""

from __future__ import annotations


class PTGuardError(Exception):
    """Base class for all library errors."""


class ConfigurationError(PTGuardError):
    """A configuration value is invalid or inconsistent."""


class AllocationError(PTGuardError):
    """The physical-page allocator could not satisfy a request."""


class TranslationError(PTGuardError):
    """A virtual address could not be translated (no mapping)."""


class PageFaultError(TranslationError):
    """A page-table walk terminated at a non-present entry."""

    def __init__(self, virtual_address: int, level: int, message: str = ""):
        self.virtual_address = virtual_address
        self.level = level
        detail = message or f"page fault at VA {virtual_address:#x} (level {level})"
        super().__init__(detail)


class IntegrityError(PTGuardError):
    """A MAC check failed on a page-table walk (``PTECheckFailed``).

    Models the exception the memory controller raises to the OS when a
    tampered PTE cacheline is detected (paper Section IV-F).
    """

    def __init__(self, line_address: int, message: str = ""):
        self.line_address = line_address
        detail = message or f"PTE integrity failure at line {line_address:#x}"
        super().__init__(detail)


class CollisionBufferOverflow(PTGuardError):
    """The 4-entry Collision Tracking Buffer filled up (Section VII-B).

    The paper's remedy is full-memory re-keying; the simulator raises this
    to let the embedding system trigger :meth:`PTGuard.rekey`.
    """


class SimulationError(PTGuardError):
    """The simulator reached an internally inconsistent state."""


class InvariantViolation(SimulationError):
    """A runtime self-check found simulator state inconsistent.

    Raised by the opt-in validator (:mod:`repro.faults.invariants`,
    ``--validate`` / ``REPRO_VALIDATE``) when a registered invariant
    fails: a TLB entry disagreeing with a shadow walk of the live page
    tables, an MMU/page-walk cache entry diverging from memory, cache
    hierarchy inconsistency, or the table-driven MAC diverging from the
    reference path. Distinguishes SDC in the *simulator* from SDC the
    *defense* missed — never caught by fault-campaign classification.
    """


# -- experiment-fabric failures (repro.harness.parallel) ----------------------
#
# The fabric distinguishes *transient* failures — a worker process died
# or a job overran its wall-clock deadline, conditions that a retry on a
# fresh worker can cure — from *permanent* ones, where the job's own
# code raised and re-running it deterministically reproduces the error.
# Retry logic branches on the class attribute, never on string matching.


class SimJobError(PTGuardError, RuntimeError):
    """A simulation job failed; carries the job identity and (for worker
    failures) the remote traceback so parallel failures read like serial
    ones.

    ``transient`` is a class attribute: True means a retry on a fresh
    worker may succeed (crash/timeout), False means the failure is a
    deterministic property of the job itself.
    """

    transient = False


class JobExecutionError(SimJobError):
    """The job's own code raised — permanent; retrying reproduces it."""

    transient = False


class UnknownJobKindError(SimJobError):
    """The job ``kind`` is not in the registry — permanent."""

    transient = False


class JobTimeoutError(SimJobError):
    """A job overran its wall-clock deadline and its worker was killed —
    transient (the next attempt may land on an unloaded worker)."""

    transient = True


class WorkerCrashError(SimJobError):
    """A pool worker died (signal/OOM/``os._exit``) while running a job —
    transient; the job is retried on a respawned worker."""

    transient = True


class RetryBudgetExceededError(SimJobError):
    """A job kept failing transiently until its retry budget ran out.

    Permanent by exhaustion: the fabric gives up on the whole run; the
    last underlying failure is chained as ``__cause__``.
    """

    transient = False


# -- service-layer failures (repro.service) -----------------------------------
#
# The multi-tenant fabric service sits one layer above the executor
# backends. Its failure model is HTTP-shaped on purpose: admission
# control answers "503, retry later" (AdmissionRejected, CircuitOpenError
# — both carry ``retry_after_s`` hints and map to exit code 75 /
# EX_TEMPFAIL at the CLI), while submission-lifecycle errors
# (SubmissionNotFound, SubmissionCancelled) are caller mistakes or
# explicit operator actions, never overload signals.


class ServiceError(PTGuardError):
    """Base class for fabric-service failures (repro.service)."""


class AdmissionRejected(ServiceError):
    """The service refused (or shed) a sweep submission — a typed 503.

    Raised synchronously at submit time (tenant over its token-bucket
    rate, queue full with this tenant the heaviest, service shutting
    down) or recorded on an already-queued submission that lost its slot
    to load-shedding. ``reason`` is a stable machine-readable tag
    (``rate_limited`` / ``queue_full`` / ``shed`` / ``shutdown``);
    ``retry_after_s`` is a hint, None when retrying cannot help (e.g. a
    zero-capacity bucket or a closed service).
    """

    def __init__(
        self,
        message: str,
        tenant: str = "",
        reason: str = "overload",
        retry_after_s=None,
    ):
        self.tenant = tenant
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(message)


class CircuitOpenError(ServiceError):
    """A backend's circuit breaker is open and degraded fallback is off.

    With fallback enabled (the default) an open breaker silently reroutes
    sweeps to the in-process backend instead; this error only surfaces
    when the operator asked for fail-fast behaviour. ``retry_after_s``
    is the breaker's remaining cooldown.
    """

    def __init__(self, message: str, backend: str = "", retry_after_s=None):
        self.backend = backend
        self.retry_after_s = retry_after_s
        super().__init__(message)


class SubmissionNotFound(ServiceError):
    """No submission with this ticket exists (bad or expired ticket)."""


class SubmissionCancelled(ServiceError):
    """The submission was cancelled before it produced results."""


class RecoveredSubmissionError(ServiceError):
    """A restarted service replayed this ticket's terminal failure.

    The state log records that the submission failed before the crash,
    but the original exception object died with the process; this typed
    stand-in carries the logged error text so ``results()`` on a
    re-issued ticket still raises immediately instead of pretending the
    failure never happened."""
