"""Rowhammer attack patterns (paper Sections I, II).

Implements the access patterns the paper's narrative is built around:

* **single-sided** — hammer one aggressor row (classic, 2014 [29]);
* **double-sided** — sandwich the victim between two aggressors;
* **many-sided** — the TRRespass/Blacksmith [15,22] family: N aggressors
  cycled to overflow a TRR sampler's tracking capacity;
* **Half-Double** — hammer distance-2 aggressors heavily so that the
  *mitigation refreshes* a TRR-like defense issues on the distance-1 rows
  become the hammer that flips the victim [30].

All patterns drive the real :class:`~repro.dram.device.DRAMDevice`:
each "hammer" is an ACT (row-buffer conflict forced by alternating rows),
so defenses sampling activations observe exactly what they would in
hardware, and flips materialise in physical memory via the fault model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.dram.device import DRAMDevice
from repro.dram.rowhammer import BitFlip, RowKey


@dataclass
class HammerReport:
    """What an attack run achieved."""

    pattern: str
    activations: int
    flips: List[BitFlip] = field(default_factory=list)

    @property
    def flipped_rows(self) -> set:
        return {flip.row_key for flip in self.flips}


class HammerAttack:
    """Issues attack access patterns against a DRAM device."""

    def __init__(self, device: DRAMDevice):
        self.device = device

    # -- helpers -------------------------------------------------------------

    def _row_key(self, row: int, bank: RowKey | None = None) -> RowKey:
        channel, rank, bank_index = (0, 0, 0) if bank is None else bank[:3]
        return (channel, rank, bank_index, row)

    def _activate_row(self, row_key: RowKey, cycle: int) -> None:
        """Open ``row_key`` via a real device access (forces an ACT by
        alternating with a conflict row handled by the caller)."""
        address = self.device.mapper.row_base_address(row_key)
        self.device.access(address, is_write=False, cycle=cycle)

    def _hammer_set(
        self, rows: Sequence[RowKey], iterations: int, start_cycle: int = 0
    ) -> int:
        """Alternate over ``rows`` so every access is a row conflict (each
        one an ACT). Returns total activations issued."""
        cycle = start_cycle
        activations = 0
        if len(rows) == 1:
            # Single-sided hammering needs a dummy conflict row far away in
            # the same bank to close the aggressor between ACTs.
            channel, rank, bank, row = rows[0]
            dummy_row = row + 512 if row + 512 < self.device.config.rows_per_bank else row - 512
            rows = [rows[0], (channel, rank, bank, dummy_row)]
        for iteration in range(iterations):
            for row_key in rows:
                self._activate_row(row_key, cycle)
                cycle += 50  # ~tRC in CPU cycles; exact value immaterial
                activations += 1
        return activations

    def _report(self, pattern: str, activations: int, baseline_flips: int) -> HammerReport:
        flips = self.device.bit_flips[baseline_flips:]
        return HammerReport(pattern=pattern, activations=activations, flips=flips)

    def _flips_before(self) -> int:
        return len(self.device.bit_flips)

    # -- patterns ----------------------------------------------------------------

    def single_sided(self, victim_row: int, iterations: int, bank: RowKey | None = None) -> HammerReport:
        """Classic single aggressor adjacent to the victim."""
        before = self._flips_before()
        aggressor = self._row_key(victim_row + 1, bank)
        activations = self._hammer_set([aggressor], iterations)
        return self._report("single-sided", activations, before)

    def double_sided(self, victim_row: int, iterations: int, bank: RowKey | None = None) -> HammerReport:
        """Aggressors on both sides of the victim: pressure adds up."""
        before = self._flips_before()
        rows = [self._row_key(victim_row - 1, bank), self._row_key(victim_row + 1, bank)]
        activations = self._hammer_set(rows, iterations)
        return self._report("double-sided", activations, before)

    def many_sided(
        self,
        victim_row: int,
        iterations: int,
        aggressors: int = 9,
        bank: RowKey | None = None,
    ) -> HammerReport:
        """TRRespass-style N-sided pattern around the victim.

        With more simultaneous aggressors than a TRR sampler can track,
        some aggressors escape mitigation every refresh interval.
        """
        before = self._flips_before()
        rows = []
        # Aggressors at odd offsets around the victim leave their enclosed
        # victims (including victim_row) under double-sided pressure.
        span = aggressors // 2
        for offset in range(-span, span + 1):
            row = victim_row + 2 * offset + 1
            if 0 <= row < self.device.config.rows_per_bank:
                rows.append(self._row_key(row, bank))
        activations = self._hammer_set(rows[:aggressors], iterations)
        return self._report(f"{aggressors}-sided", activations, before)

    def half_double(
        self, victim_row: int, iterations: int, bank: RowKey | None = None
    ) -> HammerReport:
        """Half-Double [30]: hammer distance-2 rows; victim refreshes on the
        distance-1 rows (issued by the mitigation) do the damage.

        Against a victim-refresh defense, the distance-2 aggressors trip
        the tracker, which keeps refreshing the distance-1 neighbours —
        and every such refresh re-activates the distance-1 wordline,
        hammering the victim in the middle.
        """
        before = self._flips_before()
        rows = [self._row_key(victim_row - 2, bank), self._row_key(victim_row + 2, bank)]
        activations = self._hammer_set(rows, iterations)
        return self._report("half-double", activations, before)

    def hammer_rows(self, rows: Sequence[RowKey], iterations: int) -> HammerReport:
        """Free-form pattern (for custom experiments)."""
        before = self._flips_before()
        activations = self._hammer_set(list(rows), iterations)
        return self._report("custom", activations, before)
