"""The closed-loop adaptive adversary (ROADMAP item 5).

The PR-5 siege drives *fixed* attack intensities — an open-loop stress
test. DAPPER's lesson (PAPERS.md) is that defenses which absorb static
pressure collapse under adaptive performance attacks that exploit the
defense's own response machinery: every adaptive rekey is a Sec VII-B
full-memory sweep the attacker gets for free, every row migration is
paid downtime, and the storm brake that prevents rekey DoS leaks timing
the attacker can observe. PThammer adds the access vector: page-walk
traffic hammers page-table rows without the attacker ever issuing an
explicit load the tracker could attribute.

Three pieces live here:

* :class:`ObservationChannel` / :class:`Observation` — the deterministic
  defense-visible telemetry snapshot taken once per exposure window:
  adaptive rekeys fired/suppressed, rows retired, spare budget left,
  corrected/uncorrectable counts, panics, throttle blocks, cumulative
  downtime. Everything is a counter read off live simulator objects —
  no clocks, no randomness — so the sequence is bit-identical across
  runs, backends, and ``--resume`` replay.

* The strategies — :data:`STRATEGY_ORDER` names four seed-addressed
  attack programs (:class:`LowAndSlowStrategy`,
  :class:`RekeyBurstStrategy`, :class:`SpareExhaustionStrategy`,
  :class:`PThammerImplicitStrategy`). Each turns the latest observation
  into a :class:`WindowPlan` of :class:`HammerOp` s under the shared
  per-window activation budget (:data:`ACTIVATION_BUDGET`).

* :class:`AdaptiveAttacker` — the deterministic strategy-switching
  controller. It escalates down the ladder when observations show the
  current strategy being absorbed (no panics, damage below threshold),
  reacts to persistent throttling by going implicit, abandons spare
  exhaustion once the budget is drained, and — after every strategy has
  had a turn — locks onto the most damaging one observed.

Fault crafting is also here (:func:`craft_bit_offsets`): the adversary
builds its own disturbance patterns from the same deterministic digest
primitives as :mod:`repro.faults.inject`, rather than reusing the
campaign's scenario registry — an attacker shapes faults, a campaign
samples them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.inject import PTE_BITS, PTES_PER_LINE, deterministic_choice

#: Hammer-pressure units one exposure window affords the adversary.
#: Calibrated so the strongest explicit plan lands ~3 uncorrectable-grade
#: faults per window — enough to break trigger-happy policies through
#: their own response machinery, not enough to brute-force any policy.
ACTIVATION_BUDGET = 96

#: Activation cost per explicit hammer op. A "kill" (guaranteed
#: uncorrectable multi-bit pattern) needs sustained many-sided pressure;
#: a "probe" (double bit, usually absorbed by best-effort correction)
#: and a "single" are progressively cheaper.
OP_COSTS: Dict[str, int] = {"single": 3, "probe": 6, "kill": 32}

#: Page walks of implicit pressure per kill-grade disturbance: walker
#: traffic is diffuse, so the implicit vector is less activation-
#: efficient than explicit hammering — its payoff is throttle immunity.
IMPLICIT_KILL_WALKS = 32

#: Walker translations the implicit mode issues per window.
IMPLICIT_WALKS_PER_WINDOW = 64

#: The escalation ladder, stealthiest first.
STRATEGY_ORDER: Tuple[str, ...] = (
    "low_slow",
    "rekey_burst",
    "spare_exhaustion",
    "pthammer_implicit",
)

#: Strategy names :func:`make_attacker` accepts ("escalate" = the
#: switching controller over the full ladder).
ESCALATE = "escalate"
ALL_STRATEGIES: Tuple[str, ...] = STRATEGY_ORDER + (ESCALATE,)


# -- observation surface ------------------------------------------------------


@dataclass(frozen=True)
class Observation:
    """Defense-visible telemetry at the end of one exposure window.

    All counters are cumulative since the siege began; strategies work
    on deltas between consecutive observations. ``spare_rows_free`` is
    the only gauge.
    """

    window: int
    rekeys_fired: int
    rekeys_suppressed: int
    incidents: int
    rows_retired: int
    spare_rows_free: int
    corrected: int
    uncorrectable: int
    panics: int
    throttled_ops: int
    downtime_cycles: int

    def as_dict(self) -> Dict[str, int]:
        """JSON-able form (ordered by field declaration)."""
        return asdict(self)


class ObservationChannel:
    """Snapshots the defense's observable state once per window.

    Reads only counters the threat model grants the attacker: guard
    rekey statistics (epoch rotations are globally visible events),
    retirement and spare-budget state (migration stalls are timeable),
    the outcome ledger the siege loop maintains (corrected faults,
    uncorrectable incidents, panics — all timing-observable), and the
    throttle's block count (a refused activation is directly felt).
    """

    def __init__(self, system, manager=None, throttle=None):
        self.system = system
        self.manager = manager
        self.throttle = throttle
        #: Counters the siege loop increments as it classifies outcomes.
        self.ledger: Dict[str, int] = {
            "corrected": 0,
            "uncorrectable": 0,
            "panics": 0,
            "downtime_cycles": 0,
        }

    def snapshot(self, window: int) -> Observation:
        guard = self.system.guard
        manager = self.manager
        return Observation(
            window=window,
            rekeys_fired=(
                guard.stats.get("adaptive_rekey_triggers") if guard else 0
            ),
            rekeys_suppressed=(
                guard.stats.get("adaptive_rekeys_suppressed") if guard else 0
            ),
            incidents=guard.stats.get("incidents") if guard else 0,
            rows_retired=(
                manager.stats.get("rows_retired") if manager is not None else 0
            ),
            spare_rows_free=self.system.dram.spare_rows_free,
            corrected=self.ledger["corrected"],
            uncorrectable=self.ledger["uncorrectable"],
            panics=self.ledger["panics"],
            throttled_ops=(
                self.throttle.blocked if self.throttle is not None else 0
            ),
            downtime_cycles=self.ledger["downtime_cycles"],
        )


# -- attack plans -------------------------------------------------------------


@dataclass(frozen=True)
class HammerOp:
    """One disturbance the attacker attempts inside a window.

    ``row_index`` indexes the siege's deterministic row inventory
    (``hot=True`` indexes the walk-heat ordering instead — rows hosting
    the most leaf PTEs, the ones implicit walker traffic concentrates
    on). ``implicit`` ops ride on page-walk pressure and never face the
    activation throttle.
    """

    kind: str  # "single" | "probe" | "kill"
    row_index: int
    hot: bool = False
    implicit: bool = False

    @property
    def cost(self) -> int:
        return OP_COSTS[self.kind]


@dataclass(frozen=True)
class WindowPlan:
    """Everything the attacker does in one exposure window."""

    ops: Tuple[HammerOp, ...] = ()
    walks: int = 0

    @property
    def explicit_cost(self) -> int:
        return sum(op.cost for op in self.ops if not op.implicit)


def craft_bit_offsets(
    seed: int,
    kind: str,
    channel: str,
    key: str,
    protected: Sequence[int],
) -> Tuple[int, ...]:
    """Deterministic bit pattern for one hammer op.

    ``single``/``probe`` mimic the natural one/two-bit disturbances the
    campaign's scenarios model. ``kill`` is the adversary's engineered
    worst case: six distinct protected bits concentrated in one PTE plus
    one in each of two neighbours — past every best-effort correction
    step, so it reliably lands detected-uncorrectable.
    """
    if kind == "single":
        pte = deterministic_choice(seed, channel + ":pte", key, PTES_PER_LINE)
        bit = protected[
            deterministic_choice(seed, channel + ":bit", key, len(protected))
        ]
        return (pte * PTE_BITS + bit,)
    if kind == "probe":
        combos = PTES_PER_LINE * len(protected)
        first = deterministic_choice(seed, channel + ":first", key, combos)
        second = deterministic_choice(seed, channel + ":second", key, combos - 1)
        if second >= first:
            second += 1
        offsets = []
        for combo in (first, second):
            pte, index = divmod(combo, len(protected))
            offsets.append(pte * PTE_BITS + protected[index])
        return tuple(sorted(offsets))
    if kind == "kill":
        focus = deterministic_choice(
            seed, channel + ":focus", key, PTES_PER_LINE - 2
        )
        picks: List[int] = []
        draw = 0
        while len(picks) < 6:
            bit = protected[
                deterministic_choice(
                    seed, channel + ":kbit", f"{key}:{draw}", len(protected)
                )
            ]
            draw += 1
            if bit not in picks:
                picks.append(bit)
        offsets = [focus * PTE_BITS + bit for bit in picks]
        for spread, neighbor in ((1, focus + 1), (2, focus + 2)):
            bit = protected[
                deterministic_choice(
                    seed, channel + f":nbit{spread}", key, len(protected)
                )
            ]
            offsets.append(neighbor * PTE_BITS + bit)
        return tuple(sorted(set(offsets)))
    raise ValueError(f"unknown hammer op kind {kind!r}")


# -- strategies ---------------------------------------------------------------


class AttackStrategy:
    """Base: a seed-addressed program from observations to window plans."""

    name = "base"

    def __init__(self, seed: int):
        self.seed = seed

    def _choice(self, field_name: str, key: str, n: int) -> int:
        return deterministic_choice(
            self.seed, f"adaptive:{self.name}:{field_name}", key, n
        )

    @staticmethod
    def _delta(
        last: Optional[Observation], prev: Optional[Observation], field_name: str
    ) -> int:
        if last is None:
            return 0
        before = getattr(prev, field_name) if prev is not None else 0
        return getattr(last, field_name) - before

    def plan(
        self,
        window: int,
        n_rows: int,
        last: Optional[Observation],
        prev: Optional[Observation],
    ) -> WindowPlan:
        raise NotImplementedError


class LowAndSlowStrategy(AttackStrategy):
    """Tracker evasion: one kill per window, spread thin.

    Stays far below the throttle's per-row quota and the rekey window's
    trigger rate, so the defense sees a trickle it cannot distinguish
    from environmental faults — yet one uncorrectable fault per window
    is fatal to any policy without reconstruction.
    """

    name = "low_slow"

    def plan(self, window, n_rows, last, prev):
        row = self._choice("row", str(window), n_rows)
        ops = [
            HammerOp(kind="kill", row_index=row),
            HammerOp(kind="single", row_index=(row + 1) % n_rows),
            HammerOp(kind="single", row_index=(row + 2) % n_rows),
        ]
        return WindowPlan(ops=tuple(ops))


class RekeyBurstStrategy(AttackStrategy):
    """Cooldown-timed incident bursts: the rekey machinery as a DoS lever.

    Maximizes detected-uncorrectable incidents per window so the guard's
    sliding window saturates and every cooldown expiry buys the attacker
    a full Sec VII-B key sweep of downtime. Observed suppressions
    (``rekeys_suppressed`` rising) confirm the storm brake is engaged —
    the window is already saturated, so sustained pressure converts each
    cooldown expiry into a rekey. Starts focused on one row; when the
    throttle visibly blocks ops, spreads the burst across two rows just
    under the per-row quota; and every observed retirement shifts the
    anchor — hammering a retired row's cells is wasted pressure, since
    accesses have been remapped away from them.
    """

    name = "rekey_burst"

    def __init__(self, seed: int):
        super().__init__(seed)
        self._spread = False

    def plan(self, window, n_rows, last, prev):
        if self._delta(last, prev, "throttled_ops") > 0:
            self._spread = True
        retired = last.rows_retired if last is not None else 0
        anchor = (self._choice("anchor", "0", n_rows) + retired) % n_rows
        kills = ACTIVATION_BUDGET // OP_COSTS["kill"]
        ops = []
        for index in range(kills):
            offset = (index % 2) if self._spread else 0
            ops.append(
                HammerOp(kind="kill", row_index=(anchor + offset) % n_rows)
            )
        return WindowPlan(ops=tuple(ops))


class SpareExhaustionStrategy(AttackStrategy):
    """Spread retirements across many rows to drain the spare budget.

    Pairs kills on each row so eager retirement thresholds trip quickly,
    then moves on — every migration is paid downtime, and once
    ``spare_rows_free`` hits zero a retire-only policy has nothing left
    but panic. The cursor rotation is a pure function of the window.
    """

    name = "spare_exhaustion"

    def plan(self, window, n_rows, last, prev):
        base = self._choice("base", "0", n_rows)
        kills = ACTIVATION_BUDGET // OP_COSTS["kill"]
        ops = []
        for index in range(kills):
            # 2-1-2-1… pairing: (w0: A A B) (w1: B C C) — every row
            # reaches two faults across adjacent windows.
            slot = window * kills + index
            ops.append(
                HammerOp(kind="kill", row_index=(base + slot // 2) % n_rows)
            )
        return WindowPlan(ops=tuple(ops))


class PThammerImplicitStrategy(AttackStrategy):
    """PThammer: hammering pressure purely from page-walk traffic.

    The attacker issues translations whose walks re-read page-table
    lines (TLB and MMU caches flushed by eviction, as PThammer does), so
    the activation pressure lands on PTE rows without one attributable
    explicit access — the throttle never sees it. Less efficient per
    activation (:data:`IMPLICIT_KILL_WALKS`), and concentrated on the
    walk-hottest rows, which is where walker traffic naturally lands.
    Observed retirements advance the cursor down the heat ranking: the
    defense retires exactly the rows being pressured, so the offset
    lands on the hottest rows still backed by their original cells.
    """

    name = "pthammer_implicit"

    def plan(self, window, n_rows, last, prev):
        walks = IMPLICIT_WALKS_PER_WINDOW
        kills = min(
            walks // IMPLICIT_KILL_WALKS,
            ACTIVATION_BUDGET // OP_COSTS["kill"],
        )
        retired = last.rows_retired if last is not None else 0
        ops = [
            HammerOp(
                kind="kill", row_index=retired + index, hot=True, implicit=True
            )
            for index in range(kills)
        ]
        return WindowPlan(ops=tuple(ops), walks=walks)


_STRATEGY_CLASSES = {
    LowAndSlowStrategy.name: LowAndSlowStrategy,
    RekeyBurstStrategy.name: RekeyBurstStrategy,
    SpareExhaustionStrategy.name: SpareExhaustionStrategy,
    PThammerImplicitStrategy.name: PThammerImplicitStrategy,
}


def make_strategy(name: str, seed: int) -> AttackStrategy:
    try:
        return _STRATEGY_CLASSES[name](seed)
    except KeyError:
        raise ValueError(
            f"unknown attack strategy {name!r}; "
            f"available: {', '.join(STRATEGY_ORDER)}"
        ) from None


# -- the switching controller -------------------------------------------------


@dataclass
class StrategySwitch:
    """One controller decision, recorded for the determinism tests."""

    window: int
    from_strategy: str
    to_strategy: str
    reason: str

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


class AdaptiveAttacker:
    """Deterministic strategy-switching controller over the ladder.

    Escalation rules, evaluated in fixed order after every observation:

    1. **throttled** — the throttle blocked ops in each of the last two
       windows despite the strategy's own evasion: go implicit.
    2. **spares_drained** — spare-exhaustion's lever is gone
       (``spare_rows_free`` is zero): move on.
    3. **absorbed** — ``patience`` windows with no panics and damage
       below ``damage_threshold_cycles`` per window: the defense is
       absorbing this strategy; escalate to the next untried one. Once
       every strategy has had a turn, lock onto the most damaging
       (mean downtime delta per active window, ladder order breaking
       ties).
    """

    def __init__(
        self,
        strategies: Optional[Sequence[str]] = None,
        seed: int = 0,
        switching: bool = True,
        patience: int = 3,
        damage_threshold_cycles: int = 20_000,
    ):
        names = tuple(strategies) if strategies else STRATEGY_ORDER
        self.ladder = [make_strategy(name, seed) for name in names]
        self.seed = seed
        self.switching = switching and len(self.ladder) > 1
        self.patience = patience
        self.damage_threshold_cycles = damage_threshold_cycles
        self.switches: List[StrategySwitch] = []
        self.observations: List[Observation] = []
        self._active_index = 0
        self._windows_on_active = 0
        self._tried = {self.ladder[0].name}
        self._locked = False
        #: per strategy: [active windows, downtime cycles attributed]
        self._damage: Dict[str, List[int]] = {
            strategy.name: [0, 0] for strategy in self.ladder
        }
        self._throttled_streak = 0

    @property
    def active(self) -> AttackStrategy:
        return self.ladder[self._active_index]

    def plan(self, window: int, n_rows: int) -> WindowPlan:
        last = self.observations[-1] if self.observations else None
        prev = self.observations[-2] if len(self.observations) > 1 else None
        return self.active.plan(window, n_rows, last, prev)

    def observe(self, observation: Observation) -> None:
        prev = self.observations[-1] if self.observations else None
        self.observations.append(observation)
        self._windows_on_active += 1
        damage = self._damage[self.active.name]
        damage[0] += 1
        damage[1] += AttackStrategy._delta(observation, prev, "downtime_cycles")
        if AttackStrategy._delta(observation, prev, "throttled_ops") > 0:
            self._throttled_streak += 1
        else:
            self._throttled_streak = 0
        if not self.switching:
            return
        self._maybe_switch(observation)

    # -- switching rules ----------------------------------------------

    def _maybe_switch(self, observation: Observation) -> None:
        active = self.active.name
        if (
            self._throttled_streak >= 2
            and active != PThammerImplicitStrategy.name
            and any(
                s.name == PThammerImplicitStrategy.name for s in self.ladder
            )
        ):
            self._switch_to(
                PThammerImplicitStrategy.name, observation.window, "throttled"
            )
            return
        if (
            active == SpareExhaustionStrategy.name
            and observation.spare_rows_free == 0
            and self._windows_on_active >= 2
        ):
            self._escalate(observation.window, "spares_drained")
            return
        if self._windows_on_active >= self.patience and self._absorbed():
            self._escalate(observation.window, "absorbed")

    def _absorbed(self) -> bool:
        recent = self.observations[-self.patience:]
        if len(recent) < self.patience:
            return False
        anchor_index = len(self.observations) - self.patience - 1
        anchor = (
            self.observations[anchor_index] if anchor_index >= 0 else None
        )
        panic_delta = AttackStrategy._delta(recent[-1], anchor, "panics")
        downtime_delta = AttackStrategy._delta(
            recent[-1], anchor, "downtime_cycles"
        )
        return (
            panic_delta == 0
            and downtime_delta < self.damage_threshold_cycles * self.patience
        )

    def _escalate(self, window: int, reason: str) -> None:
        untried = [
            strategy.name
            for strategy in self.ladder
            if strategy.name not in self._tried
        ]
        if untried:
            self._switch_to(untried[0], window, reason)
            return
        if self._locked:
            return
        # Everyone has had a turn: lock onto the most damaging strategy
        # (mean downtime per active window; ladder order breaks ties).
        best = max(
            self.ladder,
            key=lambda s: (
                self._damage[s.name][1] / max(1, self._damage[s.name][0])
            ),
        )
        self._locked = True
        if best.name != self.active.name:
            self._switch_to(best.name, window, "locked")

    def _switch_to(self, name: str, window: int, reason: str) -> None:
        if name == self.active.name:
            return
        previous = self.active.name
        for index, strategy in enumerate(self.ladder):
            if strategy.name == name:
                self._active_index = index
                break
        self._tried.add(name)
        self._windows_on_active = 0
        self._throttled_streak = 0
        self.switches.append(
            StrategySwitch(
                window=window,
                from_strategy=previous,
                to_strategy=name,
                reason=reason,
            )
        )


def make_attacker(strategy: str, seed: int) -> AdaptiveAttacker:
    """Build the attacker for one siege cell.

    A concrete strategy name pins the attacker to that strategy
    (switching disabled — the frontier isolates per-strategy behaviour);
    :data:`ESCALATE` runs the full switching controller over the ladder.
    """
    if strategy == ESCALATE:
        return AdaptiveAttacker(seed=seed, switching=True)
    if strategy not in STRATEGY_ORDER:
        raise ValueError(
            f"unknown attack strategy {strategy!r}; "
            f"available: {', '.join(ALL_STRATEGIES)}"
        )
    return AdaptiveAttacker(strategies=[strategy], seed=seed, switching=False)
