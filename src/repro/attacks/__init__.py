"""Attacks and prior defenses: hammer patterns, the Fig-3 exploit chain,
and the mitigations PT-Guard is compared against."""

from repro.attacks.adaptive import (
    ALL_STRATEGIES,
    STRATEGY_ORDER,
    AdaptiveAttacker,
    Observation,
    ObservationChannel,
    make_attacker,
)
from repro.attacks.defenses import (
    PARA,
    TRR,
    BlockhammerThrottle,
    CounterTRR,
    MonotonicPlacement,
    SecWalkChecker,
    SoftTRR,
)
from repro.attacks.exploit import ExploitOutcome, PrivilegeEscalationExploit
from repro.attacks.hammer import HammerAttack, HammerReport

__all__ = [
    "ALL_STRATEGIES",
    "STRATEGY_ORDER",
    "AdaptiveAttacker",
    "Observation",
    "ObservationChannel",
    "make_attacker",
    "PARA",
    "TRR",
    "BlockhammerThrottle",
    "CounterTRR",
    "MonotonicPlacement",
    "SecWalkChecker",
    "SoftTRR",
    "ExploitOutcome",
    "PrivilegeEscalationExploit",
    "HammerAttack",
    "HammerReport",
]

from repro.attacks.defenses import CompositeMitigation  # noqa: E402

__all__.append("CompositeMitigation")
