"""Prior Rowhammer defenses the paper compares against (Sec II, VIII).

Activation-tracking mitigations (plug into
:class:`~repro.dram.device.DRAMDevice` as ``mitigation``):

* :class:`PARA` — probabilistic adjacent-row refresh [29];
* :class:`TRR` — a sampler-based in-DRAM Target Row Refresh, defeated by
  many-sided patterns that exceed its sampler capacity [15, 22];
* :class:`CounterTRR` — Graphene-style precise counting (Misra-Gries)
  with design-time threshold, defeated by modules whose real threshold is
  lower and by Half-Double (its own victim refreshes hammer distance-2
  rows) [30];
* :class:`SoftTRR` — software tracking of *PTE rows only* [63]; same
  mitigation action as TRR, hence the same Half-Double weakness.

PTE-level protections (checked at walk time by the attack harness):

* :class:`SecWalkChecker` — a 25-bit per-PTE error-detection code that
  catches at most 4 flips per PTE [50];
* :class:`MonotonicPlacement` — page tables in true-cell (1->0) rows above
  a watermark so PFN flips cannot point *up* into page tables [58];
  metadata bits (user/write/NX/MPK) remain fully exposed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.common.bitops import hamming_distance
from repro.dram.rowhammer import RowKey


def _neighbors(row_key: RowKey, distance: int, rows_per_bank: int) -> List[RowKey]:
    channel, rank, bank, row = row_key
    out = []
    for delta in (-distance, distance):
        neighbor = row + delta
        if 0 <= neighbor < rows_per_bank:
            out.append((channel, rank, bank, neighbor))
    return out


class PARA:
    """Probabilistic Adjacent Row Activation [29].

    On every activation, with probability ``p`` the neighbours of the
    activated row receive a victim refresh. Effective at distance 1 given
    a high enough ``p``, but each refresh re-activates the refreshed
    wordline — the lever Half-Double pulls.
    """

    name = "PARA"

    def __init__(self, probability: float, rows_per_bank: int, seed: int = 7):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        self.probability = probability
        self.rows_per_bank = rows_per_bank
        self._rng = random.Random(seed)
        self.refreshes_issued = 0

    def on_activation(self, row_key: RowKey, cycle: int) -> List[RowKey]:
        if self._rng.random() < self.probability:
            victims = _neighbors(row_key, 1, self.rows_per_bank)
            self.refreshes_issued += len(victims)
            return victims
        return []

    def on_refresh_window(self) -> None:
        pass


class TRR:
    """Sampler-based Target Row Refresh, as shipped in DDR4 modules.

    Tracks at most ``sampler_size`` candidate aggressors; every
    ``mitigation_interval`` activations, the hottest candidate's
    neighbours get a victim refresh. TRRespass/Blacksmith defeat it by
    hammering more aggressors than the sampler can hold [15, 22].
    """

    name = "TRR"

    def __init__(
        self,
        rows_per_bank: int,
        sampler_size: int = 4,
        mitigation_interval: int = 2000,
    ):
        self.rows_per_bank = rows_per_bank
        self.sampler_size = sampler_size
        self.mitigation_interval = mitigation_interval
        self._sampler: Dict[RowKey, int] = {}
        self._activations_seen = 0
        self.refreshes_issued = 0

    def on_activation(self, row_key: RowKey, cycle: int) -> List[RowKey]:
        self._activations_seen += 1
        if row_key in self._sampler:
            self._sampler[row_key] += 1
        elif len(self._sampler) < self.sampler_size:
            self._sampler[row_key] = 1
        # A full sampler ignores new aggressors until the refresh window
        # drains it — exactly the blind spot many-sided patterns exploit:
        # with more simultaneous aggressors than sampler entries, the
        # untracked ones hammer their victims unmitigated all window.
        if self._activations_seen % self.mitigation_interval == 0 and self._sampler:
            hottest = max(self._sampler, key=self._sampler.get)
            self._sampler[hottest] = 0  # served; stays tracked
            victims = _neighbors(hottest, 1, self.rows_per_bank)
            self.refreshes_issued += len(victims)
            return victims
        return []

    def on_refresh_window(self) -> None:
        self._sampler.clear()
        self._activations_seen = 0


class CounterTRR:
    """Graphene-style precise activation counting (Misra-Gries summary).

    Refreshes the neighbours of any row whose count reaches
    ``design_threshold``. Within its design assumptions it stops all
    distance-1 hammering — but its victim refreshes re-activate the
    refreshed rows, so Half-Double pressure on distance-2 victims grows
    *because of* the mitigation; and a module whose true threshold is
    below ``design_threshold`` flips before the counter trips.
    """

    name = "CounterTRR"

    def __init__(self, rows_per_bank: int, design_threshold: int, table_size: int = 64):
        self.rows_per_bank = rows_per_bank
        self.design_threshold = design_threshold
        self.table_size = table_size
        self._counts: Dict[RowKey, int] = {}
        self.refreshes_issued = 0

    def on_activation(self, row_key: RowKey, cycle: int) -> List[RowKey]:
        counts = self._counts
        if row_key in counts:
            counts[row_key] += 1
        elif len(counts) < self.table_size:
            counts[row_key] = 1
        else:
            # Misra-Gries decrement step.
            for key in list(counts):
                counts[key] -= 1
                if counts[key] <= 0:
                    del counts[key]
        if counts.get(row_key, 0) >= self.design_threshold:
            counts[row_key] = 0
            victims = _neighbors(row_key, 1, self.rows_per_bank)
            self.refreshes_issued += len(victims)
            return victims
        return []

    def on_refresh_window(self) -> None:
        self._counts.clear()


class SoftTRR:
    """SoftTRR [63]: kernel-side tracking of rows that hold page tables.

    Only activations that neighbour a registered PTE row are tracked;
    when the count passes the design threshold, the PTE row is refreshed.
    Identical mitigation primitive to TRR, so Half-Double (distance-2)
    defeats it, and an optimistic design threshold misses low-RTH modules.
    """

    name = "SoftTRR"

    def __init__(self, rows_per_bank: int, design_threshold: int):
        self.rows_per_bank = rows_per_bank
        self.design_threshold = design_threshold
        self._pte_rows: Set[RowKey] = set()
        self._counts: Dict[RowKey, int] = {}
        self.refreshes_issued = 0

    def register_pte_row(self, row_key: RowKey) -> None:
        """The kernel tells SoftTRR where page tables live."""
        self._pte_rows.add(row_key)

    def on_activation(self, row_key: RowKey, cycle: int) -> List[RowKey]:
        victims: List[RowKey] = []
        for neighbor in _neighbors(row_key, 1, self.rows_per_bank):
            if neighbor in self._pte_rows:
                self._counts[neighbor] = self._counts.get(neighbor, 0) + 1
                if self._counts[neighbor] >= self.design_threshold:
                    self._counts[neighbor] = 0
                    victims.append(neighbor)
        self.refreshes_issued += len(victims)
        return victims

    def on_refresh_window(self) -> None:
        self._counts.clear()


class CompositeMitigation:
    """Stack several mitigations (e.g. SoftTRR in the kernel above the
    module's built-in TRR), as deployed systems do. Victim refreshes from
    every layer are unioned — which is exactly how a software defense
    inherits the hardware defense's Half-Double exposure."""

    def __init__(self, *layers):
        self.layers = list(layers)
        self.name = "+".join(layer.name for layer in layers)

    def on_activation(self, row_key: RowKey, cycle: int) -> List[RowKey]:
        victims: List[RowKey] = []
        for layer in self.layers:
            victims.extend(layer.on_activation(row_key, cycle))
        return victims

    def on_refresh_window(self) -> None:
        for layer in self.layers:
            layer.on_refresh_window()

    @property
    def refreshes_issued(self) -> int:
        return sum(getattr(layer, "refreshes_issued", 0) for layer in self.layers)


class BlockhammerThrottle:
    """BlockHammer-style per-row activation throttling [BlockHammer, HPCA'21].

    Tracks explicit activation pressure per DRAM row inside each exposure
    window and refuses ops that would push a row past ``quota`` — the
    memory controller simply does not schedule them. Two properties the
    adaptive siege leans on:

    * a refused activation is *observable*: the attacker's op never
      executes, which is a throttle signal the adversary reads directly
      (:class:`repro.attacks.adaptive.ObservationChannel`);
    * only attributable, explicit requests are throttled. PThammer-style
      pressure carried by the page walker is victim traffic from the
      scheduler's point of view and passes untouched — exactly the blind
      spot the implicit strategy exploits.
    """

    name = "BlockhammerThrottle"

    #: Default per-row activation quota per exposure window, in the same
    #: units as :data:`repro.attacks.adaptive.OP_COSTS` (a focused
    #: attacker fits two kill-grade ops on one row, never three).
    DEFAULT_QUOTA = 64

    def __init__(self, quota: int = DEFAULT_QUOTA):
        if quota < 1:
            raise ValueError("throttle quota must be >= 1")
        self.quota = quota
        self._pressure: Dict[RowKey, int] = {}
        #: Cumulative ops refused — the defense-visible throttle signal.
        self.blocked = 0
        #: Cumulative ops admitted.
        self.admitted = 0

    def begin_window(self) -> None:
        """A refresh window elapsed: per-row pressure decays to zero."""
        self._pressure.clear()

    def request(self, row_key: RowKey, cost: int) -> bool:
        """May an explicit op land ``cost`` activations on ``row_key``?"""
        used = self._pressure.get(row_key, 0)
        if used + cost > self.quota:
            self.blocked += 1
            return False
        self._pressure[row_key] = used + cost
        self.admitted += 1
        return True

    def pressure(self, row_key: RowKey) -> int:
        return self._pressure.get(row_key, 0)


# -- PTE-level protections ---------------------------------------------------


@dataclass
class DetectionVerdict:
    """What a PTE-level checker concluded about a (possibly faulty) PTE."""

    detected: bool
    reason: str


class SecWalkChecker:
    """SecWalk's [50] per-PTE error-detection code, as the paper models it:
    a 25-bit non-cryptographic EDC that detects at most 4 bit flips per
    PTE. Five or more flips — or an adversary solving the linear code —
    escape detection (the ECCploit [10] argument)."""

    name = "SecWalk"
    max_detectable_flips = 4

    def check(self, original_pte: int, observed_pte: int) -> DetectionVerdict:
        flips = hamming_distance(original_pte, observed_pte)
        if flips == 0:
            return DetectionVerdict(detected=False, reason="clean")
        if flips <= self.max_detectable_flips:
            return DetectionVerdict(detected=True, reason=f"{flips} flips <= 4")
        return DetectionVerdict(
            detected=False, reason=f"{flips} flips exceed EDC distance"
        )


class MonotonicPlacement:
    """Monotonic pointers [58]: page tables live in true-cell rows above a
    PFN watermark; user frames live below. A 1->0 PFN flip can only lower
    the PFN, so it cannot redirect a PTE *into* the page-table region.

    :meth:`exploit_prevented` evaluates whether a given tampering is
    stopped. Metadata flips (user/writable/NX/MPK) are out of scope for
    the defense and always succeed against it.
    """

    name = "MonotonicPointers"

    def __init__(self, watermark_pfn: int):
        self.watermark_pfn = watermark_pfn

    def placement_ok(self, table_pfn: int) -> bool:
        return table_pfn >= self.watermark_pfn

    def exploit_prevented(
        self, original_pte: int, tampered_pte: int, tampered_pfn: int
    ) -> DetectionVerdict:
        pfn_bits_changed = (original_pte ^ tampered_pte) & (((1 << 40) - 1) << 12)
        metadata_changed = (original_pte ^ tampered_pte) & ~(((1 << 40) - 1) << 12)
        if metadata_changed and not pfn_bits_changed:
            return DetectionVerdict(
                detected=False, reason="metadata-only tampering not covered"
            )
        # True cells only discharge: a flip can only clear PFN bits, so the
        # PFN monotonically decreases — below the page-table watermark.
        if tampered_pfn < self.watermark_pfn:
            return DetectionVerdict(
                detected=True, reason="PFN fell below page-table watermark"
            )
        return DetectionVerdict(
            detected=False, reason="anti-cell (0->1) flip escaped monotonicity"
        )
