"""PT-Guard reproduction: integrity-protected page tables vs Rowhammer.

A from-scratch Python implementation of *PT-Guard: Integrity-Protected
Page Tables to Defend Against Breakthrough Rowhammer Attacks* (DSN 2023)
and every substrate its evaluation depends on: a DDR4 DRAM model with a
Rowhammer fault model, a memory controller hosting the PT-Guard MAC
machinery, a three-level cache hierarchy, a 4-level x86_64 MMU with TLB
and page-walk caches, a miniature OS with buddy allocation and demand
paging, an in-order CPU timing model, and the attack/defense zoo the
paper positions itself against.

Quick start::

    from repro import build_system, PTGuardConfig

    system = build_system(ptguard=PTGuardConfig(correction_enabled=True))
    process = system.kernel.create_process("app")
    vma = system.kernel.mmap(process, num_pages=16, populate=True)
    physical = system.kernel.access_virtual(process, vma.start)

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
paper's tables and figures.
"""

from repro.common.config import (
    CacheConfig,
    DRAMConfig,
    DRAMTimingConfig,
    PTGuardConfig,
    SystemConfig,
    TLBConfig,
    default_system_config,
    optimized_ptguard_config,
)
from repro.common.errors import (
    AllocationError,
    CollisionBufferOverflow,
    ConfigurationError,
    IntegrityError,
    PTGuardError,
    PageFaultError,
    TranslationError,
)
from repro.core.guard import PTGuard, ReadOutcome, WriteOutcome
from repro.dram.rowhammer import RowhammerProfile
from repro.harness.system import System, build_system
from repro.mmu.walker import PTEIntegrityException

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "DRAMConfig",
    "DRAMTimingConfig",
    "PTGuardConfig",
    "SystemConfig",
    "TLBConfig",
    "default_system_config",
    "optimized_ptguard_config",
    "AllocationError",
    "CollisionBufferOverflow",
    "ConfigurationError",
    "IntegrityError",
    "PTGuardError",
    "PageFaultError",
    "TranslationError",
    "PTGuard",
    "ReadOutcome",
    "WriteOutcome",
    "RowhammerProfile",
    "System",
    "build_system",
    "PTEIntegrityException",
    "__version__",
]
