"""The OS substrate: a miniature kernel over the simulated machine.

The kernel owns the physical-page allocator and builds *real* page tables
in simulated DRAM, writing every PTE through the memory controller — so
PT-Guard's write-side pattern match sees genuine page-table traffic
without any software cooperation, exactly the paper's deployment model.

Responsibilities:

* physical memory management (buddy allocator; a reserved kernel region);
* process lifecycle (create/destroy, ASIDs, page-table roots);
* demand paging (page-fault handling on first touch);
* the ``PhysicalPort`` used by page tables — line-granularity
  read-modify-write through the controller, mirroring how real PTE stores
  travel through the cache hierarchy to DRAM;
* handling PT-Guard's integrity exception (kill process / report), and
  the CTB-overflow re-key sweep (Sec VII-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.config import CACHELINE_BYTES, PAGE_BYTES, SystemConfig
from repro.common.errors import AllocationError, PageFaultError
from repro.common.stats import StatGroup
from repro.mem.controller import MemoryController
from repro.mmu.page_table import LEVELS, PageTable
from repro.mmu.pte import X86PageTableEntry, make_x86_pte
from repro.mmu.walker import ControllerPort, PageWalker, PTEIntegrityException
from repro.os.allocator import BuddyAllocator
from repro.os.process import VMA, Process
from repro.recovery.shadow import ShadowEntry, ShadowMap

KERNEL_RESERVED_PAGES = 256  # first 1 MB: "kernel image + boot structures"


class ControllerPhysicalPort:
    """Line-granularity physical access through the memory controller.

    Models the path OS stores take: a read-modify-write of the containing
    cacheline. Reads of protected lines come back MAC-stripped; writes of
    PTE lines match the bit pattern and get a fresh MAC embedded.
    """

    def __init__(self, controller: MemoryController):
        self.controller = controller

    def read_u64(self, address: int) -> int:
        line_address = address & ~(CACHELINE_BYTES - 1)
        response = self.controller.read_line(line_address)
        offset = address - line_address
        return int.from_bytes(response.data[offset : offset + 8], "little")

    def write_u64(self, address: int, value: int) -> None:
        line_address = address & ~(CACHELINE_BYTES - 1)
        response = self.controller.read_line(line_address)
        line = bytearray(response.data)
        offset = address - line_address
        line[offset : offset + 8] = (value & (1 << 64) - 1).to_bytes(8, "little")
        self.controller.write_line(line_address, bytes(line))

    def read_bytes(self, address: int, length: int) -> bytes:
        out = bytearray()
        cursor = address
        while len(out) < length:
            line_address = cursor & ~(CACHELINE_BYTES - 1)
            response = self.controller.read_line(line_address)
            offset = cursor - line_address
            take = min(CACHELINE_BYTES - offset, length - len(out))
            out += response.data[offset : offset + take]
            cursor += take
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        cursor = address
        view = memoryview(data)
        while view:
            line_address = cursor & ~(CACHELINE_BYTES - 1)
            offset = cursor - line_address
            take = min(CACHELINE_BYTES - offset, len(view))
            if take == CACHELINE_BYTES:
                self.controller.write_line(line_address, bytes(view[:take]))
            else:
                response = self.controller.read_line(line_address)
                line = bytearray(response.data)
                line[offset : offset + take] = view[:take]
                self.controller.write_line(line_address, bytes(line))
            cursor += take
            view = view[take:]


class _ShadowWriter:
    """Per-process page-table store hook feeding the shadow map.

    A module-level callable (not a closure) so booted systems stay
    picklable for the boot-snapshot disk tier.
    """

    __slots__ = ("shadow", "pid")

    def __init__(self, shadow: ShadowMap, pid: int):
        self.shadow = shadow
        self.pid = pid

    def __call__(
        self, entry_address: int, value: int, level: int, virtual_address: int
    ) -> None:
        if value == 0:
            self.shadow.forget(entry_address)
            return
        leaf = level == LEVELS - 1
        self.shadow.record(
            ShadowEntry(
                pid=self.pid,
                level=level,
                entry_address=entry_address,
                value=value,
                virtual_address=virtual_address if leaf else None,
                pfn=X86PageTableEntry(value).pfn if leaf else None,
            )
        )


@dataclass
class IntegrityIncident:
    """Record of one PTECheckFailed exception delivered to the kernel."""

    pid: int
    virtual_address: int
    entry_address: int
    action: str  # "killed" | "corrected" | "reported"


class Kernel:
    """Miniature OS over one memory controller."""

    def __init__(self, controller: MemoryController, config: Optional[SystemConfig] = None):
        self.controller = controller
        self.config = config if config is not None else SystemConfig()
        self.port = ControllerPhysicalPort(controller)
        total_pages = self.controller.dram.config.size_bytes // PAGE_BYTES
        # Spare rows reserved for retirement sit at the top of the address
        # space; the allocator must never hand those pages out.
        spare_pages = self.controller.dram.reserved_spare_pages
        self.allocator = BuddyAllocator(
            base_pfn=KERNEL_RESERVED_PAGES,
            num_pages=total_pages - KERNEL_RESERVED_PAGES - spare_pages,
        )
        # Shadow reverse map: every PTE store any process's page table
        # makes is mirrored here (repro.recovery reconstruction source).
        self.shadow = ShadowMap()
        self.processes: Dict[int, Process] = {}
        self.incidents: List[IntegrityIncident] = []
        self.walker = PageWalker(ControllerPort(controller))
        self.stats = StatGroup("kernel")
        self.last_rekey_cycles = 0
        self._next_pid = 1

    # -- frame management -------------------------------------------------------

    def allocate_table_page(self) -> int:
        """Allocate and *zero through the controller* one page-table page.

        Zeroing through the controller is essential: every PTE line of the
        new table crosses the guard's write path, matches the bit pattern
        (all zeros) and receives its MAC — so a later hardware walk of a
        not-yet-populated line passes its integrity check.
        """
        pfn = self.allocator.alloc_page()
        self.zero_page(pfn)
        self.stats.increment("table_pages")
        return pfn

    def zero_page(self, pfn: int) -> None:
        base = pfn * PAGE_BYTES
        zero_line = bytes(CACHELINE_BYTES)
        for offset in range(0, PAGE_BYTES, CACHELINE_BYTES):
            self.controller.write_line(base + offset, zero_line)

    # -- process lifecycle ----------------------------------------------------------

    def create_process(self, name: str = "proc") -> Process:
        root_pfn = self.allocate_table_page()
        pid = self._next_pid
        self._next_pid += 1
        page_table = PageTable(
            self.port,
            root_pfn,
            allocate_table_page=self.allocate_table_page,
            on_entry_written=self._shadow_writer(pid),
        )
        process = Process(pid=pid, name=name, page_table=page_table)
        self.processes[pid] = process
        self.stats.increment("processes_created")
        return process

    def _shadow_writer(self, pid: int) -> "_ShadowWriter":
        """Per-process page-table store hook feeding the shadow map."""
        return _ShadowWriter(self.shadow, pid)

    def destroy_process(self, process: Process) -> None:
        """Free every frame and table page the process owns."""
        for pfn in process.frames.values():
            self.allocator.free_pages(pfn)
        for table_pfn in process.page_table.table_pfns:
            self.allocator.free_pages(table_pfn)
        self.shadow.forget_pid(process.pid)
        self.processes.pop(process.pid, None)
        self.walker.tlb.invalidate_asid(process.asid)
        # The walk cache keys entries by physical address; the freed table
        # frames may be re-used by another process, so shoot it down.
        self.walker.mmu_cache.flush()
        self.stats.increment("processes_destroyed")

    # -- mmap + demand paging ----------------------------------------------------------

    def mmap(
        self,
        process: Process,
        num_pages: int,
        name: str = "anon",
        writable: bool = True,
        executable: bool = False,
        at: Optional[int] = None,
        populate: bool = False,
    ) -> VMA:
        """Create a VMA; optionally fault every page in immediately."""
        if at is not None:
            vma = process.add_vma(
                VMA(start=at, num_pages=num_pages, writable=writable,
                    executable=executable, name=name)
            )
        else:
            vma = process.reserve_mmap_region(
                num_pages, name=name, writable=writable, executable=executable
            )
        if populate:
            for page in range(num_pages):
                self.handle_page_fault(process, vma.start + page * PAGE_BYTES)
        return vma

    def handle_page_fault(self, process: Process, virtual_address: int) -> int:
        """Demand-paging fault: allocate a frame and map it. Returns the PFN."""
        vma = process.find_vma(virtual_address)
        if vma is None:
            raise PageFaultError(virtual_address, level=-1, message="SIGSEGV: no VMA")
        vpn = virtual_address >> 12
        if vpn in process.frames:
            return process.frames[vpn]
        pfn = self.allocator.alloc_page()
        process.frames[vpn] = pfn
        process.page_table.map(
            virtual_address & ~(PAGE_BYTES - 1),
            pfn,
            writable=vma.writable,
            user=True,
            no_execute=not vma.executable,
        )
        self.stats.increment("page_faults")
        return pfn

    # -- user access path (functional) ---------------------------------------------------

    def access_virtual(
        self, process: Process, virtual_address: int, write: bool = False
    ) -> int:
        """Translate a user access, faulting pages in on demand.

        Returns the physical address. PT-Guard integrity failures during
        the walk surface as :class:`PTEIntegrityException` *after* being
        recorded as an incident (the OS's exception handler runs first).
        """
        faults = 0
        while True:
            try:
                result = self.walker.translate(
                    process.asid, process.page_table.root_pfn, virtual_address
                )
                return result.pfn * PAGE_BYTES + (virtual_address & (PAGE_BYTES - 1))
            except PageFaultError:
                faults += 1
                if faults == 2:
                    # The page was supposedly resident yet the walk still
                    # faults (e.g. a flipped present bit): re-establish the
                    # mapping explicitly, as an OS would on a spurious fault.
                    vpn = virtual_address >> 12
                    pfn = process.frames.get(vpn)
                    if pfn is not None:
                        process.page_table.map(
                            virtual_address & ~(PAGE_BYTES - 1), pfn,
                            writable=True, user=True,
                        )
                        continue
                if faults > 2:
                    # Unresolvable: surface it rather than loop (the OS
                    # would deliver SIGBUS).
                    raise
                self.handle_page_fault(process, virtual_address)
            except PTEIntegrityException as exc:
                self.incidents.append(
                    IntegrityIncident(
                        pid=process.pid,
                        virtual_address=virtual_address,
                        entry_address=exc.line_address,
                        action="killed",
                    )
                )
                self.stats.increment("integrity_kills")
                raise

    def read_virtual(self, process: Process, virtual_address: int, length: int) -> bytes:
        """Read user memory through translation (may fault pages in)."""
        out = bytearray()
        cursor = virtual_address
        while len(out) < length:
            physical = self.access_virtual(process, cursor)
            take = min(PAGE_BYTES - (cursor & (PAGE_BYTES - 1)), length - len(out))
            out += self.port.read_bytes(physical, take)
            cursor += take
        return bytes(out)

    def write_virtual(self, process: Process, virtual_address: int, data: bytes) -> None:
        """Write user memory through translation (may fault pages in)."""
        cursor = virtual_address
        view = memoryview(data)
        while view:
            physical = self.access_virtual(process, cursor, write=True)
            take = min(PAGE_BYTES - (cursor & (PAGE_BYTES - 1)), len(view))
            self.port.write_bytes(physical, bytes(view[:take]))
            cursor += take
            view = view[take:]

    # -- PTE-line reconstruction (repro.recovery) -----------------------------------------

    def reconstruct_pte_line(self, line_address: int) -> tuple[bool, int]:
        """Rebuild a corrupted page-table cacheline from the shadow map.

        Each of the 8 PTE slots is rebuilt from its :class:`ShadowEntry`;
        slots with no shadow become not-present (zero). Leaf slots are
        cross-checked against the owning process's ``frames`` map (the
        authoritative allocation record): a disagreeing PFN is repaired
        from ``frames`` keeping the shadow's permission bits, a mapping
        that no longer exists (or whose owner died) is dropped. The
        rebuilt line is written through the controller — the guard embeds
        a fresh MAC — then re-verified through the real isPTE read path.

        Returns ``(ok, cycles)``: whether the line now passes its
        integrity check, and the controller cycles the repair consumed.
        """
        base = line_address & ~(CACHELINE_BYTES - 1)
        line = bytearray(CACHELINE_BYTES)
        covered = False
        for slot in range(CACHELINE_BYTES // 8):
            entry_address = base + slot * 8
            entry = self.shadow.lookup(entry_address)
            if entry is None:
                continue
            owner = self.processes.get(entry.pid)
            if owner is None:
                # Shadow outlived its process: stale, rebuild as hole.
                self.shadow.forget(entry_address)
                self.stats.increment("stale_shadow_drops")
                continue
            value = entry.value
            if entry.is_leaf:
                authoritative = owner.frames.get(entry.vpn)
                if authoritative is None:
                    # The mapping is gone (unmapped frame): drop the slot.
                    self.shadow.forget(entry_address)
                    self.stats.increment("stale_shadow_drops")
                    continue
                decoded = X86PageTableEntry(value)
                if decoded.pfn != authoritative:
                    # Stale shadow value: repair from the frames map,
                    # keeping the recorded permission bits.
                    value = make_x86_pte(
                        authoritative,
                        writable=decoded.writable,
                        user=decoded.user_accessible,
                        no_execute=decoded.no_execute,
                        protection_key=decoded.protection_key,
                    )
                    entry.value = value
                    entry.pfn = authoritative
                    self.stats.increment("stale_shadow_repairs")
            line[slot * 8 : slot * 8 + 8] = value.to_bytes(8, "little")
            covered = True
        if not covered:
            self.stats.increment("reconstruction_misses")
            return False, 0
        write_response = self.controller.write_line(base, bytes(line))
        verify_response = self.controller.read_line(base, is_pte=True)
        cycles = write_response.latency_cycles + verify_response.latency_cycles
        if verify_response.pte_check_failed:
            self.stats.increment("reconstruction_failures")
            return False, cycles
        # Translations derived from the corrupt line must not survive.
        self.walker.tlb.flush()
        self.walker.mmu_cache.flush()
        self.stats.increment("pte_lines_reconstructed")
        return True, cycles

    # -- PT-Guard maintenance hooks -------------------------------------------------------

    def handle_ctb_overflow(self, overflow_address: int) -> None:
        """The Sec VII-B overflow response: sanitise the colliding line by
        writing a benign value (zeros) to it, so it no longer collides,
        then re-key the whole memory. In a real deployment the OS would
        also kill the process that crafted the colliding value."""
        self.controller.write_line(overflow_address, bytes(CACHELINE_BYTES))
        self.stats.increment("ctb_overflow_responses")
        self.rekey_memory()

    def rekey_memory(self) -> int:
        """Full-memory re-key after CTB pressure (Sec VII-B).

        Reads every resident line under the old key (stripping MACs where
        present), rotates the guard's key epoch, and rewrites the lines so
        fresh MACs are embedded. Returns the number of lines rewritten.
        """
        guard = self.controller.ptguard
        if guard is None:
            self.last_rekey_cycles = 0
            return 0
        cycles = 0
        memory = self.controller.dram.memory
        logical: Dict[int, bytes] = {}
        for line_address in list(memory.touched_lines()):
            response = self.controller.read_line(line_address)
            logical[line_address] = response.data
            cycles += response.latency_cycles
        guard.rekey()
        for line_address, data in logical.items():
            cycles += self.controller.write_line(line_address, data).latency_cycles
        self.stats.increment("rekeys")
        # Controller cycles the sweep cost (read-old-key + write-new-key);
        # recovery accounting reads this right after triggering a rekey.
        self.last_rekey_cycles = cycles
        return len(logical)
