"""OS substrate: buddy allocator, processes, and the miniature kernel."""

from repro.os.allocator import BuddyAllocator
from repro.os.kernel import ControllerPhysicalPort, IntegrityIncident, Kernel
from repro.os.process import VMA, Process

__all__ = [
    "BuddyAllocator",
    "ControllerPhysicalPort",
    "IntegrityIncident",
    "Kernel",
    "VMA",
    "Process",
]
