"""Buddy page-frame allocator.

The kernel substrate allocates physical frames from here. A binary-buddy
scheme reproduces the allocation behaviour behind the paper's Figure 8
insight: order-0 allocations carved out of a freshly split block hand out
*consecutive* PFNs, which is why sequentially faulted process memory shows
~24 % contiguous-PFN PTEs; as memory fragments, contiguity drops — the
spread visible across the paper's 623 processes.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.common.bitops import is_pow2
from repro.common.errors import AllocationError

MAX_ORDER = 10  # largest block: 2^10 pages = 4 MB


class BuddyAllocator:
    """Binary buddy allocator over a contiguous PFN range."""

    def __init__(self, base_pfn: int, num_pages: int):
        if num_pages <= 0:
            raise AllocationError("allocator needs at least one page")
        self.base_pfn = base_pfn
        self.num_pages = num_pages
        # Free lists per order hold block *base PFNs* (relative to base_pfn).
        self._free: Dict[int, List[int]] = {order: [] for order in range(MAX_ORDER + 1)}
        self._allocated: Dict[int, int] = {}  # block base -> order
        self._free_blocks: Set[int] = set()  # membership mirror of _free
        self._seed_free_lists()

    def _seed_free_lists(self) -> None:
        """Cover [0, num_pages) with maximal naturally aligned blocks."""
        cursor = 0
        remaining = self.num_pages
        while remaining:
            order = MAX_ORDER
            while order > 0 and (
                (1 << order) > remaining or cursor % (1 << order) != 0
            ):
                order -= 1
            self._free[order].append(cursor)
            self._free_blocks.add(cursor)
            cursor += 1 << order
            remaining -= 1 << order

    # -- allocation -------------------------------------------------------------

    def alloc_pages(self, order: int = 0) -> int:
        """Allocate a 2^order-page block; returns its absolute base PFN."""
        if not 0 <= order <= MAX_ORDER:
            raise AllocationError(f"order {order} out of range [0, {MAX_ORDER}]")
        source = order
        while source <= MAX_ORDER and not self._free[source]:
            source += 1
        if source > MAX_ORDER:
            raise AllocationError(f"out of memory for order-{order} allocation")
        block = self._free[source].pop()
        self._free_blocks.discard(block)
        # Split down to the requested order, freeing the upper buddies.
        while source > order:
            source -= 1
            buddy = block + (1 << source)
            self._free[source].append(buddy)
            self._free_blocks.add(buddy)
        self._allocated[block] = order
        return self.base_pfn + block

    def alloc_page(self) -> int:
        """Allocate a single page frame."""
        return self.alloc_pages(0)

    # -- release -------------------------------------------------------------------

    def free_pages(self, pfn: int) -> None:
        """Free a previously allocated block (identified by its base PFN)."""
        block = pfn - self.base_pfn
        if block not in self._allocated:
            raise AllocationError(f"double free or bad PFN {pfn:#x}")
        order = self._allocated.pop(block)
        # Coalesce with the buddy while it is free and order permits.
        while order < MAX_ORDER:
            buddy = block ^ (1 << order)
            if buddy not in self._free_blocks:
                break
            sibling_order_list = self._free[order]
            if buddy not in sibling_order_list:
                break  # buddy free but at a different order: cannot merge
            sibling_order_list.remove(buddy)
            self._free_blocks.discard(buddy)
            block = min(block, buddy)
            order += 1
        self._free[order].append(block)
        self._free_blocks.add(block)

    # -- introspection ---------------------------------------------------------------

    @property
    def free_pages_count(self) -> int:
        return sum(len(blocks) << order for order, blocks in self._free.items())

    @property
    def allocated_pages_count(self) -> int:
        return sum(1 << order for order in self._allocated.values())

    def is_allocated(self, pfn: int) -> bool:
        return (pfn - self.base_pfn) in self._allocated

    def fragmentation(self) -> float:
        """1 - (largest free block / total free): 0 = unfragmented."""
        free_total = self.free_pages_count
        if free_total == 0:
            return 0.0
        largest = 0
        for order in range(MAX_ORDER, -1, -1):
            if self._free[order]:
                largest = 1 << order
                break
        return 1.0 - largest / free_total
