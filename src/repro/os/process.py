"""Process abstraction: address space, VMAs, demand paging state.

A process owns a 4-level page table and a list of virtual memory areas
(VMAs). Pages are populated on first touch (demand paging) by the kernel,
which is what produces the page-table shape Figure 8 profiles: a VMA that
only partially covers a leaf table leaves the rest of that table's 512
PTEs zero, and sequential faults receive buddy-contiguous frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.config import PAGE_BYTES
from repro.mmu.page_table import PageTable

# Conventional layout bases (x86_64 user space).
TEXT_BASE = 0x0000_0000_0040_0000
HEAP_BASE = 0x0000_0000_1000_0000
MMAP_BASE = 0x0000_7F00_0000_0000
STACK_TOP = 0x0000_7FFF_FFFF_F000


@dataclass
class VMA:
    """One virtual memory area."""

    start: int  # page-aligned VA
    num_pages: int
    writable: bool = True
    executable: bool = False
    name: str = "anon"

    @property
    def end(self) -> int:
        return self.start + self.num_pages * PAGE_BYTES

    def contains(self, virtual_address: int) -> bool:
        return self.start <= virtual_address < self.end


@dataclass
class Process:
    """A user process: ASID, page table, VMAs, and fault bookkeeping."""

    pid: int
    name: str
    page_table: PageTable
    vmas: List[VMA] = field(default_factory=list)
    frames: Dict[int, int] = field(default_factory=dict)  # vpn -> pfn
    _mmap_cursor: int = MMAP_BASE

    @property
    def asid(self) -> int:
        return self.pid

    def find_vma(self, virtual_address: int) -> Optional[VMA]:
        for vma in self.vmas:
            if vma.contains(virtual_address):
                return vma
        return None

    def add_vma(self, vma: VMA) -> VMA:
        if any(
            existing.start < vma.end and vma.start < existing.end
            for existing in self.vmas
        ):
            raise ValueError(f"VMA [{vma.start:#x}, {vma.end:#x}) overlaps existing")
        self.vmas.append(vma)
        return vma

    def reserve_mmap_region(self, num_pages: int, name: str = "anon",
                            writable: bool = True, executable: bool = False) -> VMA:
        """Carve the next VMA out of the mmap area (like mmap(NULL, ...))."""
        vma = VMA(
            start=self._mmap_cursor,
            num_pages=num_pages,
            writable=writable,
            executable=executable,
            name=name,
        )
        self.add_vma(vma)
        # Leave a one-page guard gap, as Linux's mmap layout tends to.
        self._mmap_cursor = vma.end + PAGE_BYTES
        return vma

    @property
    def resident_pages(self) -> int:
        return len(self.frames)
