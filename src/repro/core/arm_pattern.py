"""ARMv8 PTE-cacheline layout for PT-Guard (paper Sec IV-F: "the
principles apply to ARMv8 or any other ISA").

ARMv8 stage-1 descriptors provision a 40-bit PFN split across bits 49:12
(PFN[37:0]) and bits 9:8 (PFN[39:38]) — see paper Table II. On a client
system bounded at 1 TB (28-bit PFN), the unused PFN capacity is:

* bits 49:40 — the upper 10 bits of PFN[37:0];
* bits 9:8   — PFN[39:38], only meaningful beyond 1 TB.

That is 12 unused bits per PTE, exactly as on x86_64, pooling to the same
96-bit per-line MAC. The identifier extension uses the OS-ignored bits
58:55 plus the reserved bits 50 and 63 (6 bits per PTE, a 48-bit
identifier — slightly narrower than x86_64's 56 bits, still far beyond
accidental-match range).

The functions mirror :mod:`repro.core.pattern`; both variants are tested
against the same round-trip properties.
"""

from __future__ import annotations

from typing import List

from repro.common.bitops import mask
from repro.common.config import CACHELINE_BYTES, PTES_PER_LINE

# MAC carrier: bits 49:40 (10 bits) + bits 9:8 (2 bits) per PTE.
_MAC_HIGH_FIELD_LOW, _MAC_HIGH_BITS = 40, 10
_MAC_LOW_FIELD_LOW, _MAC_LOW_BITS = 8, 2
MAC_BITS_PER_PTE = _MAC_HIGH_BITS + _MAC_LOW_BITS  # 12
MAC_BITS_PER_LINE = MAC_BITS_PER_PTE * PTES_PER_LINE  # 96

# Identifier carrier: ignored bits 58:55, reserved bits 50 and 63.
_ID_SEGMENTS = ((55, 4), (50, 1), (63, 1))  # (low_bit, width)
ID_BITS_PER_PTE = sum(width for _, width in _ID_SEGMENTS)  # 6
ID_BITS_PER_LINE = ID_BITS_PER_PTE * PTES_PER_LINE  # 48

ACCESSED_BIT = 10  # ARM's access flag, hardware-managed like x86's bit 5


def _spread(field_mask: int) -> int:
    value = 0
    for index in range(PTES_PER_LINE):
        value |= field_mask << (64 * index)
    return value


_MAC_PTE_MASK = (mask(_MAC_HIGH_BITS) << _MAC_HIGH_FIELD_LOW) | (
    mask(_MAC_LOW_BITS) << _MAC_LOW_FIELD_LOW
)
_ID_PTE_MASK = 0
for _low, _width in _ID_SEGMENTS:
    _ID_PTE_MASK |= mask(_width) << _low

MAC_FIELDS_LINE_MASK = _spread(_MAC_PTE_MASK)
ID_FIELDS_LINE_MASK = _spread(_ID_PTE_MASK)


def protected_bits_mask(max_phys_bits: int = 40) -> int:
    """MAC coverage for an ARMv8 PTE at 1 TB: valid/attr/AP flags, PFN
    bits 39:12, dirty/contiguous/XN/hardware-attribute metadata — the
    accessed flag (bit 10) and the metadata carriers excluded."""
    value = mask(64)
    value &= ~_MAC_PTE_MASK
    value &= ~_ID_PTE_MASK
    value &= ~(1 << ACCESSED_BIT)
    return value


_PROTECTED_LINE_MASK = _spread(protected_bits_mask())


def matches_pattern(line: bytes, extended: bool = False) -> bool:
    """ARMv8 bit-pattern match: unused PFN bits (and, extended, the
    ignored/reserved bits) must be zero."""
    value = int.from_bytes(line, "little")
    fields = MAC_FIELDS_LINE_MASK | (ID_FIELDS_LINE_MASK if extended else 0)
    return value & fields == 0


def mask_unprotected(line: bytes, max_phys_bits: int = 40) -> bytes:
    value = int.from_bytes(line, "little") & _PROTECTED_LINE_MASK
    return value.to_bytes(CACHELINE_BYTES, "little")


def extract_mac(line: bytes) -> int:
    value = int.from_bytes(line, "little")
    tag = 0
    for index in range(PTES_PER_LINE):
        pte = (value >> (64 * index)) & mask(64)
        chunk = (pte >> _MAC_HIGH_FIELD_LOW) & mask(_MAC_HIGH_BITS)
        chunk |= ((pte >> _MAC_LOW_FIELD_LOW) & mask(_MAC_LOW_BITS)) << _MAC_HIGH_BITS
        tag |= chunk << (MAC_BITS_PER_PTE * index)
    return tag


def embed_mac(line: bytes, tag: int) -> bytes:
    if tag >> MAC_BITS_PER_LINE:
        raise ValueError(f"MAC does not fit in {MAC_BITS_PER_LINE} bits")
    value = int.from_bytes(line, "little") & ~MAC_FIELDS_LINE_MASK
    for index in range(PTES_PER_LINE):
        chunk = (tag >> (MAC_BITS_PER_PTE * index)) & mask(MAC_BITS_PER_PTE)
        high = chunk & mask(_MAC_HIGH_BITS)
        low = chunk >> _MAC_HIGH_BITS
        value |= high << (64 * index + _MAC_HIGH_FIELD_LOW)
        value |= low << (64 * index + _MAC_LOW_FIELD_LOW)
    return value.to_bytes(CACHELINE_BYTES, "little")


def strip_mac(line: bytes) -> bytes:
    value = int.from_bytes(line, "little") & ~MAC_FIELDS_LINE_MASK
    return value.to_bytes(CACHELINE_BYTES, "little")


def extract_identifier(line: bytes) -> int:
    value = int.from_bytes(line, "little")
    identifier = 0
    for index in range(PTES_PER_LINE):
        pte = (value >> (64 * index)) & mask(64)
        chunk = 0
        offset = 0
        for low, width in _ID_SEGMENTS:
            chunk |= ((pte >> low) & mask(width)) << offset
            offset += width
        identifier |= chunk << (ID_BITS_PER_PTE * index)
    return identifier


def embed_identifier(line: bytes, identifier: int) -> bytes:
    if identifier >> ID_BITS_PER_LINE:
        raise ValueError(f"identifier does not fit in {ID_BITS_PER_LINE} bits")
    value = int.from_bytes(line, "little") & ~ID_FIELDS_LINE_MASK
    for index in range(PTES_PER_LINE):
        chunk = (identifier >> (ID_BITS_PER_PTE * index)) & mask(ID_BITS_PER_PTE)
        offset = 0
        for low, width in _ID_SEGMENTS:
            value |= ((chunk >> offset) & mask(width)) << (64 * index + low)
            offset += width
    return value.to_bytes(CACHELINE_BYTES, "little")


def strip_metadata(line: bytes) -> bytes:
    value = int.from_bytes(line, "little") & ~(
        MAC_FIELDS_LINE_MASK | ID_FIELDS_LINE_MASK
    )
    return value.to_bytes(CACHELINE_BYTES, "little")
