"""MAC engine: computes and verifies the PTE-line MAC (paper Sec IV-F, VI-C).

Wraps a :class:`repro.crypto.mac.LineMAC` with the PT-Guard specifics:

* the MAC input is the line with unprotected bits masked out
  (:func:`repro.core.pattern.mask_unprotected`), bound to the line address;
* verification supports *soft matching* — accepting a stored MAC within
  Hamming distance ``k`` of the computed one — which tolerates up to ``k``
  bit-flips in the MAC itself (Section VI-C) at a quantified security cost
  (Section VI-E, see :mod:`repro.core.security`).

A host-side **verify cache** (a bounded LRU keyed by line address,
validated against the exact line bytes) memoizes :meth:`MACEngine.compute`:
the MAC of an unchanged (line, address) pair is deterministic. The cache
is a pure simulator-speed optimisation — ``computations`` (the simulated
MAC-unit invocation count used for energy accounting) and every
verification outcome are identical with the cache on or off. A Rowhammer
flip in DRAM changes the line bytes, misses the cache, and is recomputed
honestly.

It is **disabled by default** (``PTGuardConfig.mac_verify_cache_entries
= 0``): on trace-driven timing runs the guard almost only re-sees a PTE
line at the DRAM boundary immediately after a write-back — which
invalidates the memo — so measured hit rates are ~0.1% and the lookup
bookkeeping outweighs the saved MAC work (see ``BENCH_hotpath.json``).
Enable it for read-dominated re-verification of unchanging lines under
an expensive backend (e.g. repeated qarma verification sweeps over a
fixed memory snapshot), where it wins by construction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple

from repro.common.bitops import hamming_distance
from repro.common.errors import InvariantViolation
from repro.common.stats import StatGroup
from repro.crypto.mac import LineMAC
from repro.core import pattern


class VerifyResult(NamedTuple):
    """Outcome of a MAC verification."""

    ok: bool
    distance: int  # Hamming distance between stored and computed MAC
    soft: bool  # True when the match needed the soft-match allowance


class MACEngine:
    """Computes/verifies PTE-line MACs for the memory controller.

    ``verify_cache_entries`` bounds the host-side memo of computed tags
    (0 disables it — e.g. for security experiments that want every MAC
    recomputed). Hit/miss/invalidation counts are observable through
    :attr:`stats`.
    """

    def __init__(
        self,
        line_mac: LineMAC,
        max_phys_bits: int,
        soft_match_k: int = 0,
        verify_cache_entries: int = 0,
    ):
        self.line_mac = line_mac
        self.max_phys_bits = max_phys_bits
        self.soft_match_k = soft_match_k
        self.computations = 0  # MAC-unit invocations (for energy accounting)
        self.verify_cache_entries = verify_cache_entries
        # address -> (line bytes, tag); LRU in insertion order.
        self._cache: "OrderedDict[int, tuple[bytes, int]] | None" = (
            OrderedDict() if verify_cache_entries > 0 else None
        )
        # Differential oracle (repro.faults.invariants): every
        # ``_oracle_period``-th fresh computation is recomputed through an
        # independent reference path and must agree bit-for-bit.
        self._oracle = None
        self._oracle_period = 0
        self._oracle_countdown = 0
        self.stats = StatGroup("mac_engine")

    @property
    def mac_bits(self) -> int:
        return self.line_mac.mac_bits

    def compute(self, line: bytes, address: int) -> int:
        """MAC over the protected bits of ``line``, bound to ``address``."""
        self.computations += 1
        cache = self._cache
        if cache is not None:
            entry = cache.get(address)
            if entry is not None and entry[0] == line:
                self.stats.increment("verify_cache_hits")
                cache.move_to_end(address)
                return entry[1]
            self.stats.increment("verify_cache_misses")
        masked = pattern.mask_unprotected(line, self.max_phys_bits)
        tag = self.line_mac.compute(masked, address)
        if self._oracle is not None:
            self._oracle_countdown -= 1
            if self._oracle_countdown <= 0:
                self._oracle_countdown = self._oracle_period
                self._check_oracle(masked, address, tag)
        if cache is not None:
            cache[address] = (line, tag)
            if len(cache) > self.verify_cache_entries:
                cache.popitem(last=False)
        return tag

    def attach_oracle(self, reference_compute, sample_period: int = 64) -> None:
        """Arm the differential oracle (``--validate``).

        ``reference_compute(masked_line, address)`` must be an
        independently constructed MAC (for qarma: the cell-by-cell
        reference path; see :func:`repro.crypto.mac.make_line_mac` with
        ``reference=True``). One in ``sample_period`` fresh computations
        is cross-checked; divergence raises
        :class:`~repro.common.errors.InvariantViolation`.
        """
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        self._oracle = reference_compute
        self._oracle_period = sample_period
        self._oracle_countdown = 1  # check the very next computation

    def detach_oracle(self) -> None:
        self._oracle = None
        self._oracle_period = 0
        self._oracle_countdown = 0

    def _check_oracle(self, masked: bytes, address: int, tag: int) -> None:
        expected = self._oracle(masked, address)
        self.stats.increment("oracle_checks")
        if expected != tag:
            self.stats.increment("oracle_divergences")
            raise InvariantViolation(
                f"MAC differential oracle diverged at line {address:#x}: "
                f"fast path {tag:#x} != reference {expected:#x}"
            )

    def invalidate_cached(self, address: int) -> None:
        """Drop the memoized tag for ``address`` (stored contents changed)."""
        cache = self._cache
        if cache is not None and cache.pop(address, None) is not None:
            self.stats.increment("verify_cache_invalidations")

    def clear_cache(self) -> None:
        """Drop every memoized tag (key rotation, experiment boundaries)."""
        if self._cache is not None:
            self._cache.clear()

    def compute_zero_mac(self) -> int:
        """The pre-computed MAC of an all-zero line *without* address binding.

        Stored on-chip (12 bytes) by the MAC-zero optimisation (Sec V-B) so
        zero cachelines never pay MAC-computation latency.
        """
        return self.line_mac.compute(bytes(64), 0)

    def verify(self, line: bytes, address: int, stored_mac: int, soft: bool = False) -> VerifyResult:
        """Check ``stored_mac`` against the MAC computed over ``line``.

        With ``soft=True`` the check passes when the Hamming distance is at
        most ``soft_match_k`` (fault-tolerant MAC, Sec VI-C).
        """
        computed = self.compute(line, address)
        distance = hamming_distance(computed, stored_mac)
        if distance == 0:
            return VerifyResult(ok=True, distance=0, soft=False)
        if soft and distance <= self.soft_match_k:
            return VerifyResult(ok=True, distance=distance, soft=True)
        return VerifyResult(ok=False, distance=distance, soft=False)


def register_invariants(checker, engine_fn, reference_fn) -> None:
    """Register the MAC differential check with an invariant checker.

    ``engine_fn``/``reference_fn`` are zero-argument callables resolving
    the *current* engine and a fresh reference MAC — callables, not
    objects, because :meth:`PTGuard.rekey` replaces the engine wholesale
    and a captured instance would silently check a retired key.
    """

    def check():
        engine = engine_fn()
        reference = reference_fn()
        probe = bytes(64)
        expected = reference.compute(probe, 0)
        actual = engine.line_mac.compute(probe, 0)
        if expected != actual:
            return [
                f"MAC fast path diverges from reference on the zero line: "
                f"{actual:#x} != {expected:#x}"
            ]
        return []

    checker.register("mac_differential_oracle", check)
