"""MAC engine: computes and verifies the PTE-line MAC (paper Sec IV-F, VI-C).

Wraps a :class:`repro.crypto.mac.LineMAC` with the PT-Guard specifics:

* the MAC input is the line with unprotected bits masked out
  (:func:`repro.core.pattern.mask_unprotected`), bound to the line address;
* verification supports *soft matching* — accepting a stored MAC within
  Hamming distance ``k`` of the computed one — which tolerates up to ``k``
  bit-flips in the MAC itself (Section VI-C) at a quantified security cost
  (Section VI-E, see :mod:`repro.core.security`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitops import hamming_distance
from repro.crypto.mac import LineMAC
from repro.core import pattern


@dataclass(frozen=True)
class VerifyResult:
    """Outcome of a MAC verification."""

    ok: bool
    distance: int  # Hamming distance between stored and computed MAC
    soft: bool  # True when the match needed the soft-match allowance


class MACEngine:
    """Computes/verifies PTE-line MACs for the memory controller."""

    def __init__(self, line_mac: LineMAC, max_phys_bits: int, soft_match_k: int = 0):
        self.line_mac = line_mac
        self.max_phys_bits = max_phys_bits
        self.soft_match_k = soft_match_k
        self.computations = 0  # MAC-unit invocations (for energy accounting)

    @property
    def mac_bits(self) -> int:
        return self.line_mac.mac_bits

    def compute(self, line: bytes, address: int) -> int:
        """MAC over the protected bits of ``line``, bound to ``address``."""
        self.computations += 1
        masked = pattern.mask_unprotected(line, self.max_phys_bits)
        return self.line_mac.compute(masked, address)

    def compute_zero_mac(self) -> int:
        """The pre-computed MAC of an all-zero line *without* address binding.

        Stored on-chip (12 bytes) by the MAC-zero optimisation (Sec V-B) so
        zero cachelines never pay MAC-computation latency.
        """
        return self.line_mac.compute(bytes(64), 0)

    def verify(self, line: bytes, address: int, stored_mac: int, soft: bool = False) -> VerifyResult:
        """Check ``stored_mac`` against the MAC computed over ``line``.

        With ``soft=True`` the check passes when the Hamming distance is at
        most ``soft_match_k`` (fault-tolerant MAC, Sec VI-C).
        """
        computed = self.compute(line, address)
        distance = hamming_distance(computed, stored_mac)
        if distance == 0:
            return VerifyResult(ok=True, distance=0, soft=False)
        if soft and distance <= self.soft_match_k:
            return VerifyResult(ok=True, distance=distance, soft=True)
        return VerifyResult(ok=False, distance=distance, soft=False)
