"""MAC engine: computes and verifies the PTE-line MAC (paper Sec IV-F, VI-C).

Wraps a :class:`repro.crypto.mac.LineMAC` with the PT-Guard specifics:

* the MAC input is the line with unprotected bits masked out
  (:func:`repro.core.pattern.mask_unprotected`), bound to the line address;
* verification supports *soft matching* — accepting a stored MAC within
  Hamming distance ``k`` of the computed one — which tolerates up to ``k``
  bit-flips in the MAC itself (Section VI-C) at a quantified security cost
  (Section VI-E, see :mod:`repro.core.security`).

A host-side **verify cache** (a bounded LRU keyed by line address,
validated against the *masked* line content — exactly the bits the MAC
covers) memoizes :meth:`MACEngine.compute`: the MAC is a pure function of
``(masked line, address)``, so an entry stays usable across changes to
unprotected bits (accessed-bit churn, MAC/identifier field rewrites) and
is bypassed the moment any protected bit differs. The cache is a pure
simulator-speed optimisation — ``computations`` (the simulated MAC-unit
invocation count used for energy accounting) and every verification
outcome are identical with the cache on or off. A Rowhammer flip in a
protected bit changes the masked content, misses the memo, and is
recomputed honestly; a flip confined to unprotected bits hits the memo
and returns precisely the tag a fresh computation would — by definition
of the masking, the same value.

It is **disabled by default** (``PTGuardConfig.mac_verify_cache_entries
= 0``) because the figure-6/7 timing sweeps use the ``pseudo`` backend,
where a tag costs less than the memo bookkeeping. For the cryptographic
backends (``qarma`` in particular) the batched execution core enables it
and pre-warms it from the page-table snapshot after prefault
(:meth:`MACEngine.warm`), moving the expensive tag computations out of
the timed window in one vectorized pass (see ``BENCH_hotpath.json``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple

from repro.common.bitops import hamming_distance
from repro.common.errors import InvariantViolation
from repro.common.stats import StatGroup
from repro.crypto.mac import LineMAC
from repro.core import pattern


class VerifyResult(NamedTuple):
    """Outcome of a MAC verification."""

    ok: bool
    distance: int  # Hamming distance between stored and computed MAC
    soft: bool  # True when the match needed the soft-match allowance


class MACEngine:
    """Computes/verifies PTE-line MACs for the memory controller.

    ``verify_cache_entries`` bounds the host-side memo of computed tags
    (0 disables it — e.g. for security experiments that want every MAC
    recomputed). Hit/miss/invalidation counts are observable through
    :attr:`stats`.
    """

    def __init__(
        self,
        line_mac: LineMAC,
        max_phys_bits: int,
        soft_match_k: int = 0,
        verify_cache_entries: int = 0,
    ):
        self.line_mac = line_mac
        self.max_phys_bits = max_phys_bits
        self.soft_match_k = soft_match_k
        self.computations = 0  # MAC-unit invocations (for energy accounting)
        self.verify_cache_entries = verify_cache_entries
        # address -> (masked line bytes, tag); LRU in insertion order.
        self._cache: "OrderedDict[int, tuple[bytes, int]] | None" = (
            OrderedDict() if verify_cache_entries > 0 else None
        )
        # Differential oracle (repro.faults.invariants): every
        # ``_oracle_period``-th fresh computation is recomputed through an
        # independent reference path and must agree bit-for-bit.
        self._oracle = None
        self._oracle_period = 0
        self._oracle_countdown = 0
        # Bulk-tag hints (batched walk support): address -> (masked line
        # bytes, tag), primed through :meth:`prime_bulk_tags` by the
        # batched execution core. Unlike the verify cache, a hint hit
        # still counts a ``computations`` tick and still runs the oracle
        # countdown — the hint replaces only the *host-side* scalar tag
        # computation, never a simulated outcome, so it is legal with the
        # verify cache disabled. ``bulk_hint_hits`` is a plain attribute
        # (not a stats key) so ``stats`` stays identical batched vs
        # scalar.
        self._bulk_tags: "dict[int, tuple[bytes, int]] | None" = None
        self.bulk_hint_hits = 0
        self.stats = StatGroup("mac_engine")

    @property
    def mac_bits(self) -> int:
        return self.line_mac.mac_bits

    def compute(self, line: bytes, address: int) -> int:
        """MAC over the protected bits of ``line``, bound to ``address``."""
        self.computations += 1
        masked = pattern.mask_unprotected(line, self.max_phys_bits)
        cache = self._cache
        if cache is not None:
            entry = cache.get(address)
            if entry is not None and entry[0] == masked:
                self.stats.increment("verify_cache_hits")
                cache.move_to_end(address)
                return entry[1]
            self.stats.increment("verify_cache_misses")
        tag = None
        bulk = self._bulk_tags
        if bulk is not None:
            hint = bulk.get(address)
            if hint is not None and hint[0] == masked:
                # Hint tags were produced by compute_batch over the same
                # masked bytes, so this IS the scalar tag — a changed
                # protected bit (fault, tamper) misses the content check
                # and falls through to the reference scalar path below.
                tag = hint[1]
                self.bulk_hint_hits += 1
        if tag is None:
            tag = self.line_mac.compute(masked, address)
        if self._oracle is not None:
            self._oracle_countdown -= 1
            if self._oracle_countdown <= 0:
                self._oracle_countdown = self._oracle_period
                self._check_oracle(masked, address, tag)
        if cache is not None:
            cache[address] = (masked, tag)
            if len(cache) > self.verify_cache_entries:
                cache.popitem(last=False)
        return tag

    def warm(self, lines, addresses) -> int:
        """Pre-seed the verify cache from a (lines, addresses) snapshot.

        Host-side only: tags are computed through the batched MAC path
        (when available) *without* touching ``computations`` or the
        oracle countdown, so every simulated outcome — including the
        energy-accounting counter — is exactly as if warming never
        happened. The first in-window verification of a warmed line then
        memo-hits instead of paying the (for qarma, ~100 us) scalar tag.
        Returns the number of entries seeded; a no-op when the cache is
        disabled.
        """
        cache = self._cache
        if cache is None:
            return 0
        count = min(len(lines), self.verify_cache_entries)
        lines = lines[:count]
        addresses = addresses[:count]
        if not count:
            return 0
        masked = [
            pattern.mask_unprotected(line, self.max_phys_bits) for line in lines
        ]
        compute_batch = getattr(self.line_mac, "compute_batch", None)
        if compute_batch is not None:
            tags = compute_batch(masked, addresses)
        else:
            tags = [
                self.line_mac.compute(m, a) for m, a in zip(masked, addresses)
            ]
        for m, a, t in zip(masked, addresses, tags):
            cache[a] = (m, t)
        while len(cache) > self.verify_cache_entries:
            cache.popitem(last=False)
        self.stats.increment("verify_cache_warmed", count)
        return count

    def prime_bulk_tags(self, lines, addresses) -> int:
        """Pre-compute tag hints for ``addresses`` in one vectorized pass.

        Used by the batched execution core before a walk-heavy batch:
        page-table lines are gathered and their tags computed through
        ``compute_batch`` so that mid-batch :meth:`compute` calls — which
        are what the inline page walk's PTE-line fills land on — resolve
        from the hint dict instead of paying the scalar tag (for qarma,
        ~100 us each). Refresh-aware: addresses whose existing hint still
        matches the current masked bytes are skipped. Requires a batched
        backend; returns 0 (and primes nothing) when ``line_mac`` has no
        ``compute_batch``, since scalar priming would merely move the
        same host cost earlier.
        """
        compute_batch = getattr(self.line_mac, "compute_batch", None)
        if compute_batch is None:
            return 0
        bulk = self._bulk_tags
        if bulk is None:
            bulk = self._bulk_tags = {}
        fresh_masked = []
        fresh_addresses = []
        for line, address in zip(lines, addresses):
            masked = pattern.mask_unprotected(line, self.max_phys_bits)
            hint = bulk.get(address)
            if hint is not None and hint[0] == masked:
                continue
            fresh_masked.append(masked)
            fresh_addresses.append(address)
        if not fresh_masked:
            return 0
        tags = compute_batch(fresh_masked, fresh_addresses)
        for masked, address, tag in zip(fresh_masked, fresh_addresses, tags):
            bulk[address] = (masked, int(tag))
        return len(fresh_masked)

    def attach_oracle(self, reference_compute, sample_period: int = 64) -> None:
        """Arm the differential oracle (``--validate``).

        ``reference_compute(masked_line, address)`` must be an
        independently constructed MAC (for qarma: the cell-by-cell
        reference path; see :func:`repro.crypto.mac.make_line_mac` with
        ``reference=True``). One in ``sample_period`` fresh computations
        is cross-checked; divergence raises
        :class:`~repro.common.errors.InvariantViolation`.
        """
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        self._oracle = reference_compute
        self._oracle_period = sample_period
        self._oracle_countdown = 1  # check the very next computation

    def detach_oracle(self) -> None:
        self._oracle = None
        self._oracle_period = 0
        self._oracle_countdown = 0

    def _check_oracle(self, masked: bytes, address: int, tag: int) -> None:
        expected = self._oracle(masked, address)
        self.stats.increment("oracle_checks")
        if expected != tag:
            self.stats.increment("oracle_divergences")
            raise InvariantViolation(
                f"MAC differential oracle diverged at line {address:#x}: "
                f"fast path {tag:#x} != reference {expected:#x}"
            )

    def invalidate_cached(self, address: int) -> None:
        """Drop the memoized tag for ``address`` (stored contents changed)."""
        cache = self._cache
        if cache is not None and cache.pop(address, None) is not None:
            self.stats.increment("verify_cache_invalidations")
        bulk = self._bulk_tags
        if bulk is not None:
            bulk.pop(address, None)

    def clear_cache(self) -> None:
        """Drop every memoized tag (key rotation, experiment boundaries)."""
        if self._cache is not None:
            self._cache.clear()
        if self._bulk_tags is not None:
            self._bulk_tags.clear()

    def compute_zero_mac(self) -> int:
        """The pre-computed MAC of an all-zero line *without* address binding.

        Stored on-chip (12 bytes) by the MAC-zero optimisation (Sec V-B) so
        zero cachelines never pay MAC-computation latency.
        """
        return self.line_mac.compute(bytes(64), 0)

    def verify(self, line: bytes, address: int, stored_mac: int, soft: bool = False) -> VerifyResult:
        """Check ``stored_mac`` against the MAC computed over ``line``.

        With ``soft=True`` the check passes when the Hamming distance is at
        most ``soft_match_k`` (fault-tolerant MAC, Sec VI-C).
        """
        computed = self.compute(line, address)
        distance = hamming_distance(computed, stored_mac)
        if distance == 0:
            return VerifyResult(ok=True, distance=0, soft=False)
        if soft and distance <= self.soft_match_k:
            return VerifyResult(ok=True, distance=distance, soft=True)
        return VerifyResult(ok=False, distance=distance, soft=False)


def register_invariants(checker, engine_fn, reference_fn) -> None:
    """Register the MAC differential check with an invariant checker.

    ``engine_fn``/``reference_fn`` are zero-argument callables resolving
    the *current* engine and a fresh reference MAC — callables, not
    objects, because :meth:`PTGuard.rekey` replaces the engine wholesale
    and a captured instance would silently check a retired key.
    """

    def check():
        engine = engine_fn()
        reference = reference_fn()
        probe = bytes(64)
        expected = reference.compute(probe, 0)
        actual = engine.line_mac.compute(probe, 0)
        if expected != actual:
            return [
                f"MAC fast path diverges from reference on the zero line: "
                f"{actual:#x} != {expected:#x}"
            ]
        return []

    checker.register("mac_differential_oracle", check)
