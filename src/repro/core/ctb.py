"""Collision Tracking Buffer (paper Sections IV-D, IV-F, VII-B).

A 4-entry SRAM buffer in the memory controller holding line addresses
whose *data bits* happen to equal the MAC that would be computed over
them. Reads of tracked lines are forwarded untouched, preserving
correctness for the ~2^-96-probability natural collisions and for
adversarially constructed ones.

Each entry stores a 5-byte line address (40-bit physical line number),
hence the paper's 20-byte budget.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import CollisionBufferOverflow
from repro.common.stats import StatGroup

ENTRY_BYTES = 5  # a <=40-bit line address fits in 5 bytes


class CollisionTrackingBuffer:
    """Fixed-capacity set of colliding line addresses."""

    def __init__(self, capacity: int = 4):
        if capacity <= 0:
            raise ValueError("CTB capacity must be positive")
        self.capacity = capacity
        self._entries: List[int] = []
        self.stats = StatGroup("ctb")

    def contains(self, line_address: int) -> bool:
        """CTB lookup, performed on every DRAM read (associative search)."""
        self.stats.increment("lookups")
        hit = line_address in self._entries
        if hit:
            self.stats.increment("hits")
        return hit

    def insert(self, line_address: int) -> None:
        """Track a newly detected colliding line.

        Raises :class:`CollisionBufferOverflow` when full; the embedding
        system is expected to respond by re-keying (Sec VII-B).
        """
        if line_address in self._entries:
            return
        if len(self._entries) >= self.capacity:
            self.stats.increment("overflows")
            raise CollisionBufferOverflow(
                f"CTB full ({self.capacity} entries); re-keying required"
            )
        self._entries.append(line_address)
        self.stats.increment("inserts")

    def remove(self, line_address: int) -> None:
        """Drop an entry once a non-colliding value was written to the line."""
        if line_address in self._entries:
            self._entries.remove(line_address)
            self.stats.increment("removes")

    def clear(self) -> None:
        """Reset after a full-memory re-key."""
        self._entries.clear()

    @property
    def entries(self) -> List[int]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def sram_bytes(self) -> int:
        """SRAM cost: 5 bytes per entry (20 bytes at the default capacity)."""
        return self.capacity * ENTRY_BYTES
