"""PT-Guard core: the paper's primary contribution.

Pattern matching, MAC embedding/verification, collision tracking,
best-effort correction, and the analytical security model.
"""

from repro.core.correction import CorrectionEngine, CorrectionResult
from repro.core.ctb import CollisionTrackingBuffer
from repro.core.engine import MACEngine, VerifyResult
from repro.core.guard import PTGuard, ReadOutcome, WriteOutcome
from repro.core import pattern, security

__all__ = [
    "CorrectionEngine",
    "CorrectionResult",
    "CollisionTrackingBuffer",
    "MACEngine",
    "VerifyResult",
    "PTGuard",
    "ReadOutcome",
    "WriteOutcome",
    "pattern",
    "security",
]
