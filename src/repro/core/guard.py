"""PT-Guard: the memory-controller-resident integrity mechanism (Sec IV-V).

:class:`PTGuard` transforms lines crossing the DRAM boundary:

* **Writes** (:meth:`process_write`): lines matching the bit pattern (96
  zeroed PFN bits; 152 bits with the identifier extension) get the 96-bit
  MAC embedded — all PTE lines and pattern-matching data lines. Lines
  *not* matching are checked for MAC collisions and tracked in the CTB.
* **Reads** (:meth:`process_read`): CTB hits are forwarded untouched. Page
  -table-walk reads (``is_pte``) always verify the MAC; a mismatch either
  enters best-effort correction (Sec VI) or raises the ``PTECheckFailed``
  outcome the CPU turns into an OS exception. Regular reads strip the MAC
  when it matches and are forwarded untouched otherwise. Optimized
  PT-Guard skips MAC work entirely for reads whose identifier field does
  not carry the identifier, and serves all-zero lines from the
  pre-computed MAC-zero without a MAC-unit pass.

Timing: the guard reports ``latency_cycles`` per operation (MAC-unit
delay on the read critical path); the memory controller adds it to the
DRAM latency. Write-side MAC work is off the critical path (write buffer)
and contributes no latency, matching the paper's model.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, NamedTuple, Optional

from repro.common.config import PTGuardConfig
from repro.common.errors import CollisionBufferOverflow
from repro.common.stats import StatGroup
from repro.core import pattern
from repro.core.correction import CorrectionEngine, CorrectionResult
from repro.core.ctb import CollisionTrackingBuffer
from repro.core.engine import MACEngine
from repro.crypto.mac import make_line_mac

MAC_KEY_SRAM_BYTES = 32  # 256-bit QARMA key
IDENTIFIER_SRAM_BYTES = 7  # 56-bit identifier
MAC_ZERO_SRAM_BYTES = 12  # 96-bit pre-computed MAC-zero


class WriteOutcome(NamedTuple):
    """Result of pushing one line through the guard on its way to DRAM."""

    stored_line: bytes
    embedded: bool  # MAC (and identifier) were embedded
    collision: bool  # line tracked in the CTB
    zero_line: bool  # MAC-zero fast path used


class ReadOutcome(NamedTuple):
    """Result of pulling one line through the guard on its way from DRAM."""

    line: bytes  # what is forwarded to the caches / TLB
    latency_cycles: int  # MAC-unit delay on the critical path
    mac_checked: bool
    mac_matched: bool
    stripped: bool
    ctb_hit: bool
    pte_check_failed: bool  # the PTECheckFailed response-bus bit
    corrected: bool = False
    correction: Optional[CorrectionResult] = None
    corrected_stored_line: Optional[bytes] = None  # write back to DRAM if set


class PTGuard:
    """The PT-Guard mechanism, parameterised by :class:`PTGuardConfig`."""

    def __init__(
        self,
        config: PTGuardConfig,
        mac_algorithm: str = "blake2",
        secret: Optional[bytes] = None,
        seed: int = 2023,
    ):
        self.config = config
        self.mac_algorithm = mac_algorithm
        self._secret = secret if secret is not None else seed.to_bytes(16, "little")
        self._epoch = 0
        self.engine = MACEngine(
            make_line_mac(mac_algorithm, self._secret, config.mac_bits, epoch=0),
            max_phys_bits=config.max_phys_bits,
            soft_match_k=config.soft_match_k,
            verify_cache_entries=config.mac_verify_cache_entries,
        )
        self.ctb = CollisionTrackingBuffer(config.ctb_entries)
        # The 56-bit identifier is a random value fixed at boot (Sec V-A).
        self.identifier = random.Random(seed).getrandbits(pattern.ID_BITS_PER_LINE)
        self._mac_zero = self.engine.compute_zero_mac() if config.mac_zero_enabled else None
        self.correction: Optional[CorrectionEngine] = None
        if config.correction_enabled:
            self.correction = CorrectionEngine(
                self.engine,
                almost_zero_threshold=config.almost_zero_threshold,
                identifier=self.identifier if config.identifier_enabled else None,
            )
        # Differential-oracle sampling period (None = disarmed). Kept on
        # the guard, not the engine, so re-arming survives rekey().
        self._oracle_period: Optional[int] = None
        # Adaptive rekeying (Sec VII-B, repro.recovery): sliding window of
        # integrity-incident ticks; disarmed until arm_adaptive_rekey().
        self._rekey_threshold: Optional[int] = None
        self._rekey_window = 0
        self._rekey_cooldown = 0
        self._incident_ticks: Deque[int] = deque()
        self._incident_clock = 0
        self._last_adaptive_tick: Optional[int] = None
        self.stats = StatGroup("ptguard")

    # -- write path ---------------------------------------------------------

    def process_write(self, address: int, line: bytes) -> WriteOutcome:
        """Transform a line leaving the memory controller for DRAM."""
        self.stats.increment("writes")
        # The stored contents of this address are about to change: drop any
        # memoized tag so later reads re-validate against the new bytes.
        self.engine.invalidate_cached(address)
        extended = self.config.identifier_enabled

        if pattern.matches_pattern(line, extended=extended):
            stored, zero_line = self._embed(address, line)
            self.stats.increment("embedded_writes")
            if zero_line:
                self.stats.increment("zero_line_writes")
            # A protected line cannot collide; clear any stale CTB entry.
            self.ctb.remove(address)
            return WriteOutcome(
                stored_line=stored, embedded=True, collision=False, zero_line=zero_line
            )

        collision = self._is_colliding(address, line)
        if collision:
            self.stats.increment("collisions")
            self.ctb.insert(address)  # may raise CollisionBufferOverflow
        else:
            self.ctb.remove(address)
        return WriteOutcome(
            stored_line=line, embedded=False, collision=collision, zero_line=False
        )

    def _embed(self, address: int, line: bytes) -> tuple[bytes, bool]:
        """Embed MAC (+identifier) into a pattern-matching line."""
        zero_line = False
        if (
            self.config.mac_zero_enabled
            and self._mac_zero is not None
            and line == bytes(64)
        ):
            tag = self._mac_zero
            zero_line = True
        else:
            tag = self.engine.compute(line, address)
            self.stats.increment("mac_computations_write")
        stored = pattern.embed_mac(line, self._fit_tag(tag))
        if self.config.identifier_enabled:
            stored = pattern.embed_identifier(stored, self.identifier)
        return stored, zero_line

    def _fit_tag(self, tag: int) -> int:
        """Left-pad a narrower-than-96-bit MAC into the 96-bit field."""
        if self.engine.mac_bits < pattern.MAC_BITS_PER_LINE:
            return tag & ((1 << self.engine.mac_bits) - 1)
        return tag

    def _is_colliding(self, address: int, line: bytes) -> bool:
        """Would this non-pattern line be misread as MAC-embedded?"""
        if self.config.identifier_enabled:
            # With the identifier, a read only strips when the identifier
            # matches too; lines without it are never misinterpreted.
            if pattern.extract_identifier(line) != self.identifier:
                return False
        stored_mac = pattern.extract_mac(line)
        computed = self._fit_tag(self.engine.compute(line, address))
        self.stats.increment("mac_computations_write")
        return stored_mac == computed

    # -- read path -------------------------------------------------------------

    def process_read(self, address: int, stored_line: bytes, is_pte: bool) -> ReadOutcome:
        """Transform a line arriving from DRAM before it reaches the caches."""
        self.stats.increment("reads")
        if is_pte:
            self.stats.increment("pte_reads")
            return self._read_pte(address, stored_line)
        return self._read_data(address, stored_line)

    def _read_pte(self, address: int, stored_line: bytes) -> ReadOutcome:
        """Page-table-walk read: the MAC check is mandatory (Sec IV-C)."""
        # Zero-line fast path: a never-written (all-zero) or MAC-zero line.
        fast = self._zero_fast_path(stored_line)
        if fast is not None:
            return fast

        stored_mac = pattern.extract_mac(stored_line)
        result = self.engine.verify(stored_line, address, self._fit_tag_stored(stored_mac))
        self.stats.increment("mac_computations_read")
        latency = self.config.mac_latency_cycles
        if result.ok:
            return ReadOutcome(
                line=self._strip(stored_line),
                latency_cycles=latency,
                mac_checked=True,
                mac_matched=True,
                stripped=True,
                ctb_hit=False,
                pte_check_failed=False,
            )

        self.stats.increment("pte_integrity_failures")
        if self.correction is not None:
            correction = self.correction.correct(stored_line, address)
            if correction.corrected_line is not None:
                self.stats.increment("pte_corrections")
                return ReadOutcome(
                    line=self._strip(correction.corrected_line),
                    latency_cycles=latency,
                    mac_checked=True,
                    mac_matched=False,
                    stripped=True,
                    ctb_hit=False,
                    pte_check_failed=False,
                    corrected=True,
                    correction=correction,
                    corrected_stored_line=correction.corrected_line,
                )
            self.stats.increment("pte_uncorrectable")
            return ReadOutcome(
                line=stored_line,
                latency_cycles=latency,
                mac_checked=True,
                mac_matched=False,
                stripped=False,
                ctb_hit=False,
                pte_check_failed=True,
                corrected=False,
                correction=correction,
            )
        return ReadOutcome(
            line=stored_line,
            latency_cycles=latency,
            mac_checked=True,
            mac_matched=False,
            stripped=False,
            ctb_hit=False,
            pte_check_failed=True,
        )

    def _read_data(self, address: int, stored_line: bytes) -> ReadOutcome:
        """Regular data read: strip opportunistically, never fault."""
        if self.ctb.contains(address):
            self.stats.increment("ctb_forwards")
            return ReadOutcome(
                line=stored_line,
                latency_cycles=0,
                mac_checked=False,
                mac_matched=False,
                stripped=False,
                ctb_hit=True,
                pte_check_failed=False,
            )

        if self.config.identifier_enabled:
            if pattern.extract_identifier(stored_line) != self.identifier:
                # Identifier absent: no MAC was embedded; skip the MAC unit.
                self.stats.increment("identifier_filtered")
                return ReadOutcome(
                    line=stored_line,
                    latency_cycles=0,
                    mac_checked=False,
                    mac_matched=False,
                    stripped=False,
                    ctb_hit=False,
                    pte_check_failed=False,
                )
            fast = self._zero_fast_path(stored_line)
            if fast is not None:
                return fast

        stored_mac = pattern.extract_mac(stored_line)
        result = self.engine.verify(stored_line, address, self._fit_tag_stored(stored_mac))
        self.stats.increment("mac_computations_read")
        latency = self.config.mac_latency_cycles
        if result.ok:
            return ReadOutcome(
                line=self._strip(stored_line),
                latency_cycles=latency,
                mac_checked=True,
                mac_matched=True,
                stripped=True,
                ctb_hit=False,
                pte_check_failed=False,
            )
        # Mismatch on a data read: either an unprotected line or a flipped
        # protected one — forwarded unchanged, no new failure mode (Sec IV-E).
        return ReadOutcome(
            line=stored_line,
            latency_cycles=latency,
            mac_checked=True,
            mac_matched=False,
            stripped=False,
            ctb_hit=False,
            pte_check_failed=False,
        )

    def _zero_fast_path(self, stored_line: bytes) -> Optional[ReadOutcome]:
        """MAC-zero optimisation (Sec V-B): serve zero lines without the MAC unit."""
        if not self.config.mac_zero_enabled or self._mac_zero is None:
            return None
        if stored_line == bytes(64):
            # Never written through the guard; nothing to strip.
            self.stats.increment("zero_line_fastpath")
            return ReadOutcome(
                line=stored_line,
                latency_cycles=0,
                mac_checked=False,
                mac_matched=True,
                stripped=False,
                ctb_hit=False,
                pte_check_failed=False,
            )
        if (
            pattern.is_zero_data(stored_line)
            and pattern.extract_mac(stored_line) == self._fit_tag(self._mac_zero)
            and (
                not self.config.identifier_enabled
                or pattern.extract_identifier(stored_line) == self.identifier
            )
        ):
            self.stats.increment("zero_line_fastpath")
            return ReadOutcome(
                line=self._strip(stored_line),
                latency_cycles=0,
                mac_checked=False,
                mac_matched=True,
                stripped=True,
                ctb_hit=False,
                pte_check_failed=False,
            )
        return None

    def _fit_tag_stored(self, stored_mac: int) -> int:
        if self.engine.mac_bits < pattern.MAC_BITS_PER_LINE:
            return stored_mac & ((1 << self.engine.mac_bits) - 1)
        return stored_mac

    def _strip(self, stored_line: bytes) -> bytes:
        if self.config.identifier_enabled:
            return pattern.strip_metadata(stored_line)
        return pattern.strip_mac(stored_line)

    def warm_verify_cache(self, lines, addresses) -> int:
        """Pre-seed the engine's verify cache from a memory snapshot.

        Host-side only (see :meth:`MACEngine.warm`): no simulated counter
        moves. Callers pass the current stored bytes of PTE lines (e.g.
        the page-table pages right after prefault) with their physical
        line addresses. Returns the number of entries seeded.
        """
        return self.engine.warm(lines, addresses)

    # -- re-keying (Sec VII-B) -------------------------------------------------

    def rekey(self) -> None:
        """Rotate to a fresh MAC key epoch and clear the CTB.

        The system embedding the guard is responsible for walking memory
        (read-under-old-key, write-under-new-key) around this call; see
        :meth:`repro.harness.system.System.rekey_memory`.
        """
        self._epoch += 1
        self.stats.increment("rekeys")
        # A fresh engine also starts a fresh (empty) verify cache: tags
        # memoized under the previous key epoch can never be served again.
        self.engine = MACEngine(
            make_line_mac(
                self.mac_algorithm, self._secret, self.config.mac_bits, epoch=self._epoch
            ),
            max_phys_bits=self.config.max_phys_bits,
            soft_match_k=self.config.soft_match_k,
            verify_cache_entries=self.config.mac_verify_cache_entries,
        )
        self._mac_zero = (
            self.engine.compute_zero_mac() if self.config.mac_zero_enabled else None
        )
        if self.correction is not None:
            self.correction = CorrectionEngine(
                self.engine,
                almost_zero_threshold=self.config.almost_zero_threshold,
                identifier=self.identifier if self.config.identifier_enabled else None,
            )
        if self._oracle_period is not None:
            # The retired engine took its oracle with it; arm the new one
            # against a reference MAC of the *new* epoch.
            self.engine.attach_oracle(
                self.build_reference_mac().compute, self._oracle_period
            )
        self.ctb.clear()

    # -- adaptive rekeying (repro.recovery) -------------------------------------

    def arm_adaptive_rekey(
        self, threshold: int, window: int, cooldown: int = 0
    ) -> None:
        """Arm the incident-rate rekey trigger.

        ``threshold`` incidents inside a sliding window of ``window``
        incident ticks recommend a rekey; ``cooldown`` ticks must then
        pass before another adaptive rekey may fire (the storm brake —
        without it a sustained attack turns the defence itself into a
        denial of service, one key-sweep per fault).
        """
        if threshold < 1 or window < 1 or cooldown < 0:
            raise ValueError("adaptive rekey parameters out of range")
        self._rekey_threshold = threshold
        self._rekey_window = window
        self._rekey_cooldown = cooldown
        self._incident_ticks.clear()
        self._last_adaptive_tick = None

    def disarm_adaptive_rekey(self) -> None:
        self._rekey_threshold = None
        self._incident_ticks.clear()

    def record_incident(self) -> bool:
        """Advance the incident clock by one detected-uncorrectable fault.

        Returns True when the caller should perform an epoch rekey now
        (window crossed the threshold and the cooldown has expired). The
        guard only *recommends*: the memory sweep around :meth:`rekey`
        is the OS's job (:meth:`repro.os.kernel.Kernel.rekey_memory`).
        """
        if self._rekey_threshold is None:
            return False
        self._incident_clock += 1
        tick = self._incident_clock
        ticks = self._incident_ticks
        ticks.append(tick)
        floor = tick - self._rekey_window
        while ticks and ticks[0] <= floor:
            ticks.popleft()
        self.stats.increment("incidents")
        if len(ticks) < self._rekey_threshold:
            return False
        if (
            self._last_adaptive_tick is not None
            and tick - self._last_adaptive_tick < self._rekey_cooldown
        ):
            # Storm: the window is saturated but we just rekeyed. Count
            # it — a high suppressed count is the rekey-storm signal.
            self.stats.increment("adaptive_rekeys_suppressed")
            return False
        self._last_adaptive_tick = tick
        ticks.clear()  # the window restarts under the new key
        self.stats.increment("adaptive_rekey_triggers")
        return True

    @property
    def incident_clock(self) -> int:
        return self._incident_clock

    # -- runtime validation (repro.faults.invariants) ---------------------------

    def build_reference_mac(self):
        """An independently constructed MAC for the differential oracle.

        Same algorithm, secret, width and epoch as the live engine, but
        built via the reference path (for qarma: the cell-by-cell cipher
        instead of the lookup tables).
        """
        return make_line_mac(
            self.mac_algorithm,
            self._secret,
            self.config.mac_bits,
            epoch=self._epoch,
            reference=True,
        )

    def arm_differential_oracle(self, sample_period: int = 64) -> None:
        """Cross-check one in ``sample_period`` MAC computations against
        the reference path; stays armed across :meth:`rekey`."""
        self._oracle_period = sample_period
        self.engine.attach_oracle(self.build_reference_mac().compute, sample_period)

    def disarm_differential_oracle(self) -> None:
        self._oracle_period = None
        self.engine.detach_oracle()

    @property
    def epoch(self) -> int:
        return self._epoch

    # -- cost accounting (Sec V-E) ------------------------------------------------

    @property
    def sram_bytes(self) -> int:
        """Total SRAM in the memory controller: 52 B baseline, 71 B optimized."""
        total = MAC_KEY_SRAM_BYTES + self.ctb.sram_bytes
        if self.config.identifier_enabled:
            total += IDENTIFIER_SRAM_BYTES
        if self.config.mac_zero_enabled:
            total += MAC_ZERO_SRAM_BYTES
        return total
