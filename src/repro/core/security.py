"""Analytical security model of PT-Guard (paper Sections IV-G and VI-E).

Implements the closed-form expressions the paper derives:

* Equation 1 — the probability a tampered PTE escapes detection when the
  MAC soft-matches within Hamming distance ``k`` and the correction
  hardware makes up to ``G_max`` guesses:

  .. math:: p_{escape} = G_{max} \\cdot \\sum_{h=0}^{k} \\binom{n}{h} / 2^n

* Effective MAC strength ``n_eff = -log2(p_escape)`` and the *loss of
  security* ``n - n_eff`` due to correction.

* Equation 2 — the probability a MAC carries more than ``k`` bit faults
  (and is therefore uncorrectable) when each bit flips with ``p_flip``:

  .. math:: p_{uncorr} = \\sum_{i=k+1}^{n} \\binom{n}{i} p^i (1-p)^{n-i}

* Time-to-successful-attack estimates under the paper's "one bit flip per
  50 ns DRAM access" worst case (Sec IV-G).

The paper's headline numbers — k = 4 gives < 1 % uncorrectable MACs at
p_flip = 1 % while retaining a 66-bit effective MAC good for > 10^4 years
— are regression-tested against these functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

SECONDS_PER_YEAR = 365.25 * 24 * 3600
DRAM_ACCESS_SECONDS = 50e-9  # the paper's 50 ns attack-rate assumption


def escape_probability(mac_bits: int, soft_match_k: int, max_guesses: int) -> float:
    """Equation 1: probability one tampering attempt escapes detection."""
    if soft_match_k >= mac_bits:
        return 1.0
    ball = sum(math.comb(mac_bits, h) for h in range(soft_match_k + 1))
    return max_guesses * ball / 2.0**mac_bits


def effective_mac_bits(mac_bits: int, soft_match_k: int, max_guesses: int) -> float:
    """n_eff: the equivalent exact-match MAC width after correction."""
    p_escape = escape_probability(mac_bits, soft_match_k, max_guesses)
    return -math.log2(p_escape)


def security_loss_bits(mac_bits: int, soft_match_k: int, max_guesses: int) -> float:
    """n - n_eff: bits of MAC strength sacrificed for fault tolerance."""
    return mac_bits - effective_mac_bits(mac_bits, soft_match_k, max_guesses)


def uncorrectable_probability(mac_bits: int, soft_match_k: int, p_flip: float) -> float:
    """Equation 2: probability the MAC itself has more than ``k`` faults."""
    if not 0.0 <= p_flip <= 1.0:
        raise ValueError("p_flip must be a probability")
    return sum(
        math.comb(mac_bits, i) * p_flip**i * (1.0 - p_flip) ** (mac_bits - i)
        for i in range(soft_match_k + 1, mac_bits + 1)
    )


def choose_soft_match_k(
    mac_bits: int, p_flip: float, target_uncorrectable: float = 0.01
) -> int:
    """Smallest ``k`` keeping uncorrectable-MAC probability below target.

    The paper's policy (Sec VI-E): "pick the lowest value of k that makes
    the percentage of uncorrectable errors in MACs below 1%". For n = 96
    and p_flip = 1 % this returns 4.
    """
    for k in range(mac_bits):
        if uncorrectable_probability(mac_bits, k, p_flip) < target_uncorrectable:
            return k
    return mac_bits - 1


def expected_mac_faults(mac_bits: int, p_flip: float) -> float:
    """Mean number of faulty bits in the stored MAC (n * p)."""
    return mac_bits * p_flip


def years_to_attack(
    mac_bits: int,
    soft_match_k: int = 0,
    max_guesses: int = 1,
    attempt_seconds: float = DRAM_ACCESS_SECONDS,
) -> float:
    """Expected years until a forgery succeeds at one attempt per access.

    With an exact-match 96-bit MAC this exceeds 10^14 years (Sec IV-G);
    with k = 4 soft matching and 372 guesses it still exceeds 10^4 years
    (Sec VI-E).
    """
    p_escape = escape_probability(mac_bits, soft_match_k, max_guesses)
    if p_escape <= 0.0:
        return math.inf
    expected_attempts = 1.0 / p_escape
    return expected_attempts * attempt_seconds / SECONDS_PER_YEAR


def natural_collision_interval_years(
    mac_bits: int, writes_per_second: float = 1.0 / DRAM_ACCESS_SECONDS
) -> float:
    """Expected years between *benign* MAC collisions (Sec IV-D's
    "once every trillion years of continuous writes")."""
    expected_writes = 2.0**mac_bits
    return expected_writes / writes_per_second / SECONDS_PER_YEAR


def ctb_fill_probability(mac_bits: int, memory_lines: int, ctb_entries: int) -> float:
    """Probability a memory full of random lines holds >= ``ctb_entries``
    colliding lines (the paper's ~2^-350 footnote for 64 GB / 4 entries).

    Uses the binomial tail with p = 2^-mac_bits per line; computed in log
    space since the numbers underflow doubles.
    """
    log2_p = -float(mac_bits)
    # P[X >= c] ~ C(N, c) p^c for p astronomically small.
    log2_comb = math.lgamma(memory_lines + 1) - math.lgamma(ctb_entries + 1)
    log2_comb -= math.lgamma(memory_lines - ctb_entries + 1)
    log2_comb /= math.log(2)
    return 2.0 ** (log2_comb + ctb_entries * log2_p)


@dataclass(frozen=True)
class SecuritySummary:
    """The Section VI-E design point, bundled for reporting."""

    mac_bits: int
    soft_match_k: int
    max_guesses: int
    p_flip: float
    p_escape: float
    effective_bits: float
    security_loss: float
    p_uncorrectable: float
    years_to_attack: float


def summarize(
    mac_bits: int = 96,
    soft_match_k: int = 4,
    max_guesses: int = 372,
    p_flip: float = 0.01,
) -> SecuritySummary:
    """Evaluate the full analytical model at one design point."""
    return SecuritySummary(
        mac_bits=mac_bits,
        soft_match_k=soft_match_k,
        max_guesses=max_guesses,
        p_flip=p_flip,
        p_escape=escape_probability(mac_bits, soft_match_k, max_guesses),
        effective_bits=effective_mac_bits(mac_bits, soft_match_k, max_guesses),
        security_loss=security_loss_bits(mac_bits, soft_match_k, max_guesses),
        p_uncorrectable=uncorrectable_probability(mac_bits, soft_match_k, p_flip),
        years_to_attack=years_to_attack(mac_bits, soft_match_k, max_guesses),
    )
