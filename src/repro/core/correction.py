"""Best-effort PTE correction (paper Section VI).

On a MAC mismatch during a page-table walk, the memory controller makes a
bounded sequence of *guesses* for the correct PTE-line value, accepting a
guess when its MAC soft-matches the stored MAC. A strong MAC's collision
probability makes mis-correction as improbable as a forgery, so any
accepted guess is the true pre-fault value (Sec VI, "key insight").

Guess schedule (Sec VI-D), ``G_max = 372``:

1.  *Soft match* of the line as stored (1 guess) — corrects MAC-only faults.
2.  *Flip and check*: each protected PFN/flag bit flipped individually
    ((28 + 16) x 8 = 352 guesses) — corrects any single data-bit fault.
3.  *Reset zero-PTEs*: PTEs with <= 4 set bits are guessed to be all-zero
    (1 guess); later steps inherit the zeroed PTEs. (Insight 1: 64% of
    PTEs are zero.)
4.  *Majority vote for flags* among non-zero PTEs (1 guess). (Insight 3:
    >99% of lines have uniform flags.)
5.  *Contiguity in PFNs*: majority vote over the top 20 PFN bits (1
    guess), then 8 guesses each assuming one PFN correct and rebuilding
    the others as a contiguous run. (Insight 2: 24% contiguous PFNs.)
6.  Steps 4 and 5 combined (8 more guesses), for 18 across steps 4-6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.common.bitops import mask, popcount
from repro.core import pattern
from repro.core.engine import MACEngine

FLAG_BITS: Tuple[int, ...] = tuple(
    [b for b in range(12) if b != pattern.ACCESSED_BIT] + [59, 60, 61, 62, 63]
)  # the 16 protected flag bits of Table IV

PFN_CONTIGUITY_LOW_BITS = 8  # bottom PFN bits rebuilt by the contiguity step


@dataclass(frozen=True)
class CorrectionResult:
    """Outcome of a correction attempt."""

    corrected_line: Optional[bytes]  # None => uncorrectable
    guesses_used: int
    winning_step: Optional[str]  # which strategy produced the accepted guess
    mac_distance: int  # Hamming distance absorbed by the soft match


class CorrectionEngine:
    """Implements the Section VI-D guess-and-check schedule."""

    def __init__(
        self,
        engine: MACEngine,
        almost_zero_threshold: int = 4,
        identifier: Optional[int] = None,
    ):
        self.engine = engine
        self.almost_zero_threshold = almost_zero_threshold
        self.identifier = identifier
        self._metadata_mask = (
            mask(pattern.MAC_BITS_PER_PTE) << pattern.MAC_FIELD_LOW
        ) | (mask(pattern.ID_BITS_PER_PTE) << pattern.ID_FIELD_LOW)

    # -- public API -----------------------------------------------------------

    @property
    def max_guesses(self) -> int:
        """G_max: 1 + 352 + 1 + 18 = 372 for M = 40."""
        protected = len(pattern.protected_bit_positions(self.engine.max_phys_bits))
        return 1 + protected * 8 + 1 + 18

    def correct(self, stored_line: bytes, address: int) -> CorrectionResult:
        """Attempt to correct a faulty PTE line read from DRAM.

        ``stored_line`` is the raw DRAM content (MAC embedded, possibly
        with bit flips anywhere). Returns the corrected *stored-format*
        line (protected bits corrected, stored MAC refreshed) or ``None``.
        """
        # Identifier bits have a single known value on PTE lines, so flips
        # there are corrected outright, before any guessing (Sec VI intro).
        if self.identifier is not None:
            stored_line = pattern.embed_identifier(stored_line, self.identifier)
        stored_mac = pattern.extract_mac(stored_line)

        guesses = 0
        for step, candidate in self._candidates(stored_line):
            guesses += 1
            result = self.engine.verify(candidate, address, stored_mac, soft=True)
            if result.ok:
                corrected = self._refresh_mac(candidate, address)
                return CorrectionResult(
                    corrected_line=corrected,
                    guesses_used=guesses,
                    winning_step=step,
                    mac_distance=result.distance,
                )
        return CorrectionResult(
            corrected_line=None,
            guesses_used=guesses,
            winning_step=None,
            mac_distance=-1,
        )

    # -- guess generation -------------------------------------------------------

    def _candidates(self, line: bytes) -> Iterator[Tuple[str, bytes]]:
        max_phys_bits = self.engine.max_phys_bits
        positions = pattern.protected_bit_positions(max_phys_bits)

        # Step 1: the line as-is (soft match absorbs MAC-only faults).
        yield "soft_match", line

        # Step 2: flip and check every protected bit of every PTE.
        ptes = pattern.split_ptes(line)
        for index in range(len(ptes)):
            for bit_position in positions:
                flipped = list(ptes)
                flipped[index] ^= 1 << bit_position
                yield "flip_and_check", pattern.join_ptes(flipped)

        # Step 3: reset almost-zero PTEs; subsequent steps inherit this base.
        base = self._reset_almost_zero(ptes)
        yield "reset_zero_ptes", pattern.join_ptes(base)

        # Step 4: bitwise majority vote for flags across non-zero PTEs.
        flagged = self._apply_flag_majority(base)
        yield "flag_majority", pattern.join_ptes(flagged)

        # Step 5: contiguity in PFNs on the zero-reset base.
        for candidate in self._contiguity_guesses(base, max_phys_bits):
            yield "pfn_contiguity", pattern.join_ptes(candidate)

        # Step 6: flags majority and contiguity together.
        for candidate in self._contiguity_guesses(flagged, max_phys_bits, skip_majority=True):
            yield "flags_plus_contiguity", pattern.join_ptes(candidate)

    def _data_bits(self, pte: int) -> int:
        """PTE content excluding the MAC/identifier metadata fields."""
        return pte & ~self._metadata_mask

    def _reset_almost_zero(self, ptes: List[int]) -> List[int]:
        out = []
        for pte in ptes:
            if popcount(self._data_bits(pte)) <= self.almost_zero_threshold:
                out.append(pte & self._metadata_mask)  # keep stored metadata bits
            else:
                out.append(pte)
        return out

    def _nonzero_indices(self, ptes: List[int]) -> List[int]:
        return [i for i, pte in enumerate(ptes) if self._data_bits(pte)]

    def _apply_flag_majority(self, ptes: List[int]) -> List[int]:
        nonzero = self._nonzero_indices(ptes)
        if len(nonzero) < 2:
            return list(ptes)
        out = list(ptes)
        for bit_position in FLAG_BITS:
            ones = sum((ptes[i] >> bit_position) & 1 for i in nonzero)
            majority = 1 if 2 * ones > len(nonzero) else 0
            for i in nonzero:
                if majority:
                    out[i] |= 1 << bit_position
                else:
                    out[i] &= ~(1 << bit_position)
        return out

    def _contiguity_guesses(
        self, ptes: List[int], max_phys_bits: int, skip_majority: bool = False
    ) -> Iterator[List[int]]:
        """Step 5: top-20-bit majority (1 guess) + 8 contiguous-run rebuilds."""
        nonzero = self._nonzero_indices(ptes)
        if not nonzero:
            return

        # Majority vote over the PFN bits above the contiguity window.
        voted = list(ptes)
        if len(nonzero) >= 2:
            pfn_bits = max_phys_bits - 12
            for offset in range(PFN_CONTIGUITY_LOW_BITS, pfn_bits):
                bit_position = 12 + offset
                ones = sum((ptes[i] >> bit_position) & 1 for i in nonzero)
                majority = 1 if 2 * ones > len(nonzero) else 0
                for i in nonzero:
                    if majority:
                        voted[i] |= 1 << bit_position
                    else:
                        voted[i] &= ~(1 << bit_position)
        if not skip_majority:
            yield list(voted)

        # Assume each PFN in turn is correct; rebuild the others as a
        # contiguous ascending run anchored at it.
        for anchor in range(8):
            if anchor not in nonzero:
                continue
            anchor_pfn = pattern.pfn_of(voted[anchor], max_phys_bits)
            rebuilt = list(voted)
            for i in nonzero:
                target = anchor_pfn + (i - anchor)
                if target < 0:
                    target = 0
                rebuilt[i] = pattern.with_pfn(rebuilt[i], target, max_phys_bits)
            yield rebuilt

    def _refresh_mac(self, candidate: bytes, address: int) -> bytes:
        """Re-embed a freshly computed MAC over the corrected data."""
        tag = self.engine.compute(candidate, address)
        if self.engine.mac_bits < pattern.MAC_BITS_PER_LINE:
            tag &= mask(self.engine.mac_bits)
        return pattern.embed_mac(candidate, tag)
