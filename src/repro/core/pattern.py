"""PTE-cacheline bit layout and pattern matching (paper Table IV, Sec IV-B, V-A).

A 64-byte cacheline holds eight 8-byte PTEs. With a maximum physical
address of ``M`` bits (M = 40 for the paper's 1 TB client-system bound),
each x86_64 PTE decomposes as:

====== ======================= ==========================
bits   content                 MAC-protected?
====== ======================= ==========================
8:0    flags                   yes, except bit 5 (accessed)
11:9   OS-programmable         yes
M-1:12 PFN                     yes
39:M   ignored (zeros)         no
51:40  MAC (1/8th portion)     no (carries the MAC)
58:52  ignored (zeros)         no (carries the identifier)
63:59  protection keys / NX    yes
====== ======================= ==========================

The *bit-pattern match* checks that bits 51:40 of all eight PTEs are zero
(96 bits); the *extended* pattern additionally checks bits 58:52 (56 more
bits, 152 total). Matching lines are *protected*: the 96-bit MAC is pooled
into bits 51:40 (12 bits per PTE) and, in Optimized PT-Guard, the 56-bit
identifier into bits 58:52 (7 bits per PTE).

All functions operate on immutable 64-byte ``bytes`` lines and are pure,
which makes round-trip properties easy to test.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.bitops import bits, insert_bits, mask
from repro.common.config import CACHELINE_BYTES, PTE_BYTES, PTES_PER_LINE

MAC_FIELD_HIGH, MAC_FIELD_LOW = 51, 40
MAC_BITS_PER_PTE = MAC_FIELD_HIGH - MAC_FIELD_LOW + 1  # 12
ID_FIELD_HIGH, ID_FIELD_LOW = 58, 52
ID_BITS_PER_PTE = ID_FIELD_HIGH - ID_FIELD_LOW + 1  # 7

MAC_BITS_PER_LINE = MAC_BITS_PER_PTE * PTES_PER_LINE  # 96
ID_BITS_PER_LINE = ID_BITS_PER_PTE * PTES_PER_LINE  # 56

ACCESSED_BIT = 5  # excluded from the MAC: hardware sets it asynchronously


def _spread(field_mask: int) -> int:
    """Replicate a per-PTE 64-bit mask across the eight PTEs of a line."""
    value = 0
    for index in range(PTES_PER_LINE):
        value |= field_mask << (64 * index)
    return value


# Whole-line (512-bit) masks, precomputed once: the hot-path operations
# below are single big-integer ANDs/ORs instead of per-PTE loops.
_MAC_FIELD_PTE_MASK = mask(MAC_BITS_PER_PTE) << MAC_FIELD_LOW
_ID_FIELD_PTE_MASK = mask(ID_BITS_PER_PTE) << ID_FIELD_LOW
MAC_FIELDS_LINE_MASK = _spread(_MAC_FIELD_PTE_MASK)
ID_FIELDS_LINE_MASK = _spread(_ID_FIELD_PTE_MASK)
_METADATA_LINE_MASK = MAC_FIELDS_LINE_MASK | ID_FIELDS_LINE_MASK

_PROTECTED_LINE_MASKS: dict = {}


def split_ptes(line: bytes) -> List[int]:
    """Split a 64-byte line into its eight PTEs (little-endian u64s)."""
    if len(line) != CACHELINE_BYTES:
        raise ValueError(f"line must be {CACHELINE_BYTES} bytes")
    return [
        int.from_bytes(line[i * PTE_BYTES : (i + 1) * PTE_BYTES], "little")
        for i in range(PTES_PER_LINE)
    ]


def join_ptes(ptes: List[int]) -> bytes:
    """Assemble eight PTE values back into a 64-byte line."""
    if len(ptes) != PTES_PER_LINE:
        raise ValueError(f"need {PTES_PER_LINE} PTEs")
    return b"".join((p & mask(64)).to_bytes(PTE_BYTES, "little") for p in ptes)


def protected_bits_mask(max_phys_bits: int) -> int:
    """The per-PTE mask of MAC-protected bits for a given ``M`` (Table IV)."""
    value = 0
    value = insert_bits(value, 8, 0, mask(9))  # flags
    value &= ~(1 << ACCESSED_BIT)  # except the accessed bit
    value = insert_bits(value, 11, 9, mask(3))  # OS-programmable
    value = insert_bits(value, max_phys_bits - 1, 12, mask(max_phys_bits - 12))  # PFN
    value = insert_bits(value, 63, 59, mask(5))  # protection keys + NX
    return value


def protected_bit_positions(max_phys_bits: int) -> List[int]:
    """Bit positions (within a PTE) covered by the MAC, ascending."""
    pmask = protected_bits_mask(max_phys_bits)
    return [i for i in range(64) if (pmask >> i) & 1]


def _protected_line_mask(max_phys_bits: int) -> int:
    if max_phys_bits not in _PROTECTED_LINE_MASKS:
        _PROTECTED_LINE_MASKS[max_phys_bits] = _spread(
            protected_bits_mask(max_phys_bits)
        )
    return _PROTECTED_LINE_MASKS[max_phys_bits]


def mask_unprotected(line: bytes, max_phys_bits: int) -> bytes:
    """Zero every bit the MAC does not cover — the MAC input (Sec IV-F)."""
    value = int.from_bytes(line, "little") & _protected_line_mask(max_phys_bits)
    return value.to_bytes(CACHELINE_BYTES, "little")


def matches_pattern(line: bytes, extended: bool = False) -> bool:
    """The DRAM-write bit-pattern match.

    Returns True when bits 51:40 of all eight PTEs are zero (and, when
    ``extended``, bits 58:52 as well) — i.e. when the line is eligible for
    MAC (and identifier) embedding.
    """
    value = int.from_bytes(line, "little")
    fields = MAC_FIELDS_LINE_MASK | (ID_FIELDS_LINE_MASK if extended else 0)
    return value & fields == 0


def extract_mac(line: bytes) -> int:
    """Pool bits 51:40 of the eight PTEs into the 96-bit stored MAC."""
    value = int.from_bytes(line, "little")
    tag = 0
    for index in range(PTES_PER_LINE):
        chunk = (value >> (64 * index + MAC_FIELD_LOW)) & 0xFFF
        tag |= chunk << (MAC_BITS_PER_PTE * index)
    return tag


def embed_mac(line: bytes, tag: int) -> bytes:
    """Scatter a 96-bit MAC into bits 51:40 of the eight PTEs."""
    if tag >> MAC_BITS_PER_LINE:
        raise ValueError(f"MAC does not fit in {MAC_BITS_PER_LINE} bits")
    value = int.from_bytes(line, "little") & ~MAC_FIELDS_LINE_MASK
    for index in range(PTES_PER_LINE):
        chunk = (tag >> (MAC_BITS_PER_PTE * index)) & 0xFFF
        value |= chunk << (64 * index + MAC_FIELD_LOW)
    return value.to_bytes(CACHELINE_BYTES, "little")


def strip_mac(line: bytes) -> bytes:
    """Zero the MAC field of every PTE (before forwarding to the caches)."""
    value = int.from_bytes(line, "little") & ~MAC_FIELDS_LINE_MASK
    return value.to_bytes(CACHELINE_BYTES, "little")


def extract_identifier(line: bytes) -> int:
    """Pool bits 58:52 of the eight PTEs into the 56-bit identifier."""
    value = int.from_bytes(line, "little")
    identifier = 0
    for index in range(PTES_PER_LINE):
        chunk = (value >> (64 * index + ID_FIELD_LOW)) & 0x7F
        identifier |= chunk << (ID_BITS_PER_PTE * index)
    return identifier


def embed_identifier(line: bytes, identifier: int) -> bytes:
    """Scatter the 56-bit identifier into bits 58:52 of the eight PTEs."""
    if identifier >> ID_BITS_PER_LINE:
        raise ValueError(f"identifier does not fit in {ID_BITS_PER_LINE} bits")
    value = int.from_bytes(line, "little") & ~ID_FIELDS_LINE_MASK
    for index in range(PTES_PER_LINE):
        chunk = (identifier >> (ID_BITS_PER_PTE * index)) & 0x7F
        value |= chunk << (64 * index + ID_FIELD_LOW)
    return value.to_bytes(CACHELINE_BYTES, "little")


def strip_identifier(line: bytes) -> bytes:
    """Zero the identifier field of every PTE."""
    value = int.from_bytes(line, "little") & ~ID_FIELDS_LINE_MASK
    return value.to_bytes(CACHELINE_BYTES, "little")


def strip_metadata(line: bytes) -> bytes:
    """Zero both MAC and identifier fields (full metadata removal)."""
    value = int.from_bytes(line, "little") & ~_METADATA_LINE_MASK
    return value.to_bytes(CACHELINE_BYTES, "little")


def is_zero_data(line: bytes) -> bool:
    """True when the line is all-zero outside the MAC/identifier fields.

    This is the MAC-zero fast-path predicate (Sec V-B): a zero cacheline
    that had metadata embedded still reads back as zero once the MAC and
    identifier fields are masked out.
    """
    return int.from_bytes(line, "little") & ~_METADATA_LINE_MASK == 0


def pfn_of(pte: int, max_phys_bits: int) -> int:
    """Extract the PFN (bits M-1:12) from a PTE."""
    return bits(pte, max_phys_bits - 1, 12)


def with_pfn(pte: int, pfn: int, max_phys_bits: int) -> int:
    """Return ``pte`` with its PFN field replaced."""
    return insert_bits(pte, max_phys_bits - 1, 12, pfn & mask(max_phys_bits - 12))


def flags_of(pte: int) -> Tuple[int, int]:
    """Extract the two protected flag groups: (bits 11:0 sans accessed, bits 63:59)."""
    low = pte & (mask(12) & ~(1 << ACCESSED_BIT))
    high = bits(pte, 63, 59)
    return low, high


def pfn_exceeds_bound(pte: int, max_phys_bits: int) -> bool:
    """The OS-visible bounds check of Section IV-E.

    When a faulty protected PTE reaches the OS via a data read, the MAC
    residing in bits 51:40 makes the architectural 40-bit PFN exceed the
    installed physical memory, which the (trusted) OS can detect.
    """
    architectural_pfn = bits(pte, 51, 12)
    return architectural_pfn >> (max_phys_bits - 12) != 0
