"""Resilience overhead: the same sweep fault-free vs under seeded chaos.

Like the other ``test_bench_*`` files this measures the *simulator*: a
fig6 sweep runs once clean and once with deterministic chaos (worker
kills, over-deadline delays, cache corruption) plus a warm replay that
must quarantine the corrupted entries. The contract asserted is the
issue's acceptance bar — every mode returns identical rows — and the
benchmark quantifies what the fault tolerance costs when faults do and
do not happen.

Writes machine-readable ``BENCH_resilience.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile
import time

from conftest import scale

from repro.analysis.perf_eval import figure6_jobs, run_figure6
from repro.harness.chaos import ChaosPolicy
from repro.harness.parallel import (
    ExecutionPolicy,
    ResultCache,
    execution_policy,
    last_run_stats,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent
WORKLOADS = ["povray", "xz", "mcf", "lbm"]


def _pick_chaos(mem_ops: int, warmup: int) -> ChaosPolicy:
    """First seed whose decisions hit every channel on this job grid.

    Job keys include ``mem_ops``, so the fault pattern shifts with
    REPRO_SCALE; scanning seeds keeps the ≥1-kill/≥1-corrupt assertions
    deterministic at every scale (and the scan itself is pure hashing).
    """
    keys = [job.key() for job in figure6_jobs(WORKLOADS, mem_ops, warmup)]
    for seed in range(1, 1000):
        policy = ChaosPolicy(seed=seed, kill=0.2, delay=0.1, corrupt=0.2)
        if (
            any(policy.decide(k, "kill") for k in keys)
            and any(policy.decide(k, "corrupt") for k in keys)
        ):
            return policy
    raise AssertionError("no chaos seed below 1000 covers kill+corrupt")


def _sweep(mem_ops: int, warmup: int, cache, policy=None):
    start = time.perf_counter()
    if policy is None:
        rows = run_figure6(
            WORKLOADS, mem_ops=mem_ops, warmup_ops=warmup, workers=2, cache=cache
        )
    else:
        with execution_policy(policy):
            rows = run_figure6(
                WORKLOADS, mem_ops=mem_ops, warmup_ops=warmup, workers=2, cache=cache
            )
    return time.perf_counter() - start, rows, last_run_stats()


def test_bench_resilience(once, emit):
    mem_ops = int(20_000 * scale())
    warmup = int(12_000 * scale())
    timeout_s = max(10.0, scale() * 10.0)
    chaos = _pick_chaos(mem_ops, warmup)
    cache_root = pathlib.Path(tempfile.mkdtemp(prefix="ptguard-bench-chaos-"))

    def experiment():
        clean_sec, clean_rows, _ = _sweep(mem_ops, warmup, cache=None)
        chaos_policy = ExecutionPolicy(
            timeout_s=timeout_s, retries=3, backoff_base_s=0.0, chaos=chaos
        )
        chaos_sec, chaos_rows, chaos_stats = _sweep(
            mem_ops, warmup, cache=ResultCache(cache_root), policy=chaos_policy
        )
        warm_cache = ResultCache(cache_root)
        warm_sec, warm_rows, warm_stats = _sweep(mem_ops, warmup, cache=warm_cache)
        return {
            "clean_sec": clean_sec,
            "chaos_sec": chaos_sec,
            "warm_sec": warm_sec,
            "rows_identical": clean_rows == chaos_rows == warm_rows,
            "crashes": chaos_stats.crashes,
            "timeouts": chaos_stats.timeouts,
            "retries": chaos_stats.retries,
            "quarantined": warm_stats.quarantined,
            "warm_cached": warm_stats.cached,
            "warm_fresh": warm_stats.fresh,
        }

    try:
        result = once(experiment)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    overhead = result["chaos_sec"] / result["clean_sec"]
    emit(
        "\n".join(
            [
                f"Resilience — fig6 sweep over {len(WORKLOADS)} workloads, "
                f"{mem_ops} mem ops/cell (REPRO_SCALE={scale():g})",
                "",
                f"{'mode':<26} {'seconds':>8}",
                f"{'clean (no faults)':<26} {result['clean_sec']:>8.1f}",
                f"{'chaos (kill/delay/corrupt)':<26} {result['chaos_sec']:>8.1f}"
                f"   ({overhead:.2f}x clean)",
                f"{'warm replay + quarantine':<26} {result['warm_sec']:>8.2f}",
                "",
                f"injected: {result['crashes']} worker kills, "
                f"{result['timeouts']} deadline kills, "
                f"{result['quarantined']} corrupted cache entries "
                f"(all recovered; {result['retries']} retries)",
                f"rows identical across clean/chaos/warm: "
                f"{result['rows_identical']}",
            ]
        )
    )

    payload = {
        "repro_scale": scale(),
        "mem_ops": mem_ops,
        "workloads": WORKLOADS,
        "chaos": {"seed": chaos.seed, "kill": chaos.kill, "delay": chaos.delay,
                  "corrupt": chaos.corrupt},
        "clean_sec": result["clean_sec"],
        "chaos_sec": result["chaos_sec"],
        "warm_sec": result["warm_sec"],
        "chaos_overhead_vs_clean": overhead,
        "worker_kills": result["crashes"],
        "deadline_kills": result["timeouts"],
        "retries": result["retries"],
        "quarantined_entries": result["quarantined"],
        "rows_identical": result["rows_identical"],
    }
    (REPO_ROOT / "BENCH_resilience.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # Host-independent properties (always asserted).
    assert result["rows_identical"], "fault injection changed a simulated result"
    assert result["crashes"] >= 1, "chaos injected no worker kill"
    assert result["quarantined"] >= 1, "chaos corrupted no cache entry"
    assert result["warm_cached"] + result["warm_fresh"] == 12
    assert result["warm_fresh"] == result["quarantined"], (
        "warm replay recomputed more than the quarantined cells"
    )
