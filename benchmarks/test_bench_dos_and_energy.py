"""Sec IV-G (DoS response) and Sec V-E (energy): the discussion sections.

DoS: an adversary flips the victim's PTEs repeatedly; PT-Guard detects
every time, and the OS's response policy decides availability. Energy:
the MAC unit's consumption relative to DRAM accesses, with and without
the identifier optimization.
"""

from conftest import scale

from repro.analysis.dos_eval import compare_policies
from repro.analysis.overhead_model import energy_estimate
from repro.analysis.reporting import banner, format_table
from repro.common.config import PTGuardConfig, optimized_ptguard_config
from repro.cpu.workloads import get_workload
from repro.harness.system import build_system


def test_bench_sec4g_dos_response(once, emit):
    rounds = int(14 * scale())
    outcomes = once(compare_policies, rounds=rounds)
    report = "\n".join(
        [
            banner("Sec IV-G: OS responses to repeated PTE flips (DoS)"),
            format_table(
                ["policy", "victim kills", "successful accesses",
                 "remaps", "availability"],
                [
                    (o.policy, o.victim_kills, o.successful_accesses,
                     o.remaps, f"{o.availability * 100:.0f}%")
                    for o in outcomes
                ],
            ),
            "",
            "paper: the OS can remap the flipping row, isolate, or kill the"
            " aggressor — detection gives it the choice.",
        ]
    )
    emit(report)
    by_policy = {o.policy: o for o in outcomes}
    assert by_policy["kill_aggressor"].availability >= by_policy["kill_victim"].availability


def test_bench_sec5e_energy(once, emit):
    mem_ops = int(10_000 * scale())

    def run_all():
        rows = []
        for label, config in (("ptguard", PTGuardConfig()),
                              ("optimized", optimized_ptguard_config())):
            system = build_system(ptguard=config, mac_algorithm="pseudo", seed=2)
            process, trace = system.workload_process(get_workload("lbm"), seed=2)
            core = system.new_core(process)
            core.prefault(trace)
            # Warm untimed, then count MAC/read traffic in the window only
            # (the OS's prefault-time PTE reads are not steady state).
            for _ in range(mem_ops):
                record = trace.next_record()
                core._execute(record.virtual_address, record.is_write)
            checks0 = system.guard.stats.get("mac_computations_read")
            reads0 = (system.controller.stats.get("reads")
                      + system.controller.stats.get("pte_reads"))
            core.run(trace, mem_ops=mem_ops, warmup_ops=0)
            checks = system.guard.stats.get("mac_computations_read") - checks0
            reads = (system.controller.stats.get("reads")
                     + system.controller.stats.get("pte_reads")) - reads0
            estimate = energy_estimate(reads, checks)
            rows.append(
                (
                    label,
                    reads,
                    checks,
                    f"{estimate.checked_fraction * 100:.1f}%",
                    f"{estimate.overhead_percent:.2f}%",
                )
            )
        return rows

    rows = once(run_all)
    report = "\n".join(
        [
            banner("Sec V-E: MAC energy vs DRAM access energy (1.6 nJ/MAC)"),
            format_table(
                ["design", "DRAM reads", "MAC computations",
                 "checked fraction", "energy overhead"],
                rows,
            ),
            "",
            "paper: <2% of reads need the MAC with the identifier =>"
            " negligible energy",
        ]
    )
    emit(report)
    assert float(rows[1][3].rstrip("%")) < 12.0  # optimized gates the unit
    assert float(rows[1][4].rstrip("%")) < 1.0
