"""Sections IV-G, V-E and VI-E: security model and SRAM budget."""

from repro.common.config import PTGuardConfig, optimized_ptguard_config
from repro.core import security
from repro.core.guard import PTGuard
from repro.analysis.reporting import banner, format_table


def test_bench_sec6e_security(once, emit):
    def sweep():
        return [security.summarize(soft_match_k=k) for k in range(7)]

    summaries = once(sweep)
    report = "\n".join(
        [
            banner("Sec VI-E: soft-match security trade (Eq 1 + Eq 2)"),
            format_table(
                ["k", "n_eff bits", "loss bits", "p_uncorr @1%", "years to attack"],
                [
                    (
                        s.soft_match_k,
                        round(s.effective_bits, 1),
                        round(s.security_loss, 1),
                        f"{s.p_uncorrectable * 100:.3f}%",
                        f"{s.years_to_attack:.2e}",
                    )
                    for s in summaries
                ],
            ),
            "",
            f"policy choice for p_flip=1%: k = "
            f"{security.choose_soft_match_k(96, 0.01)} (paper: 4)",
            f"n_eff(k=4, Gmax=372) = "
            f"{security.effective_mac_bits(96, 4, 372):.1f} bits (paper: 66)",
            f"exact 96-bit MAC: {security.years_to_attack(96):.2e} years "
            "(paper: >1e14)",
            f"benign MAC-collision interval: "
            f"{security.natural_collision_interval_years(96):.2e} years "
            "(paper: ~1e12, 'once every trillion years')",
        ]
    )
    emit(report)

    assert security.choose_soft_match_k(96, 0.01) == 4
    assert 64.5 <= security.effective_mac_bits(96, 4, 372) <= 67
    assert security.years_to_attack(96, 4, 372) > 1e4
    assert security.years_to_attack(96) > 1e14
    assert security.uncorrectable_probability(96, 4, 0.01) < 0.01


def test_bench_sec5e_storage(once, emit):
    def build():
        return PTGuard(PTGuardConfig()), PTGuard(optimized_ptguard_config())

    base, optimized = once(build)
    report = "\n".join(
        [
            banner("Sec V-E: SRAM budget in the memory controller"),
            format_table(
                ["design", "component budget", "total bytes", "paper"],
                [
                    ("PT-Guard", "32B key + 20B CTB", base.sram_bytes, 52),
                    (
                        "Optimized",
                        "+7B identifier +12B MAC-zero",
                        optimized.sram_bytes,
                        71,
                    ),
                ],
            ),
            "",
            "DRAM storage overhead: 0 bytes (MAC embedded in unused PFN bits)",
        ]
    )
    emit(report)
    assert base.sram_bytes == 52
    assert optimized.sram_bytes == 71
