"""Throughput of the MAC primitives (true pytest-benchmark timing).

Calibrates the simulator's own cost model and documents why large
simulations default to BLAKE2 while security experiments may select the
paper's QARMA-128 construction.
"""

import pytest

from repro.crypto.mac import (
    Blake2LineMAC,
    PseudoLineMAC,
    QarmaLineMAC,
    SipHashLineMAC,
)

LINE = bytes(range(64))


@pytest.mark.parametrize(
    "factory",
    [
        pytest.param(lambda: QarmaLineMAC(bytes(range(32))), id="qarma128"),
        pytest.param(lambda: SipHashLineMAC(bytes(range(16))), id="siphash24"),
        pytest.param(lambda: Blake2LineMAC(bytes(range(32))), id="blake2b"),
        pytest.param(lambda: PseudoLineMAC(bytes(range(16))), id="pseudo-crc"),
    ],
)
def test_bench_line_mac_throughput(benchmark, factory):
    mac = factory()
    tag = benchmark(mac.compute, LINE, 0x1234560)
    assert 0 <= tag < 2**96


def test_bench_qarma_single_block(benchmark):
    from repro.crypto.qarma import Qarma128

    cipher = Qarma128(bytes(range(32)))
    out = benchmark(cipher.encrypt, 0x0123456789ABCDEF, 0x42)
    assert 0 <= out < 2**128


def test_bench_guard_write_path(benchmark):
    """Cost of one guarded DRAM write (pattern match + embed)."""
    from repro.common.config import PTGuardConfig
    from repro.core import pattern
    from repro.core.guard import PTGuard
    from repro.mmu.pte import make_x86_pte

    guard = PTGuard(PTGuardConfig(), mac_algorithm="blake2")
    line = pattern.join_ptes([make_x86_pte(0x2E5F3 + i) for i in range(8)])
    outcome = benchmark(guard.process_write, 0x4000, line)
    assert outcome.embedded


def test_bench_guard_read_path(benchmark):
    """Cost of one guarded PTE read (verify + strip)."""
    from repro.common.config import PTGuardConfig
    from repro.core import pattern
    from repro.core.guard import PTGuard
    from repro.mmu.pte import make_x86_pte

    guard = PTGuard(PTGuardConfig(), mac_algorithm="blake2")
    line = pattern.join_ptes([make_x86_pte(0x2E5F3 + i) for i in range(8)])
    stored = guard.process_write(0x4000, line).stored_line
    outcome = benchmark(guard.process_read, 0x4000, stored, True)
    assert outcome.mac_matched
