"""Service under flood and under crashes: throughput, fast-fail, recovery.

A seeded burst of real fig6-cell sweeps from three tenants floods a
small admission queue on the live (threaded, multi-dispatcher) service.
The bench measures what the overload machinery costs and guarantees:
how many submissions per second complete under sustained flood, how
fast a refused submission learns its fate (shed/reject p95 — the
"fail fast, never hang" half of the contract), and that every accepted
submission's results are byte-identical to a quiet serial run.

The recovery bench prices the durability layer: WAL append overhead
(fsync-per-record vs batched), replay time as a function of WAL length,
and — after a seed-addressed mid-sweep crash — that a restarted service
recomputes exactly the missing cells, never the cached ones.

Both merge their sections into machine-readable ``BENCH_service.json``
at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile
import time

from conftest import scale

from repro.analysis.perf_eval import figure6_jobs
from repro.common.errors import AdmissionRejected
from repro.harness.parallel import last_run_stats, run_jobs
from repro.service import (
    FabricService,
    ServiceChaosPolicy,
    ServiceConfig,
    StateLog,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent
WORKLOADS = ["povray", "xz", "mcf", "lbm"]
TENANTS = ["alice", "bob", "carol"]
SUBMISSIONS = 24
QUEUE_DEPTH = 4


def _write_bench(update):
    """Merge ``update`` into BENCH_service.json, preserving other sections."""
    path = REPO_ROOT / "BENCH_service.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            payload = {}
    except (OSError, ValueError):
        payload = {}
    payload.update(update)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _submission_jobs(index: int, mem_ops: int, warmup: int):
    """One small, unique fig6 sweep per submission (3 config cells)."""
    workload = WORKLOADS[index % len(WORKLOADS)]
    # Distinct mem_ops per submission keeps every sweep's cells unique,
    # so the flood measures real execution, not cross-submission cache hits.
    return figure6_jobs([workload], mem_ops + index, warmup)


def test_bench_service_flood(once, emit):
    mem_ops = int(4_000 * scale())
    warmup = int(2_000 * scale())
    cache_root = pathlib.Path(tempfile.mkdtemp(prefix="ptguard-bench-svc-"))

    def experiment():
        config = ServiceConfig(
            queue_depth=QUEUE_DEPTH,
            dispatchers=2,
            rate_capacity=float(SUBMISSIONS),
            rate_refill_per_s=float(SUBMISSIONS),
            backend="threaded",
            workers=2,
        )
        service = FabricService(cache_root=cache_root, config=config)
        tickets = {}
        rejected_at_submit = 0
        flood_start = time.perf_counter()
        try:
            for index in range(SUBMISSIONS):
                tenant = TENANTS[index % len(TENANTS)]
                try:
                    tickets[index] = service.submit_sweep(
                        jobs=_submission_jobs(index, mem_ops, warmup),
                        tenant=tenant,
                    )
                except AdmissionRejected:
                    rejected_at_submit += 1
            flood_sec = time.perf_counter() - flood_start

            completed, shed = [], 0
            for index, ticket in tickets.items():
                try:
                    service.results(ticket, timeout=600)
                    completed.append(index)
                except AdmissionRejected as exc:
                    assert exc.reason == "shed", exc.reason
                    shed += 1
            drain_sec = time.perf_counter() - flood_start

            # Byte-identity spot check: the three accepted submissions
            # spread across tenants vs quiet serial runs of their jobs.
            sample = completed[:: max(1, len(completed) // 3)][:3]
            identical = all(
                service.results(tickets[index])
                == run_jobs(_submission_jobs(index, mem_ops, warmup))
                for index in sample
            )
            health = service.health()
        finally:
            service.close()
        return {
            "flood_sec": flood_sec,
            "drain_sec": drain_sec,
            "completed": len(completed),
            "shed": shed,
            "rejected_at_submit": rejected_at_submit,
            "identical": identical,
            "sampled": len(sample),
            "counters": health["counters"],
            "latency": health["latency"],
        }

    try:
        result = once(experiment)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    throughput = result["completed"] / result["drain_sec"]
    reject_p95 = result["latency"]["reject"]["p95"]
    queue_p95 = result["latency"]["queue_wait"]["p95"]
    run_p95 = result["latency"]["run"]["p95"]
    emit(
        "\n".join(
            [
                f"Service flood — {SUBMISSIONS} fig6-cell sweeps from "
                f"{len(TENANTS)} tenants into a depth-{QUEUE_DEPTH} queue "
                f"(REPRO_SCALE={scale():g})",
                "",
                f"{'accepted throughput':<28} {throughput:>8.2f} sweeps/s",
                f"{'completed / shed / rejected':<28} "
                f"{result['completed']:>3} / {result['shed']} / "
                f"{result['rejected_at_submit']}",
                f"{'submit burst (all 24)':<28} {result['flood_sec']:>8.3f} s",
                f"{'shed/reject fast-fail p95':<28} {reject_p95 * 1e3:>8.3f} ms",
                f"{'queue wait p95':<28} {queue_p95:>8.3f} s",
                f"{'sweep run p95':<28} {run_p95:>8.3f} s",
                "",
                f"accepted results byte-identical to serial "
                f"({result['sampled']} sampled): {result['identical']}",
            ]
        )
    )

    payload = {
        "repro_scale": scale(),
        "submissions": SUBMISSIONS,
        "queue_depth": QUEUE_DEPTH,
        "tenants": TENANTS,
        "mem_ops": mem_ops,
        "completed": result["completed"],
        "shed": result["shed"],
        "rejected_at_submit": result["rejected_at_submit"],
        "accepted_throughput_sweeps_per_s": throughput,
        "flood_submit_sec": result["flood_sec"],
        "drain_sec": result["drain_sec"],
        "shed_reject_p95_s": reject_p95,
        "queue_wait_p95_s": queue_p95,
        "run_p95_s": run_p95,
        "counters": result["counters"],
        "sampled_identical": result["identical"],
    }
    _write_bench(payload)

    # Host-independent properties (always asserted).
    assert result["identical"], "an accepted sweep diverged from serial"
    assert result["completed"] >= 1, "the flood starved every submission"
    assert (
        result["completed"] + result["shed"] + result["rejected_at_submit"]
        == SUBMISSIONS
    ), "every submission must resolve: done, shed or typed-rejected"
    assert result["counters"]["completed"] == result["completed"]


# -- durability & crash recovery ----------------------------------------------

WAL_APPENDS = 256
REPLAY_LENGTHS = [100, 1000]


class _SimulatedKill(BaseException):
    """In-process stand-in for SIGKILL: unwinds past ``except Exception``."""


def _kill():
    raise _SimulatedKill("crash channel fired")


def _wal_append_us(root, fsync_interval):
    log = StateLog(root / f"bench-f{fsync_interval}.wal", fsync_interval=fsync_interval)
    record = {"type": "accept", "ticket": "s-0001", "tenant": "alice"}
    start = time.perf_counter()
    for index in range(WAL_APPENDS):
        assert log.append(dict(record, n=index))
    elapsed = time.perf_counter() - start
    log.close()
    return elapsed / WAL_APPENDS * 1e6


def _replay_ms(root, length):
    log = StateLog(root / f"bench-r{length}.wal", fsync_interval=length)
    for index in range(length):
        log.append({"type": "accept", "ticket": f"s-{index:04d}", "n": index})
    log.close()
    start = time.perf_counter()
    result = log.replay()
    elapsed = time.perf_counter() - start
    assert len(result.records) == length and result.clean
    return elapsed * 1e3


def test_bench_service_recovery(once, emit):
    mem_ops = int(4_000 * scale())
    warmup = int(2_000 * scale())
    root = pathlib.Path(tempfile.mkdtemp(prefix="ptguard-bench-rec-"))

    def experiment():
        append_us = _wal_append_us(root, fsync_interval=1)
        append_batched_us = _wal_append_us(root, fsync_interval=64)
        replay = {str(n): _replay_ms(root, n) for n in REPLAY_LENGTHS}

        # A mid-sweep crash at a seed-addressed cell, then a restart
        # against the same state dir. The content-addressed cache is the
        # exactly-once mechanism: recompute is exactly the missing gap.
        jobs = figure6_jobs(WORKLOADS, mem_ops, warmup)
        chaos = ServiceChaosPolicy(seed=7, crash=1.0)
        config = ServiceConfig(backend="threaded", workers=2, dispatchers=1)
        service = FabricService(
            cache_root=root / "cache",
            config=config,
            state_dir=root / "state",
            chaos=chaos,
            crash_fn=_kill,
            start=False,
        )
        ticket = service.submit_sweep(jobs=jobs, tenant="alice")
        point = chaos.crash_point(ticket, len(jobs))
        try:
            service.drain()
        except _SimulatedKill:
            pass

        recover_start = time.perf_counter()
        revived = FabricService(
            cache_root=root / "cache",
            config=config,
            state_dir=root / "state",
            start=False,
        )
        recover_ms = (time.perf_counter() - recover_start) * 1e3
        try:
            revived.drain()
            results = revived.results(ticket)
            stats = last_run_stats()
        finally:
            revived.close()
        assert results == run_jobs(jobs, workers=1)
        return {
            "append_us": append_us,
            "append_batched_us": append_batched_us,
            "replay_ms": replay,
            "cells_total": len(jobs),
            "cells_cached_at_crash": stats.cached,
            "cells_recomputed": stats.fresh,
            "crash_point": point,
            "recover_ms": recover_ms,
        }

    try:
        result = once(experiment)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    emit(
        "\n".join(
            [
                f"Service durability — WAL append, replay, crash recovery "
                f"(REPRO_SCALE={scale():g})",
                "",
                f"{'WAL append (fsync each)':<28} "
                f"{result['append_us']:>8.1f} us/record",
                f"{'WAL append (fsync/64)':<28} "
                f"{result['append_batched_us']:>8.1f} us/record",
                *(
                    f"{f'replay {length} records':<28} "
                    f"{result['replay_ms'][str(length)]:>8.2f} ms"
                    for length in REPLAY_LENGTHS
                ),
                f"{'restart (replay + re-adopt)':<28} "
                f"{result['recover_ms']:>8.2f} ms",
                "",
                f"crash at cell {result['crash_point']} of "
                f"{result['cells_total']}: adopted "
                f"{result['cells_cached_at_crash']} cached cells, "
                f"recomputed {result['cells_recomputed']}",
            ]
        )
    )

    _write_bench(
        {
            "recovery": {
                "repro_scale": scale(),
                "wal_append_us": result["append_us"],
                "wal_append_batched_us": result["append_batched_us"],
                "wal_replay_ms": result["replay_ms"],
                "recover_ms": result["recover_ms"],
                "cells_total": result["cells_total"],
                "cells_cached_at_crash": result["cells_cached_at_crash"],
                "cells_recomputed": result["cells_recomputed"],
            }
        }
    )

    # Host-independent properties (always asserted).
    assert result["cells_cached_at_crash"] == result["crash_point"]
    assert (
        result["cells_recomputed"]
        == result["cells_total"] - result["crash_point"]
    ), "recovery must recompute exactly the missing cells"
