"""Service under flood: accepted throughput and fast-fail latency.

A seeded burst of real fig6-cell sweeps from three tenants floods a
small admission queue on the live (threaded, multi-dispatcher) service.
The bench measures what the overload machinery costs and guarantees:
how many submissions per second complete under sustained flood, how
fast a refused submission learns its fate (shed/reject p95 — the
"fail fast, never hang" half of the contract), and that every accepted
submission's results are byte-identical to a quiet serial run.

Writes machine-readable ``BENCH_service.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile
import time

from conftest import scale

from repro.analysis.perf_eval import figure6_jobs
from repro.common.errors import AdmissionRejected
from repro.harness.parallel import run_jobs
from repro.service import FabricService, ServiceConfig

REPO_ROOT = pathlib.Path(__file__).parent.parent
WORKLOADS = ["povray", "xz", "mcf", "lbm"]
TENANTS = ["alice", "bob", "carol"]
SUBMISSIONS = 24
QUEUE_DEPTH = 4


def _submission_jobs(index: int, mem_ops: int, warmup: int):
    """One small, unique fig6 sweep per submission (3 config cells)."""
    workload = WORKLOADS[index % len(WORKLOADS)]
    # Distinct mem_ops per submission keeps every sweep's cells unique,
    # so the flood measures real execution, not cross-submission cache hits.
    return figure6_jobs([workload], mem_ops + index, warmup)


def test_bench_service_flood(once, emit):
    mem_ops = int(4_000 * scale())
    warmup = int(2_000 * scale())
    cache_root = pathlib.Path(tempfile.mkdtemp(prefix="ptguard-bench-svc-"))

    def experiment():
        config = ServiceConfig(
            queue_depth=QUEUE_DEPTH,
            dispatchers=2,
            rate_capacity=float(SUBMISSIONS),
            rate_refill_per_s=float(SUBMISSIONS),
            backend="threaded",
            workers=2,
        )
        service = FabricService(cache_root=cache_root, config=config)
        tickets = {}
        rejected_at_submit = 0
        flood_start = time.perf_counter()
        try:
            for index in range(SUBMISSIONS):
                tenant = TENANTS[index % len(TENANTS)]
                try:
                    tickets[index] = service.submit_sweep(
                        jobs=_submission_jobs(index, mem_ops, warmup),
                        tenant=tenant,
                    )
                except AdmissionRejected:
                    rejected_at_submit += 1
            flood_sec = time.perf_counter() - flood_start

            completed, shed = [], 0
            for index, ticket in tickets.items():
                try:
                    service.results(ticket, timeout=600)
                    completed.append(index)
                except AdmissionRejected as exc:
                    assert exc.reason == "shed", exc.reason
                    shed += 1
            drain_sec = time.perf_counter() - flood_start

            # Byte-identity spot check: the three accepted submissions
            # spread across tenants vs quiet serial runs of their jobs.
            sample = completed[:: max(1, len(completed) // 3)][:3]
            identical = all(
                service.results(tickets[index])
                == run_jobs(_submission_jobs(index, mem_ops, warmup))
                for index in sample
            )
            health = service.health()
        finally:
            service.close()
        return {
            "flood_sec": flood_sec,
            "drain_sec": drain_sec,
            "completed": len(completed),
            "shed": shed,
            "rejected_at_submit": rejected_at_submit,
            "identical": identical,
            "sampled": len(sample),
            "counters": health["counters"],
            "latency": health["latency"],
        }

    try:
        result = once(experiment)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    throughput = result["completed"] / result["drain_sec"]
    reject_p95 = result["latency"]["reject"]["p95"]
    queue_p95 = result["latency"]["queue_wait"]["p95"]
    run_p95 = result["latency"]["run"]["p95"]
    emit(
        "\n".join(
            [
                f"Service flood — {SUBMISSIONS} fig6-cell sweeps from "
                f"{len(TENANTS)} tenants into a depth-{QUEUE_DEPTH} queue "
                f"(REPRO_SCALE={scale():g})",
                "",
                f"{'accepted throughput':<28} {throughput:>8.2f} sweeps/s",
                f"{'completed / shed / rejected':<28} "
                f"{result['completed']:>3} / {result['shed']} / "
                f"{result['rejected_at_submit']}",
                f"{'submit burst (all 24)':<28} {result['flood_sec']:>8.3f} s",
                f"{'shed/reject fast-fail p95':<28} {reject_p95 * 1e3:>8.3f} ms",
                f"{'queue wait p95':<28} {queue_p95:>8.3f} s",
                f"{'sweep run p95':<28} {run_p95:>8.3f} s",
                "",
                f"accepted results byte-identical to serial "
                f"({result['sampled']} sampled): {result['identical']}",
            ]
        )
    )

    payload = {
        "repro_scale": scale(),
        "submissions": SUBMISSIONS,
        "queue_depth": QUEUE_DEPTH,
        "tenants": TENANTS,
        "mem_ops": mem_ops,
        "completed": result["completed"],
        "shed": result["shed"],
        "rejected_at_submit": result["rejected_at_submit"],
        "accepted_throughput_sweeps_per_s": throughput,
        "flood_submit_sec": result["flood_sec"],
        "drain_sec": result["drain_sec"],
        "shed_reject_p95_s": reject_p95,
        "queue_wait_p95_s": queue_p95,
        "run_p95_s": run_p95,
        "counters": result["counters"],
        "sampled_identical": result["identical"],
    }
    (REPO_ROOT / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # Host-independent properties (always asserted).
    assert result["identical"], "an accepted sweep diverged from serial"
    assert result["completed"] >= 1, "the flood starved every submission"
    assert (
        result["completed"] + result["shed"] + result["rejected_at_submit"]
        == SUBMISSIONS
    ), "every submission must resolve: done, shed or typed-rejected"
    assert result["counters"]["completed"] == result["completed"]
