"""Adversary frontier benchmark: worst-case availability and its price.

Runs the full default policy grid against every adaptive strategy
through the cached fabric (exactly what ``ptguard-repro frontier``
does), then times one matched closed-loop vs open-loop siege pair to
price the adaptive machinery itself. Reports:

* worst-case availability (and the breaking strategy) per recovery
  policy — the frontier's headline separation;
* adaptive-vs-fixed siege overhead — what the observe→adapt→hammer
  loop costs relative to a fixed-intensity siege of the same length;
* frontier throughput in cells/sec through the fabric.

Writes machine-readable ``BENCH_frontier.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import tempfile
import time

from conftest import scale

from repro.analysis.frontier_eval import run_frontier
from repro.analysis.siege_eval import run_adaptive_siege_cell, run_siege_cell
from repro.recovery.policy import RECOVERY_POLICIES

REPO_ROOT = pathlib.Path(__file__).parent.parent
SEED = 17
# The closed loop fires ~3 kill-grade ops per window; "medium" (4) is
# the matched open-loop intensity for the overhead comparison.
FIXED_INTENSITY = ("medium", 4)


def test_bench_frontier(once, emit):
    windows = max(8, int(12 * scale()))
    cache_root = pathlib.Path(tempfile.mkdtemp(prefix="ptguard-bench-frontier-"))
    full = RECOVERY_POLICIES["full"].as_params()

    def experiment():
        from repro.harness.parallel import ResultCache, last_run_stats

        start = time.perf_counter()
        rows, cells = run_frontier(
            windows=windows,
            seed=SEED,
            workers=2,
            cache=ResultCache(cache_root),
        )
        frontier_sec = time.perf_counter() - start
        stats = last_run_stats()

        # Matched pair: one closed-loop cell vs one fixed-intensity cell,
        # same policy, same windows, both in-process and uncached.
        adaptive_start = time.perf_counter()
        adaptive_cell = run_adaptive_siege_cell(
            "escalate", windows, SEED, recovery=full
        )
        adaptive_sec = time.perf_counter() - adaptive_start
        fixed_start = time.perf_counter()
        fixed_cell = run_siege_cell(
            *FIXED_INTENSITY, windows, SEED, recovery=full
        )
        fixed_sec = time.perf_counter() - fixed_start

        return {
            "rows": rows,
            "cells": len(cells),
            "fresh": stats.fresh,
            "frontier_sec": frontier_sec,
            "adaptive_sec": adaptive_sec,
            "fixed_sec": fixed_sec,
            "adaptive_availability": adaptive_cell.availability,
            "fixed_availability": fixed_cell.availability,
            "strategy_switches": len(adaptive_cell.strategy_switches),
        }

    try:
        result = once(experiment)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    rows = result["rows"]
    cells_per_sec = result["cells"] / result["frontier_sec"]
    overhead = result["adaptive_sec"] / max(result["fixed_sec"], 1e-9)
    presets = {
        row.policy: row for row in rows if row.policy in RECOVERY_POLICIES
    }

    table = [
        f"{'policy':<13} {'worst avail':>11} {'broken by':<18} {'verdict':<8}"
    ]
    for row in rows:
        table.append(
            f"{row.policy:<13} {row.min_availability:>11.5f} "
            f"{row.broken_by:<18} {'SURVIVES' if row.survives else 'BROKEN':<8}"
        )
    emit(
        "\n".join(
            [
                f"Adversary frontier — {result['cells']} closed-loop siege "
                f"cells, {windows} windows each (REPRO_SCALE={scale():g})",
                "",
                *table,
                "",
                f"{'frontier wall clock':<28} "
                f"{result['frontier_sec']:>8.2f} s "
                f"({cells_per_sec:.2f} cells/s through the fabric)",
                f"{'adaptive vs fixed siege':<28} {overhead:>8.2f} x "
                f"({result['adaptive_sec']:.2f} s vs "
                f"{result['fixed_sec']:.2f} s, full policy)",
                f"{'switches in escalate cell':<28} "
                f"{result['strategy_switches']:>8}",
            ]
        )
    )

    # The headline separation must hold at benchmark scale too.
    assert result["fresh"] == result["cells"], "bench must measure fresh cells"
    assert not presets["full"].survives
    assert any(row.policy == "hardened" and row.survives for row in rows)

    payload = {
        "repro_scale": scale(),
        "windows": windows,
        "seed": SEED,
        "cells": result["cells"],
        "frontier_sec": result["frontier_sec"],
        "cells_per_sec": cells_per_sec,
        "adaptive_siege_sec": result["adaptive_sec"],
        "fixed_siege_sec": result["fixed_sec"],
        "adaptive_vs_fixed_overhead": overhead,
        "worst_case_availability": {
            row.policy: {
                "min_availability": row.min_availability,
                "broken_by": row.broken_by,
                "survives": row.survives,
            }
            for row in rows
        },
    }
    (REPO_ROOT / "BENCH_frontier.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
