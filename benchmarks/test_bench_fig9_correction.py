"""Figure 9: best-effort correction of faulty PTE cachelines.

Paper result: 93 % of erroneous PTE lines corrected at p_flip = 1/512
(DDR4 worst case), 70 % at p_flip = 1/128 (LPDDR4 worst case); 100 %
detection; no mis-corrections, across 4 SPEC + 2 GAP workloads.
"""

from conftest import scale

from repro.analysis.correction_eval import (
    FIGURE9_WORKLOADS,
    P_FLIP_POINTS,
    run_figure9,
)
from repro.analysis.reporting import banner, format_table


def test_bench_fig9_correction(once, emit):
    max_lines = int(150 * scale())
    result = once(run_figure9, max_lines=max_lines, trials_per_line=3)

    rows = []
    for workload in FIGURE9_WORKLOADS:
        row = [workload]
        for p_flip in P_FLIP_POINTS:
            cell = result.cell(workload, p_flip)
            row.append(f"{cell.corrected_fraction * 100:.1f}%")
        rows.append(tuple(row))
    rows.append(
        tuple(
            ["AVERAGE"]
            + [f"{result.average_corrected(p) * 100:.1f}%" for p in P_FLIP_POINTS]
        )
    )

    total_err = sum(c.lines_erroneous for c in result.cells)
    total_mis = sum(c.miscorrections for c in result.cells)
    strategies = {}
    for cell in result.cells:
        for step, count in cell.winning_steps.items():
            strategies[step] = strategies.get(step, 0) + count

    report = "\n".join(
        [
            banner("Figure 9: % faulty PTE cachelines corrected"),
            format_table(["workload", "p=1/512", "p=1/256", "p=1/128"], rows),
            "",
            "paper: 93% average at 1/512, 70% at 1/128",
            f"faulty lines: {total_err} | mis-corrections: {total_mis} (paper: 0)",
            f"winning strategies: {strategies}",
        ]
    )
    emit(report)

    low = result.average_corrected(1 / 512)
    high = result.average_corrected(1 / 128)
    # Shape: high correction at low p_flip, degrading as p grows — the
    # paper's 93% -> 70% slope. Our synthetic page tables carry somewhat
    # less PFN contiguity than the authors' Ubuntu profile, so the
    # absolute level sits a few points lower at the same slope.
    assert low >= 0.80
    assert 0.45 <= high <= low
    assert low - high >= 0.05
    # Hard guarantees: full detection, zero mis-correction.
    assert total_mis == 0
    assert all(c.detection_coverage == 1.0 for c in result.cells if c.lines_erroneous)
