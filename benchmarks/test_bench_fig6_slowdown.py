"""Figure 6: PT-Guard normalized IPC and LLC MPKI across 25 workloads.

Paper result: 1.3 % average slowdown; worst case 3.6 % (xalancbmk,
MPKI 29); slowdown tracks LLC MPKI; Optimized PT-Guard 0.2 % average.
Scale with REPRO_SCALE for longer (smoother) simulations.
"""

from conftest import scale

from repro.analysis.perf_eval import run_figure6, summarize_figure6
from repro.analysis.reporting import ascii_bars, banner, format_table


def test_bench_fig6_slowdown(once, emit):
    mem_ops = int(20_000 * scale())
    warmup = int(12_000 * scale())

    rows = once(run_figure6, mem_ops=mem_ops, warmup_ops=warmup)
    summary = summarize_figure6(rows)

    table = format_table(
        ["workload", "suite", "MPKI", "MPKI(paper)", "IPC/IPCb",
         "slowdown%", "optimized%"],
        [
            (
                r.workload,
                r.suite,
                round(r.measured_mpki, 1),
                r.target_mpki,
                round(r.normalized_ipc, 4),
                round(r.slowdown_percent, 2),
                round(r.optimized_slowdown_percent or 0.0, 2),
            )
            for r in rows
        ],
    )
    bars = ascii_bars(
        [r.workload for r in rows],
        [max(0.0, r.slowdown_percent) for r in rows],
        unit="%",
    )
    report = "\n".join(
        [
            banner("Figure 6: normalized IPC + MPKI, 25 SPEC/GAP workloads"),
            table,
            "",
            f"AMEAN slowdown {summary['amean_slowdown_percent']:.2f}% (paper 1.3%)",
            f"worst slowdown {summary['worst_slowdown_percent']:.2f}% (paper 3.6%)",
            f"GMEAN normalized IPC {summary['gmean_normalized_ipc']:.4f}",
            f"Optimized AMEAN {summary.get('optimized_amean_slowdown_percent', 0):.2f}%"
            f" (paper 0.2%), worst "
            f"{summary.get('optimized_worst_slowdown_percent', 0):.2f}% (paper 0.4%)",
            "",
            banner("slowdown shape (Fig 6 top)"),
            bars,
        ]
    )
    emit(report)

    # Shape assertions: who wins and by roughly what factor.
    by_name = {r.workload: r for r in rows}
    assert summary["amean_slowdown_percent"] < 4.0  # small average cost
    assert summary["worst_slowdown_percent"] < 8.0
    # Memory-intensive workloads hurt most; quiet ones barely at all.
    heavy = [by_name[n].slowdown_percent for n in ("xalancbmk", "lbm", "pr")]
    quiet = [by_name[n].slowdown_percent for n in ("povray", "exchange2", "leela")]
    assert min(heavy) > max(0.0, max(quiet))
    # Optimized flattens the cost everywhere.
    assert summary["optimized_amean_slowdown_percent"] < summary["amean_slowdown_percent"]
