"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper figure, but the paper discusses each knob:
* identifier optimization on/off (Sec V-A) — MAC-unit traffic collapse;
* MAC-zero on/off (Sec V-B) — zero-line fast path;
* MAC width 96 vs 64 bits (Sec VII-A) — security/latency trade;
* soft-match k sweep (Sec VI-E) — correction coverage vs MAC strength;
* correction strategy ablation (Sec VI-D) — marginal value of each guess
  stage.
"""

import random

from conftest import scale

from repro.analysis.reporting import banner, format_table
from repro.common.config import PTGuardConfig
from repro.core import pattern, security
from repro.core.correction import CorrectionEngine
from repro.core.guard import PTGuard
from repro.cpu.workloads import get_workload
from repro.dram.rowhammer import inject_uniform_flips
from repro.harness.system import build_system
from repro.mmu.pte import make_x86_pte


def _run_timing(guard_config, mem_ops, warmup, seed=1):
    """Run one config; MAC/read counters cover the measured window only
    (prefault-time OS traffic excluded, as in the paper's steady state)."""
    system = build_system(ptguard=guard_config, mac_algorithm="pseudo", seed=seed)
    process, trace = system.workload_process(get_workload("xalancbmk"), seed=seed)
    core = system.new_core(process)
    core.prefault(trace)
    for _ in range(warmup):
        record = trace.next_record()
        core._execute(record.virtual_address, record.is_write)
    guard = system.guard
    checks0 = guard.stats.get("mac_computations_read") if guard else 0
    reads0 = (system.controller.stats.get("reads")
              + system.controller.stats.get("pte_reads"))
    result = core.run(trace, mem_ops=mem_ops, warmup_ops=0)
    checks = (guard.stats.get("mac_computations_read") - checks0) if guard else 0
    reads = (system.controller.stats.get("reads")
             + system.controller.stats.get("pte_reads")) - reads0
    return result, checks, reads


def test_bench_ablation_identifier_and_zero(once, emit):
    """Sec V: what each optimization contributes to MAC-unit traffic."""
    mem_ops = int(12_000 * scale())
    warmup = int(8_000 * scale())

    def run_all():
        rows = []
        base, _, _ = _run_timing(None, mem_ops, warmup)
        for label, config in (
            ("ptguard", PTGuardConfig()),
            ("+identifier", PTGuardConfig(identifier_enabled=True)),
            ("+identifier+mac-zero",
             PTGuardConfig(identifier_enabled=True, mac_zero_enabled=True)),
        ):
            result, checks, reads = _run_timing(config, mem_ops, warmup)
            rows.append(
                (
                    label,
                    round(base.ipc / result.ipc * 100 - 100, 2),
                    checks,
                    reads,
                    f"{100 * checks / max(1, reads):.1f}%",
                )
            )
        return rows

    rows = once(run_all)
    report = "\n".join(
        [
            banner("Ablation: identifier + MAC-zero optimizations (Sec V)"),
            format_table(
                ["design", "slowdown %", "MAC checks (reads)", "DRAM reads",
                 "checked fraction"],
                rows,
            ),
            "",
            "paper: identifier cuts MAC computations to <2% of DRAM reads",
        ]
    )
    emit(report)
    base_checks = rows[0][2]
    ident_checks = rows[1][2]
    # The identifier eliminates MAC work for every *data* read; what
    # remains is the page-walk traffic that must be checked by design.
    assert ident_checks < base_checks * 0.35
    assert rows[2][2] <= ident_checks


def test_bench_ablation_mac_width(once, emit):
    """Sec VII-A: 64-bit MAC trades correction strength for latency."""

    def run_all():
        rows = []
        for bits, latency in ((96, 10), (64, 7)):
            guard = PTGuard(PTGuardConfig(mac_bits=bits,
                                          mac_latency_cycles=latency),
                            mac_algorithm="blake2")
            line = pattern.join_ptes(
                [make_x86_pte(0x2E5F3 + i, user=True) for i in range(8)]
            )
            stored = guard.process_write(0x4000, line).stored_line
            tampered = bytearray(stored)
            tampered[0] ^= 1
            detected = guard.process_read(
                0x4000, bytes(tampered), is_pte=True
            ).pte_check_failed
            rows.append(
                (
                    f"{bits}-bit",
                    latency,
                    detected,
                    f"{security.years_to_attack(bits):.1e}",
                    f"{security.effective_mac_bits(bits, 4, 372):.1f}",
                )
            )
        return rows

    rows = once(run_all)
    report = "\n".join(
        [
            banner("Ablation: MAC width (Sec VII-A design option)"),
            format_table(
                ["MAC", "latency (cy)", "detects tamper", "years to forgery",
                 "n_eff w/ correction"],
                rows,
            ),
        ]
    )
    emit(report)
    assert all(row[2] for row in rows)  # both widths detect


def test_bench_ablation_soft_match_k(once, emit):
    """Sec VI-E: correction coverage vs security across k."""
    rng = random.Random(5)
    line = pattern.join_ptes(
        [make_x86_pte(0x2E5F3 + i, user=True) for i in range(8)]
    )

    def run_all():
        rows = []
        for k in (0, 1, 2, 4, 6):
            guard = PTGuard(
                PTGuardConfig(correction_enabled=True, soft_match_k=k),
                mac_algorithm="blake2",
            )
            stored = guard.process_write(0x4000, line).stored_line
            corrected = 0
            trials = int(120 * scale())
            for _ in range(trials):
                faulty, flips = inject_uniform_flips(stored, 1 / 128, rng)
                if faulty == stored:
                    continue
                outcome = guard.process_read(0x4000, faulty, is_pte=True)
                if outcome.corrected or outcome.mac_matched:
                    corrected += 1
            rows.append(
                (
                    k,
                    f"{100 * corrected / trials:.1f}%",
                    round(security.effective_mac_bits(96, k, 372), 1),
                    f"{security.uncorrectable_probability(96, k, 0.01) * 100:.2f}%",
                )
            )
        return rows

    rows = once(run_all)
    report = "\n".join(
        [
            banner("Ablation: soft-match k (coverage vs security, Sec VI-E)"),
            format_table(
                ["k", "lines recovered @p=1/128", "n_eff bits", "p_uncorr MAC"],
                rows,
            ),
            "",
            "paper picks k=4: <1% uncorrectable MACs at 66-bit effective security",
        ]
    )
    emit(report)
    # Coverage grows (weakly) with k while n_eff falls.
    neff = [row[2] for row in rows]
    assert neff == sorted(neff, reverse=True)


def test_bench_ablation_correction_strategies(once, emit):
    """Sec VI-D: marginal contribution of each guess stage."""
    rng = random.Random(9)

    def run_all():
        guard = PTGuard(PTGuardConfig(correction_enabled=True),
                        mac_algorithm="blake2")
        engine = guard.engine
        full = CorrectionEngine(engine)
        lines = []
        for i in range(int(40 * scale())):
            present = rng.randint(1, 8)
            base = (0x2E000 + rng.randrange(1 << 12)) | 0x551
            ptes = [
                make_x86_pte(base + j, user=True) if j < present else 0
                for j in range(8)
            ]
            line = pattern.join_ptes(ptes)
            tag = engine.compute(line, 0x4000 + 64 * i)
            lines.append((0x4000 + 64 * i, pattern.embed_mac(line, tag)))

        stage_wins = {}
        uncorrectable = 0
        faulty_total = 0
        for address, stored in lines:
            for _ in range(4):
                faulty, flips = inject_uniform_flips(stored, 1 / 128, rng)
                if faulty == stored:
                    continue
                faulty_total += 1
                result = full.correct(faulty, address)
                if result.corrected_line is None:
                    uncorrectable += 1
                else:
                    stage_wins[result.winning_step] = (
                        stage_wins.get(result.winning_step, 0) + 1
                    )
        return stage_wins, uncorrectable, faulty_total

    stage_wins, uncorrectable, faulty_total = once(run_all)
    rows = sorted(stage_wins.items(), key=lambda kv: -kv[1])
    rows.append(("UNCORRECTABLE", uncorrectable))
    report = "\n".join(
        [
            banner("Ablation: which correction stage wins (Sec VI-D)"),
            format_table(
                ["stage", f"wins (of {faulty_total} faulty lines)"], rows
            ),
            "",
            "expected order: soft-match/flip-and-check dominate single faults;"
            " locality stages recover multi-bit lines",
        ]
    )
    emit(report)
    assert stage_wins.get("soft_match", 0) + stage_wins.get("flip_and_check", 0) > 0
    assert sum(stage_wins.values()) > uncorrectable  # most faults recovered
