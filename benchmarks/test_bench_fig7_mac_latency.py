"""Figure 7: slowdown vs MAC-computation latency (5/10/15/20 cycles).

Paper result: PT-Guard average scales 0.7% -> 2.6% across the sweep;
Optimized PT-Guard stays below 0.3% at every latency because <2% of DRAM
reads reach the MAC unit.
"""

from conftest import scale

from repro.analysis.perf_eval import run_figure7
from repro.analysis.reporting import banner, format_table

# Representative mix: the heaviest + mid + quiet workloads.
WORKLOADS = ["xalancbmk", "lbm", "pr", "mcf", "bwaves", "xz", "povray", "namd"]


def test_bench_fig7_mac_latency(once, emit):
    mem_ops = int(20_000 * scale())
    warmup = int(12_000 * scale())
    points = once(
        run_figure7,
        WORKLOADS,
        latencies=(5, 10, 15, 20),
        mem_ops=mem_ops,
        warmup_ops=warmup,
    )
    report = "\n".join(
        [
            banner("Figure 7: slowdown vs MAC latency"),
            format_table(
                ["design", "MAC cycles", "avg slowdown%", "worst%", "worst workload"],
                [
                    (
                        p.design,
                        p.mac_latency,
                        round(p.average_slowdown_percent, 2),
                        round(p.worst_slowdown_percent, 2),
                        p.worst_workload,
                    )
                    for p in points
                ],
            ),
            "",
            "paper: ptguard avg 0.7% (5cy) -> 2.6% (20cy); optimized < 0.3% flat",
        ]
    )
    emit(report)

    ptguard = {p.mac_latency: p for p in points if p.design == "ptguard"}
    optimized = {p.mac_latency: p for p in points if p.design == "optimized"}
    # Baseline design scales with latency.
    assert ptguard[20].average_slowdown_percent > ptguard[5].average_slowdown_percent
    # Optimized is flat and cheap at every latency.
    for latency in (5, 10, 15, 20):
        assert optimized[latency].average_slowdown_percent < 1.0
        assert (
            optimized[latency].average_slowdown_percent
            < ptguard[latency].average_slowdown_percent + 0.05
        )
    # Crossover factor: at 20 cycles, optimized wins by a wide margin.
    assert (
        ptguard[20].average_slowdown_percent
        > 3 * max(0.01, optimized[20].average_slowdown_percent)
    )
