"""Section VII-C: PT-Guard slowdown on a 4-core system (SAME + MIX).

Paper result (4 O3 cores, SE mode): 0.5 % average, 1.6 % worst (4x
blender). Our cores are blocking in-order (full stall exposure, as in the
single-core study), so absolute values sit nearer the single-core
numbers; the qualitative claim — the MAC delay does not compound under
contention — is asserted.
"""

from conftest import scale

from repro.cpu.multicore import make_random_mix, make_same_mix, multicore_slowdown
from repro.analysis.reporting import banner, format_table


def test_bench_sec7c_multicore(once, emit):
    mem_ops = int(3000 * scale())

    def run_all():
        rows = []
        for name in ("lbm", "xalancbmk", "xz", "namd"):
            rows.append((f"SAME-{name}", multicore_slowdown(
                make_same_mix(name), mem_ops_per_core=mem_ops)))
        for seed in (1, 2):
            mix = make_random_mix(seed)
            rows.append((f"MIX-{seed}:{'/'.join(mix)}", multicore_slowdown(
                mix, mem_ops_per_core=mem_ops, seed=seed)))
        return rows

    rows = once(run_all)
    slowdowns = [s for _, s in rows]
    report = "\n".join(
        [
            banner("Sec VII-C: 4-core slowdown (PT-Guard vs baseline)"),
            format_table(
                ["configuration", "slowdown %"],
                [(name, round(s, 2)) for name, s in rows],
            ),
            "",
            f"average {sum(slowdowns) / len(slowdowns):.2f}% | worst "
            f"{max(slowdowns):.2f}%",
            "paper: 0.5% avg / 1.6% worst with O3 cores (stall overlap);",
            "in-order cores expose the full MAC delay, hence larger values.",
        ]
    )
    emit(report)

    # The MAC delay must not compound across cores: per-mix slowdown stays
    # in the same few-percent band as single-core Fig 6.
    assert max(slowdowns) < 8.0
    assert sum(slowdowns) / len(slowdowns) < 5.0
    # Quiet mixes cost less than memory-bound mixes.
    by_name = dict(rows)
    assert by_name["SAME-namd"] < by_name["SAME-lbm"] + 0.5
