"""Sections I/II/VIII + Figures 1/3: the attack-vs-defense story.

Layer 1 (bit flips): which hammering pattern defeats which mitigation.
Layer 2 (PTE consumption): which tampering defeats which PTE protection.
Plus the full Figure-3 exploit chain on baseline vs PT-Guard.
"""

from repro.analysis.attack_matrix import run_consumption_matrix, run_flip_matrix
from repro.analysis.reporting import banner, format_table
from repro.attacks.exploit import PrivilegeEscalationExploit
from repro.common.config import PTGuardConfig
from repro.harness.system import build_system


def test_bench_attack_matrix(once, emit):
    def run_all():
        return run_flip_matrix(), run_consumption_matrix()

    flips, consumption = once(run_all)

    report = "\n".join(
        [
            banner("Layer 1: hammering pattern vs deployed mitigation"),
            format_table(
                ["defense", "attack", "PTE-row flipped", "any flips", "refreshes"],
                [
                    (e.defense, e.attack, e.victim_flipped, e.any_flips,
                     e.mitigation_refreshes)
                    for e in flips
                ],
            ),
            "",
            banner("Layer 2: PTE tampering vs page-table protection"),
            format_table(
                ["protection", "scenario", "prevented", "why"],
                [(e.protection, e.scenario, e.prevented, e.note) for e in consumption],
            ),
        ]
    )
    emit(report)

    cell = {(e.defense, e.attack): e for e in flips}
    # The paper's narrative, cell by cell:
    assert cell[("none", "double-sided")].victim_flipped
    assert not cell[("none", "half-double")].victim_flipped  # needs a defense
    assert not cell[("TRR", "double-sided")].victim_flipped
    assert cell[("TRR", "many-sided")].any_flips  # TRRespass
    assert cell[("TRR", "half-double")].victim_flipped  # Half-Double
    assert cell[("CounterTRR", "half-double")].victim_flipped
    assert cell[("CounterTRR-lowRTH", "double-sided")].victim_flipped  # low RTH
    assert cell[("SoftTRR", "half-double")].victim_flipped
    # Layer 2: PT-Guard prevents everything; each prior misses something.
    ptguard = [c for c in consumption if c.protection == "PT-Guard"]
    assert ptguard and all(c.prevented for c in ptguard)
    for protection in ("SecWalk", "MonotonicPointers"):
        cells = [c for c in consumption if c.protection == protection]
        assert any(not c.prevented for c in cells)


def test_bench_fig3_exploit_chain(once, emit):
    def run_chain():
        baseline = PrivilegeEscalationExploit(build_system(), num_pages=1024).attempt()
        guarded = PrivilegeEscalationExploit(
            build_system(ptguard=PTGuardConfig()), num_pages=1024
        ).attempt()
        corrected = PrivilegeEscalationExploit(
            build_system(ptguard=PTGuardConfig(correction_enabled=True)),
            num_pages=1024,
        ).attempt()
        return baseline, guarded, corrected

    baseline, guarded, corrected = once(run_chain)
    report = "\n".join(
        [
            banner("Figures 1/3: privilege-escalation exploit chain"),
            format_table(
                ["machine", "consumed", "self-ref", "escalated", "detected", "corrected"],
                [
                    ("baseline", baseline.tampered_pte_consumed,
                     baseline.self_reference_achieved, baseline.escalated,
                     baseline.detected, baseline.corrected),
                    ("PT-Guard", guarded.tampered_pte_consumed,
                     guarded.self_reference_achieved, guarded.escalated,
                     guarded.detected, guarded.corrected),
                    ("PT-Guard+corr", corrected.tampered_pte_consumed,
                     corrected.self_reference_achieved, corrected.escalated,
                     corrected.detected, corrected.corrected),
                ],
            ),
            "",
            "baseline leaks kernel memory; PT-Guard raises PTECheckFailed;"
            " correction silently repairs the flip.",
        ]
    )
    emit(report)
    assert baseline.escalated
    assert guarded.detected and not guarded.escalated
    assert corrected.corrected and not corrected.escalated
