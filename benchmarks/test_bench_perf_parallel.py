"""Parallel fabric throughput: sweep wall-clock at 1 vs N workers, cold vs warm cache.

Like ``test_bench_perf_hotpath.py`` this measures the *simulator*, not
the simulated machine: the fig6 (25 workloads x 3 configs) + fig7
(8 workloads x 4 latencies x 2 designs + baselines) sweeps run three
ways — serial, fanned out over a process pool, and replayed from a warm
content-addressed cache — and every mode must produce identical rows.

Writes machine-readable ``BENCH_parallel.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
import time

from conftest import scale

from repro.analysis.perf_eval import run_figure6, run_figure7
from repro.harness.parallel import (
    ResultCache,
    SimJob,
    default_workers,
    register_job_kind,
    run_jobs,
)

REPO_ROOT = pathlib.Path(__file__).parent.parent
FIG7_WORKLOADS = ["xalancbmk", "lbm", "mcf", "pr", "bwaves", "xz", "povray", "namd"]


def _sweep(mem_ops: int, warmup: int, workers: int, cache) -> tuple[float, tuple]:
    """One full fig6+fig7 sweep; returns (seconds, results)."""
    start = time.perf_counter()
    fig6 = run_figure6(mem_ops=mem_ops, warmup_ops=warmup, workers=workers, cache=cache)
    fig7 = run_figure7(
        FIG7_WORKLOADS, mem_ops=mem_ops, warmup_ops=warmup, workers=workers, cache=cache
    )
    return time.perf_counter() - start, (fig6, fig7)


# Near-zero-cost cell for the dispatch-overhead microbench: with nothing
# to simulate, the pooled wall-clock IS the fabric's dispatch cost
# (queue round-trips, per-task pickling, supervisor wake-ups). The
# ``fork`` start method makes the registration visible to workers.
register_job_kind("bench_noop", lambda params: params["i"])


def _dispatch_overhead(workers: int, jobs_n: int) -> dict:
    """Pooled wall-clock for ``jobs_n`` no-op cells, unbatched vs batched.

    ``REPRO_JOB_BATCH=16`` amortises the per-task round-trip over 16
    cells and returns results as one pickled bulk list per chunk; the
    unbatched/batched ratio is the dispatch-overhead reduction.
    """
    jobs = [SimJob("bench_noop", {"i": i}) for i in range(jobs_n)]
    seconds = {}
    expected = list(range(jobs_n))
    for batch in (1, 16):
        previous = os.environ.get("REPRO_JOB_BATCH")
        os.environ["REPRO_JOB_BATCH"] = str(batch)
        try:
            start = time.perf_counter()
            results = run_jobs(jobs, workers=workers)
            seconds[batch] = time.perf_counter() - start
        finally:
            if previous is None:
                os.environ.pop("REPRO_JOB_BATCH", None)
            else:
                os.environ["REPRO_JOB_BATCH"] = previous
        assert results == expected, "job batching reordered or lost results"
    return {
        "jobs": jobs_n,
        "workers": workers,
        "unbatched_sec": seconds[1],
        "batched16_sec": seconds[16],
        "overhead_reduction": seconds[1] / seconds[16],
    }


def _campaign_sweep(trials: int) -> tuple[float, list]:
    """A cold fault-campaign sweep: 2 seeds x 9 scenarios, serial.

    No result cache (every cell simulates), so the wall-clock is
    boot + trials per cell — exactly the regime the boot-snapshot layer
    targets: all 9 scenario cells of one seed share a boot.
    """
    from repro.analysis.fault_matrix import format_fault_matrix, run_fault_matrix

    start = time.perf_counter()
    reports = [
        format_fault_matrix(
            run_fault_matrix(
                trials_per_cell=trials, seed=seed, workload="xalancbmk", workers=1
            )
        )
        for seed in (11, 12)
    ]
    return time.perf_counter() - start, reports


def _snapshot_sweep_overhead(trials: int) -> dict:
    """Cold campaign sweep with boot snapshots off vs on.

    Each mode gets a pristine cache dir (so the disk tier starts empty)
    and a reset memo — both measurements are genuinely cold; the "on"
    run's wins come only from cells *within* the sweep sharing boots.
    The reports must be byte-identical.
    """
    from repro.harness import snapshot

    timings = {}
    reports = {}
    for mode, enabled in (("off", "0"), ("on", "1")):
        root = tempfile.mkdtemp(prefix=f"ptguard-bench-snap-{mode}-")
        previous_cache = os.environ.get("REPRO_CACHE_DIR")
        previous_snap = os.environ.get("REPRO_BOOT_SNAPSHOT")
        os.environ["REPRO_CACHE_DIR"] = root
        os.environ["REPRO_BOOT_SNAPSHOT"] = enabled
        snapshot.reset()
        try:
            timings[mode], reports[mode] = _campaign_sweep(trials)
        finally:
            for key, value in (
                ("REPRO_CACHE_DIR", previous_cache),
                ("REPRO_BOOT_SNAPSHOT", previous_snap),
            ):
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
            snapshot.reset()
            shutil.rmtree(root, ignore_errors=True)
    return {
        "trials_per_cell": trials,
        "cells": 18,
        "cold_boot_sec": timings["off"],
        "snapshot_sec": timings["on"],
        "speedup": timings["off"] / timings["on"],
        "reports_identical": reports["off"] == reports["on"],
    }


def _journal_flush_overhead(jobs_n: int) -> dict:
    """Serial no-op cells against a fresh cache: journal cost isolated.

    ``REPRO_JOURNAL_FLUSH=1`` restores fsync-per-append (the seed
    behaviour); the default (16) bounds fsyncs to one per 16 appends.
    With nothing to simulate, the delta is the journal's dispatch
    overhead.
    """
    seconds = {}
    expected = list(range(jobs_n))
    for interval in (1, 16):
        root = pathlib.Path(tempfile.mkdtemp(prefix="ptguard-bench-journal-"))
        previous = os.environ.get("REPRO_JOURNAL_FLUSH")
        os.environ["REPRO_JOURNAL_FLUSH"] = str(interval)
        try:
            jobs = [SimJob("bench_noop", {"i": i}) for i in range(jobs_n)]
            start = time.perf_counter()
            results = run_jobs(jobs, workers=1, cache=ResultCache(root))
            seconds[interval] = time.perf_counter() - start
        finally:
            if previous is None:
                os.environ.pop("REPRO_JOURNAL_FLUSH", None)
            else:
                os.environ["REPRO_JOURNAL_FLUSH"] = previous
            shutil.rmtree(root, ignore_errors=True)
        assert results == expected, "journal batching reordered or lost results"
    return {
        "jobs": jobs_n,
        "fsync_per_append_sec": seconds[1],
        "fsync_every16_sec": seconds[16],
        "overhead_reduction": seconds[1] / seconds[16],
    }


def test_bench_perf_parallel(once, emit):
    mem_ops = int(20_000 * scale())
    warmup = int(12_000 * scale())
    workers = max(2, min(8, default_workers()))
    cache_root = pathlib.Path(tempfile.mkdtemp(prefix="ptguard-bench-cache-"))

    def experiment():
        serial_sec, serial_rows = _sweep(mem_ops, warmup, workers=1, cache=None)
        cold_cache = ResultCache(cache_root)
        parallel_sec, parallel_rows = _sweep(
            mem_ops, warmup, workers=workers, cache=cold_cache
        )
        warm_cache = ResultCache(cache_root)
        warm_sec, warm_rows = _sweep(mem_ops, warmup, workers=workers, cache=warm_cache)
        return {
            "serial_sec": serial_sec,
            "parallel_sec": parallel_sec,
            "warm_sec": warm_sec,
            "rows_identical": serial_rows == parallel_rows == warm_rows,
            "cold_misses": cold_cache.misses,
            "cold_hits": cold_cache.hits,
            "warm_hits": warm_cache.hits,
            "warm_misses": warm_cache.misses,
            "dispatch": _dispatch_overhead(workers, jobs_n=96),
            "snapshot_sweep": _snapshot_sweep_overhead(
                trials=max(5, int(15 * scale()))
            ),
            "journal": _journal_flush_overhead(jobs_n=200),
        }

    try:
        result = once(experiment)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    parallel_speedup = result["serial_sec"] / result["parallel_sec"]
    warm_speedup = result["parallel_sec"] / result["warm_sec"]
    cells = result["cold_misses"]
    cpus = os.cpu_count() or 1
    # Pool scaling needs real CPUs under the pool: below 4 cores the
    # workers time-slice one another and the speedup number measures the
    # host, not the fabric. Record the fact instead of asserting on it.
    degraded_host = cpus < 4
    dispatch = result["dispatch"]
    snap = result["snapshot_sweep"]
    journal = result["journal"]

    emit(
        "\n".join(
            [
                f"Parallel fabric — fig6+fig7 sweep, {cells} cells, "
                f"{mem_ops} mem ops/cell (REPRO_SCALE={scale():g})",
                "",
                f"{'mode':<22} {'seconds':>8} {'speedup':>10}",
                f"{'serial (1 worker)':<22} {result['serial_sec']:>8.1f} "
                f"{'1.00x':>10}",
                f"{f'{workers}-worker cold cache':<22} "
                f"{result['parallel_sec']:>8.1f} {f'{parallel_speedup:.2f}x':>10}",
                f"{'warm cache replay':<22} {result['warm_sec']:>8.2f} "
                f"{f'{warm_speedup:.1f}x':>10} (vs cold)",
                "",
                f"host CPUs: {cpus} | pool size: {workers} | "
                f"{cells} unique cells | warm hits {result['warm_hits']} "
                f"(fig6/fig7 share {result['warm_hits'] - cells} cells)"
                + (" | DEGRADED HOST (<4 CPUs)" if degraded_host else ""),
                f"rows identical across serial/parallel/cached: "
                f"{result['rows_identical']}",
                f"dispatch overhead ({dispatch['jobs']} no-op cells): "
                f"{dispatch['unbatched_sec']:.2f}s unbatched vs "
                f"{dispatch['batched16_sec']:.2f}s at REPRO_JOB_BATCH=16 "
                f"({dispatch['overhead_reduction']:.1f}x less)",
                f"boot snapshots (cold campaign sweep, {snap['cells']} cells "
                f"x {snap['trials_per_cell']} trials): "
                f"{snap['cold_boot_sec']:.2f}s off vs "
                f"{snap['snapshot_sec']:.2f}s on = {snap['speedup']:.2f}x, "
                f"reports identical: {snap['reports_identical']}",
                f"journal fsync batching ({journal['jobs']} no-op cells): "
                f"{journal['fsync_per_append_sec']:.2f}s per-append vs "
                f"{journal['fsync_every16_sec']:.2f}s at REPRO_JOURNAL_FLUSH=16 "
                f"({journal['overhead_reduction']:.1f}x less)",
            ]
        )
    )

    payload = {
        "repro_scale": scale(),
        "mem_ops": mem_ops,
        "cells": cells,
        "host_cpus": cpus,
        "degraded_host": degraded_host,
        "workers": workers,
        "dispatch_overhead": dispatch,
        "boot_snapshots": snap,
        "journal_flush": journal,
        "serial_sec": result["serial_sec"],
        "parallel_cold_sec": result["parallel_sec"],
        "warm_cache_sec": result["warm_sec"],
        "parallel_speedup_vs_serial": parallel_speedup,
        "warm_speedup_vs_cold": warm_speedup,
        "warm_cache_hits": result["warm_hits"],
        "warm_cache_misses": result["warm_misses"],
        "rows_identical": result["rows_identical"],
    }
    (REPO_ROOT / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # Host-independent properties (always asserted).
    assert result["rows_identical"], "execution mode changed a simulated result"
    assert result["warm_misses"] == 0, "warm cache replay re-simulated a cell"
    assert snap["reports_identical"], (
        "boot snapshots changed a campaign report"
    )
    assert warm_speedup >= 10.0, (
        f"warm-cache replay only {warm_speedup:.1f}x faster than cold"
    )
    # No-op cells make dispatch the entire pooled cost, so batching 16
    # cells per task must win clearly on any host.
    assert dispatch["overhead_reduction"] >= 1.5, (
        f"job batching only cut dispatch overhead "
        f"{dispatch['overhead_reduction']:.2f}x"
    )
    # Pool scaling needs real CPUs under the pool; bind the acceptance
    # threshold only where the hardware can express it (>= 4 cores, full
    # scale — below that, pool overhead dominates the shrunken cells and
    # the run is recorded as degraded_host instead).
    if not degraded_host and scale() >= 1.0:
        assert parallel_speedup >= 2.5, (
            f"{workers}-worker sweep only {parallel_speedup:.2f}x vs serial"
        )
    if scale() >= 1.0:
        assert snap["speedup"] >= 2.0, (
            f"boot snapshots only {snap['speedup']:.2f}x on the cold "
            "campaign sweep"
        )
