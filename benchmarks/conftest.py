"""Shared benchmark plumbing.

Each benchmark regenerates one paper artefact (table/figure), printing
the same rows/series the paper reports and archiving them under
``benchmarks/reports/``. Scale with ``REPRO_SCALE`` (default 1.0 keeps
the full suite in the minutes range; larger values approach paper scale).
"""

from __future__ import annotations

import os
import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def scale() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1.0"))
    except ValueError:
        return 1.0


@pytest.fixture()
def emit(request):
    """Print a report block and archive it per-benchmark."""

    def _emit(text: str) -> None:
        name = request.node.name
        print()
        print(text)
        REPORT_DIR.mkdir(exist_ok=True)
        path = REPORT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _emit


@pytest.fixture()
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def _once(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _once
