"""Figure 8: PTE PFN-category distribution over a process population.

Paper result (623 Ubuntu processes): 64.13 % zero PTEs (sigma_xbar
0.006), 23.73 % contiguous (sigma_xbar 0.004), remainder non-contiguous.
Default scale synthesizes ~150 processes; REPRO_SCALE=4 reaches the
paper's 623.
"""

from conftest import scale

from repro.analysis.pte_profile import run_figure8
from repro.analysis.reporting import ascii_bars, banner, format_table


def test_bench_fig8_pte_locality(once, emit):
    num_processes = max(40, int(150 * scale()))
    profile = once(run_figure8, num_processes=num_processes)

    rows = []
    for category, paper in (("zero", 64.13), ("contiguous", 23.73),
                            ("non_contiguous", 12.14)):
        rows.append(
            (
                category,
                f"{profile.mean_fraction(category) * 100:.2f}%",
                f"{profile.stderr_fraction(category) * 100:.3f}",
                f"{paper:.2f}%",
            )
        )
    ranked = profile.sorted_by_contiguity()
    step = max(1, len(ranked) // 18)
    report = "\n".join(
        [
            banner(
                f"Figure 8: PTE locality over {len(profile.processes)} "
                f"synthetic processes ({profile.total_ptes} PTEs)"
            ),
            format_table(["category", "mean", "stderr%", "paper"], rows),
            "",
            banner("per-process contiguity, sorted (Fig 8 shape)"),
            ascii_bars(
                [p.name for p in ranked[::step]],
                [p.contiguous_fraction * 100 for p in ranked[::step]],
                unit="%",
            ),
        ]
    )
    emit(report)

    # Shape: zeros dominate, contiguous is a strong minority, the rest small.
    zero = profile.mean_fraction("zero")
    contiguous = profile.mean_fraction("contiguous")
    non_contiguous = profile.mean_fraction("non_contiguous")
    assert 0.5 <= zero <= 0.8  # paper: 0.641
    assert 0.12 <= contiguous <= 0.4  # paper: 0.237
    assert non_contiguous < contiguous < zero
