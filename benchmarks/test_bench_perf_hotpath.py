"""Hot-path throughput: host-side simulator speed per MAC backend.

Unlike the figure benchmarks (which reproduce *simulated* results), this
one measures the *simulator itself*: end-to-end accesses/sec on a
fig6-style trace-driven run and MAC computations/sec, for each MAC
backend, against the throughput recorded at the growth seed. It guards
the hot-path optimisations (table-driven QARMA, the MAC verify cache,
the allocation-free access loop and the fused batch execution core —
``repro.cpu.batch_core``, selected by ``REPRO_BATCH``) against
regression, and asserts the one property that makes them safe: neither
the cache nor batching changes *any* simulated outcome.

Writes machine-readable ``BENCH_hotpath.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import replace

from conftest import scale

from repro.common.config import optimized_ptguard_config
from repro.cpu.workloads import get_workload
from repro.harness.system import build_system

REPO_ROOT = pathlib.Path(__file__).parent.parent
WORKLOAD = "xalancbmk"  # fig6's worst case: memory-intensive, walk-heavy

# Accesses/sec recorded at the growth seed (commit 6cb10eb) on the
# reference container, same workload/op counts as below. These are
# host-machine numbers: the speedup assertions only bind at full scale
# (REPRO_SCALE >= 1), i.e. acceptance runs on comparable hardware.
SEED_BASELINE_ACC_PER_SEC = {
    "pseudo": 25_449.0,
    "blake2": 24_209.0,
    "qarma": 2_105.0,
}

# Accesses/sec recorded by the previous (pre-batching) optimisation pass
# on the reference container — the "current optimised" bar the batched
# core is measured against. Same host caveat as the seed numbers.
PREV_RECORDED_ACC_PER_SEC = {
    "pseudo": 77_719.0,
    "blake2": 88_646.0,
    "qarma": 58_917.0,
}


def _run_workload(mac_algorithm: str, mem_ops: int, warmup_ops: int,
                  verify_cache: bool = True, batch: int | None = None) -> dict:
    """One fig6-style timed window; returns host + simulated metrics.

    ``batch`` pins ``REPRO_BATCH`` for the run (None = ambient default):
    1 forces the scalar reference loop, >1 the fused batch core.
    """
    previous_batch = os.environ.get("REPRO_BATCH")
    if batch is not None:
        os.environ["REPRO_BATCH"] = str(batch)
    try:
        # The verify cache defaults to off; size it explicitly here so the
        # bench keeps measuring (and invariance-checking) both states.
        config = replace(
            optimized_ptguard_config(),
            mac_verify_cache_entries=4096 if verify_cache else 0,
        )
        system = build_system(
            ptguard=config, mac_algorithm=mac_algorithm, seed=2023
        )
        profile = get_workload(WORKLOAD)
        process, trace = system.workload_process(profile, seed=11)
        core = system.new_core(process)
        core.prefault(trace)
        for _ in range(warmup_ops):
            record = trace.next_record()
            core._execute(record.virtual_address, record.is_write)
        guard = system.controller.ptguard
        computations_before = guard.engine.computations
        cycles_before = core.cycles
        instructions_before = core.instructions
        # Time in chunks and report the best chunk rate: shared-container
        # CPU noise only ever slows a chunk down, so max-rate is the
        # stable statistic for "how fast is this code".
        chunks = 4
        chunk_ops = max(1, mem_ops // chunks)
        best_rate = 0.0
        elapsed = 0.0
        for _ in range(chunks):
            start = time.perf_counter()
            core.run(trace, mem_ops=chunk_ops)
            chunk_sec = time.perf_counter() - start
            elapsed += chunk_sec
            best_rate = max(best_rate, chunk_ops / chunk_sec)
        computations = guard.engine.computations - computations_before
        engine_stats = guard.engine.stats
        return {
            "mac": mac_algorithm,
            "mem_ops": chunk_ops * chunks,
            "elapsed_sec": elapsed,
            "acc_per_sec": best_rate,
            "mac_computations": computations,
            "mac_computations_per_sec": computations / elapsed,
            "verify_cache_hits": engine_stats.get("verify_cache_hits"),
            "verify_cache_misses": engine_stats.get("verify_cache_misses"),
            # Simulated outcomes — must be invariant under host-side tweaks.
            "cycles": core.cycles - cycles_before,
            "instructions": core.instructions - instructions_before,
        }
    finally:
        if batch is not None:
            if previous_batch is None:
                os.environ.pop("REPRO_BATCH", None)
            else:
                os.environ["REPRO_BATCH"] = previous_batch


def _run_walk_heavy(batch: int, mem_ops: int) -> dict:
    """One timed window on the synthetic TLB-thrashing profile.

    qarma backend, verify cache *off*: every PTE-line read at the DRAM
    boundary pays a real MAC check, so the run isolates exactly what the
    batched walk path accelerates — bulk-primed tags vs ~100 us scalar
    tags. Timed as one window (not chunks) because the bulk-tag priming
    pass runs once per ``core.run``; noise is handled by best-of-N in
    the caller.
    """
    previous_batch = os.environ.get("REPRO_BATCH")
    os.environ["REPRO_BATCH"] = str(batch)
    try:
        config = replace(optimized_ptguard_config(), mac_verify_cache_entries=0)
        system = build_system(ptguard=config, mac_algorithm="qarma", seed=2023)
        profile = get_workload("walkheavy")
        process, trace = system.workload_process(profile, seed=11)
        core = system.new_core(process)
        core.prefault(trace)
        guard = system.controller.ptguard
        start = time.perf_counter()
        core.run(trace, mem_ops=mem_ops)
        elapsed = time.perf_counter() - start
        return {
            "mem_ops": mem_ops,
            "elapsed_sec": elapsed,
            "acc_per_sec": mem_ops / elapsed,
            "outcomes": {
                "cycles": core.cycles,
                "instructions": core.instructions,
                "mac_computations": guard.engine.computations,
                "walker": core.walker.stats.as_dict(),
                "tlb": core.walker.tlb.stats.as_dict(),
                "guard": guard.stats.as_dict(),
            },
        }
    finally:
        if previous_batch is None:
            os.environ.pop("REPRO_BATCH", None)
        else:
            os.environ["REPRO_BATCH"] = previous_batch


def _walk_heavy_best_of(batch: int, mem_ops: int, repeats: int = 3) -> dict:
    """Best-of-N fresh runs; every repeat must agree on every outcome."""
    runs = [_run_walk_heavy(batch, mem_ops) for _ in range(repeats)]
    for run in runs[1:]:
        assert run["outcomes"] == runs[0]["outcomes"], (
            "walk-heavy run is not deterministic across repeats"
        )
    best = min(runs, key=lambda run: run["elapsed_sec"])
    return best


def _qarma_table_speedup(blocks: int) -> dict:
    """Single-block Qarma128 encrypt: table-driven vs reference."""
    from repro.crypto.qarma import Qarma128

    key = bytes(range(32))
    fast = Qarma128(key)
    slow = Qarma128(key, use_tables=False)
    plain, tweak = 0x0123_4567_89AB_CDEF_0011_2233_4455_6677, 0x42

    start = time.perf_counter()
    for i in range(blocks):
        fast.encrypt(plain ^ i, tweak)
    fast_sec = time.perf_counter() - start

    slow_blocks = max(1, blocks // 16)
    start = time.perf_counter()
    for i in range(slow_blocks):
        slow.encrypt(plain ^ i, tweak)
    slow_sec = time.perf_counter() - start

    fast_rate = blocks / fast_sec
    slow_rate = slow_blocks / slow_sec
    return {
        "table_blocks_per_sec": fast_rate,
        "reference_blocks_per_sec": slow_rate,
        "speedup": fast_rate / slow_rate,
    }


def test_bench_perf_hotpath(once, emit):
    mem_ops = int(32_000 * scale())
    warmup = int(2_000 * scale())

    def experiment():
        # Headline rows use the fused batch core (the shipping default);
        # scalar rows force batch=1 to quantify the batching win and to
        # cross-check that every simulated outcome is bit-identical.
        rows = [
            _run_workload(mac, mem_ops, warmup)
            for mac in ("pseudo", "blake2", "qarma")
        ]
        scalar_rows = [
            _run_workload(mac, mem_ops, warmup, batch=1)
            for mac in ("pseudo", "blake2", "qarma")
        ]
        cache_off = _run_workload("blake2", mem_ops, warmup, verify_cache=False)
        qarma = _qarma_table_speedup(blocks=max(256, int(4096 * scale())))
        walk_ops = max(500, int(10_000 * scale()))
        walk_batched = _walk_heavy_best_of(4096, walk_ops)
        walk_scalar = _walk_heavy_best_of(1, walk_ops)
        return rows, scalar_rows, cache_off, qarma, walk_batched, walk_scalar

    rows, scalar_rows, cache_off, qarma, walk_batched, walk_scalar = once(
        experiment
    )
    walk_speedup = walk_batched["acc_per_sec"] / walk_scalar["acc_per_sec"]
    walk_outcomes_identical = (
        walk_batched["outcomes"] == walk_scalar["outcomes"]
    )
    by_mac = {row["mac"]: row for row in rows}
    scalar_by_mac = {row["mac"]: row for row in scalar_rows}
    cache_on = by_mac["blake2"]

    speedups = {
        row["mac"]: row["acc_per_sec"] / SEED_BASELINE_ACC_PER_SEC[row["mac"]]
        for row in rows
    }
    batch_speedups = {
        mac: by_mac[mac]["acc_per_sec"] / scalar_by_mac[mac]["acc_per_sec"]
        for mac in by_mac
    }
    # Batched and scalar runs must agree on every simulated quantity.
    invariant_keys = (
        "cycles", "instructions", "mac_computations",
        "verify_cache_hits", "verify_cache_misses",
    )
    batch_outcomes_identical = all(
        by_mac[mac][key] == scalar_by_mac[mac][key]
        for mac in by_mac
        for key in invariant_keys
    )
    hits = cache_on["verify_cache_hits"]
    misses = cache_on["verify_cache_misses"]
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    outcomes_identical = (
        cache_on["cycles"] == cache_off["cycles"]
        and cache_on["instructions"] == cache_off["instructions"]
        and cache_on["mac_computations"] == cache_off["mac_computations"]
    )

    lines = [
        f"Hot-path throughput — {WORKLOAD}, {mem_ops} mem ops "
        f"(REPRO_SCALE={scale():g})",
        "",
        f"{'MAC':<8} {'acc/s':>10} {'scalar':>10} {'batch':>7} "
        f"{'seed acc/s':>11} {'speedup':>8} {'MACs/s':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['mac']:<8} {row['acc_per_sec']:>10,.0f} "
            f"{scalar_by_mac[row['mac']]['acc_per_sec']:>10,.0f} "
            f"{batch_speedups[row['mac']]:>6.2f}x "
            f"{SEED_BASELINE_ACC_PER_SEC[row['mac']]:>11,.0f} "
            f"{speedups[row['mac']]:>7.2f}x "
            f"{row['mac_computations_per_sec']:>10,.0f}"
        )
    lines += [
        "",
        f"batched vs scalar outcomes bit-identical: {batch_outcomes_identical}",
        "",
        f"qarma/blake2 host-cost ratio "
        f"{cache_on['acc_per_sec'] / by_mac['qarma']['acc_per_sec']:.2f}x "
        f"(seed {SEED_BASELINE_ACC_PER_SEC['blake2'] / SEED_BASELINE_ACC_PER_SEC['qarma']:.1f}x)",
        f"Qarma128 table-driven vs reference: {qarma['speedup']:.1f}x "
        f"({qarma['table_blocks_per_sec']:,.0f} vs "
        f"{qarma['reference_blocks_per_sec']:,.0f} blocks/s)",
        f"verify cache (blake2): hit rate {hit_rate:.1%}, "
        f"on {cache_on['acc_per_sec']:,.0f} acc/s vs "
        f"off {cache_off['acc_per_sec']:,.0f} acc/s",
        f"simulated outcomes identical with cache on/off: {outcomes_identical}",
        "",
        f"walk-heavy (walkheavy/qarma, no verify cache, "
        f"{walk_batched['outcomes']['walker'].get('walks', 0):,} walks, "
        f"{walk_batched['outcomes']['guard'].get('pte_reads', 0):,} PTE DRAM reads): "
        f"batched {walk_batched['acc_per_sec']:,.0f} acc/s vs "
        f"scalar {walk_scalar['acc_per_sec']:,.0f} acc/s = {walk_speedup:.2f}x, "
        f"outcomes identical: {walk_outcomes_identical}",
    ]
    emit("\n".join(lines))

    payload = {
        "workload": WORKLOAD,
        "mem_ops": mem_ops,
        "repro_scale": scale(),
        "seed_baseline_acc_per_sec": SEED_BASELINE_ACC_PER_SEC,
        "prev_recorded_acc_per_sec": PREV_RECORDED_ACC_PER_SEC,
        "optimised": {
            row["mac"]: {
                "acc_per_sec": row["acc_per_sec"],
                "mac_computations_per_sec": row["mac_computations_per_sec"],
                "speedup_vs_seed": speedups[row["mac"]],
            }
            for row in rows
        },
        "batched": {
            "default_batch_size": 4096,
            "scalar_acc_per_sec": {
                mac: scalar_by_mac[mac]["acc_per_sec"] for mac in scalar_by_mac
            },
            "batched_vs_scalar_speedup": batch_speedups,
            "outcomes_identical": batch_outcomes_identical,
        },
        "qarma_table": qarma,
        "walk_heavy": {
            "workload": "walkheavy",
            "mac": "qarma",
            "mem_ops": walk_batched["mem_ops"],
            "batched_acc_per_sec": walk_batched["acc_per_sec"],
            "scalar_acc_per_sec": walk_scalar["acc_per_sec"],
            "batched_vs_scalar_speedup": walk_speedup,
            "walks": walk_batched["outcomes"]["walker"].get("walks"),
            "pte_dram_reads": walk_batched["outcomes"]["guard"].get("pte_reads"),
            "outcomes_identical": walk_outcomes_identical,
        },
        "verify_cache": {
            "hit_rate": hit_rate,
            "acc_per_sec_on": cache_on["acc_per_sec"],
            "acc_per_sec_off": cache_off["acc_per_sec"],
            "simulated_outcomes_identical": outcomes_identical,
        },
    }
    (REPO_ROOT / "BENCH_hotpath.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # Host-independent properties (always asserted).
    assert outcomes_identical, "verify cache changed a simulated outcome"
    assert batch_outcomes_identical, "batching changed a simulated outcome"
    assert walk_outcomes_identical, (
        "walk-heavy batching changed a simulated outcome"
    )
    assert qarma["speedup"] >= 8.0, "table-driven QARMA lost its edge"
    # QARMA used to cost ~11x blake2 end-to-end; must stay within ~10x.
    assert cache_on["acc_per_sec"] / by_mac["qarma"]["acc_per_sec"] <= 10.0
    # Absolute speedup vs the recorded seed numbers is host-dependent;
    # bind it only for full-scale runs (acceptance hardware).
    if scale() >= 1.0:
        assert speedups["blake2"] >= 3.0, (
            f"end-to-end blake2 speedup {speedups['blake2']:.2f}x < 3x seed"
        )
        assert speedups["qarma"] >= 10.0, (
            f"end-to-end qarma speedup {speedups['qarma']:.2f}x < 10x seed"
        )
        prev_ratio = (
            by_mac["qarma"]["acc_per_sec"] / PREV_RECORDED_ACC_PER_SEC["qarma"]
        )
        assert prev_ratio >= 1.5, (
            f"batched qarma only {prev_ratio:.2f}x the previous recorded "
            "optimised throughput"
        )
        assert walk_speedup >= 2.5, (
            f"walk-heavy batched-vs-scalar speedup {walk_speedup:.2f}x < 2.5x"
        )
