"""Tables I, II (PTE formats), III (config) and IV (protected bits)."""

from repro.common.config import PTGuardConfig, SystemConfig
from repro.core import pattern
from repro.harness.experiments import experiment_tables_1_2
from repro.analysis.reporting import banner, format_table


def test_bench_table1_table2_pte_formats(once, emit):
    report = once(experiment_tables_1_2)
    emit(report)
    assert "51:12" in report  # the 40-bit PFN field PT-Guard harvests


def test_bench_table3_config(once, emit):
    def build():
        return SystemConfig()

    config = once(build)
    rows = [
        ("Core", f"In-Order, {config.frequency_hz / 1e9:.0f} GHz, x86_64 ISA"),
        ("TLB", f"{config.tlb.entries} entry, fully associative"),
        ("MMU cache", f"{config.tlb.mmu_cache_bytes // 1024}KB, {config.tlb.mmu_cache_assoc}-way"),
        ("L1-I/D cache", f"{config.l1d.size_bytes // 1024}KB, {config.l1d.associativity}-way"),
        ("L2 / L3 cache",
         f"{config.l2.size_bytes // 1024}KB / {config.l3.size_bytes // 2**20}MB, "
         f"{config.l3.associativity}-way"),
        ("DRAM", f"{config.dram.size_bytes // 2**30}GB DDR4"),
    ]
    report = banner("Table III: baseline system configuration") + "\n"
    report += format_table(["component", "value"], rows)
    emit(report)
    assert config.tlb.entries == 64


def test_bench_table4_protected_bits(once, emit):
    M = PTGuardConfig().max_phys_bits

    def compute():
        return pattern.protected_bit_positions(M)

    positions = once(compute)
    segments = [
        ("8:0 (except accessed)", all(b in positions for b in (0, 1, 2, 3, 4, 6, 7, 8))
         and 5 not in positions),
        ("11:9 programmable", all(b in positions for b in (9, 10, 11))),
        (f"{M - 1}:12 PFN", all(b in positions for b in range(12, M))),
        (f"39:{M} ignored -> unprotected", all(b not in positions for b in range(M, 40))),
        ("51:40 MAC field -> unprotected", all(b not in positions for b in range(40, 52))),
        ("58:52 ignored -> unprotected", all(b not in positions for b in range(52, 59))),
        ("63:59 prot keys + NX", all(b in positions for b in range(59, 64))),
    ]
    report = banner(f"Table IV: MAC-protected PTE bits (M = {M})") + "\n"
    report += format_table(["bit range", "as in paper"], segments)
    report += f"\nprotected bits per PTE: {len(positions)} "
    report += f"(x8 = {len(positions) * 8} flip-and-check guesses)"
    emit(report)
    assert all(ok for _, ok in segments)
    assert len(positions) * 8 == 352
