"""Tests for the deterministic fault-injection engine (repro.faults.inject)
and its hook points in memory, DRAM device and memory controller."""

import hashlib

import pytest

from repro.common.config import PTGuardConfig
from repro.core import pattern
from repro.faults.inject import (
    ALL_SCENARIOS,
    DATA_SCENARIOS,
    GLOBAL_BIT,
    LINE_BITS,
    PTE_SCENARIOS,
    FaultInjector,
    FaultSpec,
    deterministic_choice,
    deterministic_fraction,
    garble_payload,
)
from repro.harness.chaos import ChaosPolicy
from repro.harness.system import build_system

PTE_LINES = [0x1000, 0x1040, 0x2000, 0x2040]
DATA_LINES = [0x9000, 0x9040]


# -- decision primitives ------------------------------------------------------


class TestDecisionPrimitives:
    def test_fraction_matches_frozen_digest_format(self):
        """The digest format is load-bearing (chaos byte-identity)."""
        digest = hashlib.sha256(b"7:kill:fig6/povray").digest()
        expected = int.from_bytes(digest[:8], "big") / 2**64
        assert deterministic_fraction(7, "kill", "fig6/povray") == expected

    def test_chaos_decide_delegates_to_fraction(self):
        policy = ChaosPolicy(seed=3, kill=0.5)
        for key in ("a", "b", "fig6/xz", "campaign/pte_single"):
            expected = deterministic_fraction(3, "kill", key) < 0.5
            assert policy.decide(key, "kill") is expected

    def test_fraction_in_unit_interval_and_addressed(self):
        draws = {
            deterministic_fraction(seed, channel, key)
            for seed in (0, 1)
            for channel in ("kill", "corrupt")
            for key in ("x", "y")
        }
        assert len(draws) == 8  # every address yields a distinct draw
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_choice_range_and_determinism(self):
        for n in (1, 2, 7, 512):
            first = deterministic_choice(5, "fault:pte_single:bit", "3", n)
            again = deterministic_choice(5, "fault:pte_single:bit", "3", n)
            assert first == again and 0 <= first < n

    def test_choice_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            deterministic_choice(1, "c", "k", 0)

    def test_choice_independent_of_fraction(self):
        """Bytes 8:16 vs 0:8 — same address, independent draws."""
        fraction = deterministic_fraction(1, "corrupt", "k")
        choice = deterministic_choice(1, "corrupt", "k", 2**64)
        assert choice != int(fraction * 2**64)

    def test_garble_payload_frozen_bytes(self):
        data = b'{"result": 42, "digest": "abc"}'
        garbled = garble_payload(data)
        assert garbled == b'{"chaos": "corrupt", ' + data[: len(data) // 2]
        assert garble_payload(b"x") == b'{"chaos": "corrupt", x'


# -- FaultSpec ----------------------------------------------------------------


class TestFaultSpec:
    def test_offsets_must_fit_in_line(self):
        with pytest.raises(ValueError):
            FaultSpec("pte_single", 0x1000, (512,), True)
        with pytest.raises(ValueError):
            FaultSpec("pte_single", 0x1000, (-1,), True)

    def test_valid_spec_is_frozen(self):
        spec = FaultSpec("pte_single", 0x1000, (3,), True)
        with pytest.raises(AttributeError):
            spec.line_address = 0x2000


# -- scenario generators ------------------------------------------------------


@pytest.fixture()
def injector():
    return FaultInjector(seed=11, max_phys_bits=40)


class TestScenarioGenerators:
    def _specs(self, injector, scenario, trials=32):
        return [
            injector.generate(scenario, t, PTE_LINES, DATA_LINES)
            for t in range(trials)
        ]

    def test_generation_is_deterministic(self, injector):
        other = FaultInjector(seed=11, max_phys_bits=40)
        for scenario in ALL_SCENARIOS:
            for trial in range(8):
                assert injector.generate(
                    scenario, trial, PTE_LINES, DATA_LINES
                ) == other.generate(scenario, trial, PTE_LINES, DATA_LINES)

    def test_different_seed_different_faults(self):
        a = FaultInjector(seed=1)
        b = FaultInjector(seed=2)
        specs_a = [a.generate("pte_single", t, PTE_LINES, DATA_LINES) for t in range(32)]
        specs_b = [b.generate("pte_single", t, PTE_LINES, DATA_LINES) for t in range(32)]
        assert specs_a != specs_b

    def test_pte_single_hits_protected_bits(self, injector):
        protected = set(pattern.protected_bit_positions(40))
        for spec in self._specs(injector, "pte_single"):
            assert spec.is_pte and spec.line_address in PTE_LINES
            (offset,) = spec.bit_offsets
            assert offset % 64 in protected

    def test_pte_double_two_distinct_protected_bits(self, injector):
        protected = set(pattern.protected_bit_positions(40))
        for spec in self._specs(injector, "pte_double"):
            first, second = spec.bit_offsets
            assert first != second
            assert first % 64 in protected and second % 64 in protected

    def test_mac_single_stays_in_mac_field(self, injector):
        for spec in self._specs(injector, "mac_single"):
            (offset,) = spec.bit_offsets
            assert pattern.MAC_FIELD_LOW <= offset % 64 <= pattern.MAC_FIELD_HIGH

    def test_burst_is_four_adjacent_bits(self, injector):
        for spec in self._specs(injector, "burst"):
            offsets = spec.bit_offsets
            assert len(offsets) == 4
            assert offsets == tuple(range(offsets[0], offsets[0] + 4))

    def test_global_bit_targets_bit_eight(self, injector):
        for spec in self._specs(injector, "global_bit"):
            (offset,) = spec.bit_offsets
            assert offset % 64 == GLOBAL_BIT

    def test_pfn_only_stays_in_pfn_field(self, injector):
        for spec in self._specs(injector, "pfn_only"):
            (offset,) = spec.bit_offsets
            assert 12 <= offset % 64 < 40

    def test_flags_only_stays_below_pfn(self, injector):
        protected = set(pattern.protected_bit_positions(40))
        for spec in self._specs(injector, "flags_only"):
            (offset,) = spec.bit_offsets
            assert offset % 64 < 12 and offset % 64 in protected

    def test_uniform_always_injects_at_least_one_bit(self, injector):
        for spec in self._specs(injector, "uniform", trials=128):
            assert len(spec.bit_offsets) >= 1
            assert all(0 <= b < LINE_BITS for b in spec.bit_offsets)

    def test_data_single_targets_data_lines(self, injector):
        for spec in self._specs(injector, "data_single"):
            assert not spec.is_pte and spec.line_address in DATA_LINES

    def test_unknown_scenario_rejected(self, injector):
        with pytest.raises(ValueError):
            injector.generate("rowhammer", 0, PTE_LINES, DATA_LINES)

    def test_empty_line_pool_rejected(self, injector):
        with pytest.raises(ValueError):
            injector.generate("pte_single", 0, [], DATA_LINES)

    def test_scenario_partition(self):
        assert set(PTE_SCENARIOS) | set(DATA_SCENARIOS) == set(ALL_SCENARIOS)
        assert not set(PTE_SCENARIOS) & set(DATA_SCENARIOS)


# -- hook points --------------------------------------------------------------


class TestMemoryHooks:
    def test_flip_bits_flips_each_offset(self):
        system = build_system()
        line = 0x4000
        system.memory.write_line(line, bytes(range(64)))
        before = system.memory.read_line(line)
        system.memory.flip_bits(line, [0, 9, 511])
        after = system.memory.read_line(line)
        for bit in range(512):
            expected = (before[bit // 8] >> (bit % 8)) & 1
            if bit in (0, 9, 511):
                expected ^= 1
            assert (after[bit // 8] >> (bit % 8)) & 1 == expected

    def test_fault_listener_sees_every_flip(self):
        system = build_system()
        seen = []
        system.memory.attach_fault_listener(lambda addr, bit: seen.append((addr, bit)))
        system.memory.flip_bits(0x4000, [3, 77])
        system.memory.flip_bit(0x4040, 1)
        assert seen == [(0x4000, 3), (0x4000, 77), (0x4040, 1)]


class TestDeviceInjection:
    def test_inject_fault_records_flips_and_stats(self):
        system = build_system()
        system.memory.write_line(0x4000, b"\xff" * 64)
        flips = system.dram.inject_fault(0x4000, [0, 100], scenario="test")
        assert len(flips) == 2
        assert all(f.distance == 0 for f in flips)
        assert [f.direction for f in flips] == ["1->0", "1->0"]
        assert system.dram.stats.get("injected_flips") == 2
        assert 0x4000 in system.dram.tampered_lines()
        # the flip is visible in memory and in the device's flip log
        assert system.memory.read_bit(0x4000, 0) == 0
        assert any(f.line_address == 0x4000 for f in system.dram.bit_flips)

    def test_inject_fault_direction_tracks_stored_value(self):
        system = build_system()
        flips = system.dram.inject_fault(0x4000, [5])  # line starts zeroed
        assert flips[0].direction == "0->1"
        assert system.memory.read_bit(0x4000, 5) == 1

    def test_tampered_lines_empty_on_pristine_device(self):
        assert build_system().dram.tampered_lines() == frozenset()


class TestControllerReadFaultHook:
    def test_hook_fires_before_dram_access(self):
        system = build_system(ptguard=PTGuardConfig())
        calls = []
        system.controller.install_read_fault_hook(
            lambda address, is_pte: calls.append((address, is_pte))
        )
        system.controller.write_access(0x8000, bytes(64))
        system.controller.read_access(0x8000)
        assert (0x8000, False) in calls

    def test_hook_can_corrupt_inline_and_guard_detects(self):
        """A hook flipping a protected PTE bit mid-read must trip the MAC."""
        config = PTGuardConfig(correction_enabled=True)
        system = build_system(ptguard=config)
        line = pattern.join_ptes([(0x2000 + i) << 12 | 0x63 for i in range(8)])
        system.controller.write_access(0x8000, line)

        def hook(address, is_pte):
            if is_pte:
                system.dram.inject_fault(address, [13])

        system.controller.install_read_fault_hook(hook)
        response = system.controller.read_access(0x8000, is_pte=True)
        assert response.corrected or response.pte_check_failed
