"""Derandomized property tests: PTE pack/unpack and MAC metadata
round-trips over the full flag/value space.

These run under ``derandomize=True`` so the exact example sequence is a
pure function of the test code — CI runs are byte-for-byte repeatable,
matching the repo-wide seed discipline (no flaky shrink sessions)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import pattern
from repro.core.engine import MACEngine
from repro.crypto.mac import make_line_mac
from repro.mmu.pte import (
    ARM_AP_RO_ALL,
    ARM_AP_RW_ALL,
    ArmPageTableEntry,
    X86PageTableEntry,
    make_arm_pte,
    make_x86_pte,
)

DERANDOMIZED = settings(derandomize=True, max_examples=200, deadline=None)

pfns = st.integers(min_value=0, max_value=(1 << 40) - 1)
lines = st.binary(min_size=64, max_size=64)
line_addresses = st.integers(min_value=0, max_value=(1 << 34) - 1).map(
    lambda index: index * 64
)

#: One shared engine: compute() must be a pure function of (line, address),
#: so reuse across examples is itself part of the property.
_ENGINE = MACEngine(
    make_line_mac("blake2", b"property-test-secret"), max_phys_bits=40
)


class TestX86RoundTrip:
    @DERANDOMIZED
    @given(
        pfn=pfns,
        present=st.booleans(),
        writable=st.booleans(),
        user=st.booleans(),
        accessed=st.booleans(),
        dirty=st.booleans(),
        global_page=st.booleans(),
        no_execute=st.booleans(),
        protection_key=st.integers(min_value=0, max_value=15),
        os_bits=st.integers(min_value=0, max_value=7),
    )
    def test_pack_unpack_is_identity_on_every_field(
        self, pfn, present, writable, user, accessed, dirty, global_page,
        no_execute, protection_key, os_bits,
    ):
        raw = make_x86_pte(
            pfn, present=present, writable=writable, user=user,
            accessed=accessed, dirty=dirty, global_page=global_page,
            no_execute=no_execute, protection_key=protection_key,
            os_bits=os_bits,
        )
        decoded = X86PageTableEntry(raw)
        assert decoded.pfn == pfn
        assert decoded.present == present
        assert decoded.writable == writable
        assert decoded.user_accessible == user
        assert decoded.accessed == accessed
        assert decoded.dirty == dirty
        assert decoded.global_page == global_page
        assert decoded.no_execute == no_execute
        assert decoded.protection_key == protection_key
        assert decoded.os_bits == os_bits
        # Re-packing the decoded fields reproduces the raw value exactly.
        assert make_x86_pte(
            decoded.pfn, present=decoded.present, writable=decoded.writable,
            user=decoded.user_accessible, accessed=decoded.accessed,
            dirty=decoded.dirty, global_page=decoded.global_page,
            no_execute=decoded.no_execute,
            protection_key=decoded.protection_key, os_bits=decoded.os_bits,
        ) == raw


class TestArmRoundTrip:
    @DERANDOMIZED
    @given(
        pfn=pfns,
        valid=st.booleans(),
        access_permissions=st.integers(min_value=0, max_value=3),
        accessed=st.booleans(),
        dirty=st.booleans(),
        contiguous=st.booleans(),
        execute_never=st.integers(min_value=0, max_value=3),
        memory_attributes=st.integers(min_value=0, max_value=15),
    )
    def test_pack_unpack_is_identity_on_every_field(
        self, pfn, valid, access_permissions, accessed, dirty, contiguous,
        execute_never, memory_attributes,
    ):
        raw = make_arm_pte(
            pfn, valid=valid, access_permissions=access_permissions,
            accessed=accessed, dirty=dirty, contiguous=contiguous,
            execute_never=execute_never, memory_attributes=memory_attributes,
        )
        decoded = ArmPageTableEntry(raw)
        assert decoded.pfn == pfn  # split PFN (low 38 + high 2) reassembles
        assert decoded.valid == valid
        assert decoded.access_permissions == access_permissions
        assert decoded.accessed == accessed
        assert decoded.dirty == dirty
        assert decoded.contiguous == contiguous
        assert decoded.execute_never == execute_never
        assert decoded.memory_attributes == memory_attributes
        assert decoded.user_accessible == (
            access_permissions in (ARM_AP_RW_ALL, ARM_AP_RO_ALL)
        )


class TestMacMetadataRoundTrip:
    @DERANDOMIZED
    @given(line=lines, tag=st.integers(min_value=0, max_value=(1 << 96) - 1))
    def test_embed_extract_mac(self, line, tag):
        embedded = pattern.embed_mac(line, tag)
        assert pattern.extract_mac(embedded) == tag
        # Only the 96 MAC-field bits moved; everything else is untouched.
        assert pattern.strip_mac(embedded) == pattern.strip_mac(line)

    @DERANDOMIZED
    @given(line=lines,
           identifier=st.integers(min_value=0, max_value=(1 << 56) - 1))
    def test_embed_extract_identifier(self, line, identifier):
        embedded = pattern.embed_identifier(line, identifier)
        assert pattern.extract_identifier(embedded) == identifier
        assert pattern.strip_identifier(embedded) == \
            pattern.strip_identifier(line)

    @DERANDOMIZED
    @given(line=lines,
           tag=st.integers(min_value=0, max_value=(1 << 96) - 1),
           identifier=st.integers(min_value=0, max_value=(1 << 56) - 1))
    def test_mac_and_identifier_fields_are_disjoint(self, line, tag,
                                                    identifier):
        both = pattern.embed_identifier(pattern.embed_mac(line, tag),
                                        identifier)
        assert pattern.extract_mac(both) == tag
        assert pattern.extract_identifier(both) == identifier
        assert pattern.strip_metadata(both) == pattern.strip_metadata(line)


class TestMacVerifyRoundTrip:
    @settings(derandomize=True, max_examples=100, deadline=None)
    @given(line=lines, address=line_addresses)
    def test_compute_embed_extract_verify(self, line, address):
        tag = _ENGINE.compute(line, address)
        embedded = pattern.embed_mac(line, tag)
        # The MAC covers only protected bits, so embedding it does not
        # change what it authenticates: the stored tag verifies in place.
        stored = pattern.extract_mac(embedded)
        result = _ENGINE.verify(embedded, address, stored)
        assert result.ok and result.distance == 0 and not result.soft

    @settings(derandomize=True, max_examples=100, deadline=None)
    @given(line=lines, address=line_addresses,
           pte_slot=st.integers(min_value=0, max_value=7))
    def test_protected_bit_flip_breaks_verification(self, line, address,
                                                    pte_slot):
        tag = _ENGINE.compute(line, address)
        embedded = bytearray(pattern.embed_mac(line, tag))
        embedded[pte_slot * 8] ^= 0x01  # flip the present bit (protected)
        result = _ENGINE.verify(bytes(embedded), address,
                                pattern.extract_mac(bytes(embedded)))
        assert not result.ok and result.distance > 0

    @settings(derandomize=True, max_examples=100, deadline=None)
    @given(line=lines, addr_a=line_addresses, addr_b=line_addresses)
    def test_mac_binds_to_the_address(self, line, addr_a, addr_b):
        tag = _ENGINE.compute(line, addr_a)
        if addr_a == addr_b:
            assert _ENGINE.compute(line, addr_b) == tag
        else:
            assert _ENGINE.compute(line, addr_b) != tag
