"""Tests for the three-level cache hierarchy over the controller."""

import pytest

from repro.common.config import DRAMConfig, PTGuardConfig, SystemConfig
from repro.core import pattern
from repro.core.guard import PTGuard
from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheHierarchy, SharedLLCAdapter
from repro.dram.device import DRAMDevice
from repro.mem.controller import MemoryController
from repro.mem.memory import PhysicalMemory
from repro.mmu.pte import make_x86_pte


def make_hierarchy(guard_config=None):
    config = SystemConfig()
    memory = PhysicalMemory(config.dram.size_bytes)
    device = DRAMDevice(config.dram, memory)
    guard = PTGuard(guard_config, mac_algorithm="blake2") if guard_config else None
    controller = MemoryController(device, guard)
    hierarchy = CacheHierarchy(config, controller)
    controller.attach_coherent_cache(hierarchy)
    return hierarchy, controller, memory


class TestReadPath:
    def test_first_read_goes_to_dram(self):
        hierarchy, _, _ = make_hierarchy()
        result = hierarchy.read(0x1000)
        assert result.hit_level == "DRAM"
        assert hierarchy.llc_misses == 1

    def test_second_read_hits_l1(self):
        hierarchy, _, _ = make_hierarchy()
        hierarchy.read(0x1000)
        result = hierarchy.read(0x1000)
        assert result.hit_level == "L1"
        assert result.latency_cycles == hierarchy.config.l1d.hit_latency

    def test_latency_monotone_across_levels(self):
        hierarchy, _, _ = make_hierarchy()
        dram = hierarchy.read(0x1000).latency_cycles
        l1 = hierarchy.read(0x1000).latency_cycles
        assert l1 < dram

    def test_unaligned_read_aligned_down(self):
        hierarchy, _, memory = make_hierarchy()
        memory.write_line(0x1000, bytes(range(64)))
        result = hierarchy.read(0x1010)
        assert result.data == bytes(range(64))


class TestWritePath:
    def test_write_read_roundtrip(self):
        hierarchy, _, _ = make_hierarchy()
        hierarchy.write(0x2000, b"x" * 64)
        assert hierarchy.read(0x2000).data == b"x" * 64

    def test_dirty_data_reaches_dram_on_flush(self):
        hierarchy, _, memory = make_hierarchy()
        hierarchy.write(0x2000, b"x" * 64)
        assert memory.read_line(0x2000) == bytes(64)  # still only cached
        hierarchy.flush()
        assert memory.read_line(0x2000) == b"x" * 64

    def test_partial_write(self):
        hierarchy, _, _ = make_hierarchy()
        hierarchy.write(0x2000, b"a" * 64)
        hierarchy.write_partial(0x2000, 10, b"ZZ")
        data = hierarchy.read(0x2000).data
        assert data[10:12] == b"ZZ" and data[0] == ord("a")

    def test_partial_write_cannot_cross_line(self):
        hierarchy, _, _ = make_hierarchy()
        with pytest.raises(ValueError):
            hierarchy.write_partial(0x2000, 60, b"12345")


class TestEvictionWriteback:
    def test_capacity_eviction_writes_back(self):
        hierarchy, controller, memory = make_hierarchy()
        # Write far more distinct lines than total cache capacity.
        lines = (32 * 1024 + 256 * 1024 + 2 * 1024 * 1024) // 64
        base = 0x100000
        for i in range(lines + 2048):
            hierarchy.write(base + i * 64, i.to_bytes(8, "little") * 8)
        assert hierarchy.stats.get("writebacks") > 0
        hierarchy.flush()
        for i in range(0, lines, 777):
            expected = i.to_bytes(8, "little") * 8
            assert memory.read_line(base + i * 64) == expected


class TestPTEIntegration:
    def test_pte_check_failure_not_installed(self):
        hierarchy, controller, memory = make_hierarchy(PTGuardConfig())
        line = pattern.join_ptes([make_x86_pte(0x2E5F3 + i) for i in range(8)])
        controller.write_line(0x4000, line)
        memory.flip_bit(0x4000, 13)
        result = hierarchy.read(0x4000, is_pte=True)
        assert result.pte_check_failed
        # Sec IV-F: the line must not be installed in any cache level.
        assert not hierarchy.l1.contains(0x4000)
        assert not hierarchy.l3.contains(0x4000)

    def test_clean_pte_read_installs_stripped(self):
        hierarchy, controller, _ = make_hierarchy(PTGuardConfig())
        line = pattern.join_ptes([make_x86_pte(0x2E5F3 + i) for i in range(8)])
        controller.write_line(0x4000, line)
        result = hierarchy.read(0x4000, is_pte=True)
        assert result.data == line  # MAC stripped before install
        cached = hierarchy.l1.lookup(0x4000)
        assert cached.data == line and cached.is_pte


class TestCoherenceDiscard:
    def test_controller_write_invalidates_cached_copy(self):
        hierarchy, controller, _ = make_hierarchy()
        hierarchy.read(0x5000)  # cache the zero line
        controller.write_line(0x5000, b"n" * 64)  # kernel-style store
        assert hierarchy.read(0x5000).data == b"n" * 64


class TestSharedLLCAdapter:
    def test_private_hierarchy_over_shared_llc(self):
        config = SystemConfig()
        memory = PhysicalMemory(config.dram.size_bytes)
        controller = MemoryController(DRAMDevice(config.dram, memory))
        adapter = SharedLLCAdapter(Cache(config.l3), controller,
                                   hit_latency=config.l3.hit_latency)
        private_a = CacheHierarchy(config, adapter, private_levels_only=True)
        private_b = CacheHierarchy(config, adapter, private_levels_only=True)
        assert private_a.l3 is None

        private_a.write(0x6000, b"s" * 64)
        private_a.flush()  # dirty line lands in the shared LLC
        dram_reads_before = controller.stats.get("reads")
        result = private_b.read(0x6000)
        assert result.data == b"s" * 64
        # b's fill came from the shared LLC, not DRAM:
        assert controller.stats.get("reads") == dram_reads_before
