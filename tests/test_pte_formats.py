"""Tests for the x86_64 (Table I) and ARMv8 (Table II) PTE formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mmu.pte import (
    ARMV8_LAYOUT,
    X86_64_LAYOUT,
    ArmPageTableEntry,
    X86PageTableEntry,
    make_arm_pte,
    make_x86_pte,
)


class TestTable1Layout:
    """The bit positions of paper Table I, exactly."""

    def test_field_positions(self):
        assert X86_64_LAYOUT["present"] == (0, 0)
        assert X86_64_LAYOUT["writable"] == (1, 1)
        assert X86_64_LAYOUT["user_accessible"] == (2, 2)
        assert X86_64_LAYOUT["accessed"] == (5, 5)
        assert X86_64_LAYOUT["dirty"] == (6, 6)
        assert X86_64_LAYOUT["huge_page"] == (7, 7)
        assert X86_64_LAYOUT["global"] == (8, 8)
        assert X86_64_LAYOUT["os_usable"] == (11, 9)
        assert X86_64_LAYOUT["pfn"] == (51, 12)
        assert X86_64_LAYOUT["ignored"] == (58, 52)
        assert X86_64_LAYOUT["protection_keys"] == (62, 59)
        assert X86_64_LAYOUT["no_execute"] == (63, 63)

    def test_pfn_supports_4_petabytes(self):
        """40-bit PFN x 4 KB pages = 4 PB of addressable physical memory —
        the slack PT-Guard harvests (Sec I)."""
        high, low = X86_64_LAYOUT["pfn"]
        pfn_bits = high - low + 1
        assert pfn_bits == 40
        assert (1 << pfn_bits) * 4096 == 4 * 2**50


class TestX86Encoding:
    @given(st.integers(0, 2**40 - 1))
    def test_pfn_roundtrip(self, pfn):
        assert X86PageTableEntry(make_x86_pte(pfn)).pfn == pfn

    def test_flags_roundtrip(self):
        pte = X86PageTableEntry(
            make_x86_pte(
                0x123,
                present=True,
                writable=False,
                user=True,
                accessed=True,
                dirty=True,
                global_page=True,
                no_execute=True,
                protection_key=0xA,
                os_bits=0b101,
            )
        )
        assert pte.present and not pte.writable and pte.user_accessible
        assert pte.accessed and pte.dirty and pte.global_page and pte.no_execute
        assert pte.protection_key == 0xA
        assert pte.os_bits == 0b101

    def test_non_present(self):
        assert not X86PageTableEntry(make_x86_pte(1, present=False)).present

    def test_default_leaves_ignored_bits_zero(self):
        """The OS zeroes bits 58:40 beyond installed memory — the property
        PT-Guard's bit-pattern match relies on (Sec IV-B)."""
        pte = make_x86_pte(0x12345, user=True, no_execute=True, protection_key=0xF)
        assert (pte >> 40) & ((1 << 19) - 1) == 0  # bits 58:40 for 1 TB PFNs


class TestTable2Layout:
    def test_field_positions(self):
        assert ARMV8_LAYOUT["valid"] == (0, 0)
        assert ARMV8_LAYOUT["memory_attributes"] == (5, 2)
        assert ARMV8_LAYOUT["access_permissions"] == (7, 6)
        assert ARMV8_LAYOUT["pfn_high"] == (9, 8)
        assert ARMV8_LAYOUT["accessed"] == (10, 10)
        assert ARMV8_LAYOUT["pfn_low"] == (49, 12)
        assert ARMV8_LAYOUT["dirty"] == (51, 51)
        assert ARMV8_LAYOUT["contiguous"] == (52, 52)
        assert ARMV8_LAYOUT["execute_never"] == (54, 53)
        assert ARMV8_LAYOUT["hardware_attributes"] == (62, 59)

    def test_arm_pfn_is_40_bits_split(self):
        """ARMv8 PFN: bits 49:12 hold PFN[37:0], bits 9:8 hold PFN[39:38]."""
        high = make_arm_pte(0b11 << 38)
        assert (high >> 8) & 0b11 == 0b11


class TestArmEncoding:
    @given(st.integers(0, 2**40 - 1))
    def test_pfn_roundtrip(self, pfn):
        assert ArmPageTableEntry(make_arm_pte(pfn)).pfn == pfn

    def test_flags_roundtrip(self):
        pte = ArmPageTableEntry(
            make_arm_pte(
                0x77,
                access_permissions=0b01,
                accessed=True,
                dirty=True,
                contiguous=True,
                execute_never=0b10,
                memory_attributes=0b0101,
            )
        )
        assert pte.valid and pte.accessed and pte.dirty and pte.contiguous
        assert pte.execute_never == 0b10
        assert pte.memory_attributes == 0b0101
        assert pte.user_accessible  # AP=01 -> EL0 access

    def test_kernel_only_permission(self):
        pte = ArmPageTableEntry(make_arm_pte(1, access_permissions=0b00))
        assert not pte.user_accessible

    def test_invalid_entry(self):
        assert not ArmPageTableEntry(make_arm_pte(1, valid=False)).valid


class TestCrossISA:
    def test_both_formats_have_user_control_bits(self):
        """Sec II-C: security-critical metadata exists in both ISAs."""
        x86 = make_x86_pte(1, user=True)
        arm = make_arm_pte(1, access_permissions=0b01)
        assert X86PageTableEntry(x86).user_accessible
        assert ArmPageTableEntry(arm).user_accessible
