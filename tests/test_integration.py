"""End-to-end integration tests across all subsystems."""

import random

import pytest

from repro import (
    CollisionBufferOverflow,
    PTEIntegrityException,
    PTGuardConfig,
    RowhammerProfile,
    build_system,
    optimized_ptguard_config,
)
from repro.common.config import PAGE_BYTES
from repro.core import pattern


class TestFullSystemLifecycle:
    """Boot -> processes -> paging -> IO -> teardown on a guarded machine."""

    @pytest.mark.parametrize(
        "guard",
        [None, PTGuardConfig(), optimized_ptguard_config(),
         PTGuardConfig(correction_enabled=True)],
        ids=["baseline", "ptguard", "optimized", "correcting"],
    )
    def test_multiprocess_workout(self, guard):
        system = build_system(ptguard=guard)
        kernel = system.kernel
        rng = random.Random(1)
        processes = []
        for index in range(4):
            process = kernel.create_process(f"p{index}")
            vma = kernel.mmap(process, 32)
            payload = rng.randbytes(512)
            kernel.write_virtual(process, vma.start + 1000, payload)
            processes.append((process, vma, payload))
        # Interleaved reads verify isolation and translation stability.
        for process, vma, payload in processes:
            assert kernel.read_virtual(process, vma.start + 1000, 512) == payload
        for process, _, _ in processes[:2]:
            kernel.destroy_process(process)
        # Survivors unaffected by frees.
        for process, vma, payload in processes[2:]:
            assert kernel.read_virtual(process, vma.start + 1000, 512) == payload
        assert not kernel.incidents


class TestHammerToDetectionPipeline:
    """The full paper pipeline: hammer DRAM -> flips in PTEs -> walk -> verdict."""

    def _hammer_pte_row(self, system, process, vma):
        from repro.attacks.hammer import HammerAttack

        entry_address = process.page_table.leaf_entry_address(vma.start)
        row_key = system.dram.row_of(entry_address)
        attack = HammerAttack(system.dram)
        report = attack.double_sided(row_key[3], iterations=300, bank=row_key)
        return report, entry_address

    def test_baseline_consumes_flipped_ptes(self):
        profile = RowhammerProfile("hot", threshold=100, flip_probability=0.08)
        system = build_system(rowhammer=profile, seed=6)
        kernel = system.kernel
        process = kernel.create_process("victim")
        vma = kernel.mmap(process, 512, populate=True)
        translations = {
            page: process.page_table.translate(vma.start + page * PAGE_BYTES)
            for page in range(512)
        }
        report, _ = self._hammer_pte_row(system, process, vma)
        pte_flips = [f for f in report.flips]
        assert pte_flips, "hammering must flip bits in the PTE row"
        kernel.walker.flush_all()
        changed = 0
        for page in range(512):
            va = vma.start + page * PAGE_BYTES
            try:
                if process.page_table.translate(va) != translations[page]:
                    changed += 1
            except Exception:
                changed += 1
        assert changed > 0  # silent corruption on the baseline

    def test_ptguard_detects_flipped_walks(self):
        profile = RowhammerProfile("hot", threshold=100, flip_probability=0.08)
        system = build_system(
            ptguard=PTGuardConfig(), rowhammer=profile, seed=6
        )
        kernel = system.kernel
        process = kernel.create_process("victim")
        vma = kernel.mmap(process, 512, populate=True)
        report, _ = self._hammer_pte_row(system, process, vma)
        assert report.flips
        kernel.walker.flush_all()
        detections = 0
        for page in range(512):
            try:
                kernel.access_virtual(process, vma.start + page * PAGE_BYTES)
            except PTEIntegrityException:
                detections += 1
        assert detections > 0
        assert kernel.incidents


class TestCTBOverflowRekeyFlow:
    def test_overflow_then_rekey_restores_service(self):
        system = build_system(ptguard=PTGuardConfig(ctb_entries=1))
        kernel = system.kernel
        guard = system.guard

        def colliding(address, seed):
            base = bytearray(random.Random(seed).randbytes(64))
            for index in range(8):
                base[index * 8 + 5] = 0
                base[index * 8 + 6] &= 0xF0
            tag = guard.engine.compute(bytes(base), address)
            return pattern.embed_mac(bytes(base), tag)

        first = colliding(0x10000, 1)
        system.controller.write_line(0x10000, first)
        second = colliding(0x10040, 2)
        response = system.controller.write_line(0x10040, second)
        assert response.rekey_required
        assert response.overflow_address == 0x10040
        kernel.handle_ctb_overflow(response.overflow_address)
        assert guard.epoch == 1
        # The tracked collision survives the re-key intact; the overflow
        # line was sanitised to a benign value (the attacker's data is
        # forfeit, per the paper's OS response).
        assert system.controller.read_line(0x10000).data == first
        assert system.controller.read_line(0x10040).data == bytes(64)
        # Service is fully restored: new writes verify under the new key.
        system.controller.write_line(0x10080, first)
        assert system.controller.read_line(0x10080).data == first


class TestMACAlgorithmInterop:
    @pytest.mark.parametrize("algorithm", ["blake2", "siphash", "pseudo"])
    def test_system_works_with_each_mac(self, algorithm):
        system = build_system(ptguard=PTGuardConfig(), mac_algorithm=algorithm)
        kernel = system.kernel
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 4, populate=True)
        kernel.write_virtual(process, vma.start, b"hello")
        assert kernel.read_virtual(process, vma.start, 5) == b"hello"
        entry_address = process.page_table.leaf_entry_address(vma.start)
        system.memory.flip_bit(entry_address & ~63, 13)
        kernel.walker.flush_all()
        with pytest.raises(PTEIntegrityException):
            kernel.access_virtual(process, vma.start)

    def test_qarma_end_to_end(self):
        """The paper's own primitive, on a tiny scenario (it is slow)."""
        system = build_system(ptguard=PTGuardConfig(), mac_algorithm="qarma")
        kernel = system.kernel
        process = kernel.create_process("p")
        vma = kernel.mmap(process, 1, populate=True)
        physical = kernel.access_virtual(process, vma.start)
        assert physical % PAGE_BYTES == 0


class TestTimingFunctionalConsistency:
    def test_guard_never_changes_functional_results(self):
        """The transparency property at system level: identical program-
        visible state with and without PT-Guard."""
        results = {}
        for label, guard in (("base", None), ("guard", optimized_ptguard_config())):
            system = build_system(ptguard=guard, seed=11)
            kernel = system.kernel
            process = kernel.create_process("p")
            vma = kernel.mmap(process, 64)
            rng = random.Random(3)
            snapshot = []
            for _ in range(64):
                offset = rng.randrange(64 * PAGE_BYTES - 8)
                value = rng.randrange(2**32)
                kernel.write_virtual(process, vma.start + offset,
                                     value.to_bytes(4, "little"))
                snapshot.append(
                    kernel.read_virtual(process, vma.start + offset, 4)
                )
            results[label] = snapshot
        assert results["base"] == results["guard"]
