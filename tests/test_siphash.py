"""SipHash-2-4 against the published reference vectors, plus properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.siphash import siphash24, siphash24_wide

REFERENCE_KEY = bytes(range(16))

# First eight vectors from the SipHash reference implementation
# (Aumasson & Bernstein): message = bytes(range(n)) for n = 0..7.
REFERENCE_VECTORS = [
    0x726FDB47DD0E0E31,
    0x74F839C593DC67FD,
    0x0D6C8009D9A94F5A,
    0x85676696D7FB7E2D,
    0xCF2794E0277187B7,
    0x18765564CD99A68D,
    0xCBC9466E58FEE3CE,
    0xAB0200F58B01D137,
]


class TestReferenceVectors:
    @pytest.mark.parametrize("length,expected", list(enumerate(REFERENCE_VECTORS)))
    def test_official_vector(self, length, expected):
        message = bytes(range(length))
        assert siphash24(REFERENCE_KEY, message) == expected


class TestInterface:
    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            siphash24(b"short", b"data")

    def test_deterministic(self):
        assert siphash24(REFERENCE_KEY, b"abc") == siphash24(REFERENCE_KEY, b"abc")

    def test_key_sensitivity(self):
        other_key = bytes(range(1, 17))
        assert siphash24(REFERENCE_KEY, b"abc") != siphash24(other_key, b"abc")

    @given(st.binary(max_size=128))
    def test_output_is_64_bit(self, data):
        assert 0 <= siphash24(REFERENCE_KEY, data) < 2**64

    @given(st.binary(min_size=1, max_size=64))
    def test_message_sensitivity(self, data):
        tweaked = bytes([data[0] ^ 1]) + data[1:]
        assert siphash24(REFERENCE_KEY, data) != siphash24(REFERENCE_KEY, tweaked)


class TestWide:
    def test_width_masking(self):
        tag = siphash24_wide(REFERENCE_KEY, b"x", 96)
        assert 0 <= tag < 2**96

    def test_wide_extends_not_truncates_base(self):
        narrow = siphash24_wide(REFERENCE_KEY, b"x", 64)
        wide = siphash24_wide(REFERENCE_KEY, b"x", 128)
        assert wide & (2**64 - 1) == narrow

    def test_lanes_differ(self):
        wide = siphash24_wide(REFERENCE_KEY, b"x", 128)
        assert (wide >> 64) != (wide & (2**64 - 1))

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            siphash24_wide(REFERENCE_KEY, b"x", 0)

    @given(st.integers(1, 128))
    def test_any_width(self, bits):
        assert siphash24_wide(REFERENCE_KEY, b"q", bits) < 2**bits
