"""Tests for the DRAM device: timing, activations, flips, refresh."""

import pytest

from repro.common.config import DRAMConfig
from repro.dram.device import DRAMDevice
from repro.dram.rowhammer import RowhammerProfile
from repro.mem.memory import PhysicalMemory


def make_device(profile=None):
    config = DRAMConfig()
    memory = PhysicalMemory(config.size_bytes)
    return DRAMDevice(config, memory, rowhammer_profile=profile)


class TestRowBufferTiming:
    def test_first_access_is_row_miss(self):
        device = make_device()
        latency = device.access(0, is_write=False)
        assert latency == device.config.timing.row_miss_cycles

    def test_second_access_same_row_hits(self):
        device = make_device()
        device.access(0, is_write=False)
        latency = device.access(64, is_write=False)
        assert latency == device.config.timing.row_hit_cycles

    def test_other_row_conflicts(self):
        device = make_device()
        device.access(0, is_write=False)
        far = device.mapper.row_base_address((0, 0, 0, 500))
        latency = device.access(far, is_write=False)
        assert latency == device.config.timing.row_conflict_cycles

    def test_banks_independent(self):
        device = make_device()
        device.access(0, is_write=False)
        other_bank = device.mapper.row_base_address((0, 0, 1, 0))
        latency = device.access(other_bank, is_write=False)
        assert latency == device.config.timing.row_miss_cycles

    def test_latency_ordering(self):
        timing = DRAMConfig().timing
        assert timing.row_hit_cycles < timing.row_miss_cycles < timing.row_conflict_cycles


class TestActivationAccounting:
    def test_row_hits_do_not_activate(self):
        device = make_device(RowhammerProfile.scaled())
        device.access(0, is_write=False)
        for _ in range(10):
            device.access(64, is_write=False)
        assert device.stats.get("activations") == 1

    def test_conflicts_activate(self):
        device = make_device(RowhammerProfile.scaled())
        a = device.mapper.row_base_address((0, 0, 0, 10))
        b = device.mapper.row_base_address((0, 0, 0, 500))
        for _ in range(5):
            device.access(a, is_write=False)
            device.access(b, is_write=False)
        assert device.stats.get("activations") == 10


class TestFlipMaterialisation:
    def test_hammering_flips_bits_in_memory(self):
        profile = RowhammerProfile("hot", threshold=50, flip_probability=0.05)
        device = make_device(profile)
        victim_row = (0, 0, 0, 100)
        # Give the victim non-zero content so true cells can discharge.
        for address in device.addresses_in_row(victim_row):
            device.memory.write_line(address, b"\xa5" * 64)
        before = [device.memory.read_line(a) for a in device.addresses_in_row(victim_row)]
        aggressor_up = device.mapper.row_base_address((0, 0, 0, 99))
        aggressor_down = device.mapper.row_base_address((0, 0, 0, 101))
        for _ in range(60):
            device.access(aggressor_up, is_write=False)
            device.access(aggressor_down, is_write=False)
        after = [device.memory.read_line(a) for a in device.addresses_in_row(victim_row)]
        assert before != after
        assert device.stats.get("bit_flips") > 0
        flipped_rows = {f.row_key for f in device.bit_flips}
        assert victim_row in flipped_rows
        # collateral flips stay within the aggressors' blast radius
        assert all(97 <= row[3] <= 103 for row in flipped_rows)

    def test_invulnerable_module_never_flips(self):
        device = make_device(RowhammerProfile.invulnerable())
        a = device.mapper.row_base_address((0, 0, 0, 99))
        b = device.mapper.row_base_address((0, 0, 0, 101))
        for _ in range(500):
            device.access(a, is_write=False)
            device.access(b, is_write=False)
        assert device.bit_flips == []


class TestRefresh:
    def test_refresh_window_rearms_model(self):
        profile = RowhammerProfile("hot", threshold=50, flip_probability=0.02)
        device = make_device(profile)
        a = device.mapper.row_base_address((0, 0, 0, 99))
        b = device.mapper.row_base_address((0, 0, 0, 200))
        for _ in range(40):
            device.access(a, is_write=False)
            device.access(b, is_write=False)
        device.refresh_window()
        assert device.rowhammer.disturbance((0, 0, 0, 100)) == 0.0

    def test_tick_triggers_window(self):
        device = make_device(RowhammerProfile.scaled())
        device.tick(0)
        device.tick(int(0.065 * 3e9))
        assert device.stats.get("refresh_windows") == 1


class TestMitigationHook:
    def test_policy_receives_activations_and_refreshes(self):
        calls = []

        class Recorder:
            name = "recorder"

            def on_activation(self, row_key, cycle):
                calls.append(row_key)
                return [(0, 0, 0, 7)]

            def on_refresh_window(self):
                calls.append("window")

        config = DRAMConfig()
        memory = PhysicalMemory(config.size_bytes)
        device = DRAMDevice(config, memory, rowhammer_profile=RowhammerProfile.scaled(),
                            mitigation=Recorder())
        device.access(0, is_write=False)
        assert calls and calls[0] == (0, 0, 0, 0)
        assert device.stats.get("mitigation_refreshes") == 1
        device.refresh_window()
        assert calls[-1] == "window"
