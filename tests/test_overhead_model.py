"""Cross-validation: simulator vs closed-form overhead model."""

import pytest

from repro.analysis.overhead_model import (
    agreement_error,
    energy_estimate,
    predicted_slowdown_percent,
)
from repro.common.config import PTGuardConfig
from repro.cpu.workloads import get_workload
from repro.harness.system import build_system


def run(workload, guard_config=None, mem_ops=8000, warmup=12000, seed=2):
    system = build_system(ptguard=guard_config, mac_algorithm="pseudo", seed=seed)
    process, trace = system.workload_process(get_workload(workload), seed=seed)
    core = system.new_core(process)
    core.prefault(trace)
    result = core.run(trace, mem_ops=mem_ops, warmup_ops=warmup)
    return result, system


def window_mac_stats(workload, guard_config, mem_ops=8000, warmup=12000, seed=2):
    """MAC computations and DRAM reads *within the measured window* —
    excluding the OS's own page-table traffic during prefault (the
    steady-state quantity Sec V-E's '<2% of reads' refers to)."""
    system = build_system(ptguard=guard_config, mac_algorithm="pseudo", seed=seed)
    process, trace = system.workload_process(get_workload(workload), seed=seed)
    core = system.new_core(process)
    core.prefault(trace)
    for _ in range(warmup):
        record = trace.next_record()
        core._execute(record.virtual_address, record.is_write)
    checks0 = system.guard.stats.get("mac_computations_read")
    reads0 = (system.controller.stats.get("reads")
              + system.controller.stats.get("pte_reads"))
    core.run(trace, mem_ops=mem_ops, warmup_ops=0)
    checks = system.guard.stats.get("mac_computations_read") - checks0
    reads = (system.controller.stats.get("reads")
             + system.controller.stats.get("pte_reads")) - reads0
    return checks, reads


class TestModelAgreement:
    """The simulator's slowdowns must arise from the stated mechanism."""

    @pytest.mark.parametrize("workload", ["xalancbmk", "mcf"])
    def test_simulated_matches_first_order_prediction(self, workload):
        baseline, _ = run(workload)
        guarded, _ = run(workload, PTGuardConfig())
        error = agreement_error(baseline, guarded, mac_latency_cycles=10)
        simulated = 100.0 * (baseline.ipc / guarded.ipc - 1.0)
        # Within half the effect size (first-order model ignores walk
        # serialisation and row-buffer perturbation).
        assert error <= max(0.4, 0.6 * simulated)

    def test_prediction_scales_with_latency(self):
        baseline, _ = run("mcf")
        p5 = predicted_slowdown_percent(baseline, 5)
        p20 = predicted_slowdown_percent(baseline, 20)
        assert p20 == pytest.approx(4 * p5)

    def test_zero_reads_zero_prediction(self):
        baseline, _ = run("povray")
        assert predicted_slowdown_percent(baseline, 10) < 1.0


class TestEnergyModel:
    def test_baseline_guard_checks_every_read(self):
        checks, reads = window_mac_stats("mcf", PTGuardConfig())
        estimate = energy_estimate(reads, checks)
        assert estimate.checked_fraction > 0.9

    def test_optimized_guard_energy_negligible_streaming(self):
        """Sec V-E's '<2% of reads' regime: streaming workloads, where a
        leaf PTE line serves 8 sequential pages and stays cached."""
        from repro.common.config import optimized_ptguard_config

        checks, reads = window_mac_stats("lbm", optimized_ptguard_config())
        estimate = energy_estimate(reads, checks)
        assert estimate.checked_fraction < 0.10
        assert estimate.overhead_percent < 1.0

    def test_optimized_guard_filters_all_data_reads(self):
        """Even under a pointer-chasing workload (whose page-table walks
        are themselves a large share of DRAM traffic with a 64-entry
        TLB), *data* reads are filtered perfectly: MAC computations equal
        the isPTE walk reads, no more."""
        from repro.common.config import optimized_ptguard_config
        from repro.harness.system import build_system

        system = build_system(ptguard=optimized_ptguard_config(),
                              mac_algorithm="pseudo", seed=2)
        process, trace = system.workload_process(get_workload("mcf"), seed=2)
        core = system.new_core(process)
        core.prefault(trace)
        for _ in range(12000):
            record = trace.next_record()
            core._execute(record.virtual_address, record.is_write)
        checks0 = system.guard.stats.get("mac_computations_read")
        walks0 = system.controller.stats.get("pte_reads")
        core.run(trace, mem_ops=8000, warmup_ops=0)
        checks = system.guard.stats.get("mac_computations_read") - checks0
        walks = system.controller.stats.get("pte_reads") - walks0
        assert checks == walks  # zero MAC work on data reads

    def test_energy_arithmetic(self):
        estimate = energy_estimate(1000, 20)
        assert estimate.mac_energy_nj == pytest.approx(32.0)
        assert estimate.overhead_percent == pytest.approx(0.16)
