"""Tests for the analysis layer: Fig 8 profiling, Fig 9 correction eval,
Fig 6/7 plumbing, and reporting helpers."""

import pytest

from repro.analysis.correction_eval import evaluate_workload
from repro.analysis.pte_profile import (
    PopulationConfig,
    classify_line,
    profile_population,
    synthesize_population,
)
from repro.analysis.reporting import ascii_bars, banner, format_table
from repro.mmu.pte import make_x86_pte


class TestClassifyLine:
    def test_all_zero(self):
        assert classify_line([0] * 8) == (8, 0, 0)

    def test_contiguous_run(self):
        entries = [make_x86_pte(100 + i) for i in range(8)]
        assert classify_line(entries) == (0, 8, 0)

    def test_scattered(self):
        entries = [make_x86_pte(100 * i + 7) for i in range(1, 9)]
        assert classify_line(entries) == (0, 0, 8)

    def test_mixed(self):
        entries = [make_x86_pte(100), make_x86_pte(101), 0, make_x86_pte(500),
                   0, 0, 0, 0]
        zero, contiguous, non = classify_line(entries)
        assert zero == 5 and contiguous == 2 and non == 1

    def test_contiguity_skips_zero_neighbours(self):
        """Contiguity is judged against the nearest *non-zero* neighbour."""
        entries = [make_x86_pte(100), 0, 0, make_x86_pte(101), 0, 0, 0, 0]
        zero, contiguous, non = classify_line(entries)
        assert contiguous == 2

    def test_descending_also_contiguous(self):
        entries = [make_x86_pte(108 - i) for i in range(8)]
        assert classify_line(entries) == (0, 8, 0)


class TestPopulationSynthesis:
    @pytest.fixture(scope="class")
    def population(self):
        config = PopulationConfig(num_processes=40, seed=3)
        system, processes = synthesize_population(config=config)
        return profile_population(processes)

    def test_population_has_survivors(self, population):
        assert 15 <= len(population.processes) <= 40

    def test_fractions_sum_to_one(self, population):
        for process in population.processes:
            total = (
                process.zero_fraction
                + process.contiguous_fraction
                + process.non_contiguous_fraction
            )
            assert total == pytest.approx(1.0)

    def test_statistics_near_paper(self, population):
        """Loose bands around Fig 8's 64% / 24% / 12% at small scale."""
        assert 0.50 <= population.mean_fraction("zero") <= 0.82
        assert 0.10 <= population.mean_fraction("contiguous") <= 0.42
        assert 0.01 <= population.mean_fraction("non_contiguous") <= 0.25

    def test_sorted_view(self, population):
        ranked = population.sorted_by_contiguity()
        fractions = [p.contiguous_fraction for p in ranked]
        assert fractions == sorted(fractions)

    def test_determinism(self):
        config = PopulationConfig(num_processes=10, seed=5)
        _, a = synthesize_population(config=config)
        _, b = synthesize_population(config=config)
        stats_a = profile_population(a)
        stats_b = profile_population(b)
        assert stats_a.total_ptes == stats_b.total_ptes


class TestCorrectionEval:
    @pytest.fixture(scope="class")
    def cell(self):
        return evaluate_workload("mcf", 1 / 512, max_lines=60, trials_per_line=2)

    def test_full_detection_coverage(self, cell):
        """Sec VI-F: 'we detect all the faults injected' — 100% coverage."""
        assert cell.detection_coverage == 1.0

    def test_no_miscorrections(self, cell):
        assert cell.miscorrections == 0

    def test_majority_corrected_at_low_p(self, cell):
        assert cell.corrected_fraction > 0.80

    def test_correction_degrades_with_p_flip(self):
        low = evaluate_workload("mcf", 1 / 512, max_lines=60, trials_per_line=2)
        high = evaluate_workload("mcf", 1 / 64, max_lines=60, trials_per_line=2)
        assert high.corrected_fraction < low.corrected_fraction

    def test_strategies_used(self, cell):
        assert cell.winning_steps  # at least one strategy fired


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2

    def test_banner(self):
        assert banner("hi").startswith("== hi ")

    def test_ascii_bars(self):
        chart = ascii_bars(["x", "yy"], [1.0, 2.0], width=10)
        assert "#" in chart and "yy" in chart

    def test_ascii_bars_empty(self):
        assert ascii_bars([], []) == "(no data)"
