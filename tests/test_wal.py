"""The service write-ahead state log: encode/decode, replay, damage.

Two layers:

* Unit tests pin the failure discipline — torn tails dropped, corrupt
  records quarantined *and skipped*, disk faults degrading instead of
  raising, compaction atomicity.
* Derandomized hypothesis properties (same idiom as
  ``test_property_roundtrips.py``) prove the two invariants recovery is
  built on: encode→decode is the identity for any JSON-able record, and
  replay of an arbitrarily truncated log is always a *monotone prefix*
  of the appended records — truncation can lose the tail, never
  reorder, corrupt or invent state.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.wal import (
    ReplayResult,
    StateLog,
    decode_record,
    encode_record,
    replay_bytes,
    wal_flush_interval,
)

DERANDOMIZED = settings(derandomize=True, max_examples=200, deadline=None)

# JSON-able record bodies of the shape the service actually logs:
# string keys, scalar/list/dict values. Keys exclude "v" (the schema
# tag the envelope adds and strips).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.text(max_size=20),
)
values = st.one_of(
    scalars,
    st.lists(scalars, max_size=4),
    st.dictionaries(st.text(max_size=8), scalars, max_size=4),
)
records = st.dictionaries(
    st.text(min_size=1, max_size=12).filter(lambda k: k != "v"),
    values,
    max_size=6,
)


class TestEncodeDecode:
    def test_roundtrip(self):
        record = {"type": "accept", "ticket": "s-0001", "jobs": [{"x": 1}]}
        assert decode_record(encode_record(record).strip()) == record

    def test_lines_are_newline_terminated_json(self):
        line = encode_record({"type": "dispatch", "ticket": "s-0002"})
        assert line.endswith("\n")
        envelope = json.loads(line)
        assert set(envelope) == {"rec", "sha"}

    @pytest.mark.parametrize(
        "bad",
        [
            "not json at all",
            "{}",
            '{"rec": {"v": 1, "type": "x"}, "sha": "0000000000000000"}',
            '{"rec": "not a dict", "sha": "abc"}',
            '{"rec": {"v": 999, "type": "x"}, "sha": "deadbeef"}',
            "[1, 2, 3]",
        ],
    )
    def test_damaged_or_foreign_lines_decode_to_none(self, bad):
        assert decode_record(bad) is None

    def test_single_flipped_character_is_detected(self):
        line = encode_record({"type": "finish", "ticket": "s-0003"}).strip()
        flipped = line.replace("finish", "finisH")
        assert decode_record(flipped) is None


class TestReplay:
    def _log(self, *recs):
        return "".join(encode_record(r) for r in recs).encode("utf-8")

    def test_clean_log_replays_in_order(self):
        recs = [{"type": "accept", "n": i} for i in range(5)]
        result = replay_bytes(self._log(*recs))
        assert result.records == recs
        assert result.clean

    def test_torn_tail_is_dropped_not_fatal(self):
        data = self._log({"n": 1}, {"n": 2}) + b'{"rec": {"v": 1, "n'
        result = replay_bytes(data)
        assert result.records == [{"n": 1}, {"n": 2}]
        assert result.torn and not result.quarantined

    def test_corrupt_middle_record_is_quarantined_and_skipped(self):
        lines = [
            encode_record({"n": 1}),
            encode_record({"n": 2}).replace('"n":2', '"n":3'),
            encode_record({"n": 4}),
        ]
        result = replay_bytes("".join(lines).encode("utf-8"))
        # Replay continues PAST the damage: record 4 survives.
        assert result.records == [{"n": 1}, {"n": 4}]
        assert len(result.quarantined) == 1 and not result.torn

    def test_blank_lines_are_ignored(self):
        data = b"\n" + self._log({"n": 1}) + b"\n\n" + self._log({"n": 2})
        assert replay_bytes(data).records == [{"n": 1}, {"n": 2}]

    def test_missing_file_is_a_clean_empty_replay(self, tmp_path):
        log = StateLog(tmp_path / "absent.wal")
        result = log.replay()
        assert result.records == [] and result.clean
        assert not log.degraded

    def test_quarantined_lines_land_in_sidecar(self, tmp_path):
        path = tmp_path / "service.wal"
        good = encode_record({"n": 1})
        bad = good.replace('"n":1', '"n":9')
        path.write_text(good + bad + encode_record({"n": 2}))
        log = StateLog(path)
        result = log.replay()
        assert result.records == [{"n": 1}, {"n": 2}]
        sidecar = path.with_suffix(".quarantine")
        assert sidecar.exists() and '"n":9' in sidecar.read_text()


class TestStateLogWrites:
    def test_append_then_replay(self, tmp_path):
        log = StateLog(tmp_path / "service.wal")
        assert log.append({"type": "accept", "ticket": "s-0001"})
        assert log.append({"type": "finish", "ticket": "s-0001"})
        log.close()
        replayed = StateLog(tmp_path / "service.wal").replay()
        assert [r["type"] for r in replayed.records] == ["accept", "finish"]
        assert log.records_written == 2 and log.write_errors == 0

    def test_disk_fault_degrades_and_warns_once(self, tmp_path, caplog):
        # The WAL path's parent is a *file*, so every open fails: the
        # cheapest deterministic stand-in for ENOSPC/EIO.
        blocker = tmp_path / "blocked"
        blocker.write_text("in the way")
        log = StateLog(blocker / "service.wal")
        with caplog.at_level("WARNING"):
            assert not log.append({"type": "accept"})
            assert not log.append({"type": "accept"})
        assert log.degraded
        assert log.write_errors == 2 and log.records_written == 0
        warnings = [r for r in caplog.records if "degrading" in r.message]
        assert len(warnings) == 1

    def test_degraded_log_never_raises(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("x")
        log = StateLog(blocker / "service.wal")
        log.append({"a": 1})
        log.sync()
        log.close()
        log.compact([{"a": 1}])
        assert log.replay().records == []

    def test_compact_rewrites_atomically(self, tmp_path):
        path = tmp_path / "service.wal"
        log = StateLog(path)
        for n in range(10):
            log.append({"type": "accept", "n": n})
        log.close()
        log.compact([{"type": "accept", "n": 9}])
        result = replay_bytes(path.read_bytes())
        assert result.records == [{"type": "accept", "n": 9}]
        assert result.clean
        assert not list(tmp_path.glob(".*tmp"))

    def test_fsync_interval_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_WAL_FLUSH", raising=False)
        assert wal_flush_interval() == 1
        monkeypatch.setenv("REPRO_WAL_FLUSH", "8")
        assert wal_flush_interval() == 8
        monkeypatch.setenv("REPRO_WAL_FLUSH", "0")
        assert wal_flush_interval() == 1
        monkeypatch.setenv("REPRO_WAL_FLUSH", "nope")
        assert wal_flush_interval() == 1

    def test_batched_fsync_still_writes_every_record(self, tmp_path):
        log = StateLog(tmp_path / "service.wal", fsync_interval=4)
        for n in range(10):
            assert log.append({"n": n})
        log.close()
        assert len(log.replay().records) == 10


class TestProperties:
    @DERANDOMIZED
    @given(record=records)
    def test_encode_decode_is_identity(self, record):
        assert decode_record(encode_record(record).strip()) == record

    @DERANDOMIZED
    @given(
        recs=st.lists(records, min_size=0, max_size=8),
        cut=st.integers(min_value=0, max_value=10_000),
    )
    def test_replay_of_any_truncation_is_a_monotone_prefix(self, recs, cut):
        data = "".join(encode_record(r) for r in recs).encode("utf-8")
        truncated = data[: min(cut, len(data))]
        result = replay_bytes(truncated)
        # Pure truncation never corrupts a terminated line, so nothing
        # may be quarantined; the replayed state is exactly the first k
        # records for some k — never reordered, never invented.
        assert not result.quarantined
        assert result.records == recs[: len(result.records)]
        if truncated == data:
            assert result.records == recs and not result.torn

    @DERANDOMIZED
    @given(
        recs=st.lists(records, min_size=1, max_size=6),
        flip=st.integers(min_value=0, max_value=10_000),
    )
    def test_single_byte_flip_never_invents_a_record(self, recs, flip):
        data = bytearray("".join(encode_record(r) for r in recs).encode("utf-8"))
        index = flip % len(data)
        original = data[index]
        data[index] = (original + 1) % 256
        result = replay_bytes(bytes(data))
        # Every replayed record must be one the writer actually logged
        # (in order); the flip may cost records, never fabricate them.
        iterator = iter(recs)
        for replayed in result.records:
            for candidate in iterator:
                if candidate == replayed:
                    break
            else:
                pytest.fail(f"replay invented record {replayed!r}")


def test_replay_result_clean_flag():
    assert ReplayResult().clean
    assert not ReplayResult(torn=True).clean
    assert not ReplayResult(quarantined=["x"]).clean
